"""Legacy shim: lets `pip install -e . --no-use-pep517` work offline (no wheel pkg)."""
from setuptools import setup

setup()
