"""Unit tests for the HDF5-ish / pnetCDF-ish layout generators."""

import pytest

from repro.errors import ConfigError
from repro.formats import HDF5Layout, NetCDFLayout


class TestNetCDFLayout:
    def test_extents_disjoint_and_complete(self):
        lay = NetCDFLayout(n_vars=3, block_per_rank=100, nprocs=4, n_records=2)
        spans = [lay.header_extent()]
        for r in range(4):
            spans.extend(lay.rank_extents(r))
        spans.sort()
        for (s1, e1len), (s2, _) in zip(
            [(s, s + ln) for s, ln in spans], [(s, s + ln) for s, ln in spans][1:]
        ):
            assert e1len <= s2
        total = sum(ln for _, ln in spans)
        assert total == lay.total_bytes

    def test_segmented_per_variable(self):
        lay = NetCDFLayout(n_vars=2, block_per_rank=10, nprocs=3,
                           header_bytes=100)
        exts = list(lay.rank_extents(1))
        # var 0 block: header + var0 + rank1*10 = 110; var 1 at 100+30+10=140.
        assert exts == [(110, 10), (140, 10)]

    def test_record_dimension_repeats(self):
        lay = NetCDFLayout(n_vars=1, block_per_rank=10, nprocs=2,
                           n_records=3, header_bytes=0)
        exts = list(lay.rank_extents(0))
        assert exts == [(0, 10), (20, 10), (40, 10)]

    def test_bytes_per_rank(self):
        lay = NetCDFLayout(n_vars=4, block_per_rank=25, nprocs=8, n_records=2)
        assert lay.bytes_per_rank() == 4 * 2 * 25

    def test_validation(self):
        with pytest.raises(ConfigError):
            NetCDFLayout(n_vars=0, block_per_rank=1, nprocs=1)
        lay = NetCDFLayout(n_vars=1, block_per_rank=1, nprocs=2)
        with pytest.raises(ConfigError):
            list(lay.rank_extents(5))


class TestHDF5Layout:
    def test_chunks_disjoint_round_robin(self):
        lay = HDF5Layout(chunk_bytes=100, chunks_per_rank=3, nprocs=4)
        seen = set()
        for r in range(4):
            for off, ln in lay.rank_extents(r):
                assert ln == 100
                assert off >= lay.data_base
                assert off not in seen
                seen.add(off)
        assert len(seen) == 12

    def test_metadata_dribbles_in_md_region(self):
        lay = HDF5Layout(chunk_bytes=1000, chunks_per_rank=4, nprocs=4)
        for off, ln in lay.metadata_extents():
            assert lay.superblock_bytes <= off < lay.data_base
            assert ln == lay.md_block_bytes

    def test_metadata_does_not_overlap_data(self):
        lay = HDF5Layout(chunk_bytes=64, chunks_per_rank=2, nprocs=2)
        md_end = max(off + ln for off, ln in lay.metadata_extents())
        data_start = min(off for r in range(2) for off, _ in lay.rank_extents(r))
        assert md_end <= data_start

    def test_unaligned_metadata_blocks(self):
        """The md dribbles are deliberately odd-sized (unaligned writes)."""
        lay = HDF5Layout(chunk_bytes=1 << 20, chunks_per_rank=1, nprocs=1)
        assert lay.md_block_bytes % 512 != 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            HDF5Layout(chunk_bytes=0, chunks_per_rank=1, nprocs=1)
        with pytest.raises(ConfigError):
            HDF5Layout(chunk_bytes=1, chunks_per_rank=1, nprocs=1,
                       md_every_chunks=0)
