"""Property-based tests (hypothesis) for extent resolution.

The extent journal is the correctness heart of both the simulated PFS and
the PLFS index; these properties pin its semantics against a naive
per-byte reference model under arbitrary record streams.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs.extents import HOLE, ExtentJournal

MAX_POS = 2000

records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=MAX_POS - 1),   # start
        st.integers(min_value=1, max_value=300),           # length
        st.integers(min_value=0, max_value=9),             # src
        st.integers(min_value=0, max_value=10_000),        # src_off
        st.floats(min_value=0, max_value=100, allow_nan=False),  # stamp
        st.integers(min_value=0, max_value=7),             # minor
    ),
    max_size=40,
)


def reference_model(recs):
    """Per-byte last-writer-wins resolution: (owner index or -1) per byte."""
    size = max((s + ln for s, ln, *_ in recs), default=0)
    owner = np.full(size, -1, dtype=np.int64)
    # Stable sort by (stamp, minor, arrival): later wins.
    order = sorted(range(len(recs)), key=lambda i: (recs[i][4], recs[i][5], 0))
    for i in order:
        s, ln, *_ = recs[i]
        owner[s:s + ln] = i
    return owner


def build(recs):
    j = ExtentJournal()
    for s, ln, src, soff, stamp, minor in recs:
        j.append(s, ln, src, soff, stamp=stamp, minor=minor)
    return j


@st.composite
def distinct_priority_records(draw):
    """Records whose (stamp, minor) pairs are unique — resolution is total."""
    recs = draw(records)
    out = []
    for i, (s, ln, src, soff, _stamp, _minor) in enumerate(recs):
        out.append((s, ln, src, soff, float(i % 11), i))
    return out


@given(distinct_priority_records())
@settings(max_examples=200, deadline=None)
def test_flatten_covers_exactly_the_written_bytes(recs):
    j = build(recs)
    ref = reference_model(recs)
    covered = np.zeros(len(ref), dtype=bool)
    for s, e, _src, _off in j.flatten().segments():
        assert not covered[s:e].any(), "segments overlap"
        covered[s:e] = True
    assert np.array_equal(covered, ref != -1)


@given(distinct_priority_records())
@settings(max_examples=100, deadline=None)
def test_segment_sources_match_reference(recs):
    j = build(recs)
    ref = reference_model(recs)
    for s, e, src, src_off in j.flatten().segments():
        winners = set(ref[s:e].tolist())
        assert len(winners) == 1, "segment spans multiple reference winners"
        w = winners.pop()
        rs, rl, rsrc, rsoff, *_ = recs[w]
        assert rsrc == src
        assert src_off == rsoff + (s - rs)


@given(distinct_priority_records(),
       st.integers(min_value=0, max_value=MAX_POS),
       st.integers(min_value=0, max_value=500))
@settings(max_examples=150, deadline=None)
def test_query_tiles_exactly(recs, offset, length):
    j = build(recs)
    segs = j.flatten().query(offset, length)
    pos = offset
    for s, e, src, _ in segs:
        assert s == pos, "gap or overlap in query tiling"
        assert e > s
        pos = e
    assert pos == offset + length or (length == 0 and not segs)


@given(distinct_priority_records())
@settings(max_examples=100, deadline=None)
def test_flatten_idempotent_and_cached(recs):
    j = build(recs)
    f1 = j.flatten()
    f2 = j.flatten()
    assert f1 is f2  # cached
    j2 = build(recs)
    assert list(j2.flatten().segments()) == list(f1.segments())


@given(distinct_priority_records())
@settings(max_examples=100, deadline=None)
def test_size_equals_max_extent_end(recs):
    j = build(recs)
    expect = max((s + ln for s, ln, *_ in recs), default=0)
    assert j.size == expect
    flat = j.flatten()
    if len(flat):
        assert int(flat.ends.max()) == expect


@given(distinct_priority_records(), st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_extend_equivalent_to_interleaved_append(recs, split):
    """Merging k sub-journals == appending everything to one journal."""
    parts = [ExtentJournal() for _ in range(split)]
    whole = ExtentJournal()
    for i, (s, ln, src, soff, stamp, minor) in enumerate(recs):
        parts[i % split].append(s, ln, src, soff, stamp=stamp, minor=minor)
        whole.append(s, ln, src, soff, stamp=stamp, minor=minor)
    merged = ExtentJournal()
    for p in parts:
        merged.extend(p)
    assert list(merged.flatten().segments()) == list(whole.flatten().segments())


@given(distinct_priority_records())
@settings(max_examples=60, deadline=None)
def test_extend_arrays_equivalent_to_append(recs):
    j1 = build(recs)
    j2 = ExtentJournal()
    if recs:
        cols = list(zip(*recs))
        j2.extend_arrays(np.array(cols[0]), np.array(cols[1]), np.array(cols[2]),
                         np.array(cols[3]), np.array(cols[4]), np.array(cols[5]))
    assert list(j2.flatten().segments()) == list(j1.flatten().segments())
