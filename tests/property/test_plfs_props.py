"""Property-based end-to-end PLFS correctness under arbitrary write plans.

Hypothesis generates random multi-rank write plans — overlapping offsets,
odd sizes, arbitrary interleavings across ranks and time — executes them
through the full PLFS + simulated-PFS stack, and checks the read-back
against a naive byte-array reference (last simulated-writer wins).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import run_job
from repro.pfs.data import LiteralData
from tests.conftest import make_world

MAX_FILE = 1500

# A plan: per rank, a list of (offset, payload bytes).
plans = st.lists(  # ranks
    st.lists(  # writes of one rank
        st.tuples(
            st.integers(min_value=0, max_value=MAX_FILE - 1),
            st.binary(min_size=1, max_size=120),
        ),
        max_size=6,
    ),
    min_size=1,
    max_size=5,
)


@given(plans, st.sampled_from(["original", "flatten", "parallel"]))
@settings(max_examples=40, deadline=None)
def test_plfs_readback_matches_reference(plan, aggregation):
    nprocs = len(plan)
    w = make_world(aggregation=aggregation)
    order_log = []

    def writer(ctx):
        fh = yield from w.mount.open_write(ctx.client, "/f", ctx.comm)
        for offset, payload in plan[ctx.rank]:
            yield from fh.write(offset, LiteralData(payload))
            order_log.append((ctx.env.now, ctx.rank, offset, payload))
        yield from w.mount.close_write(fh, ctx.comm)

    run_job(w.env, w.cluster, nprocs, writer)

    # Reference: replay the observed simulated completion order.  Ties in
    # timestamp are broken by writer id (larger wins), like the index.
    ref = np.zeros(MAX_FILE + 200, dtype=np.uint8)
    written = np.zeros(MAX_FILE + 200, dtype=bool)
    size = 0
    for t, rank, offset, payload in sorted(order_log, key=lambda e: (e[0], e[1])):
        ref[offset:offset + len(payload)] = np.frombuffer(payload, dtype=np.uint8)
        written[offset:offset + len(payload)] = True
        size = max(size, offset + len(payload))
    ref[~written] = 0  # holes read as zeros

    def reader(ctx):
        fh = yield from w.mount.open_read(ctx.client, "/f", ctx.comm)
        assert fh.size == size
        view = yield from fh.read(0, size)
        yield from fh.close()
        return view.materialize()

    res = run_job(w.env, w.cluster, 1, reader, client_id_base=999)
    got = res.results[0]
    assert np.array_equal(got, ref[:size])


@given(plans)
@settings(max_examples=20, deadline=None)
def test_restart_job_sees_same_bytes_as_first_reader(plan):
    """A second, separate read job resolves to the identical content
    (the on-media index is the single source of truth)."""
    nprocs = len(plan)
    w = make_world(aggregation="parallel")

    def writer(ctx):
        fh = yield from w.mount.open_write(ctx.client, "/f", ctx.comm)
        for offset, payload in plan[ctx.rank]:
            yield from fh.write(offset, LiteralData(payload))
        yield from w.mount.close_write(fh, ctx.comm)

    run_job(w.env, w.cluster, nprocs, writer)

    def reader(ctx):
        fh = yield from w.mount.open_read(ctx.client, "/f", ctx.comm)
        view = yield from fh.read(0, fh.size)
        yield from fh.close()
        return view.materialize().tobytes()

    first = run_job(w.env, w.cluster, 2, reader, client_id_base=1000).results
    w.drop_caches()
    second = run_job(w.env, w.cluster, 3, reader, client_id_base=2000).results
    assert len(set(first + second)) == 1
