"""Property-based tests for the virtual-data algebra (DataSpec/DataView)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs.data import (
    CompositeData,
    DataView,
    LiteralData,
    PatternData,
    ZeroData,
    pattern_bytes,
)

specs = st.one_of(
    st.builds(ZeroData, st.integers(min_value=0, max_value=500)),
    st.builds(PatternData,
              st.integers(min_value=0, max_value=50),
              st.integers(min_value=0, max_value=10_000),
              st.integers(min_value=0, max_value=500)),
    st.builds(LiteralData, st.binary(max_size=200)),
)


@given(specs, st.data())
@settings(max_examples=200, deadline=None)
def test_slice_matches_materialized_slice(spec, data):
    if spec.length == 0:
        return
    start = data.draw(st.integers(min_value=0, max_value=spec.length))
    length = data.draw(st.integers(min_value=0, max_value=spec.length - start))
    sub = spec.slice(start, length)
    assert sub.length == length
    assert np.array_equal(sub.materialize(), spec.materialize()[start:start + length])


@given(specs)
@settings(max_examples=100, deadline=None)
def test_content_equal_reflexive_and_matches_bytes(spec):
    assert spec.content_equal(spec)
    clone = LiteralData(spec.materialize())
    assert spec.content_equal(clone)
    assert clone.content_equal(spec)


@given(specs, specs)
@settings(max_examples=200, deadline=None)
def test_content_equal_agrees_with_materialization(a, b):
    """Structural equality may be conservative only in the False direction
    for huge specs; at these sizes it must be exact."""
    truth = np.array_equal(a.materialize(), b.materialize())
    assert a.content_equal(b) == truth
    assert b.content_equal(a) == truth


@given(st.lists(specs, max_size=6), st.data())
@settings(max_examples=150, deadline=None)
def test_view_slice_matches_bytes(pieces, data):
    view = DataView(pieces)
    if view.length == 0:
        return
    start = data.draw(st.integers(min_value=0, max_value=view.length))
    length = data.draw(st.integers(min_value=0, max_value=view.length - start))
    sub = view.slice(start, length)
    assert sub.length == length
    assert np.array_equal(sub.materialize(), view.materialize()[start:start + length])


@given(st.lists(specs, max_size=6), st.data())
@settings(max_examples=100, deadline=None)
def test_view_equality_invariant_under_resplit(pieces, data):
    """Splitting a view at arbitrary points never changes its content."""
    view = DataView(pieces)
    if view.length == 0:
        return
    cut = data.draw(st.integers(min_value=0, max_value=view.length))
    resplit = DataView(
        view.slice(0, cut).pieces + view.slice(cut, view.length - cut).pieces)
    assert view.content_equal(resplit)
    assert resplit.content_equal(view)


@given(st.lists(specs, min_size=1, max_size=5))
@settings(max_examples=100, deadline=None)
def test_composite_behaves_like_its_concatenation(pieces):
    view = DataView(pieces)
    comp = CompositeData(view)
    lit = LiteralData(view.materialize())
    assert comp.length == view.length
    assert comp.content_equal(lit)
    assert lit.content_equal(comp)
    if comp.length >= 2:
        sub = comp.slice(1, comp.length - 2)
        assert np.array_equal(sub.materialize(), view.materialize()[1:-1])


@given(st.integers(min_value=0, max_value=100),
       st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=0, max_value=300),
       st.integers(min_value=0, max_value=300))
@settings(max_examples=100, deadline=None)
def test_pattern_shift_identity(seed, offset, k, n):
    """pattern(seed, off)[k : k+n] == pattern(seed, off+k)[:n]."""
    a = pattern_bytes(seed, offset, k + n)[k:]
    b = pattern_bytes(seed, offset + k, n)
    assert np.array_equal(a, b)
