"""Property-based tests for the GPS fair-share server's invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FairShareServer

jobs_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),   # arrival
        st.floats(min_value=0.001, max_value=50.0, allow_nan=False),  # demand
    ),
    min_size=1,
    max_size=25,
)


def run_jobs(jobs, capacity=10.0):
    env = Engine()
    srv = FairShareServer(env, capacity=capacity)
    finishes = {}

    def proc(env, i, arrival, demand):
        yield env.timeout(arrival)
        yield srv.serve(demand)
        finishes[i] = env.now

    for i, (arrival, demand) in enumerate(jobs):
        env.process(proc(env, i, arrival, demand))
    env.run()
    return finishes


@given(jobs_strategy)
@settings(max_examples=150, deadline=None)
def test_every_job_completes(jobs):
    finishes = run_jobs(jobs)
    assert len(finishes) == len(jobs)


@given(jobs_strategy)
@settings(max_examples=150, deadline=None)
def test_no_job_beats_its_dedicated_time(jobs):
    """A job can never finish faster than demand/capacity after arrival."""
    capacity = 10.0
    finishes = run_jobs(jobs, capacity)
    for i, (arrival, demand) in enumerate(jobs):
        assert finishes[i] >= arrival + demand / capacity - 1e-6


@given(jobs_strategy)
@settings(max_examples=150, deadline=None)
def test_work_conservation_upper_bound(jobs):
    """The last completion is no later than serial execution of everything
    starting from the last arrival-constrained point (loose but real)."""
    capacity = 10.0
    finishes = run_jobs(jobs, capacity)
    worst = max(a for a, _ in jobs) + sum(d for _, d in jobs) / capacity
    assert max(finishes.values()) <= worst + 1e-6


@given(jobs_strategy)
@settings(max_examples=100, deadline=None)
def test_equal_arrivals_finish_in_demand_order(jobs):
    """With simultaneous arrivals, smaller demands finish no later."""
    sim = [(0.0, d) for _, d in jobs]
    finishes = run_jobs(sim)
    order = sorted(range(len(sim)), key=lambda i: sim[i][1])
    for a, b in zip(order, order[1:]):
        assert finishes[a] <= finishes[b] + 1e-6


@given(jobs_strategy, st.floats(min_value=0.5, max_value=100.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_capacity_scales_time(jobs, factor):
    """Doubling capacity halves every completion (time-rescaling law).

    Only exact when all arrivals are zero (otherwise arrival constraints
    break the scaling), so pin arrivals.
    """
    sim = [(0.0, d) for _, d in jobs]
    base = run_jobs(sim, capacity=10.0)
    fast = run_jobs(sim, capacity=10.0 * factor)
    for i in base:
        assert fast[i] == pytest.approx(base[i] / factor, rel=1e-6)


@given(jobs_strategy)
@settings(max_examples=100, deadline=None)
def test_total_served_accounting(jobs):
    env = Engine()
    srv = FairShareServer(env, capacity=7.0)

    def proc(env, arrival, demand):
        yield env.timeout(arrival)
        yield srv.serve(demand)

    for arrival, demand in jobs:
        env.process(proc(env, arrival, demand))
    env.run()
    assert srv.total_served == pytest.approx(sum(d for _, d in jobs))
    assert srv.active == 0


@given(jobs_strategy)
@settings(max_examples=80, deadline=None)
def test_work_delivered_is_monotone_and_bounded(jobs):
    """Delivered work never decreases and never exceeds accepted work."""
    env = Engine()
    srv = FairShareServer(env, capacity=10.0)
    observations = []

    def proc(env, arrival, demand):
        yield env.timeout(arrival)
        observations.append(srv.work_delivered())
        yield srv.serve(demand)
        observations.append(srv.work_delivered())

    for arrival, demand in jobs:
        env.process(proc(env, arrival, demand))
    env.run()
    for a, b in zip(observations, observations[1:]):
        assert b >= a - 1e-6
    assert observations[-1] <= srv.total_served + 1e-6
    assert srv.work_delivered() == pytest.approx(srv.total_served)
