"""Property-based tests for the storage models (locks, cache, striping)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import PageCache
from repro.pfs.config import PfsConfig
from repro.pfs.locks import RangeLockManager
from repro.pfs.osd import stripe_lanes
from repro.sim import Engine


# --- striping ---------------------------------------------------------------

@given(st.integers(min_value=0, max_value=100_000),
       st.integers(min_value=1, max_value=5_000),
       st.sampled_from([1, 2, 3, 4, 8, 16]),
       st.sampled_from([64, 100, 1024, 4096]))
@settings(max_examples=300, deadline=None)
def test_stripe_lanes_partition_the_range(offset, length, width, su):
    lanes = stripe_lanes(offset, length, su, width)
    # Bytes conserved.
    assert sum(n for _, _, n in lanes) == length
    # Lane ids valid and unique.
    ids = [l for l, _, _ in lanes]
    assert len(set(ids)) == len(ids)
    assert all(0 <= l < width for l in ids)
    # Per-lane byte counts match a brute-force walk (bounded ranges only).
    if length <= 3000:
        brute = {}
        for b in range(offset, offset + length):
            lane = (b // su) % width
            brute[lane] = brute.get(lane, 0) + 1
        assert {l: n for l, _, n in lanes} == brute


@given(st.integers(min_value=0, max_value=50_000),
       st.lists(st.integers(min_value=1, max_value=2_000), min_size=1, max_size=10),
       st.sampled_from([2, 4, 8]),
       st.sampled_from([64, 512]))
@settings(max_examples=150, deadline=None)
def test_consecutive_ranges_stay_object_sequential(start, sizes, width, su):
    """Appending file ranges append per-lane object ranges (no gaps/overlap)."""
    ends = {}
    pos = start - start % su  # align the first write for a clean baseline
    for size in sizes:
        for lane, obj_off, n in stripe_lanes(pos, size, su, width):
            if lane in ends:
                assert obj_off == ends[lane]
            ends[lane] = obj_off + n
        pos += size


# --- page cache ----------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),      # file
                          st.integers(min_value=0, max_value=64),     # block
                          st.booleans()),                             # insert?
                max_size=120),
       st.integers(min_value=1, max_value=16))
@settings(max_examples=150, deadline=None)
def test_page_cache_matches_lru_reference(ops, capacity):
    bs = 1024
    cache = PageCache(capacity_bytes=capacity * bs, block_size=bs)
    ref = []  # list of keys, LRU first

    def touch(key):
        if key in ref:
            ref.remove(key)
            ref.append(key)
            return True
        return False

    for fuid, block, is_insert in ops:
        key = (fuid, block)
        if is_insert:
            cache.insert(fuid, block * bs, bs)
            if not touch(key):
                ref.append(key)
                if len(ref) > capacity:
                    ref.pop(0)
        else:
            hit = cache.hit_bytes(fuid, block * bs, bs)
            assert (hit == bs) == touch(key)
    assert len(cache) == len(ref)


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=5_000))
@settings(max_examples=150, deadline=None)
def test_full_blocks_only_never_overclaims(offset, length):
    bs = 1024
    cache = PageCache(capacity_bytes=1 << 20, block_size=bs)
    cache.insert(1, offset, length, full_blocks_only=True)
    # Every byte reported resident must lie inside [offset, offset+length).
    hit = cache.hit_bytes(1, 0, 64 * 1024)
    lo = -(-offset // bs) * bs
    hi = ((offset + length) // bs) * bs
    assert hit == max(0, min(hi, 64 * 1024) - min(lo, 64 * 1024))


# --- lock manager -----------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),    # client
                          st.integers(min_value=0, max_value=900),  # offset
                          st.integers(min_value=1, max_value=300)),  # length
                min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_lock_acquisitions_always_terminate_and_balance(ops):
    """Arbitrary acquire/release sequences never deadlock the engine and
    leave every mutex free."""
    env = Engine()
    cfg = PfsConfig(lock_block=100, lock_revoke_time=1e-4, lock_grant_time=1e-5)
    mgr = RangeLockManager(env, cfg)

    def worker(env, client, offset, length):
        held = yield from mgr.acquire(client, 42, offset, length)
        yield env.timeout(1e-4)
        mgr.release(held)

    for client, offset, length in ops:
        env.process(worker(env, client, offset, length))
    env.run()  # DeadlockError would surface here as stuck processes
    for mutex in mgr._mutex.values():
        assert mutex.available == 1
