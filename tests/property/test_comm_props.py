"""Property-based tests for the MPI collectives under arbitrary shapes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.mpi import run_job
from repro.sim import Engine


def run_ranks(nprocs, fn):
    env = Engine()
    cluster = Cluster(env, ClusterSpec(name="t", n_nodes=4, node=NodeSpec(cores=4)))
    return run_job(env, cluster, nprocs, fn)


sizes = st.integers(min_value=1, max_value=24)


@given(sizes, st.data())
@settings(max_examples=30, deadline=None)
def test_gather_any_root(nprocs, data):
    root = data.draw(st.integers(min_value=0, max_value=nprocs - 1))

    def fn(ctx):
        out = yield from ctx.comm.gather(("v", ctx.rank), nbytes=16, root=root)
        return out

    res = run_ranks(nprocs, fn)
    assert res.results[root] == [("v", r) for r in range(nprocs)]
    assert all(res.results[r] is None for r in range(nprocs) if r != root)


@given(sizes, st.data())
@settings(max_examples=30, deadline=None)
def test_bcast_any_root_delivers_everywhere(nprocs, data):
    root = data.draw(st.integers(min_value=0, max_value=nprocs - 1))
    payload = data.draw(st.integers())

    def fn(ctx):
        val = payload if ctx.rank == root else None
        got = yield from ctx.comm.bcast(val, nbytes=8, root=root)
        return got

    res = run_ranks(nprocs, fn)
    assert res.results == [payload] * nprocs


@given(sizes)
@settings(max_examples=25, deadline=None)
def test_allreduce_sum_is_exact(nprocs):
    def fn(ctx):
        got = yield from ctx.comm.allreduce(ctx.rank + 1, op=lambda a, b: a + b,
                                            nbytes=8)
        return got

    res = run_ranks(nprocs, fn)
    assert res.results == [nprocs * (nprocs + 1) // 2] * nprocs


@given(sizes, st.data())
@settings(max_examples=25, deadline=None)
def test_split_partitions_exactly(nprocs, data):
    ncolors = data.draw(st.integers(min_value=1, max_value=nprocs))
    colors = data.draw(st.lists(st.integers(min_value=0, max_value=ncolors - 1),
                                min_size=nprocs, max_size=nprocs))

    def fn(ctx):
        sub = yield from ctx.comm.split(colors[ctx.rank])
        members = yield from sub.allgather(ctx.rank, nbytes=8)
        return (sub.rank, sub.size, members)

    res = run_ranks(nprocs, fn)
    for r, (sub_rank, sub_size, members) in enumerate(res.results):
        expect = [x for x in range(nprocs) if colors[x] == colors[r]]
        assert members == expect
        assert sub_size == len(expect)
        assert expect[sub_rank] == r


@given(sizes)
@settings(max_examples=20, deadline=None)
def test_barrier_is_a_true_barrier(nprocs):
    """No rank exits the barrier before the last rank enters it."""
    entered = []

    def fn(ctx):
        yield ctx.env.timeout(float(ctx.rank))
        entered.append(ctx.env.now)
        yield from ctx.comm.barrier()
        return ctx.env.now

    res = run_ranks(nprocs, fn)
    last_entry = max(entered)
    assert all(exit_t >= last_entry for exit_t in res.results)
