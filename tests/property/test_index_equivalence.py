"""Property: all index-aggregation strategies are byte-identical.

Hypothesis generates random seeded write ledgers — the ``(offset,
length, seed)`` triples the checker's scenarios use as ground truth —
executes them through the full PLFS stack, and asserts
:func:`repro.analysis.oracles.check_index_equivalence` holds: original,
parallel, and (when a global.index exists) flattened aggregation all
return exactly :func:`expected_bytes` of the ledger.  The *same*
function runs as the checker's final oracle, so these tests pin down
what a checker violation means.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.oracles import check_index_equivalence, expected_bytes
from repro.pfs.data import PatternData, pattern_bytes
from repro.pfs.volume import Client
from tests.conftest import make_world

MAX_OFF = 32768

# A ledger: sequential writes of one logical file, overlaps allowed
# (expected_bytes applies them in order; a single writer issuing them in
# order gives the simulator the same last-write-wins outcome).
ledgers = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=MAX_OFF),
        st.integers(min_value=1, max_value=6000),
        st.integers(min_value=0, max_value=50),
    ),
    min_size=1,
    max_size=5,
)


def _run_ledger(world, path, ledger):
    client = Client(node=world.cluster.nodes[0], client_id=0)

    def writer(env):
        h = yield from world.mount.open_write(client, path)
        for offset, length, seed in ledger:
            yield from h.write(offset, PatternData(seed, offset, length))
        yield from world.mount.close_write(h)

    world.env.process(writer(world.env), "ledger-writer")
    world.env.run()


@given(ledgers, st.sampled_from(["original", "flatten", "parallel"]))
@settings(max_examples=25, deadline=None)
def test_strategies_match_ledger(ledger, aggregation):
    world = make_world(aggregation=aggregation, index_spill_records=1)
    _run_ledger(world, "/f", ledger)
    size = max(off + length for off, length, _seed in ledger)
    assert check_index_equivalence(world, "/f", size, ledger) == []


def test_two_node_disjoint_writes_match():
    """Multi-writer spot check: disjoint ranges from two nodes."""
    world = make_world(n_nodes=4, aggregation="parallel",
                       index_spill_records=1)
    ledger = [(0, 4096, 1), (4096, 4096, 2)]
    a = Client(node=world.cluster.nodes[0], client_id=0)
    b = Client(node=world.cluster.nodes[1], client_id=1)

    def writer(client, offset, length, seed):
        h = yield from world.mount.open_write(client, "/g")
        yield from h.write(offset, PatternData(seed, offset, length))
        yield from world.mount.close_write(h)

    for client, (off, length, seed) in zip((a, b), ledger):
        world.env.process(writer(client, off, length, seed), "w")
    world.env.run()
    assert check_index_equivalence(world, "/g", 8192, ledger, ranks=2) == []


def test_expected_bytes_applies_ledger_in_order():
    ledger = [(0, 8, 1), (4, 8, 2)]
    got = expected_bytes(16, ledger)
    assert got[:4] == pattern_bytes(1, 0, 8)[:4].tobytes()
    assert got[4:12] == pattern_bytes(2, 4, 8).tobytes()
    assert got[12:] == b"\x00" * 4
