"""Platform-preset sanity: the two testbeds match the paper's specs."""

from repro.cluster import CIELO, LANL64, Cluster, cielo, lanl64
from repro.sim import Engine


class TestPlatformPresets:
    def test_lanl64_matches_section_iv_c(self):
        """'64 nodes each with 16 AMD Opteron cores ... 32GB of memory ...
        10GigE storage network' and the 1.25 GB/s theoretical peak."""
        assert LANL64.n_nodes == 64
        assert LANL64.node.cores == 16
        assert LANL64.total_cores == 1024
        assert LANL64.node.mem_bytes == 32 * (1 << 30)
        assert LANL64.storage_aggregate_bw == 1.25e9

    def test_cielo_matches_section_vi(self):
        """'8894 nodes and 142,304 compute cores'."""
        assert CIELO.n_nodes == 8894
        assert CIELO.total_cores == 142_304
        # Cielo's storage aggregate dwarfs the small cluster's.
        assert CIELO.storage_aggregate_bw > 50 * LANL64.storage_aggregate_bw

    def test_factories_return_the_presets(self):
        assert lanl64() is LANL64
        assert cielo() is CIELO

    def test_cielo_cluster_buildable(self):
        env = Engine()
        c = Cluster(env, CIELO)
        assert len(c.nodes) == 8894
        # 65,536 ranks fit with block placement.
        assert c.nodes_used(65536) == 4096
        assert c.node_for_rank(65535, 65536).id == 4095

    def test_oversubscription_on_lanl64(self):
        """The paper's 2,048-stream runs oversubscribe 1,024 cores 2x."""
        env = Engine()
        c = Cluster(env, LANL64)
        assert c.node_for_rank(1024, 2048).id == 0  # wraps around
        assert c.nodes_used(2048) == 64
