"""Unit tests for nodes, page caches, networks, and cluster assembly."""

import pytest

from repro.cluster import (
    CIELO,
    LANL64,
    Cluster,
    ClusterSpec,
    Interconnect,
    NodeSpec,
    PageCache,
    StorageNetwork,
)
from repro.errors import ConfigError
from repro.sim import Engine
from repro.units import MiB


class TestNodeSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            NodeSpec(cores=0)
        with pytest.raises(ConfigError):
            NodeSpec(mem_bytes=0)
        with pytest.raises(ConfigError):
            NodeSpec(cache_fraction=1.5)


class TestPageCache:
    def test_insert_and_hit(self):
        pc = PageCache(capacity_bytes=10 * MiB, block_size=MiB)
        pc.insert(1, 0, 2 * MiB)
        assert pc.hit_bytes(1, 0, 2 * MiB) == 2 * MiB
        assert pc.hit_bytes(2, 0, MiB) == 0

    def test_partial_block_hit(self):
        pc = PageCache(capacity_bytes=10 * MiB, block_size=MiB)
        pc.insert(1, 0, MiB)
        # Request straddling cached block 0 and uncached block 1.
        assert pc.hit_bytes(1, 512 * 1024, MiB) == 512 * 1024

    def test_full_blocks_only_insert(self):
        pc = PageCache(capacity_bytes=10 * MiB, block_size=MiB)
        pc.insert(1, 0, MiB + 1, full_blocks_only=True)  # covers block 0 only
        assert pc.hit_bytes(1, 0, MiB) == MiB
        assert pc.hit_bytes(1, MiB, MiB) == 0
        pc.insert(2, 100, 100, full_blocks_only=True)  # covers nothing fully
        assert pc.hit_bytes(2, 100, 100) == 0

    def test_lru_eviction(self):
        pc = PageCache(capacity_bytes=3 * MiB, block_size=MiB)
        pc.insert(1, 0, 3 * MiB)           # blocks 0,1,2
        pc.hit_bytes(1, 0, MiB)            # touch block 0 (now MRU)
        pc.insert(1, 3 * MiB, MiB)         # evicts LRU = block 1
        assert pc.hit_bytes(1, 0, MiB) == MiB
        assert pc.hit_bytes(1, MiB, MiB) == 0
        assert pc.evictions == 1

    def test_invalidate_file(self):
        pc = PageCache(capacity_bytes=4 * MiB, block_size=MiB)
        pc.insert(1, 0, MiB)
        pc.insert(2, 0, MiB)
        pc.invalidate_file(1)
        assert pc.hit_bytes(1, 0, MiB) == 0
        assert pc.hit_bytes(2, 0, MiB) == MiB

    def test_zero_capacity_never_caches(self):
        pc = PageCache(capacity_bytes=0)
        pc.insert(1, 0, MiB)
        assert pc.hit_bytes(1, 0, MiB) == 0


class TestNetworks:
    def make(self, n_nodes=4):
        env = Engine()
        cluster = Cluster(env, ClusterSpec(name="t", n_nodes=n_nodes))
        return env, cluster

    def test_interconnect_transfer_time(self):
        env, cluster = self.make()
        ic = cluster.interconnect

        def proc(env):
            yield from ic.transfer(cluster.nodes[0], cluster.nodes[1], 32_000_000)
            return env.now

        t = env.run_process(proc(env))
        assert t == pytest.approx(2e-6 + 32_000_000 / 3.2e9, rel=0.01)

    def test_intra_node_transfer_uses_memory(self):
        env, cluster = self.make()
        ic = cluster.interconnect

        def proc(env):
            yield from ic.transfer(cluster.nodes[0], cluster.nodes[0], 8_000_000)
            return env.now

        t = env.run_process(proc(env))
        assert t == pytest.approx(0.5e-6 + 8_000_000 / 8e9, rel=0.01)

    def test_nic_contention_shares_bandwidth(self):
        env, cluster = self.make()
        ic = cluster.interconnect
        ends = []

        def proc(env, dst):
            yield from ic.transfer(cluster.nodes[0], cluster.nodes[dst], 32_000_000)
            ends.append(env.now)

        env.process(proc(env, 1))
        env.process(proc(env, 2))
        env.run()
        # Two flows share node 0's out-NIC: each takes ~2x the solo time.
        assert all(t == pytest.approx(2 * 32_000_000 / 3.2e9, rel=0.05) for t in ends)

    def test_storage_pipe_is_shared(self):
        env, cluster = self.make()
        sn = cluster.storage_net
        ends = []

        def proc(env, node):
            yield from sn.transfer(cluster.nodes[node], 125_000_000)
            ends.append(env.now)

        env.process(proc(env, 0))
        env.process(proc(env, 1))
        env.run()
        # Aggregate 1.25 GB/s; two concurrent 125 MB flows -> ~0.2s each.
        assert all(t == pytest.approx(0.2, rel=0.05) for t in ends)

    def test_negative_transfer_rejected(self):
        env, cluster = self.make()
        with pytest.raises(ConfigError):
            list(cluster.interconnect.transfer(cluster.nodes[0], cluster.nodes[1], -1))


class TestClusterTopology:
    def test_block_placement(self):
        env = Engine()
        c = Cluster(env, ClusterSpec(name="t", n_nodes=4, node=NodeSpec(cores=4)))
        assert c.node_for_rank(0, 16).id == 0
        assert c.node_for_rank(3, 16).id == 0
        assert c.node_for_rank(4, 16).id == 1
        assert c.node_for_rank(15, 16).id == 3

    def test_oversubscription_wraps(self):
        env = Engine()
        c = Cluster(env, ClusterSpec(name="t", n_nodes=2, node=NodeSpec(cores=2)))
        # 8 ranks on 4 cores: ranks 4..5 wrap to node 0.
        assert c.node_for_rank(4, 8).id == 0
        assert c.nodes_used(8) == 2

    def test_rank_range_checked(self):
        env = Engine()
        c = Cluster(env, ClusterSpec(name="t", n_nodes=2))
        with pytest.raises(ConfigError):
            c.node_for_rank(99, 10)

    def test_presets(self):
        assert LANL64.total_cores == 1024
        assert CIELO.n_nodes == 8894
        assert CIELO.total_cores == 142_304
        env = Engine()
        c = Cluster(env, LANL64)
        assert len(c.nodes) == 64
        assert c.nodes_used(2048) == 64  # oversubscribed, all nodes busy
