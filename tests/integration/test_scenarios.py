"""Integration scenarios across the whole stack.

Each test tells one of the paper's stories end-to-end on a miniature
world, asserting both correctness (bytes) and the performance *ordering*
the paper reports.
"""

import pytest

from repro.mpi import run_job
from repro.mpiio import Hints, MPIFile, PlfsDriver, UfsDriver
from repro.pfs import gpfs, lustre, panfs
from repro.pfs.data import PatternData
from repro.units import KB, MB
from repro.workloads import (
    IOR,
    MPIIOTest,
    direct_stack,
    nn_metadata_storm,
    plfs_stack,
    run_workload,
)
from tests.conftest import make_world


class TestPortability:
    """§III: the transformation wins on all three modeled file systems."""

    @pytest.mark.parametrize("preset", [panfs, lustre, gpfs])
    def test_plfs_beats_direct_n1_writes_everywhere(self, preset):
        wl = MPIIOTest(16, size_per_proc=2 * MB, transfer=47 * KB)
        wd = make_world(pfs_cfg=preset())
        t_direct = run_workload(wd, wl, direct_stack(wd), do_read=False).write.wall_time
        wp = make_world(pfs_cfg=preset())
        t_plfs = run_workload(wp, wl, plfs_stack(wp), do_read=False).write.wall_time
        assert t_plfs < t_direct / 2, preset().name

    @pytest.mark.parametrize("preset", [panfs, lustre, gpfs])
    def test_roundtrip_verifies_everywhere(self, preset):
        wl = MPIIOTest(8, size_per_proc=200 * KB, transfer=25 * KB)
        w = make_world(pfs_cfg=preset())
        res = run_workload(w, wl, plfs_stack(w), verify=True)
        assert res.read.verified


class TestAggregationOrdering:
    """§IV: read-open time ordering — flatten < parallel << original."""

    def test_read_open_ordering_at_scale(self):
        opens = {}
        for agg in ("original", "flatten", "parallel"):
            w = make_world(n_nodes=16, cores=4, aggregation=agg)
            wl = MPIIOTest(64, size_per_proc=2 * MB, transfer=100 * KB)
            res = run_workload(w, wl, plfs_stack(w), cold_read=False)
            opens[agg] = res.read.open_time
        assert opens["flatten"] < opens["parallel"] < opens["original"]

    def test_flatten_costs_at_close(self):
        closes = {}
        for agg in ("flatten", "parallel"):
            w = make_world(n_nodes=16, cores=4, aggregation=agg)
            wl = MPIIOTest(64, size_per_proc=2 * MB, transfer=100 * KB)
            res = run_workload(w, wl, plfs_stack(w), do_read=False)
            closes[agg] = res.write.close_time
        assert closes["flatten"] > closes["parallel"]


class TestWriteReadManyTimes:
    """§IV-A's use case: write once, read many — flatten amortizes."""

    def test_flatten_wins_on_repeated_reads(self):
        def total_read_time(agg, n_reads=4):
            w = make_world(n_nodes=8, cores=4, aggregation=agg)
            wl = MPIIOTest(32, size_per_proc=1 * MB, transfer=50 * KB)
            run_workload(w, wl, plfs_stack(w), do_read=False)
            total = 0.0
            for _ in range(n_reads):
                w.drop_caches()
                r = run_workload(w, wl, plfs_stack(w), do_write=False)
                total += r.read.open_time
            return total

        assert total_read_time("flatten") < total_read_time("original")


class TestMixedStacks:
    def test_plfs_file_invisible_to_direct_reader_as_flat_file(self):
        """A PLFS logical file is physically a directory on the backing FS —
        the 'preserving the user's view' is middleware magic, not storage."""
        w = make_world()

        def writer(ctx):
            fh = yield from w.mount.open_write(ctx.client, "/f", ctx.comm)
            yield from fh.write(0, PatternData(1, 0, 10 * KB))
            yield from w.mount.close_write(fh, ctx.comm)

        run_job(w.env, w.cluster, 2, writer)
        node = w.volume.ns.resolve("/f")
        assert node.is_dir  # the container, not a flat file

    def test_same_api_both_drivers(self):
        """The MPIFile facade is driver-transparent, like real ADIO."""
        for make_driver in (lambda w: UfsDriver(w.volume),
                            lambda w: PlfsDriver(w.mount)):
            w = make_world()

            def fn(ctx, mk=make_driver):
                f = yield from MPIFile.open(ctx, "/f", "w", mk(w), Hints())
                yield from f.write_at(ctx.rank * KB, PatternData(ctx.rank, 0, KB))
                yield from f.close()
                g = yield from MPIFile.open(ctx, "/f", "r", mk(w))
                view = yield from g.read_at(ctx.rank * KB, KB)
                yield from g.close()
                return view.content_equal(PatternData(ctx.rank, 0, KB))

            assert all(run_job(w.env, w.cluster, 4, fn).results)


class TestMetadataStoryline:
    def test_federation_recovers_plfs_metadata_deficit(self):
        """PLFS-1 loses the create storm; PLFS-6 federated wins (Fig 7a)."""
        wl_args = dict(nprocs=32, files_per_proc=4)
        direct = nn_metadata_storm(make_world(), stack="direct", **wl_args)
        plfs1 = nn_metadata_storm(make_world(), stack="plfs", **wl_args)
        plfs6 = nn_metadata_storm(
            make_world(n_volumes=6, federation="container"), stack="plfs", **wl_args)
        assert plfs1.open_time > direct.open_time > plfs6.open_time

    def test_ior_with_both_stacks_matches_bytes(self):
        """IOR write+read through PLFS and direct yield identical content."""
        wl = IOR(8, size_per_proc=300 * KB, transfer=100 * KB)
        for stack_fn in (direct_stack, plfs_stack):
            w = make_world()
            res = run_workload(w, wl, stack_fn(w), verify=True)
            assert res.read.verified
