"""Crash-window consistency: what exactly survives a writer's death.

The spill/crash machinery (tests/plfs/test_tools.py) checks the tooling;
these tests pin the *reader-visible* guarantees across crash timing, the
property the paper's checkpointing use case ultimately rests on: a
restart never reads garbage — it reads a consistent prefix of each
writer's indexed history.
"""

import pytest

from repro.mpi import run_job
from repro.pfs.data import PatternData
from tests.conftest import make_world

KB = 1000


def run_crashy_write(world, nprocs, records, crash_after, crash_ranks):
    """Each rank writes `records` strided records; crashers abandon after
    `crash_after` writes."""

    def fn(ctx):
        fh = yield from world.mount.open_write(ctx.client, "/f", ctx.comm)
        for i in range(records):
            off = ctx.rank * 10 * KB + i * ctx.nprocs * 10 * KB
            yield from fh.write(off, PatternData(ctx.rank, i * 10 * KB, 10 * KB))
            if ctx.rank in crash_ranks and i + 1 == crash_after:
                fh.abandon()
                return "crashed"
        yield from world.mount.close_write(fh, ctx.comm)
        return "closed"

    return run_job(world.env, world.cluster, nprocs, fn)


def read_record(world, rank, i, nprocs, base=9000):
    def fn(ctx):
        fh = yield from world.mount.open_read(ctx.client, "/f", ctx.comm)
        off = rank * 10 * KB + i * nprocs * 10 * KB
        view = yield from fh.read(off, 10 * KB)
        yield from fh.close()
        if view.length == 0:
            return "missing"
        if view.content_equal(PatternData(rank, i * 10 * KB, 10 * KB)):
            return "intact"
        if not view.materialize().any():
            return "hole"
        return "corrupt"

    return run_job(world.env, world.cluster, 1, fn, client_id_base=base).results[0]


class TestCrashConsistency:
    def test_spilled_prefix_survives_unspilled_tail_reads_as_hole(self):
        w = make_world(index_spill_records=2)
        res = run_crashy_write(w, nprocs=4, records=5, crash_after=4,
                               crash_ranks=(1,))
        assert res.results[1] == "crashed"
        # Records 0,1 were spilled (spill every 2 -> after record 2 and 4:
        # records 0-3 spilled); record 4 never written by rank 1.
        for i in (0, 1, 2, 3):
            assert read_record(w, 1, i, 4, base=9000 + i) == "intact"
        # The 5th record: rank 1 crashed before writing it at all.
        assert read_record(w, 1, 4, 4, base=9100) in ("hole", "missing")
        # Never corrupt:
        for i in range(5):
            assert read_record(w, 0, i, 4, base=9200 + i) == "intact"

    def test_crash_before_any_spill_loses_everything_cleanly(self):
        w = make_world(index_spill_records=0)
        run_crashy_write(w, nprocs=4, records=3, crash_after=2, crash_ranks=(2,))
        # All of rank 2's records unreachable; resolved as holes, not garbage.
        for i in (0, 1):
            assert read_record(w, 2, i, 4, base=9300 + i) in ("hole", "missing")
        # Survivors fully intact.
        for i in range(3):
            assert read_record(w, 3, i, 4, base=9400 + i) == "intact"

    def test_multiple_crashers(self):
        w = make_world(index_spill_records=1)  # spill every record
        res = run_crashy_write(w, nprocs=6, records=4, crash_after=3,
                               crash_ranks=(0, 5))
        assert res.results[0] == res.results[5] == "crashed"
        # Every record either side of the crash boundary is intact (spill=1
        # means all *written* records were indexed durably).
        for rank in (0, 5):
            for i in range(3):
                assert read_record(w, rank, i, 6, base=9500 + rank * 10 + i) == "intact"
            assert read_record(w, rank, 3, 6, base=9600 + rank) in ("hole", "missing")
