"""Cross-job concurrency: multiple jobs sharing one platform at once."""

import pytest

from repro.mpi import Communicator, run_job
from repro.pfs.data import PatternData
from repro.sim import PhaseClock
from tests.conftest import make_world

KB = 1000
MB = 1000 * KB


def spawn_job(world, nprocs, fn, base):
    """Launch a job's rank processes WITHOUT running the engine."""
    from repro.pfs.volume import Client

    nodes = [world.cluster.node_for_rank(r, nprocs) for r in range(nprocs)]
    shared = Communicator(world.env, world.cluster.interconnect, nodes)
    procs = []
    for r in range(nprocs):
        ctx = type("Ctx", (), {})()
        ctx.rank, ctx.nprocs = r, nprocs
        ctx.comm = shared.view(r)
        ctx.client = Client(node=nodes[r], client_id=base + r)
        ctx.env = world.env
        procs.append(world.env.process(fn(ctx)))
    return procs


class TestConcurrentJobs:
    def test_two_n1_jobs_share_bandwidth(self):
        """Two simultaneous checkpoint jobs each finish slower than solo."""
        def make_writer(world, path):
            def fn(ctx):
                fh = yield from world.mount.open_write(ctx.client, path, ctx.comm)
                # Enough data that the storage pipe, not metadata, dominates.
                yield from fh.write(ctx.rank * 8 * MB,
                                    PatternData(ctx.rank, 0, 8 * MB))
                yield from world.mount.close_write(fh, ctx.comm)
                return ctx.env.now

            return fn

        solo_world = make_world(n_nodes=8, cores=4, aggregation="parallel")
        solo = run_job(solo_world.env, solo_world.cluster, 8,
                       make_writer(solo_world, "/a")).duration

        world = make_world(n_nodes=8, cores=4, aggregation="parallel")
        pa = spawn_job(world, 8, make_writer(world, "/a"), 0)
        pb = spawn_job(world, 8, make_writer(world, "/b"), 100)
        world.env.run()
        t_shared = max(p.value for p in pa + pb)
        assert t_shared > solo * 1.4  # they contended for the same pipe
        # Both files intact.
        for path, base in (("/a", 0), ("/b", 100)):
            layout = world.mount.layout(path)
            assert layout.exists()

    def test_reader_job_overlapping_writer_job_different_files(self):
        """A restart of yesterday's checkpoint overlaps today's write."""
        world = make_world(n_nodes=8, cores=4, aggregation="parallel")

        def writer(path, seed):
            def fn(ctx):
                fh = yield from world.mount.open_write(ctx.client, path, ctx.comm)
                yield from fh.write(ctx.rank * 256 * KB,
                                    PatternData(seed + ctx.rank, 0, 256 * KB))
                yield from world.mount.close_write(fh, ctx.comm)

            return fn

        run_job(world.env, world.cluster, 8, writer("/old", 100))
        world.drop_caches()

        def reader(ctx):
            fh = yield from world.mount.open_read(ctx.client, "/old", ctx.comm)
            view = yield from fh.read(ctx.rank * 256 * KB, 256 * KB)
            yield from fh.close()
            return view.content_equal(PatternData(100 + ctx.rank, 0, 256 * KB))

        readers = spawn_job(world, 8, reader, 500)
        writers = spawn_job(world, 8, writer("/new", 200), 600)
        world.env.run()
        assert all(p.value for p in readers)
        assert all(p.triggered for p in writers)

    def test_metadata_storm_during_data_job(self):
        """An N-N create storm and a bulk write coexist without deadlock."""
        world = make_world(n_nodes=8, cores=4)

        def storm(ctx):
            for i in range(5):
                fh = yield from world.mount.open_write(
                    ctx.client, f"/meta.{ctx.client.client_id}.{i}", None)
                yield from world.mount.close_write(fh, None)
            return True

        def bulk(ctx):
            fh = yield from world.volume.open(ctx.client, f"/bulk.{ctx.rank}",
                                              "w", create=True)
            yield from fh.write(0, PatternData(ctx.rank, 0, 2 * MB))
            yield from fh.close()
            return True

        a = spawn_job(world, 8, storm, 0)
        b = spawn_job(world, 8, bulk, 100)
        world.env.run()
        assert all(p.value for p in a + b)
