"""Shared test fixtures: simulated worlds wired the way experiments use them."""

import pytest

from repro.harness.setup import World, build_world

# Re-exported for test modules that import from here.
make_world = build_world

__all__ = ["World", "make_world", "world"]


@pytest.fixture
def world() -> World:
    return build_world()
