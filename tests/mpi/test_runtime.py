"""Unit tests for the job launcher and rank contexts."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.errors import ConfigError, DeadlockError
from repro.mpi import run_job
from repro.sim import Engine


def make(n_nodes=4, cores=4):
    env = Engine()
    return env, Cluster(env, ClusterSpec(name="t", n_nodes=n_nodes,
                                         node=NodeSpec(cores=cores)))


class TestRunJob:
    def test_results_in_rank_order(self):
        env, cluster = make()

        def fn(ctx):
            yield ctx.env.timeout((ctx.nprocs - ctx.rank) * 0.1)  # reverse finish
            return ctx.rank

        res = run_job(env, cluster, 8, fn)
        assert res.results == list(range(8))

    def test_context_fields(self):
        env, cluster = make()

        def fn(ctx):
            yield ctx.env.timeout(0)
            return (ctx.rank, ctx.nprocs, ctx.comm.size, ctx.client.client_id,
                    ctx.node.id)

        res = run_job(env, cluster, 6, fn, client_id_base=100)
        for r, (rank, nprocs, size, cid, node_id) in enumerate(res.results):
            assert rank == r and nprocs == 6 and size == 6
            assert cid == 100 + r
            assert node_id == cluster.node_for_rank(r, 6).id

    def test_metrics_from_phases(self):
        env, cluster = make()

        def fn(ctx):
            ctx.start("open")
            yield ctx.env.timeout(1.0 + ctx.rank)
            ctx.stop("open")

        res = run_job(env, cluster, 4, fn, bytes_total=400)
        assert res.metrics.phase_max["open"] == pytest.approx(4.0)
        assert res.metrics.phase_mean["open"] == pytest.approx(2.5)
        assert res.metrics.bytes_total == 400
        assert res.duration == pytest.approx(4.0)

    def test_zero_ranks_rejected(self):
        env, cluster = make()
        with pytest.raises(ConfigError):
            run_job(env, cluster, 0, lambda ctx: None)

    def test_stuck_rank_reports_deadlock(self):
        env, cluster = make()

        def fn(ctx):
            if ctx.rank == 3:
                yield ctx.env.event()  # never fires
            else:
                yield ctx.env.timeout(1)

        with pytest.raises(DeadlockError, match="r3"):
            run_job(env, cluster, 4, fn)

    def test_mismatched_collective_deadlocks(self):
        env, cluster = make()

        def fn(ctx):
            if ctx.rank != 0:
                yield from ctx.comm.barrier()  # rank 0 never joins
            else:
                yield ctx.env.timeout(0)

        with pytest.raises(DeadlockError):
            run_job(env, cluster, 4, fn)

    def test_deadlock_report_names_blocked_ranks_and_their_waits(self):
        """The error must say *who* is stuck and *on what* — a fault plan
        that wedges a job has to be diagnosable from the message alone."""
        env, cluster = make()

        def fn(ctx):
            if ctx.rank == 0:
                yield ctx.env.timeout(0)
            else:
                yield from ctx.comm.barrier()  # rank 0 never joins

        with pytest.raises(DeadlockError) as exc:
            run_job(env, cluster, 3, fn, name="stuck-job")
        msg = str(exc.value)
        assert "stuck-job" in msg
        assert "2 of 3 ranks" in msg
        # One line per blocked rank, each naming what it waits on.
        assert "r1" in msg and "r2" in msg
        assert "waiting on" in msg

    def test_sequential_jobs_share_the_engine_clock(self):
        env, cluster = make()

        def fn(ctx):
            yield ctx.env.timeout(5)
            return ctx.env.now

        run_job(env, cluster, 2, fn)
        second = run_job(env, cluster, 2, fn)
        assert second.start_time == pytest.approx(5.0)
        assert second.results == [10.0, 10.0]

    def test_rank_exception_propagates(self):
        env, cluster = make()

        def fn(ctx):
            yield ctx.env.timeout(0)
            if ctx.rank == 1:
                raise RuntimeError("rank blew up")

        with pytest.raises(RuntimeError, match="blew up"):
            run_job(env, cluster, 2, fn)
