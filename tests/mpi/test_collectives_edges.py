"""Edge cases of the collective implementations the REP1xx analyzer (and
its runtime trace validator) reason about: split sub-communicators,
nonzero-root vrank rotation, and zero-byte payloads."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.mpi import run_job
from repro.mpi.trace import attach_tracer, validate_tracer
from repro.sim import Engine


def run_ranks(nprocs, fn, n_nodes=4, cores=4, tracer=False):
    env = Engine()
    cluster = Cluster(env, ClusterSpec(name="t", n_nodes=n_nodes,
                                       node=NodeSpec(cores=cores)))
    t = attach_tracer(env, strict=True) if tracer else None
    result = run_job(env, cluster, nprocs, fn)
    return env, result, t


class TestSplitSubCommunicators:
    @pytest.mark.parametrize("nprocs,ngroups", [(4, 2), (9, 3), (12, 4)])
    def test_nested_collectives_stay_within_color(self, nprocs, ngroups):
        def fn(ctx):
            color = ctx.rank % ngroups
            sub = yield from ctx.comm.split(color)
            local = yield from sub.allreduce(ctx.rank, op=lambda a, b: a + b,
                                             nbytes=8)
            total = yield from ctx.comm.allreduce(local, op=max, nbytes=8)
            return (local, total)

        _, res, _ = run_ranks(nprocs, fn)
        sums = {c: sum(x for x in range(nprocs) if x % ngroups == c)
                for c in range(ngroups)}
        for r, (local, total) in enumerate(res.results):
            assert local == sums[r % ngroups]
            assert total == max(sums.values())

    def test_split_of_split(self):
        def fn(ctx):
            half = yield from ctx.comm.split(ctx.rank // 4)
            quarter = yield from half.split(half.rank // 2)
            members = yield from quarter.allgather(ctx.rank, nbytes=8)
            return members

        _, res, _ = run_ranks(8, fn)
        assert res.results == [[0, 1]] * 2 + [[2, 3]] * 2 \
            + [[4, 5]] * 2 + [[6, 7]] * 2

    def test_sub_communicator_names_are_unique(self):
        # Two same-color splits at different points must not alias (the
        # tracer keys per-communicator traces and validates each).
        def fn(ctx):
            a = yield from ctx.comm.split(0)
            yield from a.barrier()
            b = yield from ctx.comm.split(0)
            yield from b.barrier()
            return (a._shared.name, b._shared.name)

        _, res, _ = run_ranks(2, fn)
        name_a, name_b = res.results[0]
        assert name_a != name_b

    def test_traces_recorded_per_sub_communicator(self):
        def fn(ctx):
            sub = yield from ctx.comm.split(ctx.rank % 2)
            yield from sub.gather(ctx.rank, nbytes=8, root=0)
            yield from ctx.comm.barrier()
            return None

        _, _, tracer = run_ranks(4, fn, tracer=True)
        traces = {c.name: tracer.trace_of(c) for c in tracer.comms()}
        # world: split then barrier on every rank; each sub-comm: one
        # gather from each of its two members.
        world = [t for n, t in traces.items() if "/" not in n]
        subs = [t for n, t in traces.items() if "/" in n]
        assert len(world) == 1 and len(subs) == 2
        for by_rank in world:
            assert all(seq == [("split", None), ("barrier", None)]
                       for seq in by_rank.values())
        for by_rank in subs:
            assert sorted(by_rank) == [0, 1]
            assert all(seq == [("gather", 0)] for seq in by_rank.values())
        assert validate_tracer(tracer) == []


class TestNonzeroRootVrankMapping:
    @pytest.mark.parametrize("nprocs", [2, 3, 5, 8])
    @pytest.mark.parametrize("which", ["gather", "bcast"])
    def test_every_root_is_equivalent(self, nprocs, which):
        # The binomial tree runs on vranks (rank rotated by root); any
        # root must produce the same logical result.
        for root in range(nprocs):
            def fn(ctx, _root=root):
                if which == "gather":
                    out = yield from ctx.comm.gather(ctx.rank, nbytes=8,
                                                     root=_root)
                    return out
                val = "hdr" if ctx.rank == _root else None
                out = yield from ctx.comm.bcast(val, nbytes=8, root=_root)
                return out

            _, res, _ = run_ranks(nprocs, fn)
            if which == "gather":
                assert res.results[root] == list(range(nprocs))
                assert all(r is None for i, r in enumerate(res.results)
                           if i != root)
            else:
                assert res.results == ["hdr"] * nprocs

    def test_nonzero_root_trace_records_actual_root(self):
        def fn(ctx):
            yield from ctx.comm.gather(ctx.rank, nbytes=8, root=2)
            val = ctx.rank if ctx.rank == 1 else None
            yield from ctx.comm.bcast(val, nbytes=8, root=1)
            return None

        _, _, tracer = run_ranks(4, fn, tracer=True)
        (shared,) = tracer.comms()
        by_rank = tracer.trace_of(shared)
        assert all(seq == [("gather", 2), ("bcast", 1)]
                   for seq in by_rank.values())
        assert validate_tracer(tracer) == []


class TestZeroByteCollectives:
    def test_zero_byte_gather_and_bcast_carry_values(self):
        # nbytes=0 messages still deliver payloads and synchronize; the
        # paper's metadata collectives are often tiny.
        def fn(ctx):
            got = yield from ctx.comm.bcast(
                "m" if ctx.rank == 0 else None, nbytes=0, root=0)
            out = yield from ctx.comm.gather(got + str(ctx.rank), nbytes=0,
                                             root=0)
            return out

        _, res, _ = run_ranks(4, fn)
        assert res.results[0] == ["m0", "m1", "m2", "m3"]

    def test_zero_byte_collectives_take_latency_only(self):
        def fn(ctx):
            yield from ctx.comm.allgather(ctx.rank, nbytes=0)
            return ctx.env.now

        env, res, _ = run_ranks(8, fn, cores=1)
        assert env.now > 0          # still pays per-message latency
        assert env.now < 1e-3       # but transfers no bandwidth time

    def test_zero_byte_alltoall(self):
        def fn(ctx):
            vals = [ctx.rank * 10 + dst for dst in range(ctx.nprocs)]
            got = yield from ctx.comm.alltoall(vals, nbytes_each=0)
            return got

        _, res, _ = run_ranks(4, fn)
        for r, got in enumerate(res.results):
            assert got == [src * 10 + r for src in range(4)]


class TestTracerGranularity:
    def test_composites_record_once(self):
        # barrier/allgather/allreduce are built from gather+bcast
        # internally; the trace must show the *caller-level* collective
        # only, matching the static analyzer's event model.
        def fn(ctx):
            yield from ctx.comm.barrier()
            yield from ctx.comm.allgather(ctx.rank, nbytes=8)
            yield from ctx.comm.allreduce(ctx.rank, op=max, nbytes=8)
            return None

        _, _, tracer = run_ranks(4, fn, tracer=True)
        (shared,) = tracer.comms()
        by_rank = tracer.trace_of(shared)
        assert all(seq == [("barrier", None), ("allgather", None),
                           ("allreduce", None)]
                   for seq in by_rank.values())
