"""Unit tests for the simulated MPI layer (p2p + collectives)."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.errors import MPIError
from repro.mpi import Communicator, run_job
from repro.sim import Engine


def make_cluster(env, n_nodes=4, cores=4):
    return Cluster(env, ClusterSpec(name="t", n_nodes=n_nodes, node=NodeSpec(cores=cores)))


def run_ranks(nprocs, fn, n_nodes=4, cores=4):
    env = Engine()
    cluster = make_cluster(env, n_nodes, cores)
    result = run_job(env, cluster, nprocs, fn)
    return env, result


class TestPointToPoint:
    def test_send_recv(self):
        def fn(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, {"x": 42}, nbytes=100)
                return "sent"
            elif ctx.rank == 1:
                msg = yield from ctx.comm.recv(0)
                return msg["x"]
            return None

        _, res = run_ranks(2, fn)
        assert res.results == ["sent", 42]

    def test_messages_take_time(self):
        def fn(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, b"", nbytes=10_000_000)
            elif ctx.rank == 1:
                yield from ctx.comm.recv(0)
            return ctx.env.now

        env, res = run_ranks(8, fn)  # ranks 0 and 1 land on different... same node
        assert env.now > 0

    def test_cross_node_slower_than_none(self):
        """A 100 MB message at ~3.2 GB/s NIC takes ~31 ms."""
        def fn(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, None, nbytes=100_000_000)
            elif ctx.rank == 1:
                yield from ctx.comm.recv(0)
            return ctx.env.now

        env, _ = run_ranks(2, fn, cores=1)  # force different nodes
        assert env.now == pytest.approx(100_000_064 / 3.2e9 + 2e-6, rel=0.05)

    def test_tag_matching(self):
        def fn(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(1, "b-first", nbytes=0, tag="b")
                yield from ctx.comm.send(1, "a-second", nbytes=0, tag="a")
            elif ctx.rank == 1:
                a = yield from ctx.comm.recv(0, tag="a")
                b = yield from ctx.comm.recv(0, tag="b")
                return (a, b)
            return None

        _, res = run_ranks(2, fn)
        assert res.results[1] == ("a-second", "b-first")

    def test_fifo_per_source(self):
        def fn(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    yield from ctx.comm.send(1, i, nbytes=0)
            elif ctx.rank == 1:
                got = []
                for _ in range(5):
                    got.append((yield from ctx.comm.recv(0)))
                return got
            return None

        _, res = run_ranks(2, fn)
        assert res.results[1] == [0, 1, 2, 3, 4]

    def test_bad_rank_rejected(self):
        def fn(ctx):
            with pytest.raises(MPIError):
                yield from ctx.comm.send(99, None)
            with pytest.raises(MPIError):
                yield from ctx.comm.recv(-1)
            return "ok"
            yield  # pragma: no cover

        _, res = run_ranks(1, fn)
        assert res.results == ["ok"]


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 7, 8, 16, 33])
class TestCollectives:
    def test_gather(self, nprocs):
        def fn(ctx):
            out = yield from ctx.comm.gather(ctx.rank * 10, nbytes=8, root=0)
            return out

        _, res = run_ranks(nprocs, fn)
        assert res.results[0] == [r * 10 for r in range(nprocs)]
        assert all(r is None for r in res.results[1:])

    def test_gather_nonzero_root(self, nprocs):
        root = nprocs - 1

        def fn(ctx):
            out = yield from ctx.comm.gather(ctx.rank, nbytes=8, root=root)
            return out

        _, res = run_ranks(nprocs, fn)
        assert res.results[root] == list(range(nprocs))

    def test_bcast(self, nprocs):
        def fn(ctx):
            val = "payload" if ctx.rank == 0 else None
            got = yield from ctx.comm.bcast(val, nbytes=64, root=0)
            return got

        _, res = run_ranks(nprocs, fn)
        assert res.results == ["payload"] * nprocs

    def test_bcast_nonzero_root(self, nprocs):
        root = nprocs // 2

        def fn(ctx):
            val = ctx.rank if ctx.rank == root else None
            got = yield from ctx.comm.bcast(val, nbytes=8, root=root)
            return got

        _, res = run_ranks(nprocs, fn)
        assert res.results == [root] * nprocs

    def test_allgather(self, nprocs):
        def fn(ctx):
            got = yield from ctx.comm.allgather(ctx.rank ** 2, nbytes=8)
            return got

        _, res = run_ranks(nprocs, fn)
        expect = [r ** 2 for r in range(nprocs)]
        assert res.results == [expect] * nprocs

    def test_reduce(self, nprocs):
        def fn(ctx):
            got = yield from ctx.comm.reduce(ctx.rank + 1, op=lambda a, b: a + b,
                                             nbytes=8, root=0)
            return got

        _, res = run_ranks(nprocs, fn)
        assert res.results[0] == nprocs * (nprocs + 1) // 2

    def test_allreduce(self, nprocs):
        def fn(ctx):
            got = yield from ctx.comm.allreduce(ctx.rank, op=max, nbytes=8)
            return got

        _, res = run_ranks(nprocs, fn)
        assert res.results == [nprocs - 1] * nprocs

    def test_barrier_synchronizes(self, nprocs):
        def fn(ctx):
            yield ctx.env.timeout(float(ctx.rank))  # stagger arrivals
            yield from ctx.comm.barrier()
            return ctx.env.now

        _, res = run_ranks(nprocs, fn)
        assert min(res.results) >= nprocs - 1

    def test_scatter(self, nprocs):
        def fn(ctx):
            values = [f"item{r}" for r in range(nprocs)] if ctx.rank == 0 else None
            got = yield from ctx.comm.scatter(values, nbytes_each=16, root=0)
            return got

        _, res = run_ranks(nprocs, fn)
        assert res.results == [f"item{r}" for r in range(nprocs)]


class TestAlltoallAndSplit:
    @pytest.mark.parametrize("nprocs", [2, 4, 5, 8])
    def test_alltoall(self, nprocs):
        def fn(ctx):
            vals = [(ctx.rank, dst) for dst in range(nprocs)]
            got = yield from ctx.comm.alltoall(vals, nbytes_each=16)
            return got

        _, res = run_ranks(nprocs, fn)
        for r, got in enumerate(res.results):
            assert got == [(src, r) for src in range(nprocs)]

    @pytest.mark.parametrize("nprocs,ngroups", [(8, 2), (9, 3), (16, 4), (7, 3)])
    def test_split_groups(self, nprocs, ngroups):
        def fn(ctx):
            color = ctx.rank % ngroups
            sub = yield from ctx.comm.split(color)
            got = yield from sub.allgather(ctx.rank, nbytes=8)
            return (color, sub.rank, sub.size, got)

        _, res = run_ranks(nprocs, fn)
        for r, (color, sub_rank, sub_size, got) in enumerate(res.results):
            members = [x for x in range(nprocs) if x % ngroups == color]
            assert sub_size == len(members)
            assert got == members
            assert members[sub_rank] == r

    def test_split_sub_collectives_are_independent(self):
        def fn(ctx):
            sub = yield from ctx.comm.split(ctx.rank // 4)
            total = yield from sub.allreduce(ctx.rank, op=lambda a, b: a + b, nbytes=8)
            return total

        _, res = run_ranks(8, fn)
        assert res.results == [0 + 1 + 2 + 3] * 4 + [4 + 5 + 6 + 7] * 4


class TestScaling:
    def test_large_bcast_completes(self):
        """512-rank broadcast finishes in O(log N) message latencies."""
        def fn(ctx):
            got = yield from ctx.comm.bcast("x" if ctx.rank == 0 else None,
                                            nbytes=1000, root=0)
            return got

        env, res = run_ranks(512, fn, n_nodes=32, cores=16)
        assert all(r == "x" for r in res.results)
        assert env.now < 0.01  # logarithmic depth, microsecond latencies


class TestNonBlocking:
    def test_isend_irecv_overlap_compute(self):
        """Communication runs while the ranks 'compute' (timeout)."""
        def fn(ctx):
            if ctx.rank == 0:
                req = ctx.comm.isend(1, "bulk", nbytes=320_000_000)  # ~100ms
                yield ctx.env.timeout(0.1)  # compute concurrently
                yield req
                return ctx.env.now
            elif ctx.rank == 1:
                req = ctx.comm.irecv(0)
                yield ctx.env.timeout(0.1)
                msg = yield req
                assert msg == "bulk"
                return ctx.env.now
            return None

        env, res = run_ranks(2, fn, cores=1)
        # Overlapped: total ~= max(compute, transfer), not their sum.
        transfer = 320_000_064 / 3.2e9
        assert res.results[0] == pytest.approx(max(0.1, transfer), rel=0.1)

    def test_irecv_before_matching_send(self):
        def fn(ctx):
            if ctx.rank == 1:
                req = ctx.comm.irecv(0, tag="x")
                yield ctx.env.timeout(1.0)
                got = yield req
                return got
            yield ctx.env.timeout(2.0)
            yield from ctx.comm.send(1, "late", tag="x")
            return None

        _, res = run_ranks(2, fn)
        assert res.results[1] == "late"
