"""FaultPlan: seeded schedules must replay bit-identically everywhere."""

import os
import subprocess
import sys

import pytest

from repro.errors import ConfigError
from repro.faults.plan import (COMPONENT_KINDS, FAULT_KINDS, FailureClock,
                               FaultEvent, FaultPlan)


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(1.0, "meteor_strike")

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent(-1.0, "osd_outage")
        with pytest.raises(ConfigError):
            FaultEvent(1.0, "osd_outage", duration=-0.5)
        with pytest.raises(ConfigError):
            FaultEvent(1.0, "osd_outage", target=-1)

    def test_component_kinds_subset(self):
        assert COMPONENT_KINDS < FAULT_KINDS
        assert "writer_kill" in FAULT_KINDS - COMPONENT_KINDS


class TestPlanViews:
    def test_events_sorted_and_immutable(self):
        plan = FaultPlan([FaultEvent(5.0, "mds_crash"),
                          FaultEvent(1.0, "osd_outage")], seed=7)
        assert [ev.time for ev in plan.events] == [1.0, 5.0]
        assert len(plan) == 2

    def test_of_kind_and_component_split(self):
        plan = FaultPlan([FaultEvent(1.0, "osd_outage"),
                          FaultEvent(2.0, "writer_kill", target=3),
                          FaultEvent(3.0, "compute_kill")], seed=0)
        assert len(plan.of_kind("osd_outage")) == 1
        assert len(plan.component_events) == 1
        assert plan.component_events[0].kind == "osd_outage"

    def test_writer_kills_first_per_rank_wins(self):
        plan = FaultPlan([FaultEvent(2.0, "writer_kill", target=1, magnitude=9),
                          FaultEvent(1.0, "writer_kill", target=1, magnitude=4),
                          FaultEvent(1.5, "writer_kill", target=2)], seed=0)
        kills = plan.writer_kills()
        assert set(kills) == {1, 2}
        assert kills[1].magnitude == 4  # the earlier kill


class TestGeneration:
    def test_same_seed_same_schedule(self):
        kw = dict(horizon=100.0, mtbf=10.0,
                  kinds=["osd_outage", "mds_crash"], n_osds=8, n_ranks=16)
        a = FaultPlan.generate(42, **kw)
        b = FaultPlan.generate(42, **kw)
        assert a.events == b.events
        assert a.signature() == b.signature()
        assert len(a) > 0

    def test_different_seed_different_schedule(self):
        kw = dict(horizon=200.0, mtbf=10.0, kinds=["osd_outage"], n_osds=8)
        assert (FaultPlan.generate(1, **kw).signature()
                != FaultPlan.generate(2, **kw).signature())

    def test_kind_substreams_independent(self):
        """Adding a kind to the mix never perturbs the others' schedules."""
        solo = FaultPlan.generate(9, horizon=300.0, mtbf=20.0,
                                  kinds=["osd_outage"], n_osds=4)
        mixed = FaultPlan.generate(9, horizon=300.0, mtbf=20.0,
                                   kinds=["osd_outage", "net_jitter"], n_osds=4)
        assert mixed.of_kind("osd_outage") == solo.events

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.generate(0, horizon=0.0, mtbf=1.0)
        with pytest.raises(ConfigError):
            FaultPlan.generate(0, horizon=1.0, mtbf=1.0, kinds=["nope"])

    def test_signature_stable_across_processes(self):
        """Substreams use crc32, not salted hash(): a --jobs worker process
        must derive the identical schedule from the same seed."""
        code = ("from repro.faults.plan import FaultPlan; "
                "print(FaultPlan.generate(42, horizon=100.0, mtbf=10.0, "
                "kinds=['osd_outage','mds_crash'], n_osds=8).signature(), "
                "float(FaultPlan((), seed=42).rng('retry-jitter').random()))")
        env = dict(os.environ, PYTHONPATH="src", PYTHONHASHSEED="12345")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True,
                             cwd=os.path.join(os.path.dirname(__file__), "..", ".."))
        sig, draw = out.stdout.split()
        here = FaultPlan.generate(42, horizon=100.0, mtbf=10.0,
                                  kinds=["osd_outage", "mds_crash"], n_osds=8)
        assert sig == here.signature()
        assert float(draw) == float(FaultPlan((), seed=42).rng("retry-jitter").random())


class TestFailureClock:
    def test_explicit_kills_fire_first_then_renewal(self):
        plan = FaultPlan([FaultEvent(5.0, "compute_kill"),
                          FaultEvent(2.0, "compute_kill")], seed=3)
        clock = plan.failure_clock(mtbf=100.0)
        assert clock.next_failure(0.0) == 2.0
        assert clock.next_failure(2.0) == 5.0
        t = clock.next_failure(5.0)
        assert t > 5.0  # renewal process takes over

    def test_no_mtbf_means_no_failures(self):
        clock = FaultPlan((), seed=0).failure_clock(None)
        assert clock.next_failure(0.0) == float("inf")

    def test_renewal_deterministic_per_seed(self):
        a = FaultPlan((), seed=11).failure_clock(50.0)
        b = FaultPlan((), seed=11).failure_clock(50.0)
        ta = [a.next_failure(i * 10.0) for i in range(5)]
        tb = [b.next_failure(i * 10.0) for i in range(5)]
        assert ta == tb
