"""FaultInjector: plans compile onto the world's degraded-mode hooks."""

import pytest

from repro.errors import (ConfigError, MDSUnavailable, NetworkPartitioned,
                          StorageUnavailable)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from tests.conftest import make_world


def probe_at(world, times, fn):
    """Run *fn* at each simulated time in *times*; returns collected values."""
    env = world.env
    out = []

    def proc():
        last = 0.0
        for t in times:
            yield env.timeout(t - last)
            last = t
            out.append(fn())

    env.run_process(proc())
    return out


class TestCompile:
    def test_osd_outage_downs_then_restores(self):
        w = make_world()
        plan = FaultPlan([FaultEvent(1.0, "osd_outage", target=0, duration=2.0)],
                         seed=0)
        inj = FaultInjector(w, plan)
        assert inj.arm() == 1
        osd = w.volume.pool.osds[0]
        down = probe_at(w, [0.5, 1.5, 3.5], lambda: osd.down)
        assert down == [False, True, False]
        assert [phase for _, _, phase in inj.applied] == ["apply", "recover"]
        assert all(label == "osd_outage:osd0" for _, label, _ in inj.applied)

    def test_down_osd_rejects_new_io(self):
        w = make_world()
        plan = FaultPlan([FaultEvent(0.0, "osd_outage", target=3, duration=1.0)],
                         seed=0)
        FaultInjector(w, plan).arm()
        osd = w.volume.pool.osds[3]

        def proc():
            yield w.env.timeout(0.5)
            osd.io(1, 0, 100)

        with pytest.raises(StorageUnavailable):
            w.env.run_process(proc())

    def test_osd_slowdown_rescales_capacity(self):
        w = make_world()
        plan = FaultPlan([FaultEvent(1.0, "osd_slow", target=0, duration=2.0,
                                     magnitude=4.0)], seed=0)
        FaultInjector(w, plan).arm()
        osd = w.volume.pool.osds[0]
        full = osd.server.capacity
        caps = probe_at(w, [1.5, 3.5], lambda: osd.server.capacity)
        assert caps == [pytest.approx(full / 4.0), pytest.approx(full)]

    def test_mds_crash_then_failover(self):
        w = make_world()
        plan = FaultPlan([FaultEvent(1.0, "mds_crash", duration=0.5)], seed=0)
        FaultInjector(w, plan).arm()
        mds = w.volume.mds
        down = probe_at(w, [1.2, 2.0], lambda: mds.down)
        assert down == [True, False]

    def test_crashed_mds_rejects_ops(self):
        w = make_world()
        plan = FaultPlan([FaultEvent(0.0, "mds_crash", duration=5.0)], seed=0)
        FaultInjector(w, plan).arm()

        def proc():
            yield w.env.timeout(1.0)
            yield from w.volume.mds.op("open")

        with pytest.raises(MDSUnavailable):
            w.env.run_process(proc())

    def test_net_partition_and_heal(self):
        w = make_world()
        plan = FaultPlan([FaultEvent(1.0, "net_partition", duration=1.0)],
                         seed=0)
        FaultInjector(w, plan).arm()
        net = w.cluster.storage_net
        node = w.cluster.nodes[0]

        def status():
            if not net.down:
                return "up"
            try:
                net.path_events(node, 10)
            except NetworkPartitioned:
                return "severed"
            return "broken-model"

        assert probe_at(w, [1.5, 2.5], status) == ["severed", "up"]

    def test_net_jitter_is_additive_and_composes(self):
        w = make_world()
        plan = FaultPlan([
            FaultEvent(1.0, "net_jitter", duration=2.0, magnitude=3e-3),
            FaultEvent(2.0, "net_jitter", duration=2.0, magnitude=5e-3),
        ], seed=0)
        FaultInjector(w, plan).arm()
        net = w.cluster.storage_net
        vals = probe_at(w, [0.5, 1.5, 2.5, 3.5, 4.5],
                        lambda: net.extra_latency)
        assert vals == [pytest.approx(v) for v in [0.0, 3e-3, 8e-3, 5e-3, 0.0]]

    def test_non_component_kind_rejected(self):
        w = make_world()
        inj = FaultInjector(w, FaultPlan((), seed=0))
        with pytest.raises(ConfigError):
            inj._compile(FaultEvent(0.0, "writer_kill"))


class TestArming:
    def test_arm_until_is_windowed(self):
        w = make_world()
        plan = FaultPlan([FaultEvent(float(t), "net_jitter", duration=0.1,
                                     magnitude=1e-3) for t in (1, 5, 9)],
                         seed=0)
        inj = FaultInjector(w, plan)
        assert inj.pending == 3
        assert inj.arm_until(5.0) == 2
        assert inj.pending == 1
        # Running drains only the armed window; the engine clock never
        # fast-forwards through unarmed future faults.
        w.env.run()
        assert w.env.now == pytest.approx(5.1)
        assert inj.arm() == 1
        w.env.run()
        assert w.env.now == pytest.approx(9.1)

    def test_late_arming_applies_immediately(self):
        w = make_world()
        plan = FaultPlan([FaultEvent(1.0, "osd_outage", target=0,
                                     duration=0.5)], seed=0)
        inj = FaultInjector(w, plan)

        def proc():
            yield w.env.timeout(10.0)

        w.env.run_process(proc())  # clock is now past the apply time
        inj.arm()                  # applies inline, arms the paired recovery
        assert [phase for _, _, phase in inj.applied] == ["apply"]
        assert w.volume.pool.osds[0].down
        w.env.run()
        assert [phase for _, _, phase in inj.applied] == ["apply", "recover"]
        assert not w.volume.pool.osds[0].down
