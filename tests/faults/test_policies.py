"""Retry policies: bounded, deterministic, and transparent when absent."""

import pytest

from repro.errors import ConfigError, StorageUnavailable
from repro.faults.plan import FaultPlan
from repro.faults.policies import RetryPolicy, retrying
from repro.sim import Engine


def attempts(fail_first: int, counter: dict):
    """An attempt factory failing the first *fail_first* calls."""
    def attempt():
        counter["calls"] += 1
        if counter["calls"] <= fail_first:
            raise StorageUnavailable("x", "injected")
        return "ok"
        yield  # unreachable; makes this a generator function
    return attempt


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay=0.0)
        with pytest.raises(ConfigError):
            RetryPolicy(max_delay=1e-6, base_delay=1e-3)

    def test_backoff_is_exponential_and_capped(self):
        p = RetryPolicy(base_delay=1e-3, multiplier=2.0, max_delay=3e-3,
                        jitter=0.0)
        assert [p.delay(k) for k in range(4)] == [1e-3, 2e-3, 3e-3, 3e-3]

    def test_jitter_deterministic_per_substream(self):
        mk = lambda: RetryPolicy(jitter=0.5,
                                 rng=FaultPlan((), seed=5).rng("retry-jitter"))
        a, b = mk(), mk()
        assert [a.delay(k) for k in range(6)] == [b.delay(k) for k in range(6)]
        assert a.delay(0) != RetryPolicy(jitter=0.0).delay(0)  # jitter applied


class TestRetrying:
    def test_none_policy_is_pure_passthrough(self):
        env = Engine()

        def attempt():
            yield env.timeout(1.0)
            return 42

        assert env.run_process(retrying(env, None, attempt)) == 42
        assert env.now == pytest.approx(1.0)

    def test_transients_absorbed_with_charged_backoff(self):
        env = Engine()
        c = {"calls": 0}
        p = RetryPolicy(max_retries=5, base_delay=1e-3, multiplier=2.0,
                        jitter=0.0)
        assert env.run_process(retrying(env, p, attempts(3, c))) == "ok"
        assert c["calls"] == 4
        assert p.retries == 3
        # Backoff time is simulated, deterministic: 1 + 2 + 4 ms.
        assert env.now == pytest.approx(7e-3)

    def test_max_retries_exhausted_raises(self):
        env = Engine()
        c = {"calls": 0}
        p = RetryPolicy(max_retries=2, base_delay=1e-3, jitter=0.0)
        with pytest.raises(StorageUnavailable):
            env.run_process(retrying(env, p, attempts(10, c)))
        assert c["calls"] == 3  # initial + 2 retries

    def test_deadline_bounds_total_wait(self):
        env = Engine()
        c = {"calls": 0}
        p = RetryPolicy(max_retries=100, base_delay=10.0, max_delay=10.0,
                        jitter=0.0, deadline=5.0)
        with pytest.raises(StorageUnavailable):
            env.run_process(retrying(env, p, attempts(10, c)))
        assert c["calls"] == 1       # first backoff would blow the deadline
        assert env.now == 0.0

    def test_non_transient_errors_propagate_immediately(self):
        env = Engine()
        c = {"calls": 0}

        def attempt():
            c["calls"] += 1
            raise ValueError("modeling bug")
            yield

        with pytest.raises(ValueError):
            env.run_process(retrying(env, RetryPolicy(), attempt))
        assert c["calls"] == 1
