"""The resilience figure: deterministic tables, honest recovery claims."""

import pytest

from repro.faults.experiment import _recovery_leg, faults
from repro.harness.scales import Scale
from repro.units import KB, MB

TINY = Scale(
    name="tiny",
    faults_nprocs=4,
    faults_per_proc=1 * MB,
    faults_record=256 * KB,
    faults_work=40.0,
    faults_interval=10.0,
    faults_mtbfs=[20.0],
    faults_kinds=["none", "osd_outage", "writer_kill"],
)


class TestRecoveryProperty:
    """The acceptance criterion: for every injected crash in the shipped
    plans, recovery yields a readable file matching all surviving acked
    writes byte-identically — verified for every write, not spot checks."""

    @pytest.mark.parametrize("kind", ["osd_outage", "mds_crash", "writer_kill"])
    @pytest.mark.parametrize("stack", ["plfs", "direct"])
    def test_every_acked_write_survives_or_is_lost(self, stack, kind):
        report = _recovery_leg(stack, kind, TINY)
        assert report.n_acked > 0
        assert report.mismatched_bytes == 0      # nothing reads back garbage
        assert report.clean_after                # recovery left no dirt
        assert report.ok
        assert (report.surviving_bytes + report.lost_bytes
                == report.acked_bytes)           # every write classified

    def test_direct_in_place_writes_lose_nothing(self):
        report = _recovery_leg("direct", "writer_kill", TINY)
        assert report.recovered_fraction == 1.0

    def test_plfs_loses_only_the_unspilled_tail(self):
        report = _recovery_leg("plfs", "writer_kill", TINY)
        assert report.dirty_hosts_before > 0     # the crash left a mark
        assert 0.0 < report.recovered_fraction < 1.0
        # Lost bytes are bounded by one spill window of one writer plus the
        # acked-but-unspilled tail; with spill-every-4-records the tail is
        # at most 4 records.
        assert report.lost_bytes <= 4 * TINY.faults_record


class TestTableDeterminism:
    def test_tables_identical_across_jobs(self):
        """--jobs must never change a number: same plan seed, same tables."""
        serial = faults(TINY, jobs=1)
        parallel = faults(TINY, jobs=2)
        assert [(t.id, t.rows) for t in serial] == \
               [(t.id, t.rows) for t in parallel]

    def test_no_fault_row_present_as_baseline(self):
        eff = faults(TINY, jobs=1)[0]
        kinds = [row[0] for row in eff.rows]
        assert "none" in kinds
        for row in eff.rows:
            assert 0.0 < row[2] <= 1.0  # PLFS efficiency is a fraction
            assert 0.0 < row[3] <= 1.0
