"""Client-level resilience: jobs survive injected faults, deterministically.

These are the end-to-end guarantees the fault subsystem makes: retried
I/O round-trips byte-identically through a fault window on both stacks,
unreachable index logs degrade to :class:`PartialViewError` instead of a
hang, and a no-fault plan leaves fault-free results bit-identical.
"""

import pytest

from repro.errors import PartialViewError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.policies import RetryPolicy
from repro.mpi import run_job
from repro.mpiio import MPIFile
from repro.pfs import PfsConfig
from repro.pfs.data import PatternData
from repro.workloads.base import direct_stack, plfs_stack
from repro.workloads.campaign import Campaign
from tests.conftest import make_world

KB = 1000


def _policy(plan, stream=0):
    return RetryPolicy(max_retries=12, base_delay=2e-3, multiplier=2.0,
                       max_delay=0.5, jitter=0.5, deadline=60.0,
                       rng=plan.rng("retry-jitter", stream))


def _ckpt_roundtrip(world, stack, nprocs=4, per=40 * KB, rec=10 * KB):
    """Write a strided N-1 checkpoint through MPI-IO, read it back, verify."""

    def writer(ctx):
        if ctx.rank == 0:
            drv = stack.make_driver()
            vol = getattr(drv, "volume", None)
            if vol is not None:
                yield from vol.makedirs(ctx.client, "/res")
            else:
                yield from drv.mount.mkdir(ctx.client, "/res")
        yield from ctx.comm.barrier()
        f = yield from MPIFile.open(ctx, "/res/ckpt", "w",
                                    stack.make_driver(), stack.hints)
        written = 0
        while written < per:
            n = min(rec, per - written)
            off = ctx.rank * rec + (written // rec) * nprocs * rec
            yield from f.write_at(off, PatternData(ctx.rank, written, n))
            written += n
        yield from f.close()

    def reader(ctx):
        f = yield from MPIFile.open(ctx, "/res/ckpt", "r",
                                    stack.make_driver(), stack.hints)
        ok = True
        got = 0
        while got < per:
            n = min(rec, per - got)
            off = ctx.rank * rec + (got // rec) * nprocs * rec
            view = yield from f.read_at(off, n)
            ok = ok and view.content_equal(PatternData(ctx.rank, got, n))
            got += n
        yield from f.close()
        return ok

    wjob = run_job(world.env, world.cluster, nprocs, writer)
    world.drop_caches()
    rjob = run_job(world.env, world.cluster, nprocs, reader,
                   client_id_base=1000)
    assert rjob.results == [True] * nprocs
    return wjob.duration, rjob.duration


class TestFaultedRoundTrip:
    """An OSD outage inside the job window: clients retry, bytes survive."""

    PLAN = FaultPlan([FaultEvent(0.002, "osd_outage", target=0,
                                 duration=0.05)], seed=21)

    def _run(self, stack_name):
        # One OSD, so the outage is guaranteed to intercept the job's I/O.
        world = make_world(pfs_cfg=PfsConfig(n_osds=1, stripe_width=1))
        plan = self.PLAN
        FaultInjector(world, plan).arm()
        retry = _policy(plan)
        stack = (plfs_stack if stack_name == "plfs" else direct_stack)(
            world, retry=retry)
        durations = _ckpt_roundtrip(world, stack)
        return durations, retry.retries

    @pytest.mark.parametrize("stack_name", ["plfs", "direct"])
    def test_outage_absorbed_and_content_intact(self, stack_name):
        _, retries = self._run(stack_name)
        assert retries > 0  # the fault genuinely intercepted I/O

    @pytest.mark.parametrize("stack_name", ["plfs", "direct"])
    def test_faulted_run_replays_bit_identically(self, stack_name):
        assert self._run(stack_name) == self._run(stack_name)


def _small_retry():
    return RetryPolicy(max_retries=1, base_delay=1e-3, max_delay=1e-2,
                       jitter=0.0, deadline=1.0,
                       rng=FaultPlan((), seed=4).rng("retry-jitter"))


def _read_degraded(world, retry):
    def reader(ctx):
        yield from world.mount.open_read(ctx.client, "/f", None, retry=retry)

    return run_job(world.env, world.cluster, 1, reader, client_id_base=9000)


class TestPartialView:
    def _write(self, world, nprocs, rec=5 * KB):
        def writer(ctx):
            fh = yield from world.mount.open_write(ctx.client, "/f", ctx.comm)
            yield from fh.write(ctx.rank * rec, PatternData(ctx.rank, 0, rec))
            yield from world.mount.close_write(fh, ctx.comm)

        run_job(world.env, world.cluster, nprocs, writer)
        world.drop_caches()

    def test_unreachable_index_batches_name_missing_writers(self):
        """Enumeration works (MDS is fine) but every index-log read fails:
        the error names exactly the writers whose logs were unreachable."""
        world = make_world()
        self._write(world, nprocs=4)
        for osd in world.volume.pool.osds:
            osd.fail()
        with pytest.raises(PartialViewError) as exc:
            _read_degraded(world, _small_retry())
        assert exc.value.missing_writers == (0, 1, 2, 3)
        assert not exc.value.missing_subdirs

    def test_unreachable_subdir_volume_reported(self):
        """A whole subdir volume whose MDS stays down (no failover) cannot
        even be enumerated; the reader degrades instead of hanging."""
        world = make_world(n_volumes=3, federation="subdir", n_nodes=4,
                           cores=2)
        self._write(world, nprocs=8)
        layout = world.mount.layout("/f")
        victim = next(v for v in world.volumes if v is not layout.home_volume)
        victim.mds.crash()
        with pytest.raises(PartialViewError) as exc:
            _read_degraded(world, _small_retry())
        assert exc.value.missing_subdirs
        subdirs = {layout.subdir_for_writer(n) for n in range(4)
                   if layout.subdir_volume(layout.subdir_for_writer(n)) is victim}
        assert set(exc.value.missing_subdirs) == subdirs


def _campaign(world, plan=None, injector=None, seed=0):
    stack = direct_stack(world)
    return Campaign(world, stack, nprocs=4, per_proc_bytes=100 * KB,
                    record_bytes=25 * KB, work_target=30.0, interval=8.0,
                    mtbf=17.0, seed=seed, plan=plan, injector=injector)


class TestCampaignDeterminism:
    def test_empty_plan_matches_planless_campaign(self):
        """A no-fault FaultPlan must leave fault-free results unchanged —
        the figure-level guarantee that existing tables stay bit-identical."""
        a = _campaign(make_world(), seed=3).run()
        b = _campaign(make_world(), plan=FaultPlan((), seed=3)).run()
        assert (a.wall_time, a.n_failures, a.n_checkpoints, a.lost_work,
                a.checkpoint_time, a.restart_time) == \
               (b.wall_time, b.n_failures, b.n_checkpoints, b.lost_work,
                b.checkpoint_time, b.restart_time)

    def test_faulted_campaign_replays_bit_identically(self):
        def run_once():
            world = make_world()
            plan = FaultPlan.generate(7, horizon=120.0, mtbf=15.0,
                                      kinds=["osd_outage", "net_jitter"],
                                      n_osds=len(world.volume.pool.osds))
            inj = FaultInjector(world, plan)
            res = _campaign(world, plan=plan, injector=inj, seed=7).run()
            return (res.wall_time, res.n_failures, res.n_checkpoints,
                    res.lost_work, len(inj.applied))

        assert run_once() == run_once()
