"""Tests for the interprocedural collective-matching analyzer (REP101..REP104)
and its runtime cross-check, the collective-trace validator.

The acceptance fixture is the leader-only broadcast: REP101 must flag the
divergent ``bcast`` line statically, and a ``--validate-collectives`` run of
the same shape must report the non-congruent per-rank traces at runtime.
"""

import ast
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.collectives import analyze_modules, analyze_paths
from repro.analysis.config import AnalysisConfig, load_config
from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.errors import CollectiveMismatchError
from repro.mpi import run_job
from repro.mpi.trace import attach_tracer, validate_tracer
from repro.sim import Engine

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


def analyze(src, name="mod.py"):
    tree = ast.parse(textwrap.dedent(src))
    return analyze_modules({name: tree}, AnalysisConfig())


def rules_of(findings):
    return [f.rule for f in findings]


# -- REP101: collective under a rank-dependent branch ------------------------

LEADER_ONLY_BCAST = '''
def leader_bcast(comm):
    if comm.rank == 0:
        yield from comm.bcast("hdr", root=0)
    vals = yield from comm.gather(comm.rank, root=0)
    return vals
'''


class TestRep101:
    def test_leader_only_bcast_flagged_at_divergent_line(self):
        findings = analyze(LEADER_ONLY_BCAST)
        assert rules_of(findings) == ["REP101"]
        # Line 4 is the bcast inside the rank-dependent arm — the
        # collective the other ranks never issue.
        assert findings[0].line == 4
        assert "bcast" in findings[0].message

    def test_congruent_both_arm_bcast_is_clean(self):
        # The adio.py open idiom: both arms issue the same collective.
        assert analyze('''
            def open_file(comm):
                if comm.rank == 0:
                    meta = do_open()
                    yield from comm.bcast(meta, root=0)
                else:
                    meta = yield from comm.bcast(None, root=0)
                return meta
        ''') == []

    def test_uniform_early_return_is_clean(self):
        # An untainted guard splits *runs*, not ranks of one run.
        assert analyze('''
            def maybe(comm, items):
                if not items:
                    return None
                data = yield from comm.bcast(items, root=0)
                return data
        ''') == []

    def test_two_level_leader_split_is_clean(self):
        # Rank-dependent split color partitions the comm: per-color
        # congruence holds by construction.
        assert analyze('''
            def two_level(comm):
                color = comm.rank % 2
                sub = yield from comm.split(color)
                if color == 0:
                    parts = yield from sub.gather(1, root=0)
                else:
                    parts = yield from sub.gather(2, root=0)
                yield from comm.barrier()
                return parts
        ''') == []

    def test_interprocedural_helper_flagged_at_call_site(self):
        findings = analyze('''
            def helper(comm, data):
                yield from comm.bcast(data, root=0)

            def caller(comm):
                if comm.rank == 0:
                    yield from helper(comm, "x")
                yield from comm.barrier()
        ''')
        assert rules_of(findings) == ["REP101"]
        assert findings[0].line == 7  # the helper() call under the branch


# -- REP102: rank-dependent root --------------------------------------------

class TestRep102:
    def test_rank_root_flagged(self):
        findings = analyze('''
            def bad_root(comm):
                yield from comm.bcast("x", root=comm.rank)
        ''')
        assert rules_of(findings) == ["REP102"]

    def test_root_param_tainted_through_call(self):
        findings = analyze('''
            def helper(comm, root):
                yield from comm.bcast("x", root=root)

            def caller(comm):
                yield from helper(comm, comm.rank)
        ''')
        assert rules_of(findings) == ["REP102"]
        assert findings[0].line == 6  # the call passing comm.rank

    def test_allreduced_root_is_laundered(self):
        # allreduce yields the same value on every rank: a uniform root.
        assert analyze('''
            def pick(comm):
                leader = yield from comm.allreduce(comm.rank, op=max)
                yield from comm.bcast("x", root=leader)
        ''') == []


# -- REP103: unmatched send/recv pairing ------------------------------------

class TestRep103:
    def test_unconsumed_send_flagged(self):
        findings = analyze('''
            def lonely(comm):
                yield from comm.send(comm.rank + 1, "x", nbytes=1,
                                     tag=("odd", 7))
        ''')
        assert rules_of(findings) == ["REP103"]
        assert "no recv" in findings[0].message

    def test_unsatisfiable_recv_flagged(self):
        findings = analyze('''
            def waiter(comm):
                msg = yield from comm.recv(0, tag=("never", 1))
                return msg
        ''')
        assert rules_of(findings) == ["REP103"]
        assert "no send" in findings[0].message

    def test_matched_pair_is_clean(self):
        assert analyze('''
            def exchange(comm):
                if comm.rank == 0:
                    yield from comm.send(1, "x", nbytes=1, tag=("pair", 1))
                elif comm.rank == 1:
                    msg = yield from comm.recv(0, tag=("pair", 1))
                    return msg
        ''') == []

    def test_pairing_matches_across_functions(self):
        # Tree-wide registry: sender and receiver in different functions.
        assert analyze('''
            def producer(comm):
                yield from comm.send(1, "x", nbytes=1, tag=("xfn", 3))

            def consumer(comm):
                msg = yield from comm.recv(0, tag=("xfn", 3))
                return msg
        ''') == []


# -- REP104: collective in a rank-dependent-trip-count loop ------------------

class TestRep104:
    def test_rank_bound_loop_flagged(self):
        findings = analyze('''
            def bad_loop(comm):
                for _ in range(comm.rank):
                    yield from comm.barrier()
        ''')
        assert rules_of(findings) == ["REP104"]
        assert findings[0].line == 4  # the barrier inside the loop

    def test_uniform_bound_loop_is_clean(self):
        assert analyze('''
            def rounds(comm, n):
                for _ in range(n):
                    yield from comm.barrier()
        ''') == []


# -- suppression and the shipped tree ---------------------------------------

class TestSuppression:
    def test_noqa_with_justification_suppresses(self, tmp_path):
        mod = tmp_path / "supp.py"
        mod.write_text(textwrap.dedent('''
            def leader(comm):
                if comm.rank == 0:
                    yield from comm.bcast("h", root=0)  # noqa: REP101 -- demo
                vals = yield from comm.gather(comm.rank, root=0)
                return vals
        '''))
        assert analyze_paths([str(mod)], AnalysisConfig()) == []

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        mod = tmp_path / "supp.py"
        mod.write_text(textwrap.dedent('''
            def leader(comm):
                if comm.rank == 0:
                    yield from comm.bcast("h", root=0)  # noqa: REP104
                vals = yield from comm.gather(comm.rank, root=0)
                return vals
        '''))
        assert rules_of(analyze_paths([str(mod)], AnalysisConfig())) \
            == ["REP101"]


def test_shipped_tree_is_congruence_clean():
    findings = analyze_paths([str(SRC)],
                             load_config(REPO / "pyproject.toml"))
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_collectives_exits_zero_on_clean_tree():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "collectives", str(SRC)],
        cwd=REPO, capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_collectives_flags_seeded_fixture(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(textwrap.dedent(LEADER_ONLY_BCAST))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "collectives",
         "--no-config", str(bad)],
        cwd=REPO, capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 1
    assert "REP101" in proc.stdout


# -- runtime cross-check: the trace validator confirms REP101 ----------------

def _world(n_nodes=4, cores=4):
    env = Engine()
    cluster = Cluster(env, ClusterSpec(name="t", n_nodes=n_nodes,
                                       node=NodeSpec(cores=cores)))
    return env, cluster


class TestRuntimeConfirmation:
    def test_divergent_fixture_reports_non_congruent_traces(self):
        # The runtime half of the acceptance criterion: the exact shape
        # REP101 flags statically produces a CollectiveMismatchError
        # naming the per-rank divergence when traced.
        def fn(ctx):
            c = ctx.comm
            if c.rank == 0:
                yield from c.bcast("hdr", root=0)
            vals = yield from c.gather(c.rank, root=0)
            return vals

        env, cluster = _world()
        attach_tracer(env, strict=True)
        with pytest.raises(CollectiveMismatchError) as err:
            run_job(env, cluster, 4, fn, name="bad")
        msg = str(err.value)
        assert "diverge at collective #0" in msg
        assert "rank 0: bcast(root=0)" in msg
        assert "rank 1: gather(root=0)" in msg

    def test_congruent_job_passes_strict_validation(self):
        def fn(ctx):
            c = ctx.comm
            yield from c.barrier()
            data = yield from c.bcast("x", root=0)
            yield from c.gather(data, root=0)
            return data

        env, cluster = _world()
        tracer = attach_tracer(env, strict=True)
        result = run_job(env, cluster, 4, fn, name="ok")
        assert result.results == ["x"] * 4
        assert validate_tracer(tracer) == []

    def test_non_strict_tracer_collects_instead_of_raising(self):
        # The model checker's mode: violations become oracle findings.
        def fn(ctx):
            c = ctx.comm
            if c.rank == 0:
                yield from c.bcast("hdr", root=0)
            vals = yield from c.gather(c.rank, root=0)
            return vals

        from repro.errors import DeadlockError

        env, cluster = _world()
        tracer = attach_tracer(env, strict=False)
        # The divergence also desynchronizes tags, so the job hangs; a
        # strict=False tracer still upgrades the error to the mismatch.
        with pytest.raises((CollectiveMismatchError, DeadlockError)):
            run_job(env, cluster, 4, fn, name="bad")
        errors = validate_tracer(tracer)
        assert errors and "diverge" in errors[0]
