"""SARIF 2.1.0 emission: document shape, ruleIndex consistency, and the
structural validator that gates the CI artifact; plus the noqa audit CLI."""

import copy
import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.linter import Finding
from repro.analysis.rules import RULES
from repro.analysis.sarif import (SARIF_SCHEMA, SARIF_VERSION, render_sarif,
                                  to_sarif, validate_sarif)

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"

FINDINGS = [
    Finding(rule="REP101", path="pkg/mod.py", line=4, col=0,
            message="collective under a rank-dependent branch"),
    Finding(rule="REP001", path="pkg/other.py", line=2, col=4,
            message="wall clock in simulation code"),
]


def test_document_has_required_members():
    doc = to_sarif(FINDINGS)
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert doc["$schema"] == SARIF_SCHEMA
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-analysis"
    assert len(run["results"]) == 2


def test_rule_catalogue_covers_every_rule():
    doc = to_sarif([])
    listed = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
    assert set(listed) >= set(RULES)
    assert "REP101" in listed and "REP104" in listed


def test_rule_index_is_consistent():
    doc = to_sarif(FINDINGS)
    run = doc["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_locations_are_one_based():
    doc = to_sarif(FINDINGS)
    regions = [r["locations"][0]["physicalLocation"]["region"]
               for r in doc["runs"][0]["results"]]
    assert regions[0]["startLine"] == 4 and regions[0]["startColumn"] == 1
    assert regions[1]["startLine"] == 2 and regions[1]["startColumn"] == 5


def test_emitted_documents_self_validate():
    assert validate_sarif(to_sarif(FINDINGS)) == []
    assert validate_sarif(to_sarif([])) == []
    assert validate_sarif(json.loads(render_sarif(FINDINGS))) == []


def test_validator_rejects_broken_documents():
    good = to_sarif(FINDINGS)

    bad = copy.deepcopy(good)
    bad["version"] = "2.0.0"
    assert any("version" in e for e in validate_sarif(bad))

    bad = copy.deepcopy(good)
    bad["runs"][0]["results"][0]["ruleIndex"] = 10_000
    assert validate_sarif(bad)

    bad = copy.deepcopy(good)
    del bad["runs"][0]["results"][0]["message"]
    assert validate_sarif(bad)

    bad = copy.deepcopy(good)
    bad["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
        "region"]["startLine"] = 0
    assert validate_sarif(bad)

    assert validate_sarif({}) != []


def _cli(*argv, cwd=REPO):
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=cwd, capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})


def test_cli_sarif_output_validates(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(textwrap.dedent('''
        def leader(comm):
            if comm.rank == 0:
                yield from comm.bcast("h", root=0)
            vals = yield from comm.gather(comm.rank, root=0)
            return vals
    '''))
    out = tmp_path / "out.sarif"
    proc = _cli("collectives", "--no-config", "--format", "sarif",
                "-o", str(out), str(bad))
    assert proc.returncode == 1  # findings present
    doc = json.loads(out.read_text())
    assert validate_sarif(doc) == []
    assert [r["ruleId"] for r in doc["runs"][0]["results"]] == ["REP101"]


def test_cli_sarif_shared_across_rule_families(tmp_path):
    # One artifact covers both the determinism rules (REP0xx) and the
    # collective rules (REP1xx): same tool name, same rule catalogue.
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    proc = _cli("lint", "--no-config", "--format", "sarif", str(bad))
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert validate_sarif(doc) == []
    ids = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
    assert "REP001" in ids and "REP101" in ids


def test_cli_show_suppressed_audits_justifications(tmp_path):
    mod = tmp_path / "supp.py"
    mod.write_text(textwrap.dedent('''
        import time
        a = time.time()  # noqa: REP001 -- fixture clock, not sim state
        b = time.time()  # noqa: REP001
    '''))
    proc = _cli("lint", "--no-config", "--show-suppressed", str(mod))
    assert proc.returncode == 0
    assert "fixture clock, not sim state" in proc.stdout
    assert "2 suppression(s), 1 without a justification" in proc.stdout


def test_shipped_tree_suppressions_are_justified():
    # Every noqa in the shipped tree must say *why*.
    proc = _cli("lint", "--show-suppressed", str(SRC))
    assert proc.returncode == 0
    assert ", 0 without a justification" in proc.stdout
