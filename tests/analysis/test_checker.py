"""Schedule-exploring model checker: control fidelity + bug regression.

Three claims are load-bearing:

* attaching the controller with the **empty schedule** reproduces the
  uncontrolled run exactly (same final simulated time), so traces are
  honest replays and the default schedule is "what the code really does";
* the shipped tree explores its budget with **zero violations** on every
  workload;
* re-introducing the pre-PR-2 last-closer close (the exact generator the
  sanitizer regression suite keeps) makes the checker find a violation
  that the **default schedule misses** — the single-run sanitizer is
  blind to it — and delta-minimize it to a handful of decisions whose
  trace replays to the same failure.
"""

import pytest

from repro.analysis.explore import (
    _Controller,
    replay_trace,
    run_check,
    run_schedule,
    save_trace,
    load_trace,
)
from repro.analysis.minimize import minimize_schedule
from repro.analysis.scenarios import SCENARIOS, get_scenario
from repro.plfs.writer import PlfsWriteHandle

from .test_regression_race import _racy_drop_metadata


# -- control fidelity --------------------------------------------------------

def test_empty_schedule_matches_uncontrolled_run():
    """Controller + choice-0 everywhere == no controller at all."""
    scenario = get_scenario("smallio")

    plain = scenario.build()
    scenario.drive(plain)
    plain.env.run()

    controlled = scenario.build()
    ctrl = _Controller({})
    ctrl.bind(controlled.env)
    controlled.env.attach_scheduler(ctrl)
    scenario.drive(controlled)
    controlled.env.run()

    assert controlled.env.now == plain.env.now
    # The aligned scenarios exist to create real tie-breaks.
    assert any(len(eids) > 1 for eids in ctrl.decisions)


def test_out_of_range_choice_falls_back_to_default():
    scenario = get_scenario("smallio")
    wild = run_schedule(scenario, {0: 99})      # wider than any ready set
    base = run_schedule(scenario, {})
    assert not wild.failed
    assert wild.decisions == base.decisions


# -- shipped tree is clean ---------------------------------------------------

@pytest.mark.parametrize("workload", sorted(SCENARIOS))
def test_shipped_tree_explores_clean(workload):
    report = run_check(workload, budget=40, bound=2)
    assert report.ok, report.render()
    assert report.runs >= 1


# -- the re-introduced last-closer bug ---------------------------------------

@pytest.fixture
def racy_close(monkeypatch):
    monkeypatch.setattr(PlfsWriteHandle, "_drop_metadata",
                        _racy_drop_metadata)


def test_default_schedule_misses_the_racy_close(racy_close):
    """The single-schedule sanitizer run is clean: the default order
    retires the closer's entry before the re-opener's increment, so only
    exploration can expose the bug."""
    result = run_schedule(get_scenario("smallio"), {})
    assert not result.failed, [v.render() for v in result.violations]


def test_checker_finds_and_minimizes_the_racy_close(racy_close):
    report = run_check("smallio", budget=40, bound=2)
    assert not report.ok
    assert report.runs <= 40
    kinds = {v.kind for v in report.violations}
    assert kinds & {"race", "crash"}, report.render()
    # Delta-minimized to a handful of deviations (the issue's bar: <= 5).
    assert 1 <= len(report.schedule) <= 5
    # The minimized schedule still fails on a fresh run.
    final = run_schedule(get_scenario("smallio"), report.schedule)
    assert final.failed


def test_violation_trace_replays(racy_close, tmp_path):
    report = run_check("smallio", budget=40, bound=2)
    assert report.trace is not None
    path = str(tmp_path / "trace.json")
    save_trace(path, report.trace)
    trace = load_trace(path)
    assert trace["workload"] == "smallio"
    assert trace["violation"]["kind"] == report.violation.kind
    result = replay_trace(trace)
    assert result.failed
    assert result.violations[0].kind == report.violation.kind


def test_replay_cli_reports_reproduction(racy_close, tmp_path, capsys):
    from repro.harness.__main__ import main as harness_main

    report = run_check("smallio", budget=40, bound=2)
    path = str(tmp_path / "trace.json")
    save_trace(path, report.trace)
    assert harness_main(["--replay-schedule", path]) == 0
    out = capsys.readouterr().out
    assert "violation reproduced" in out


# -- minimization ------------------------------------------------------------

def test_minimize_drops_irrelevant_decisions():
    fails_iff = {3: 1, 7: 2}

    def still_fails(schedule):
        return all(schedule.get(k) == v for k, v in fails_iff.items())

    start = {1: 1, 3: 1, 5: 1, 7: 2, 9: 1}
    assert minimize_schedule(start, still_fails) == fails_iff


def test_minimize_keeps_singleton():
    assert minimize_schedule({4: 1}, lambda s: s == {4: 1}) == {4: 1}
