"""REP007: registry read separated from its write by a yield.

Fixtures mirror the shapes that matter in the tree: the pre-PR-2 racy
close (flagged), the shipped close (clean), single-statement
read-modify-writes (atomic by construction), re-reads after resuming,
and the recognition paths for registries (direct ``tracked(...)``
assignment, same-module factory functions, instance attributes).
"""

import textwrap

from repro.analysis import lint_source


def _lint(code, enabled=("REP007",)):
    return lint_source(textwrap.dedent(code), path="fixture.py",
                       enabled=set(enabled))


def _rules(findings):
    return [f.rule for f in findings]


def test_flags_the_last_closer_shape():
    findings = _lint("""
        from repro.analysis.sanitize import tracked

        def close(env):
            reg = tracked(env, {}, "refs")
            entry = reg["k"]
            entry[0] -= 1
            if entry[0] == 0:
                yield env.timeout(1.0)
                del reg["k"]
    """)
    assert _rules(findings) == ["REP007"]
    f = findings[0]
    assert "reg" in f.message and "yield" in f.message
    assert "line 6" in f.message          # the stale read's location


def test_shipped_close_is_clean():
    """Retire before the yield, and guard the post-yield write with a
    fresh membership re-read."""
    findings = _lint("""
        from repro.analysis.sanitize import tracked

        def close(env):
            reg = tracked(env, {}, "refs")
            entry = reg["k"]
            if entry == 0:
                del reg["k"]
            yield env.timeout(1.0)
            if "k" in reg:
                reg.pop("k")
    """)
    assert findings == []


def test_single_statement_rmw_is_atomic():
    findings = _lint("""
        from repro.analysis.sanitize import tracked

        def bump(env):
            reg = tracked(env, {}, "inflight")
            reg["d"] += 1
            yield env.timeout(1.0)
            reg.setdefault("d", 0)
            yield env.timeout(1.0)
            reg["d"] -= 1
    """)
    assert findings == []


def test_re_read_after_yield_is_clean():
    findings = _lint("""
        from repro.analysis.sanitize import tracked

        def close(env):
            reg = tracked(env, {}, "refs")
            entry = reg["k"]
            yield env.timeout(1.0)
            entry = reg["k"]
            del reg["k"]
    """)
    assert findings == []


def test_branches_do_not_leak_staleness():
    """A stale basis built in one branch must not flag the other."""
    findings = _lint("""
        from repro.analysis.sanitize import tracked

        def close(env, fast):
            reg = tracked(env, {}, "refs")
            if fast:
                del reg["k"]
            else:
                v = reg["k"]
                yield env.timeout(1.0)
            yield env.timeout(1.0)
    """)
    assert findings == []


def test_stale_write_in_loop_body_flags():
    findings = _lint("""
        from repro.analysis.sanitize import tracked

        def drain(env):
            reg = tracked(env, {}, "refs")
            n = reg["k"]
            for _ in range(n):
                yield env.timeout(1.0)
                reg["k"] = 0
    """)
    assert _rules(findings) == ["REP007"]


def test_noqa_suppresses():
    findings = _lint("""
        from repro.analysis.sanitize import tracked

        def close(env):
            reg = tracked(env, {}, "refs")
            entry = reg["k"]
            yield env.timeout(1.0)
            del reg["k"]  # repro: noqa[REP007] - sole writer by protocol
    """)
    assert findings == []


def test_factory_function_registries_are_recognized():
    findings = _lint("""
        from repro.analysis.sanitize import tracked

        def _host_registry(vol):
            return tracked(vol.env, {}, "plfs-host-refs")

        def close(env, vol):
            reg = _host_registry(vol)
            entry = reg["k"]
            yield env.timeout(1.0)
            del reg["k"]
    """)
    assert _rules(findings) == ["REP007"]


def test_attribute_registries_are_recognized():
    findings = _lint("""
        from repro.analysis.sanitize import tracked

        class Mds:
            def __init__(self, env):
                self._inflight = tracked(env, {}, "mds-inflight")

            def serve(self, env, uid):
                n = self._inflight[uid]
                yield env.timeout(1.0)
                self._inflight[uid] = n - 1
    """)
    assert _rules(findings) == ["REP007"]


def test_non_generator_functions_are_skipped():
    """No yield, no suspension: plain functions cannot race this way."""
    findings = _lint("""
        from repro.analysis.sanitize import tracked

        def snapshot(env):
            reg = tracked(env, {}, "refs")
            entry = reg["k"]
            del reg["k"]
            return entry
    """)
    assert findings == []


def test_untracked_dicts_are_ignored():
    findings = _lint("""
        def close(env):
            reg = {}
            entry = reg["k"]
            yield env.timeout(1.0)
            del reg["k"]
    """)
    assert findings == []
