"""The shipped tree passes its own determinism linter and CLI."""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.config import load_config

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


def test_shipped_tree_has_zero_findings():
    findings = lint_paths([str(SRC)], load_config(REPO / "pyproject.toml"))
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_lint_exits_zero_on_clean_tree():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", str(SRC)],
        cwd=REPO, capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_lint_flags_and_reports_json(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "lint", "--json",
         "--no-config", str(bad)],
        cwd=REPO, capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert [f["rule"] for f in payload] == ["REP001"]


def test_cli_rules_lists_all_rules():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "rules"],
        cwd=REPO, capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"})
    assert proc.returncode == 0
    for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005",
                    "REP006"):
        assert rule_id in proc.stdout
