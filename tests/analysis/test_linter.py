"""Determinism linter: one positive + one suppressed fixture per rule."""

import textwrap

from repro.analysis import lint_source
from repro.analysis.linter import Finding
from repro.analysis.rules import RULES


def _lint(code):
    return lint_source(textwrap.dedent(code), path="fixture.py")


def _rules(findings):
    return [f.rule for f in findings]


# -- REP001: wall clock ------------------------------------------------------

def test_rep001_flags_wall_clock():
    findings = _lint("""
        import time
        def f():
            return time.time()
    """)
    assert _rules(findings) == ["REP001"]
    assert "Engine.now" in findings[0].message


def test_rep001_flags_datetime_now():
    findings = _lint("""
        import datetime
        stamp = datetime.datetime.now()
    """)
    assert _rules(findings) == ["REP001"]


def test_rep001_suppressed():
    findings = _lint("""
        import time
        t0 = time.time()  # repro: noqa[REP001] -- harness wall-clock report
    """)
    assert findings == []


# -- REP002: global / unseeded random ---------------------------------------

def test_rep002_flags_module_global_random():
    findings = _lint("""
        import random
        x = random.random()
    """)
    assert _rules(findings) == ["REP002"]


def test_rep002_flags_numpy_global_and_bare_rng():
    findings = _lint("""
        import numpy as np
        a = np.random.rand(4)
        rng = np.random.default_rng()
    """)
    assert _rules(findings) == ["REP002", "REP002"]


def test_rep002_flags_from_import():
    findings = _lint("""
        from random import shuffle
        def f(xs):
            shuffle(xs)
    """)
    assert _rules(findings) == ["REP002"]


def test_rep002_allows_seeded_sources():
    findings = _lint("""
        import random
        import numpy as np
        rng = random.Random(42)
        g = np.random.default_rng(7)
        x = rng.random()
    """)
    assert findings == []


def test_rep002_suppressed():
    findings = _lint("""
        import random
        x = random.random()  # repro: noqa[REP002]
    """)
    assert findings == []


# -- REP003: salted hash() ---------------------------------------------------

def test_rep003_flags_builtin_hash():
    findings = _lint("""
        def bucket(name, n):
            return hash(name) % n
    """)
    assert _rules(findings) == ["REP003"]


def test_rep003_allows_stable_hashes():
    findings = _lint("""
        import zlib
        def bucket(name, n):
            return zlib.crc32(name.encode()) % n
    """)
    assert findings == []


def test_rep003_suppressed():
    findings = _lint("""
        h = hash(obj)  # repro: noqa[REP003] -- intra-process cache key only
    """)
    assert findings == []


# -- REP004: unordered iteration ---------------------------------------------

def test_rep004_flags_dict_values_loop():
    findings = _lint("""
        def f(d):
            for v in d.values():
                v.fire()
    """)
    assert _rules(findings) == ["REP004"]


def test_rep004_flags_set_comprehension_source():
    findings = _lint("""
        def f(s):
            return [x + 1 for x in set(s)]
    """)
    assert _rules(findings) == ["REP004"]


def test_rep004_allows_sorted_iteration():
    findings = _lint("""
        def f(d):
            for k, v in sorted(d.items()):
                v.fire()
    """)
    assert findings == []


def test_rep004_blessed_inside_order_insensitive_reducer():
    # max()/len()/any() cannot depend on operand order.
    findings = _lint("""
        def f(d):
            return max(d.values()), len(set(d)), any(v for v in d.values())
    """)
    assert findings == []


def test_rep004_suppressed():
    findings = _lint("""
        def f(d):
            for v in d.values():  # repro: noqa[REP004] -- audited: order-free
                v.fire()
    """)
    assert findings == []


# -- REP005: mutable defaults ------------------------------------------------

def test_rep005_flags_mutable_defaults():
    findings = _lint("""
        def f(xs=[], opts={}, tags=set(), buf=bytearray()):
            return xs
    """)
    assert _rules(findings) == ["REP005"] * 4


def test_rep005_allows_none_default():
    findings = _lint("""
        def f(xs=None, n=3, name=""):
            xs = [] if xs is None else xs
            return xs
    """)
    assert findings == []


def test_rep005_suppressed():
    findings = _lint("""
        def f(xs=[]):  # repro: noqa[REP005]
            return xs
    """)
    assert findings == []


# -- REP006: float reduction order -------------------------------------------

def test_rep006_flags_sum_over_dict_values():
    findings = _lint("""
        def f(d):
            return sum(d.values())
    """)
    # sum(values()) trips both the order rule path: the reduction check.
    assert "REP006" in _rules(findings)


def test_rep006_flags_fsum_over_set():
    findings = _lint("""
        import math
        def f(s):
            return math.fsum(x * 0.1 for x in set(s))
    """)
    assert "REP006" in _rules(findings)


def test_rep006_allows_sorted_reduction():
    findings = _lint("""
        def f(d):
            return sum(sorted(d.values()))
    """)
    assert findings == []


def test_rep006_suppressed():
    findings = _lint("""
        def f(d):
            return sum(d.values())  # repro: noqa[REP006] -- integer counters
    """)
    assert findings == []


# -- machinery ---------------------------------------------------------------

def test_bare_noqa_silences_every_rule_on_line():
    findings = _lint("""
        import time
        t = time.time() + hash("x")  # repro: noqa
    """)
    assert findings == []


def test_noqa_for_other_rule_does_not_suppress():
    findings = _lint("""
        import time
        t = time.time()  # repro: noqa[REP004]
    """)
    assert _rules(findings) == ["REP001"]


def test_syntax_error_reports_rep000():
    findings = _lint("def broken(:\n")
    assert _rules(findings) == ["REP000"]


def test_enabled_filter_restricts_rules():
    findings = lint_source(
        "import time\nt = time.time()\nh = hash(t)\n",
        enabled={"REP003"})
    assert _rules(findings) == ["REP003"]


def test_findings_render_path_line_rule():
    findings = _lint("""
        import time
        t = time.time()
    """)
    assert len(findings) == 1
    f = findings[0]
    assert isinstance(f, Finding)
    assert f.render().startswith(f"fixture.py:{f.line}:")
    assert "REP001" in f.render()


def test_every_rule_has_metadata():
    assert set(RULES) == {f"REP00{i}" for i in range(1, 8)} \
        | {f"REP10{i}" for i in range(1, 5)}
    for rule in RULES.values():
        assert rule.summary and rule.rationale
