"""TrackedDict/TrackedSet mutator coverage: semantics + race visibility.

The proxies must (a) behave exactly like the plain containers for every
mutator the tree uses — ``setdefault``, ``pop``, ``update``, ``|=``,
``clear``, set membership ops — and (b) classify each mutator correctly
as read/write so check-then-act races *through* those mutators are
caught, not just plain ``[]``/``del`` ones.
"""

import pytest

from repro.analysis.sanitize import (
    TrackedDict,
    TrackedSet,
    attach_sanitizer,
    raw_snapshot,
    tracked,
)
from repro.sim import Engine


@pytest.fixture
def env():
    e = Engine()
    attach_sanitizer(e, strict=False)
    return e


# -- TrackedDict semantics ---------------------------------------------------

def test_setdefault_missing_inserts_and_returns_default(env):
    d = tracked(env, {}, "d")
    got = d.setdefault("k", [1, 0, 0])
    got[0] += 1
    assert raw_snapshot(d) == {"k": [2, 0, 0]}


def test_setdefault_present_returns_existing(env):
    d = tracked(env, {"k": 7}, "d")
    assert d.setdefault("k", 99) == 7
    assert d.setdefault("other") is None
    assert raw_snapshot(d) == {"k": 7, "other": None}


def test_pop_variants(env):
    d = tracked(env, {"a": 1, "b": 2}, "d")
    assert d.pop("a") == 1
    assert d.pop("a", "fallback") == "fallback"
    with pytest.raises(KeyError):
        d.pop("missing")
    assert raw_snapshot(d) == {"b": 2}


def test_update_mapping_pairs_and_kwargs(env):
    d = tracked(env, {"a": 1}, "d")
    d.update({"b": 2})
    d.update([("c", 3)])
    d.update(d1=4)
    assert raw_snapshot(d) == {"a": 1, "b": 2, "c": 3, "d1": 4}


def test_ior_merges(env):
    d = tracked(env, {"a": 1}, "d")
    d |= {"b": 2, "a": 9}
    assert raw_snapshot(d) == {"a": 9, "b": 2}


def test_clear_and_views(env):
    d = tracked(env, {"b": 2, "a": 1}, "d")
    assert sorted(d.keys()) == ["a", "b"]
    assert sorted(d.values()) == [1, 2]
    assert sorted(d.items()) == [("a", 1), ("b", 2)]
    assert "a" in d and len(d) == 2 and bool(d)
    d.clear()
    assert raw_snapshot(d) == {} and not d


# -- TrackedSet semantics ----------------------------------------------------

def test_set_mutators(env):
    s = tracked(env, set(), "s")
    assert isinstance(s, TrackedSet)
    s.add(1)
    s.update({2, 3})
    s |= {4}
    assert raw_snapshot(s) == {1, 2, 3, 4}
    s.discard(4)
    s.discard(99)                      # absent: no-op
    s.remove(3)
    with pytest.raises(KeyError):
        s.remove(3)
    assert 1 in s and 3 not in s and len(s) == 2
    assert sorted(s) == [1, 2]
    s.clear()
    assert raw_snapshot(s) == set() and not s


def test_raw_snapshot_identity(env):
    plain_d, plain_s = {"k": 1}, {1}
    d = tracked(env, plain_d, "d")
    s = tracked(env, plain_s, "s")
    assert isinstance(d, TrackedDict)
    assert raw_snapshot(d) is plain_d
    assert raw_snapshot(s) is plain_s
    assert raw_snapshot(plain_d) is plain_d


# -- race visibility through the mutators ------------------------------------

def _race(env, reader_steps, writer_steps):
    """Run two processes; return the conflicts their interplay produced."""
    san = env.sanitizer

    def reader(env):
        yield from reader_steps(env)

    def writer(env):
        yield env.timeout(0.5)
        writer_steps(env)
        yield env.timeout(0.1)

    env.process(reader(env), "reader")
    env.process(writer(env), "writer")
    env.run()
    return san.conflicts


def test_pop_after_stale_setdefault_read_flags(env):
    d = tracked(env, {"k": 1}, "d")

    def reader_steps(env):
        d.setdefault("k", 0)           # reads k
        yield env.timeout(1.0)
        d.pop("k", None)               # acts on the stale read

    assert [c.kind for c in _race(env, reader_steps,
                                  lambda env: d.update({"k": 2}))] \
        == ["lost-update"]


def test_update_after_stale_get_flags(env):
    d = tracked(env, {"k": 1}, "d")

    def reader_steps(env):
        d.get("k")
        yield env.timeout(1.0)
        d.update({"k": 10})

    def writer_steps(env):
        d.pop("k")
        d["k"] = 5

    assert [c.kind for c in _race(env, reader_steps, writer_steps)] \
        == ["stale-read"]


def test_set_ior_after_stale_membership_flags(env):
    s = tracked(env, set(), "s")

    def reader_steps(env):
        nonlocal s                     # |= rebinds (to the same proxy)
        _ = 1 in s
        yield env.timeout(1.0)
        s |= {1}

    assert [c.kind for c in _race(env, reader_steps,
                                  lambda env: s.add(1))] == ["lost-update"]


def test_setdefault_same_turn_is_clean(env):
    """setdefault-then-mutate with no yield between never flags."""
    d = tracked(env, {}, "d")

    def proc(env):
        d.setdefault("k", [0])[0] += 1
        yield env.timeout(1.0)

    env.process(proc(env), "a")
    env.process(proc(env), "b")
    env.run()
    assert env.sanitizer.conflicts == []
