"""Strict typing gate for the typed-core modules (units, errors, stats).

mypy is a CI-installed dev dependency, not a runtime one; the test skips
where it is absent so the tier-1 suite stays dependency-free.
"""

from pathlib import Path

import pytest

mypy_api = pytest.importorskip("mypy.api", reason="mypy not installed")

REPO = Path(__file__).resolve().parents[2]


def test_typed_core_is_strict_clean():
    stdout, stderr, status = mypy_api.run(
        ["--config-file", str(REPO / "pyproject.toml")])
    assert status == 0, f"mypy --strict failed:\n{stdout}\n{stderr}"
