"""Yield-point race sanitizer: conflict semantics on synthetic processes."""

import pytest

from repro.analysis.sanitize import (
    Sanitizer, TrackedDict, attach_sanitizer, sanitize_enabled, tracked,
)
from repro.errors import RaceConditionError
from repro.sim import Engine


def make_env(strict=False):
    env = Engine()
    san = attach_sanitizer(env, strict=strict)
    return env, san


def test_tracked_is_identity_without_sanitizer():
    env = Engine()
    d = {}
    assert tracked(env, d, "x") is d


def test_tracked_returns_proxy_with_sanitizer():
    env, san = make_env()
    d = tracked(env, {}, "x")
    assert isinstance(d, TrackedDict)
    assert san.containers == 1


def test_sanitize_enabled_reads_env_flag(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not sanitize_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not sanitize_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitize_enabled()


def test_lost_update_detected_on_check_then_act():
    """Read across a yield, then act on the stale value: the PR 2 shape."""
    env, san = make_env()
    reg = tracked(env, {}, "reg")
    reg["k"] = [2, 0, 0]

    def closer(env, reg):
        entry = reg["k"]
        entry[0] -= 1
        if entry[0] == 0:
            yield env.timeout(1.0)     # metadata ops park here
            del reg["k"]               # ... and retire a live entry
        else:
            yield env.timeout(0.1)

    def reopener(env, reg):
        yield env.timeout(0.5)
        reg["k"][0] += 1               # re-open while the closer is parked

    def drive(env, reg):
        yield env.timeout(0.0)
        env.process(closer(env, reg), "c1")
        env.process(closer(env, reg), "c2")
        env.process(reopener(env, reg), "re")

    env.process(drive(env, reg), "drive")
    env.run()
    assert [c.kind for c in san.conflicts] == ["lost-update"]
    c = san.conflicts[0]
    assert c.key == "k"
    assert c.read_epoch < c.write_epoch
    assert "lost-update" in c.render() and "reg" in c.render()


def test_fixed_closer_is_clean():
    """Retiring the entry atomically with the zero check never flags."""
    env, san = make_env()
    reg = tracked(env, {}, "reg")
    reg["k"] = [2, 0, 0]

    def closer(env, reg):
        entry = reg["k"]
        entry[0] -= 1
        if entry[0] == 0:
            del reg["k"]               # before any yield
        yield env.timeout(1.0)

    def reopener(env, reg):
        yield env.timeout(0.5)
        reg.setdefault("k", [0, 0, 0])[0] += 1

    env.process(closer(env, reg), "c1")
    env.process(closer(env, reg), "c2")
    env.process(reopener(env, reg), "re")
    env.run()
    assert san.conflicts == []


def test_stale_read_kind_when_entry_deleted_in_between():
    env, san = make_env()
    d = tracked(env, {}, "ns")
    d["f"] = 1

    def holder(env, d):
        v = d["f"]
        yield env.timeout(1.0)
        d["f"] = v + 10                # entry was deleted + recreated

    def churner(env, d):
        yield env.timeout(0.5)
        del d["f"]
        d["f"] = 99

    env.process(holder(env, d), "holder")
    env.process(churner(env, d), "churner")
    env.run()
    assert [c.kind for c in san.conflicts] == ["stale-read"]


def test_blind_overwrite_never_flags():
    """A write with no read since the process's own last write is
    last-writer-wins by construction (the OSD stream-tracking shape)."""
    env, san = make_env()
    d = tracked(env, {}, "last-client")

    def rank(env, d, me, delay):
        prev = d.get(5380, me)         # read + write in the same turn
        d[5380] = me
        yield env.timeout(delay)
        d[5380] = me                   # later blind overwrite
        yield env.timeout(0.1)

    env.process(rank(env, d, "r1", 1.0), "r1")
    env.process(rank(env, d, "r5", 0.5), "r5")
    env.run()
    assert san.conflicts == []


def test_same_turn_read_modify_write_is_clean():
    env, san = make_env()
    d = tracked(env, {}, "inflight")
    d["x"] = 0

    def bump(env, d):
        d["x"] += 1
        yield env.timeout(0.3)
        d["x"] -= 1

    env.process(bump(env, d), "b1")
    env.process(bump(env, d), "b2")
    env.run()
    assert san.conflicts == []
    assert d["x"] == 0


def test_strict_mode_raises_at_the_write():
    env, san = make_env(strict=True)
    d = tracked(env, {}, "ns")
    d["k"] = 0

    def stale(env, d):
        v = d["k"]
        yield env.timeout(1.0)
        d["k"] = v + 1

    def other(env, d):
        yield env.timeout(0.5)
        d["k"] = 7

    env.process(stale(env, d), "stale")
    env.process(other(env, d), "other")
    with pytest.raises(RaceConditionError, match="ns"):
        env.run()
    assert len(san.conflicts) == 1


def test_wrapper_preserves_return_values():
    env, san = make_env()

    def inner(env):
        yield env.timeout(1.0)
        return 42

    assert env.run_process(inner(env), "ok") == 42


def test_wrapper_propagates_exceptions():
    env, san = make_env()

    def boom(env):
        yield env.timeout(0.5)
        raise ValueError("boom")

    env.process(boom(env), "bad")
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_summary_counts():
    env, san = make_env()
    tracked(env, {}, "a")
    tracked(env, {}, "b")

    def noop(env):
        yield env.timeout(0.1)

    env.process(noop(env), "n")
    env.run()
    s = san.summary()
    assert "2 tracked containers" in s
    assert "1 instrumented processes" in s
    assert "0 conflict(s)" in s
