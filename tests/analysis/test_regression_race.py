"""The sanitizer must catch the pre-PR-2 last-closer registry race.

PR 2 fixed ``PlfsWriteHandle._drop_metadata``: the original decremented
the host refcount, saw zero, *yielded* on the metadata-dropping ops, and
only then deleted the registry entry — clobbering a writer that
re-opened the container on the same host in between.  These tests
re-introduce that exact sequence (lifted from the pre-fix revision)
under the sanitizer and assert it is reported, while the shipped close
path runs the same overlaps cleanly.

The racy window is only a few metadata ops wide, so the driver first
*measures* it (the simulation is deterministic: identical worlds give
identical timings) and then scans the re-opener's start time across the
window at half-window steps — the re-open is guaranteed to land inside
it at some step.  The racy close must be flagged at one of those
delays; the shipped close at none of them.
"""

import pytest

from repro.errors import RaceConditionError
from repro.harness.setup import build_world
from repro.pfs.data import ZeroData
from repro.pfs.volume import Client
from repro.plfs.container import meta_dropping_name, openhost_name
from repro.plfs.writer import PlfsWriteHandle, _host_registry

# (zero-check time, retire time) pairs recorded by _racy_drop_metadata.
_window_log = []


def _racy_drop_metadata(self):
    """Pre-PR-2 close bookkeeping: zero-check and retire span yields."""
    home = self.layout.home_volume
    client = self.client
    node_id = client.node.id
    reg = _host_registry(home)
    entry = reg[(self.layout.path, node_id)]
    entry[0] -= 1
    entry[1] = max(entry[1], self.eof)
    entry[2] += len(self.index)
    if entry[0] == 0:
        t_check = self.env.now
        name = meta_dropping_name(entry[1], entry[2], node_id, 0)
        meta = yield from home.open(client, f"{self.layout.meta_path}/{name}",
                                    "w", create=True)
        yield from meta.close()
        oh_path = f"{self.layout.openhosts_path}/{openhost_name(node_id)}"
        yield from home.unlink(client, oh_path)
        _window_log.append((t_check, self.env.now))
        del reg[(self.layout.path, node_id)]   # acts on the stale zero-check


def _sanitized_world(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    return build_world()


def _measure_window(monkeypatch):
    """Time the racy close of a lone writer: returns (t_close_start,
    t_zero_check, t_retire) in simulated seconds."""
    monkeypatch.setattr(PlfsWriteHandle, "_drop_metadata",
                        _racy_drop_metadata)
    world = _sanitized_world(monkeypatch)
    env, mount = world.env, world.mount
    client = Client(node=world.cluster.nodes[0], client_id=0)
    marks = []

    def scenario(env):
        h = yield from mount.open_write(client, "/ckpt")
        yield from h.write(0, ZeroData(4096))
        marks.append(env.now)
        yield from mount.close_write(h)

    _window_log.clear()
    env.process(scenario(env), "scenario")
    env.run()
    assert len(_window_log) == 1, "lone close must enter the racy window once"
    (t_check, t_del), = _window_log
    return marks[0], t_check, t_del


def _run_overlap(monkeypatch, delay):
    """One sanitized world: close a host's only writer while a second
    writer on the same host starts re-opening *delay* seconds after the
    close begins.  Returns the recorded conflicts."""
    world = _sanitized_world(monkeypatch)
    env, mount = world.env, world.mount
    node = world.cluster.nodes[0]
    first = Client(node=node, client_id=0)
    second = Client(node=node, client_id=1)

    def closer(env, handle):
        yield from mount.close_write(handle)

    def reopener(env):
        yield env.timeout(delay)
        h2 = yield from mount.open_write(second, "/ckpt")
        yield from h2.write(4096, ZeroData(4096))
        yield from mount.close_write(h2)

    def scenario(env):
        h1 = yield from mount.open_write(first, "/ckpt")
        yield from h1.write(0, ZeroData(4096))
        env.process(closer(env, h1), "closer")
        env.process(reopener(env), "reopener")

    env.process(scenario(env), "scenario")
    try:
        env.run()
    except RaceConditionError:
        pass  # strict mode stops the run at the offending write
    return env.sanitizer.conflicts


def _scan_delays(monkeypatch):
    """Re-opener start offsets stepping through the measured racy window."""
    t0, t_check, t_del = _measure_window(monkeypatch)
    width = t_del - t_check
    assert width > 0, "racy metadata window must take simulated time"
    step = width / 2
    delays, d = [], 0.0
    while d <= (t_del - t0) + width:
        delays.append(d)
        d += step
    return delays


def test_sanitizer_detects_reintroduced_last_closer_race(monkeypatch):
    delays = _scan_delays(monkeypatch)
    monkeypatch.setattr(PlfsWriteHandle, "_drop_metadata",
                        _racy_drop_metadata)
    for delay in delays:
        conflicts = _run_overlap(monkeypatch, delay)
        if conflicts:
            c = conflicts[0]
            assert c.container.startswith("plfs-host-refs")
            assert c.kind in ("lost-update", "stale-read")
            assert c.read_epoch < c.write_epoch
            return
    pytest.fail("racy _drop_metadata escaped the sanitizer at every "
                f"re-open delay in {delays}")


def test_shipped_close_path_is_race_free(monkeypatch):
    delays = _scan_delays(monkeypatch)
    monkeypatch.undo()   # drop the racy patch; keep scanning the window
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    for delay in delays:
        conflicts = _run_overlap(monkeypatch, delay)
        assert conflicts == [], (
            f"shipped close path flagged at re-open delay {delay}: "
            f"{[c.render() for c in conflicts]}")
