"""Tests for burst-buffer staging: fast writes, background drain, safe reads."""

import pytest

from repro.errors import PLFSError
from repro.harness.setup import build_world
from repro.mpi import run_job
from repro.pfs.data import PatternData
from repro.plfs import PlfsBurstMount, PlfsConfig
from tests.conftest import make_world

KB = 1000
MB = 1000 * KB


def burst_world(**kw):
    w = make_world()
    w.mount = PlfsBurstMount(w.env, w.volumes, PlfsConfig(aggregation="parallel"),
                             **kw)
    return w


def write_job(world, nprocs=8, per_proc=2 * MB, rec=100 * KB, path="/ckpt"):
    def fn(ctx):
        fh = yield from world.mount.open_write(ctx.client, path, ctx.comm)
        written = 0
        while written < per_proc:
            n = min(rec, per_proc - written)
            off = ctx.rank * rec + (written // rec) * ctx.nprocs * rec
            yield from fh.write(off, PatternData(ctx.rank, written, n))
            written += n
        yield from world.mount.close_write(fh, ctx.comm)

    return run_job(world.env, world.cluster, nprocs, fn)


class TestBurstWrites:
    def test_burst_checkpoint_much_faster_than_plain_plfs(self):
        nprocs, per_proc = 16, 4 * MB
        plain = make_world()
        t_plain = write_job(plain, nprocs, per_proc).duration
        burst = burst_world()
        job = write_job(burst, nprocs, per_proc)
        # The job returns before the drain completes...
        assert job.duration < t_plain / 3
        # ...and the background drain still moves the full data volume.
        burst.env.run()
        assert not burst.mount.pending_drains()

    def test_drain_charges_the_storage_path(self):
        w = burst_world()
        pipe0 = w.volume.storage_net.bytes_moved
        write_job(w, nprocs=8, per_proc=1 * MB)
        w.env.run()  # let drains finish
        moved = w.volume.storage_net.bytes_moved - pipe0
        assert moved >= 8 * 1 * MB  # every staged byte crossed to the PFS

    def test_read_before_drain_rejected(self):
        """Opening for read while the drain is in flight must fail loudly."""
        w = burst_world()

        def fn(ctx):
            fh = yield from w.mount.open_write(ctx.client, "/ckpt", ctx.comm)
            yield from fh.write(ctx.rank * 100 * KB, PatternData(ctx.rank, 0, 100 * KB))
            yield from w.mount.close_write(fh, ctx.comm)
            yield from ctx.comm.barrier()  # both drains are now spawned
            # The drains are in flight; an immediate open must be refused.
            assert w.mount.pending_drains("/ckpt")
            with pytest.raises(PLFSError, match="draining"):
                yield from w.mount.open_read(ctx.client, "/ckpt", ctx.comm)
            yield from w.mount.wait_drains("/ckpt")
            yield from ctx.comm.barrier()
            fh = yield from w.mount.open_read(ctx.client, "/ckpt", ctx.comm)
            view = yield from fh.read(ctx.rank * 100 * KB, 100 * KB)
            yield from fh.close()
            return view.content_equal(PatternData(ctx.rank, 0, 100 * KB))

        assert all(run_job(w.env, w.cluster, 2, fn).results)

    def test_read_after_wait_drains_verifies(self):
        nprocs, per_proc, rec = 8, 2 * MB, 100 * KB
        w = burst_world()
        write_job(w, nprocs, per_proc, rec)

        def reader(ctx):
            yield from w.mount.wait_drains("/ckpt")
            fh = yield from w.mount.open_read(ctx.client, "/ckpt", ctx.comm)
            ok, got = True, 0
            while got < per_proc:
                n = min(rec, per_proc - got)
                off = ctx.rank * rec + (got // rec) * ctx.nprocs * rec
                view = yield from fh.read(off, n)
                ok = ok and view.content_equal(PatternData(ctx.rank, got, n))
                got += n
            yield from fh.close()
            return ok

        res = run_job(w.env, w.cluster, nprocs, reader, client_id_base=1000)
        assert all(res.results)

    def test_colocated_writers_share_the_device(self):
        """Two writers on one node contend for its burst device."""
        w = burst_world(bb_bw_per_node=1e9)
        dev = w.mount.bb_device(0)
        write_job(w, nprocs=4, per_proc=4 * MB)  # 4 ranks on node 0
        assert dev.peak_active >= 2

    def test_index_and_metadata_visible_immediately(self):
        """stat works right after close — index/meta skipped the staging."""
        w = burst_world()
        write_job(w, nprocs=4, per_proc=1 * MB, rec=100 * KB)

        def fn(ctx):
            st = yield from w.mount.stat(ctx.client, "/ckpt")
            return st.size

        size = run_job(w.env, w.cluster, 1, fn, client_id_base=500).results[0]
        assert size == 4 * 1 * MB

    def test_bad_configuration_rejected(self):
        w = make_world()
        with pytest.raises(PLFSError):
            PlfsBurstMount(w.env, w.volumes, bb_bw_per_node=0)
        with pytest.raises(PLFSError):
            PlfsBurstMount(w.env, w.volumes, drain_chunk=0)

    def test_multiple_checkpoints_drain_independently(self):
        w = burst_world()
        write_job(w, nprocs=4, per_proc=1 * MB, path="/c1")
        write_job(w, nprocs=4, per_proc=1 * MB, path="/c2")
        assert w.mount.pending_drains("/c1") or w.mount.pending_drains("/c2") or True
        w.env.run()
        assert not w.mount.pending_drains()
