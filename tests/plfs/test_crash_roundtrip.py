"""Crash round-trip: a writer killed between index spill and data flush.

The sharpest version of PLFS's crash contract: a writer that has spilled
part of its index and then dies mid-stream (``abandon()`` — no close, no
final spill, openhost mark left behind) must lose *exactly* the unspilled
suffix.  ``plfs_check`` has to flag the dirt, ``plfs_recover`` has to make
the container consistent, and a reader afterwards must get the spilled
prefix byte-identically and holes for the lost tail — with every other
rank's data untouched.
"""

import pytest

from repro.mpi import run_job
from repro.pfs.data import PatternData, ZeroData
from repro.plfs.tools import plfs_check, plfs_recover
from tests.conftest import make_world

KB = 1000
REC = 5 * KB
NPROCS = 4
N_RECORDS = 5
SPILL = 2            # spill the index every 2 records
CRASH_RANK = 2
SPILLED = (N_RECORDS // SPILL) * SPILL   # records the crash cannot lose


def _offset(rank, i):
    return rank * REC + i * NPROCS * REC


def _write_and_crash(world):
    def fn(ctx):
        fh = yield from world.mount.open_write(ctx.client, "/f", ctx.comm)
        for i in range(N_RECORDS):
            yield from fh.write(_offset(ctx.rank, i),
                                PatternData(ctx.rank, i * REC, REC))
            if ctx.rank == CRASH_RANK and i == N_RECORDS - 1:
                # Records 0..3 are covered by index spills (every 2);
                # record 4 was acked but its index entry never left the
                # writer's memory: the kill lands between the last index
                # spill and the close-time flush.
                fh.abandon()
                return "crashed"
        yield from world.mount.close_write(fh, ctx.comm)
        return "closed"

    res = run_job(world.env, world.cluster, NPROCS, fn)
    assert res.results.count("crashed") == 1


def _solo(world, gen_fn, base=9000):
    return run_job(world.env, world.cluster, 1, gen_fn,
                   client_id_base=base).results[0]


@pytest.fixture
def crashed_world():
    world = make_world(index_spill_records=SPILL)
    _write_and_crash(world)
    return world


class TestCrashRoundTrip:
    def test_check_flags_the_crash(self, crashed_world):
        w = crashed_world
        report = _solo(w, lambda ctx: plfs_check(w.mount.layout("/f"), ctx.client))
        assert not report.clean
        assert report.dirty_hosts                       # openhost mark left
        assert report.unindexed_bytes == (N_RECORDS - SPILLED) * REC

    def test_recover_restores_exactly_the_spilled_prefix(self, crashed_world):
        w = crashed_world
        report = _solo(w, lambda ctx: plfs_recover(w.mount.layout("/f"), ctx.client))
        assert not report.dirty_hosts
        assert report.meta_size == report.logical_size

        w.drop_caches()

        def reader(ctx):
            fh = yield from w.mount.open_read(ctx.client, "/f", None)
            out = []
            # The crashed rank's spilled prefix: byte-identical.
            for i in range(SPILLED):
                view = yield from fh.read(_offset(CRASH_RANK, i), REC)
                out.append(view.content_equal(PatternData(CRASH_RANK, i * REC, REC)))
            # Its unspilled tail: a hole, never garbage.
            view = yield from fh.read(_offset(CRASH_RANK, SPILLED), REC)
            out.append(view.content_equal(ZeroData(view.length)))
            # Every surviving rank: all records intact.
            for rank in range(NPROCS):
                if rank == CRASH_RANK:
                    continue
                for i in range(N_RECORDS):
                    view = yield from fh.read(_offset(rank, i), REC)
                    out.append(view.content_equal(PatternData(rank, i * REC, REC)))
            yield from fh.close()
            return out

        checks = _solo(w, reader, base=9500)
        assert all(checks)

    def test_recovered_container_is_then_clean(self, crashed_world):
        w = crashed_world
        _solo(w, lambda ctx: plfs_recover(w.mount.layout("/f"), ctx.client))
        report = _solo(w, lambda ctx: plfs_check(w.mount.layout("/f"), ctx.client),
                       base=9600)
        assert report.clean
