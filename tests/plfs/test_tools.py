"""Tests for index merging, spills, crash semantics, and container tools."""

import pytest

from repro.errors import FileNotFound
from repro.mpi import run_job
from repro.pfs.data import PatternData
from repro.plfs.index import WriterIndex
from repro.plfs.tools import plfs_check, plfs_map, plfs_recover
from tests.conftest import make_world

KB = 1000


class TestIndexMerge:
    def test_contiguous_records_merge(self):
        w = WriterIndex(writer_id=1, node_id=0, merge=True)
        w.record(0, 100, physical=0, stamp=1.0)
        w.record(100, 100, physical=100, stamp=2.0)   # extends both ranges
        w.record(300, 100, physical=200, stamp=3.0)   # logical gap: no merge
        assert len(w) == 2
        assert w.journal.size == 400

    def test_physical_discontinuity_blocks_merge(self):
        w = WriterIndex(writer_id=1, node_id=0, merge=True)
        w.record(0, 100, physical=0, stamp=1.0)
        w.record(100, 100, physical=500, stamp=2.0)  # logical contiguous only
        assert len(w) == 2

    def test_merge_disabled(self):
        w = WriterIndex(writer_id=1, node_id=0, merge=False)
        w.record(0, 100, physical=0, stamp=1.0)
        w.record(100, 100, physical=100, stamp=2.0)
        assert len(w) == 2

    def test_seal_blocks_merge(self):
        w = WriterIndex(writer_id=1, node_id=0, merge=True)
        w.record(0, 100, physical=0, stamp=1.0)
        w.seal()
        w.record(100, 100, physical=100, stamp=2.0)
        assert len(w) == 2

    def test_merged_index_resolves_identically(self):
        merged = WriterIndex(1, 0, merge=True)
        plain = WriterIndex(1, 0, merge=False)
        for i in range(10):
            for w in (merged, plain):
                w.record(i * 50, 50, physical=i * 50, stamp=float(i))
        assert len(merged) == 1 and len(plain) == 10
        q1 = merged.journal.flatten().query(120, 200)
        q2 = plain.journal.flatten().query(120, 200)
        # Same bytes resolve to the same physical locations.
        def tiles(q):
            return [(s, e, off) for s, e, _src, off in q]
        assert tiles(q1)[0][0] == tiles(q2)[0][0]
        got1 = {(s, off) for s, e, off in tiles(q1)}
        # plain has more segments but the mapping function is identical:
        for s, e, off in tiles(q2):
            assert off == s  # physical == logical for this layout
        for s, e, off in tiles(q1):
            assert off == s

    def test_segmented_writes_collapse_to_one_record_per_writer(self, world):
        """IOR-style contiguous writes produce O(1) index per rank."""
        def fn(ctx):
            fh = yield from world.mount.open_write(ctx.client, "/f", ctx.comm)
            base = ctx.rank * 50 * KB
            for i in range(10):
                yield from fh.write(base + i * 5 * KB, PatternData(ctx.rank, i * 5 * KB, 5 * KB))
            n_records = len(fh.index)
            yield from world.mount.close_write(fh, ctx.comm)
            return n_records

        res = run_job(world.env, world.cluster, 4, fn)
        assert res.results == [1, 1, 1, 1]


def write_strided(world, nprocs=4, per_proc=20 * KB, rec=5 * KB, crash_ranks=()):
    def fn(ctx):
        fh = yield from world.mount.open_write(ctx.client, "/f", ctx.comm)
        written = 0
        while written < per_proc:
            n = min(rec, per_proc - written)
            off = ctx.rank * rec + (written // rec) * nprocs * rec
            yield from fh.write(off, PatternData(ctx.rank, written, n))
            written += n
        if ctx.rank in crash_ranks:
            fh.abandon()
            return "crashed"
        yield from world.mount.close_write(fh, ctx.comm)
        return "closed"

    return run_job(world.env, world.cluster, nprocs, fn)


def solo(world, gen_fn, base=5000):
    return run_job(world.env, world.cluster, 1, gen_fn,
                   client_id_base=base).results[0]


class TestTools:
    def test_map_of_healthy_container(self, world):
        write_strided(world)
        entries = solo(world, lambda ctx: plfs_map(
            world.mount.layout("/f"), ctx.client))
        assert len(entries) == 16  # 4 ranks x 4 records, strided (no merges)
        covered = sum(e - s for s, e, _, _ in entries)
        assert covered == 4 * 20 * KB

    def test_map_missing_raises(self, world):
        def fn(ctx):
            yield from plfs_map(world.mount.layout("/nope"), ctx.client)

        with pytest.raises(FileNotFound):
            run_job(world.env, world.cluster, 1, fn)

    def test_check_healthy_container_is_clean(self, world):
        write_strided(world)
        report = solo(world, lambda ctx: plfs_check(
            world.mount.layout("/f"), ctx.client))
        assert report.clean
        assert report.n_writers == 4
        assert report.logical_size == 4 * 20 * KB
        assert report.meta_size == report.logical_size

    def test_check_flags_crashed_writer(self):
        w = make_world(index_spill_records=0)  # index written only at close
        write_strided(w, crash_ranks=(2,))
        report = solo(w, lambda ctx: plfs_check(w.mount.layout("/f"), ctx.client))
        assert not report.clean
        assert report.dirty_hosts  # openhost mark left behind
        assert report.unindexed_bytes == 20 * KB  # rank 2's data unreachable
        # The empty index log still names its writer.
        assert report.n_writers == 4

    def test_spill_bounds_crash_loss(self):
        w = make_world(index_spill_records=2)  # spill every 2 records
        # 5 records each: spills after records 2 and 4; record 5 unspilled.
        write_strided(w, per_proc=25 * KB, crash_ranks=(2,))
        report = solo(w, lambda ctx: plfs_check(w.mount.layout("/f"), ctx.client))
        assert report.n_writers == 4           # rank 2's spilled index counts
        assert report.unindexed_bytes == 5 * KB  # only the unspilled tail

    def test_recover_makes_container_consistent(self):
        w = make_world(index_spill_records=2)
        write_strided(w, per_proc=25 * KB, crash_ranks=(1,))
        report = solo(w, lambda ctx: plfs_recover(w.mount.layout("/f"), ctx.client))
        assert not report.dirty_hosts
        assert report.meta_size == report.logical_size
        # Unindexed tail bytes remain (unrecoverable), flagged but harmless.
        assert report.unindexed_bytes == 5 * KB

        # stat and reads agree after recovery.
        def reader(ctx):
            st = yield from w.mount.stat(ctx.client, "/f")
            fh = yield from w.mount.open_read(ctx.client, "/f", ctx.comm)
            ok = fh.size == st.size
            view = yield from fh.read(0, 5 * KB)
            yield from fh.close()
            return ok and view.content_equal(PatternData(0, 0, 5 * KB))

        assert solo(w, reader, base=9000)

    def test_surviving_ranks_data_readable_after_crash(self):
        """A crashed peer never corrupts other writers' data."""
        w = make_world(index_spill_records=0)
        write_strided(w, nprocs=4, crash_ranks=(3,))

        def reader(ctx):
            fh = yield from w.mount.open_read(ctx.client, "/f", ctx.comm)
            view = yield from fh.read(0, 5 * KB)  # rank 0's first record
            yield from fh.close()
            return view.content_equal(PatternData(0, 0, 5 * KB))

        assert solo(w, reader, base=7000)


class TestToolsFederated:
    def test_map_and_check_across_federated_volumes(self):
        w = make_world(n_volumes=3, federation="subdir", n_nodes=4, cores=4)
        write_strided(w, nprocs=8)
        layout = w.mount.layout("/f")
        report = solo(w, lambda ctx: plfs_check(layout, ctx.client))
        assert report.clean
        assert report.logical_size == 8 * 20 * KB
        entries = solo(w, lambda ctx: plfs_map(layout, ctx.client), base=6000)
        covered = sum(e - s for s, e, _, _ in entries)
        assert covered == 8 * 20 * KB

    def test_recover_federated_after_crash(self):
        w = make_world(n_volumes=3, federation="subdir", n_nodes=4, cores=4,
                       index_spill_records=1)
        write_strided(w, nprocs=8, crash_ranks=(5,))
        layout = w.mount.layout("/f")
        report = solo(w, lambda ctx: plfs_recover(layout, ctx.client))
        assert not report.dirty_hosts
        assert report.meta_size == report.logical_size
