"""End-to-end PLFS correctness: what goes in through N-1 comes back out.

These tests exercise the full stack — MPI job, PLFS container, backing
volume, OSD/MDS models — and verify *content*, not just timing.
"""

import pytest

from repro.errors import FileNotFound, UnsupportedOperation
from repro.mpi import run_job
from repro.pfs.data import PatternData
from tests.conftest import make_world

KB = 1000


def n1_writer(mount, path, per_proc, rec):
    """Rank fn: strided N-1 write of `per_proc` bytes in `rec`-byte records."""

    def fn(ctx):
        parent = path.rpartition("/")[0]
        if parent and ctx.rank == 0 and not mount.exists(parent):
            yield from mount.mkdir(ctx.client, parent)
        yield from ctx.comm.barrier()
        fh = yield from mount.open_write(ctx.client, path, ctx.comm)
        written = 0
        while written < per_proc:
            n = min(rec, per_proc - written)
            logical = ctx.rank * rec + (written // rec) * ctx.nprocs * rec
            yield from fh.write(logical, PatternData(ctx.rank, written, n))
            written += n
        flattened = yield from mount.close_write(fh, ctx.comm)
        return flattened

    return fn


def n1_reader(mount, path, per_proc, rec, shift=0):
    """Rank fn: read back the strided pattern written by rank (rank+shift)."""

    def fn(ctx):
        src = (ctx.rank + shift) % ctx.nprocs
        fh = yield from mount.open_read(ctx.client, path, ctx.comm)
        got = 0
        ok = True
        while got < per_proc:
            n = min(rec, per_proc - got)
            logical = src * rec + (got // rec) * ctx.nprocs * rec
            view = yield from fh.read(logical, n)
            ok = ok and view.content_equal(PatternData(src, got, n))
            got += n
        yield from fh.close()
        return ok

    return fn


@pytest.mark.parametrize("aggregation", ["original", "flatten", "parallel"])
class TestN1RoundTrip:
    nprocs, per_proc, rec = 8, 40 * KB, 7 * KB

    def test_same_pattern_readback(self, aggregation):
        w = make_world(aggregation=aggregation)
        run_job(w.env, w.cluster, self.nprocs,
                n1_writer(w.mount, "/ckpt", self.per_proc, self.rec))
        res = run_job(w.env, w.cluster, self.nprocs,
                      n1_reader(w.mount, "/ckpt", self.per_proc, self.rec),
                      client_id_base=1000)
        assert all(res.results)

    def test_shifted_pattern_readback(self, aggregation):
        """Every rank reads a *different* rank's region (cross-log reads)."""
        w = make_world(aggregation=aggregation)
        run_job(w.env, w.cluster, self.nprocs,
                n1_writer(w.mount, "/ckpt", self.per_proc, self.rec))
        res = run_job(w.env, w.cluster, self.nprocs,
                      n1_reader(w.mount, "/ckpt", self.per_proc, self.rec, shift=3),
                      client_id_base=1000)
        assert all(res.results)

    def test_single_reader_sees_whole_file(self, aggregation):
        w = make_world(aggregation=aggregation)
        nprocs, per_proc, rec = 4, 20 * KB, 5 * KB
        run_job(w.env, w.cluster, nprocs, n1_writer(w.mount, "/f", per_proc, rec))

        def solo(ctx):
            fh = yield from w.mount.open_read(ctx.client, "/f", ctx.comm)
            total = fh.size
            view = yield from fh.read(0, total)
            yield from fh.close()
            return total, view

        res = run_job(w.env, w.cluster, 1, solo, client_id_base=2000)
        total, view = res.results[0]
        assert total == nprocs * per_proc
        # Check the strided reassembly piecewise.
        for stripe in range(per_proc // rec):
            for rank in range(nprocs):
                logical = rank * rec + stripe * nprocs * rec
                sub = yield_view_slice(view, logical, rec)
                assert sub.content_equal(PatternData(rank, stripe * rec, rec))


def yield_view_slice(view, offset, length):
    """Slice a DataView by absolute offset (helper for assertions)."""
    from repro.pfs.data import DataView

    out, pos = [], 0
    for p in view.pieces:
        lo, hi = pos, pos + p.length
        s, e = max(lo, offset), min(hi, offset + length)
        if e > s:
            out.append(p.slice(s - lo, e - s))
        pos = hi
    return DataView(out)


@pytest.mark.parametrize("federation", ["none", "container", "subdir"])
def test_federation_roundtrip(federation):
    w = make_world(n_volumes=3, federation=federation, aggregation="parallel")
    nprocs, per_proc, rec = 8, 20 * KB, 5 * KB
    run_job(w.env, w.cluster, nprocs, n1_writer(w.mount, "/d/ckpt", per_proc, rec))
    res = run_job(w.env, w.cluster, nprocs,
                  n1_reader(w.mount, "/d/ckpt", per_proc, rec, shift=1),
                  client_id_base=1000)
    assert all(res.results)


def test_subdir_federation_spreads_volumes():
    w = make_world(n_volumes=3, federation="subdir", n_nodes=4, cores=4)
    nprocs = 8
    run_job(w.env, w.cluster, nprocs, n1_writer(w.mount, "/f", 10 * KB, 5 * KB))
    layout = w.mount.layout("/f")
    vols_with_logs = set()
    for s in range(layout.cfg.n_subdirs):
        vol = layout.subdir_volume(s)
        if vol.ns.exists(layout.subdir_path(s)):
            vols_with_logs.add(vol.name)
    assert len(vols_with_logs) > 1


class TestOverwrites:
    def test_later_write_wins_across_ranks(self, world):
        w = world

        def fn(ctx):
            fh = yield from w.mount.open_write(ctx.client, "/f", ctx.comm)
            if ctx.rank == 0:
                yield from fh.write(0, PatternData(100, 0, 10 * KB))
            yield from ctx.comm.barrier()
            yield ctx.env.timeout(0.001)
            if ctx.rank == 1:
                yield from fh.write(5 * KB, PatternData(200, 0, 5 * KB))
            yield from w.mount.close_write(fh, ctx.comm)

        run_job(w.env, w.cluster, 2, fn)

        def reader(ctx):
            fh = yield from w.mount.open_read(ctx.client, "/f", ctx.comm)
            head = yield from fh.read(0, 5 * KB)
            tail = yield from fh.read(5 * KB, 5 * KB)
            yield from fh.close()
            return (head.content_equal(PatternData(100, 0, 5 * KB)),
                    tail.content_equal(PatternData(200, 0, 5 * KB)))

        res = run_job(w.env, w.cluster, 1, reader, client_id_base=1000)
        assert res.results[0] == (True, True)

    def test_sparse_file_holes_read_zero(self, world):
        w = world

        def writer(ctx):
            fh = yield from w.mount.open_write(ctx.client, "/sparse", ctx.comm)
            yield from fh.write(100 * KB, PatternData(1, 0, KB))
            yield from w.mount.close_write(fh, ctx.comm)

        run_job(w.env, w.cluster, 1, writer)

        def reader(ctx):
            fh = yield from w.mount.open_read(ctx.client, "/sparse", ctx.comm)
            assert fh.size == 101 * KB
            hole = yield from fh.read(0, KB)
            yield from fh.close()
            return hole.materialize().any()

        res = run_job(w.env, w.cluster, 1, reader, client_id_base=1000)
        assert res.results[0] == False  # noqa: E712


class TestFlattenBehaviour:
    def test_flatten_produces_global_index(self):
        w = make_world(aggregation="flatten")
        res = run_job(w.env, w.cluster, 4, n1_writer(w.mount, "/f", 10 * KB, 5 * KB))
        assert all(res.results)  # every rank reports the flatten happened
        layout = w.mount.layout("/f")
        assert layout.home_volume.ns.exists(layout.global_index_path)

    def test_flatten_skipped_when_over_threshold(self):
        w = make_world(aggregation="flatten", flatten_threshold=96)
        # 10 records/rank * 48B = 480B > 96B threshold -> no flatten.
        res = run_job(w.env, w.cluster, 4, n1_writer(w.mount, "/f", 10 * KB, 1 * KB))
        assert not any(res.results)
        layout = w.mount.layout("/f")
        assert not layout.home_volume.ns.exists(layout.global_index_path)
        # Reads still work through the fallback path.
        rres = run_job(w.env, w.cluster, 4, n1_reader(w.mount, "/f", 10 * KB, 1 * KB),
                       client_id_base=1000)
        assert all(rres.results)


class TestMetadataOps:
    def test_stat_reports_logical_size(self, world):
        w = world
        run_job(w.env, w.cluster, 4, n1_writer(w.mount, "/f", 10 * KB, 5 * KB))

        def fn(ctx):
            st = yield from w.mount.stat(ctx.client, "/f")
            return st

        st = run_job(w.env, w.cluster, 1, fn, client_id_base=1000).results[0]
        assert st.size == 4 * 10 * KB
        assert not st.is_dir

    def test_stat_missing_raises(self, world):
        w = world

        def fn(ctx):
            yield from w.mount.stat(ctx.client, "/nope")

        with pytest.raises(FileNotFound):
            run_job(w.env, w.cluster, 1, fn)

    def test_readdir_hides_container_internals(self, world):
        w = world
        run_job(w.env, w.cluster, 2, n1_writer(w.mount, "/dir/f", 5 * KB, 5 * KB))

        def fn(ctx):
            names = yield from w.mount.readdir(ctx.client, "/dir")
            return names

        names = run_job(w.env, w.cluster, 1, fn, client_id_base=50).results[0]
        assert names == ["f"]

    def test_unlink_removes_container_everywhere(self):
        w = make_world(n_volumes=3, federation="subdir")
        run_job(w.env, w.cluster, 8, n1_writer(w.mount, "/f", 5 * KB, 5 * KB))

        def fn(ctx):
            yield from w.mount.unlink(ctx.client, "/f")

        run_job(w.env, w.cluster, 1, fn, client_id_base=50)
        assert not w.mount.exists("/f")
        for vol in w.volumes:
            assert not vol.ns.exists("/f")

    def test_create_exclusive(self, world):
        w = world

        def fn(ctx):
            yield from w.mount.create(ctx.client, "/new")
            return w.mount.exists("/new")

        assert run_job(w.env, w.cluster, 1, fn).results[0]

    def test_rw_open_unsupported(self, world):
        w = world

        def fn(ctx):
            with pytest.raises(UnsupportedOperation):
                yield from w.mount.open_write(ctx.client, "/f", ctx.comm, mode="rw")
            return True

        assert run_job(w.env, w.cluster, 1, fn).results[0]

    def test_open_read_missing_raises(self, world):
        w = world

        def fn(ctx):
            yield from w.mount.open_read(ctx.client, "/absent", ctx.comm)

        with pytest.raises(FileNotFound):
            run_job(w.env, w.cluster, 1, fn)


class TestWriteSpeedupPremise:
    def test_plfs_n1_write_much_faster_than_direct(self):
        """Fig. 2's premise at miniature scale: PLFS vs direct N-1 writes."""
        nprocs, per_proc, rec = 16, 1020 * KB, 17 * KB

        def direct_writer(vol):
            def fn(ctx):
                fh = yield from vol.open(ctx.client, "/shared", "w", create=True)
                written = 0
                while written < per_proc:
                    n = min(rec, per_proc - written)
                    logical = ctx.rank * rec + (written // rec) * nprocs * rec
                    yield from fh.write(logical, PatternData(ctx.rank, written, n))
                    written += n
                yield from fh.close()
            return fn

        w1 = make_world()
        r1 = run_job(w1.env, w1.cluster, nprocs, direct_writer(w1.volume))
        t_direct = r1.duration

        w2 = make_world()
        r2 = run_job(w2.env, w2.cluster, nprocs,
                     n1_writer(w2.mount, "/shared", per_proc, rec))
        t_plfs = r2.duration
        assert t_direct > 2 * t_plfs, f"direct={t_direct:.2f}s plfs={t_plfs:.2f}s"


class TestLogicalTruncate:
    def test_truncate_discards_previous_generation(self, world):
        w = world

        def writer(ctx, seed, nbytes, truncate):
            fh = yield from w.mount.open_write(ctx.client, "/t", ctx.comm,
                                               truncate=truncate)
            yield from fh.write(0, PatternData(seed, 0, nbytes))
            yield from w.mount.close_write(fh, ctx.comm)

        run_job(w.env, w.cluster, 1, lambda ctx: writer(ctx, 1, 10 * KB, False))
        # Rewrite a SHORTER file with O_TRUNC: no stale tail may survive.
        run_job(w.env, w.cluster, 1, lambda ctx: writer(ctx, 2, 2 * KB, True),
                client_id_base=50)

        def reader(ctx):
            st = yield from w.mount.stat(ctx.client, "/t")
            fh = yield from w.mount.open_read(ctx.client, "/t", ctx.comm)
            size = fh.size
            view = yield from fh.read(0, size)
            yield from fh.close()
            return st.size, size, view.content_equal(PatternData(2, 0, 2 * KB))

        st_size, size, ok = run_job(w.env, w.cluster, 1, reader,
                                    client_id_base=99).results[0]
        assert st_size == 2 * KB
        assert size == 2 * KB
        assert ok

    def test_without_truncate_old_tail_survives(self, world):
        w = world

        def writer(ctx, seed, nbytes):
            fh = yield from w.mount.open_write(ctx.client, "/t", ctx.comm)
            yield from fh.write(0, PatternData(seed, 0, nbytes))
            yield from w.mount.close_write(fh, ctx.comm)

        run_job(w.env, w.cluster, 1, lambda ctx: writer(ctx, 1, 10 * KB))
        run_job(w.env, w.cluster, 1, lambda ctx: writer(ctx, 2, 2 * KB),
                client_id_base=50)

        def reader(ctx):
            fh = yield from w.mount.open_read(ctx.client, "/t", ctx.comm)
            head = yield from fh.read(0, 2 * KB)
            tail = yield from fh.read(2 * KB, 8 * KB)
            size = fh.size
            yield from fh.close()
            return (size, head.content_equal(PatternData(2, 0, 2 * KB)),
                    tail.content_equal(PatternData(1, 2 * KB, 8 * KB)))

        size, head_ok, tail_ok = run_job(w.env, w.cluster, 1, reader,
                                         client_id_base=99).results[0]
        assert size == 10 * KB
        assert head_ok and tail_ok

    def test_collective_truncate_by_rank_zero(self, world):
        w = world
        run_job(w.env, w.cluster, 4, n1_writer(w.mount, "/t", 10 * KB, 5 * KB))

        def rewriter(ctx):
            fh = yield from w.mount.open_write(ctx.client, "/t", ctx.comm,
                                               truncate=True)
            yield from fh.write(ctx.rank * KB, PatternData(9, ctx.rank * KB, KB))
            yield from w.mount.close_write(fh, ctx.comm)

        run_job(w.env, w.cluster, 4, rewriter, client_id_base=50)

        def reader(ctx):
            fh = yield from w.mount.open_read(ctx.client, "/t", ctx.comm)
            size = fh.size
            view = yield from fh.read(0, size)
            yield from fh.close()
            return size, view.content_equal(PatternData(9, 0, 4 * KB))

        size, ok = run_job(w.env, w.cluster, 1, reader, client_id_base=99).results[0]
        assert size == 4 * KB
        assert ok
