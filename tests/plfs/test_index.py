"""Unit tests for PLFS index records, serialization, and merging."""

import numpy as np
import pytest

from repro.errors import PLFSError
from repro.pfs.data import DataView, LiteralData
from repro.plfs.index import RECORD_DTYPE, GlobalIndex, WriterIndex


class TestWriterIndex:
    def test_record_and_sizes(self):
        w = WriterIndex(writer_id=3, node_id=1)
        w.record(0, 100, physical=0, stamp=1.0)
        w.record(500, 100, physical=100, stamp=2.0)
        assert len(w) == 2
        assert w.nbytes == 96
        assert w.journal.size == 600

    def test_serialize_parse_roundtrip(self):
        w = WriterIndex(writer_id=7, node_id=2)
        for i in range(10):
            w.record(i * 1000, 500, physical=i * 500, stamp=float(i))
        blob = w.serialize()
        assert blob.length == 10 * RECORD_DTYPE.itemsize
        gi = WriterIndex.parse(DataView.of(blob), writer_id=7, node_id=2)
        assert len(gi) == 10
        assert gi.writers == {7: 2}
        segs = list(gi.flatten().segments())
        assert segs[0] == (0, 500, 7, 0)
        assert segs[-1] == (9000, 9500, 7, 4500)

    def test_parse_rejects_misaligned(self):
        with pytest.raises(PLFSError):
            WriterIndex.parse(DataView.of(LiteralData(b"x" * 47)), 0, 0)

    def test_empty_serialize(self):
        w = WriterIndex(writer_id=1, node_id=0)
        gi = WriterIndex.parse(DataView.of(w.serialize()), 1, 0)
        assert len(gi) == 0


class TestGlobalIndex:
    def build(self):
        gi = GlobalIndex()
        w1 = WriterIndex(writer_id=1, node_id=0)
        w1.record(0, 100, physical=0, stamp=1.0)
        w2 = WriterIndex(writer_id=2, node_id=1)
        w2.record(100, 100, physical=0, stamp=1.0)
        gi.merge_writer(w1)
        gi.merge_writer(w2)
        return gi

    def test_merge_writers(self):
        gi = self.build()
        assert gi.logical_size == 200
        assert gi.writers == {1: 0, 2: 1}
        assert list(gi.flatten().segments()) == [(0, 100, 1, 0), (100, 200, 2, 0)]

    def test_overwrite_resolution_by_stamp(self):
        gi = GlobalIndex()
        early = WriterIndex(writer_id=1, node_id=0)
        early.record(0, 100, physical=0, stamp=1.0)
        late = WriterIndex(writer_id=2, node_id=0)
        late.record(50, 100, physical=0, stamp=2.0)
        gi.merge_writer(early)
        gi.merge_writer(late)
        assert list(gi.flatten().segments()) == [(0, 50, 1, 0), (50, 150, 2, 0)]

    def test_tie_broken_by_writer_id(self):
        gi = GlobalIndex()
        for wid in (5, 3):
            w = WriterIndex(writer_id=wid, node_id=0)
            w.record(0, 10, physical=0, stamp=1.0)
            gi.merge_writer(w)
        assert list(gi.flatten().segments()) == [(0, 10, 5, 0)]

    def test_serialize_deserialize_roundtrip(self):
        gi = self.build()
        gi2 = GlobalIndex.deserialize(DataView.of(gi.serialize()))
        assert gi2.writers == gi.writers
        assert list(gi2.flatten().segments()) == list(gi.flatten().segments())

    def test_deserialize_rejects_garbage(self):
        with pytest.raises(PLFSError):
            GlobalIndex.deserialize(DataView.of(LiteralData(b"short")))
        good = self.build().serialize()
        bad = LiteralData(good.materialize()[:-8])
        with pytest.raises(PLFSError):
            GlobalIndex.deserialize(DataView.of(bad))

    def test_merged_classmethod(self):
        parts = []
        for wid in range(4):
            w = WriterIndex(writer_id=wid, node_id=wid % 2)
            w.record(wid * 10, 10, physical=0, stamp=1.0)
            g = GlobalIndex()
            g.merge_writer(w)
            parts.append(g)
        gi = GlobalIndex.merged(parts)
        assert len(gi) == 4
        assert gi.logical_size == 40
        assert set(gi.writers) == {0, 1, 2, 3}

    def test_nbytes_counts_writer_table(self):
        gi = self.build()
        assert gi.nbytes == 2 * 48 + 2 * 16

    def test_large_roundtrip(self):
        gi = GlobalIndex()
        rng = np.random.default_rng(0)
        for wid in range(16):
            w = WriterIndex(writer_id=wid, node_id=wid % 4)
            off = int(rng.integers(0, 1 << 30))
            for i in range(100):
                w.record(off + i * 4096 * 16 + wid * 4096, 4096,
                         physical=i * 4096, stamp=float(i))
            gi.merge_writer(w)
        blob = gi.serialize()
        gi2 = GlobalIndex.deserialize(DataView.of(blob))
        assert len(gi2) == 1600
        f1, f2 = gi.flatten(), gi2.flatten()
        assert np.array_equal(f1.starts, f2.starts)
        assert np.array_equal(f1.srcs, f2.srcs)
