"""Unit tests for the three index-aggregation strategies (§IV)."""

import pytest

from repro.mpi import run_job
from repro.pfs.data import PatternData
from repro.plfs.aggregation import (
    aggregate_original,
    aggregate_parallel,
    list_index_logs,
    read_flattened_index,
)
from repro.plfs.config import PlfsConfig
from tests.conftest import make_world

KB = 1000


def write_n1(world, path="/f", nprocs=8, per_proc=20 * KB, rec=5 * KB):
    def fn(ctx):
        fh = yield from world.mount.open_write(ctx.client, path, ctx.comm)
        written = 0
        while written < per_proc:
            n = min(rec, per_proc - written)
            off = ctx.rank * rec + (written // rec) * nprocs * rec
            yield from fh.write(off, PatternData(ctx.rank, written, n))
            written += n
        yield from world.mount.close_write(fh, ctx.comm)

    run_job(world.env, world.cluster, nprocs, fn)


class TestListing:
    def test_lists_every_writer(self, world):
        write_n1(world, nprocs=8)

        def fn(ctx):
            entries = yield from list_index_logs(world.mount.layout("/f"), ctx.client)
            return entries

        entries = run_job(world.env, world.cluster, 1, fn,
                          client_id_base=100).results[0]
        assert len(entries) == 8
        writers = sorted(w for _, _, w, _ in entries)
        assert writers == list(range(8))


class TestOriginal:
    def test_builds_complete_index(self, world):
        write_n1(world, nprocs=8)

        def fn(ctx):
            gi = yield from aggregate_original(world.mount.layout("/f"), ctx.client)
            return gi

        gi = run_job(world.env, world.cluster, 1, fn, client_id_base=100).results[0]
        assert gi.logical_size == 8 * 20 * KB
        assert set(gi.writers) == set(range(8))

    def test_memoization_charges_but_skips_parse(self, world):
        write_n1(world, nprocs=8)
        cache = {}

        def fn(ctx):
            layout = world.mount.layout("/f")
            t0 = ctx.env.now
            g1 = yield from aggregate_original(layout, ctx.client, cache)
            t1 = ctx.env.now
            g2 = yield from aggregate_original(layout, ctx.client, cache)
            t2 = ctx.env.now
            return g1, g2, t1 - t0, t2 - t1

        g1, g2, d1, d2 = run_job(world.env, world.cluster, 1, fn,
                                 client_id_base=100).results[0]
        assert g2 is g1            # memoized object
        assert d2 > 0              # but simulated time still charged

    def test_memoization_invalidated_by_new_writes(self, world):
        write_n1(world, nprocs=4)
        cache = {}

        def agg(ctx):
            gi = yield from aggregate_original(world.mount.layout("/f"),
                                               ctx.client, cache)
            return gi

        g1 = run_job(world.env, world.cluster, 1, agg, client_id_base=100).results[0]
        # Append more data from a new job: fingerprint must change.
        write_n1(world, nprocs=4, per_proc=40 * KB)
        g2 = run_job(world.env, world.cluster, 1, agg, client_id_base=200).results[0]
        assert g2 is not g1
        assert g2.logical_size > g1.logical_size


class TestParallel:
    @pytest.mark.parametrize("nprocs,group", [(8, 0), (8, 2), (9, 3), (16, 4)])
    def test_all_ranks_get_identical_complete_index(self, nprocs, group):
        w = make_world(aggregation="parallel", parallel_group_size=group)
        write_n1(w, nprocs=nprocs)

        def fn(ctx):
            gi = yield from aggregate_parallel(
                w.mount.layout("/f"), ctx.client, ctx.comm, w.mount.cfg)
            return gi

        res = run_job(w.env, w.cluster, nprocs, fn, client_id_base=100)
        first = res.results[0]
        assert all(gi is first for gi in res.results)  # shared by reference
        assert set(first.writers) == set(range(nprocs))
        assert first.logical_size == nprocs * 20 * KB

    def test_single_rank_falls_back_to_original(self, world):
        write_n1(world, nprocs=4)

        def fn(ctx):
            gi = yield from aggregate_parallel(
                world.mount.layout("/f"), ctx.client, ctx.comm, world.mount.cfg)
            return len(gi.writers)

        assert run_job(world.env, world.cluster, 1, fn,
                       client_id_base=100).results[0] == 4


class TestFlattenRead:
    def test_missing_global_index_returns_none(self, world):
        write_n1(world, nprocs=4)  # aggregation default = parallel, no flatten

        def fn(ctx):
            gi = yield from read_flattened_index(world.mount.layout("/f"),
                                                 ctx.client, ctx.comm)
            return gi

        assert run_job(world.env, world.cluster, 2, fn,
                       client_id_base=100).results == [None, None]

    def test_flattened_index_read_back(self):
        w = make_world(aggregation="flatten")
        write_n1(w, nprocs=8)

        def fn(ctx):
            gi = yield from read_flattened_index(w.mount.layout("/f"),
                                                 ctx.client, ctx.comm)
            return gi

        res = run_job(w.env, w.cluster, 8, fn, client_id_base=100)
        first = res.results[0]
        assert first is not None
        assert all(gi is first for gi in res.results)
        assert first.logical_size == 8 * 20 * KB
