"""Remaining PlfsMount API coverage: logical namespace corners."""

import pytest

from repro.errors import FileExists, PLFSError
from repro.mpi import run_job
from repro.pfs.data import PatternData
from repro.plfs import PlfsMount
from tests.conftest import make_world

KB = 1000


def solo(world, gen_fn, base=0):
    return run_job(world.env, world.cluster, 1, gen_fn,
                   client_id_base=base).results[0]


class TestLogicalNamespace:
    def test_readdir_unions_federated_volumes(self):
        """Containers hash to different volumes; a logical listing sees all."""
        w = make_world(n_volumes=4, federation="container")

        def fn(ctx):
            yield from w.mount.mkdir(ctx.client, "/d")
            for i in range(12):
                yield from w.mount.create(ctx.client, f"/d/f{i}")
            names = yield from w.mount.readdir(ctx.client, "/d")
            return names

        names = solo(w, fn)
        assert names == sorted(f"f{i}" for i in range(12))
        # The containers really are spread over >1 volume.
        homes = {w.mount.layout(f"/d/f{i}").home_volume.name for i in range(12)}
        assert len(homes) > 1

    def test_stat_of_plain_directory(self, world):
        w = world

        def fn(ctx):
            yield from w.mount.mkdir(ctx.client, "/plain")
            st = yield from w.mount.stat(ctx.client, "/plain")
            return st

        st = solo(w, fn)
        assert st.is_dir and st.size == 0

    def test_create_non_exclusive_is_idempotent(self, world):
        w = world

        def fn(ctx):
            yield from w.mount.create(ctx.client, "/f")
            yield from w.mount.create(ctx.client, "/f")  # fine
            with pytest.raises(FileExists):
                yield from w.mount.create(ctx.client, "/f", exclusive=True)
            return True

        assert solo(w, fn)

    def test_exists_distinguishes_containers_from_dirs(self, world):
        w = world

        def fn(ctx):
            yield from w.mount.mkdir(ctx.client, "/dir")
            yield from w.mount.create(ctx.client, "/file")
            return w.mount.exists("/dir"), w.mount.exists("/file")

        is_dir_file, is_container = solo(w, fn)
        assert not is_dir_file   # a plain dir is not a logical file
        assert is_container

    def test_invalidate_index_cache(self, world):
        w = world

        def writer(ctx):
            fh = yield from w.mount.open_write(ctx.client, "/f", ctx.comm)
            yield from fh.write(0, PatternData(1, 0, 5 * KB))
            yield from w.mount.close_write(fh, ctx.comm)

        run_job(w.env, w.cluster, 2, writer)

        def reader(ctx):
            handle = yield from w.mount.open_read(ctx.client, "/f", None)
            yield from handle.close()
            return True

        solo(w, reader, base=50)
        w.mount.invalidate_index_cache()
        assert w.mount._index_cache == {}

    def test_mount_requires_volumes(self, world):
        with pytest.raises(PLFSError):
            PlfsMount(world.env, [])

    def test_unlink_then_recreate_fresh_generation(self, world):
        w = world

        def fn(ctx):
            fh = yield from w.mount.open_write(ctx.client, "/f", None)
            yield from fh.write(0, PatternData(1, 0, 8 * KB))
            yield from w.mount.close_write(fh, None)
            yield from w.mount.unlink(ctx.client, "/f")
            fh = yield from w.mount.open_write(ctx.client, "/f", None)
            yield from fh.write(0, PatternData(2, 0, 2 * KB))
            yield from w.mount.close_write(fh, None)
            rh = yield from w.mount.open_read(ctx.client, "/f", None)
            size = rh.size
            view = yield from rh.read(0, size)
            yield from rh.close()
            return size, view.content_equal(PatternData(2, 0, 2 * KB))

        size, ok = solo(w, fn)
        assert size == 2 * KB and ok
