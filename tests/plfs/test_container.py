"""Unit tests for container layout, placement, and lifecycle."""

import pytest

from repro.errors import FileExists, FileNotFound, PLFSError
from repro.pfs.volume import Client
from repro.plfs.config import PlfsConfig
from repro.plfs.container import (
    ACCESS_NAME,
    ContainerLayout,
    data_log_name,
    index_log_name,
    meta_dropping_name,
    openhost_name,
    parse_meta_dropping,
    subdir_name,
)
from tests.conftest import make_world


def layout_for(world, path, **cfg_kw):
    cfg = PlfsConfig(**cfg_kw) if cfg_kw else world.mount.cfg
    return ContainerLayout(path, world.volumes, cfg)


class TestNames:
    def test_dropping_names(self):
        assert data_log_name(3, 17) == "dropping.data.3.17"
        assert index_log_name(3, 17) == "dropping.index.3.17"
        assert openhost_name(5) == "host.5"
        assert subdir_name(9) == "subdirs.9"

    def test_meta_dropping_roundtrip(self):
        name = meta_dropping_name(1_000_000, 42, 3, 7)
        assert parse_meta_dropping(name) == (1_000_000, 42, 3, 7)
        with pytest.raises(PLFSError):
            parse_meta_dropping("garbage")


class TestPlacement:
    def test_no_federation_everything_on_volume_zero(self, world):
        layout = layout_for(world, "/a")
        assert layout.home_volume is world.volumes[0]
        assert layout.subdir_volume(5) is world.volumes[0]

    def test_container_federation_spreads_homes(self):
        w = make_world(n_volumes=4, federation="container")
        homes = {ContainerLayout(f"/f{i}", w.volumes, w.mount.cfg).home_volume.name
                 for i in range(40)}
        assert len(homes) > 1

    def test_container_federation_is_stable(self):
        w = make_world(n_volumes=4, federation="container")
        a = ContainerLayout("/x/y", w.volumes, w.mount.cfg)
        b = ContainerLayout("/x/y", w.volumes, w.mount.cfg)
        assert a.home_volume is b.home_volume

    def test_subdir_federation_rotates_volumes(self):
        w = make_world(n_volumes=3, federation="subdir")
        layout = ContainerLayout("/f", w.volumes, w.mount.cfg)
        vols = {layout.subdir_volume(s).name for s in range(layout.cfg.n_subdirs)}
        assert len(vols) == 3
        # Skeleton and subdirs may differ; placement is deterministic.
        assert layout.subdir_volume(0) is ContainerLayout(
            "/f", w.volumes, w.mount.cfg).subdir_volume(0)

    def test_writers_hash_to_subdirs_by_node(self, world):
        layout = layout_for(world, "/f")
        assert layout.subdir_for_writer(0) == 0
        assert layout.subdir_for_writer(33) == 33 % layout.cfg.n_subdirs

    def test_paths(self, world):
        layout = layout_for(world, "/dir/file")
        assert layout.access_path == f"/dir/file/{ACCESS_NAME}"
        assert layout.meta_path == "/dir/file/meta"
        assert layout.subdir_path(2) == "/dir/file/subdirs.2"
        assert layout.data_log_path(1, 9) == "/dir/file/subdirs.1/dropping.data.1.9"

    def test_empty_volume_list_rejected(self):
        with pytest.raises(PLFSError):
            ContainerLayout("/f", [], PlfsConfig())


class TestLifecycle:
    def run(self, world, gen):
        return world.env.run_process(gen)

    def client(self, world):
        return Client(node=world.cluster.nodes[0], client_id=0)

    def test_create_skeleton(self, world):
        c = self.client(world)
        self.run(world, layout_for(world, "/f").create_skeleton(c))
        layout = layout_for(world, "/f")
        assert layout.exists()
        vol = layout.home_volume
        assert vol.ns.exists("/f/meta")
        assert vol.ns.exists("/f/openhosts")
        assert vol.ns.exists(layout.access_path)

    def test_create_twice_raises(self, world):
        c = self.client(world)
        self.run(world, layout_for(world, "/f").create_skeleton(c))
        with pytest.raises(FileExists):
            self.run(world, layout_for(world, "/f").create_skeleton(c))

    def test_ensure_skeleton_idempotent(self, world):
        c = self.client(world)
        self.run(world, layout_for(world, "/f").ensure_skeleton(c))
        self.run(world, layout_for(world, "/f").ensure_skeleton(c))
        assert layout_for(world, "/f").exists()

    def test_plain_dir_is_not_a_container(self, world):
        c = self.client(world)
        self.run(world, world.volume.makedirs(c, "/plain"))
        assert not layout_for(world, "/plain").exists()

    def test_ensure_subdir_lazy(self, world):
        c = self.client(world)
        layout = layout_for(world, "/f")
        self.run(world, layout.create_skeleton(c))
        assert not layout.home_volume.ns.exists(layout.subdir_path(3))
        self.run(world, layout.ensure_subdir(c, 3))
        assert layout.home_volume.ns.exists(layout.subdir_path(3))

    def test_destroy_missing_raises(self, world):
        c = self.client(world)
        with pytest.raises(FileNotFound):
            self.run(world, layout_for(world, "/nope").destroy(c))

    def test_destroy_removes_all(self, world):
        c = self.client(world)
        layout = layout_for(world, "/f")
        self.run(world, layout.create_skeleton(c))
        self.run(world, layout.ensure_subdir(c, 1))
        self.run(world, layout.destroy(c))
        assert not layout.home_volume.ns.exists("/f")
