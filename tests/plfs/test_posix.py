"""Tests for the FUSE-style POSIX adapter."""

import pytest

from repro.errors import BadFileHandle, InvalidArgument, UnsupportedOperation
from repro.mpi import run_job
from repro.pfs.data import LiteralData, PatternData
from repro.plfs.posix import SEEK_CUR, SEEK_END, SEEK_SET, PosixAdapter


def solo(world, gen_fn, base=0):
    return run_job(world.env, world.cluster, 1, gen_fn,
                   client_id_base=base).results[0]


class TestPosixFile:
    def test_sequential_write_read(self, world):
        def fn(ctx):
            px = PosixAdapter(world.mount, ctx.client)
            f = yield from px.open("/f", "w")
            yield from f.write(LiteralData(b"hello "))
            yield from f.write(LiteralData(b"world"))
            assert f.tell() == 11
            yield from f.close()

            g = yield from px.open("/f", "r")
            view = yield from g.read()
            yield from g.close()
            return view.to_bytes()

        assert solo(world, fn) == b"hello world"

    def test_seek_semantics(self, world):
        def fn(ctx):
            px = PosixAdapter(world.mount, ctx.client)
            f = yield from px.open("/f", "w")
            yield from f.write(PatternData(1, 0, 100))
            f.seek(10)
            yield from f.write(LiteralData(b"XX"))
            assert f.tell() == 12
            yield from f.close()

            g = yield from px.open("/f", "r")
            g.seek(-90, SEEK_END)
            assert g.tell() == 10
            head = yield from g.read(2)
            g.seek(3, SEEK_CUR)
            assert g.tell() == 15
            g.seek(0, SEEK_SET)
            whole = yield from g.read()
            yield from g.close()
            return head.to_bytes(), whole.length

        head, total = solo(world, fn)
        assert head == b"XX"
        assert total == 100

    def test_sparse_seek_write(self, world):
        def fn(ctx):
            px = PosixAdapter(world.mount, ctx.client)
            f = yield from px.open("/f", "w")
            f.seek(1000)
            yield from f.write(LiteralData(b"tail"))
            yield from f.close()
            g = yield from px.open("/f", "r")
            view = yield from g.read()
            yield from g.close()
            return view.length, view.to_bytes()[:4]

        length, head = solo(world, fn)
        assert length == 1004
        assert head == b"\x00\x00\x00\x00"

    def test_append_mode(self, world):
        def fn(ctx):
            px = PosixAdapter(world.mount, ctx.client)
            f = yield from px.open("/log", "w")
            yield from f.write(LiteralData(b"one"))
            yield from f.close()
            f = yield from px.open("/log", "a")
            assert f.tell() == 3
            yield from f.write(LiteralData(b"two"))
            yield from f.close()
            g = yield from px.open("/log", "r")
            view = yield from g.read()
            yield from g.close()
            return view.to_bytes()

        assert solo(world, fn) == b"onetwo"

    def test_mode_enforcement(self, world):
        def fn(ctx):
            px = PosixAdapter(world.mount, ctx.client)
            f = yield from px.open("/f", "w")
            with pytest.raises(UnsupportedOperation):
                yield from f.read(1)
            yield from f.close()
            g = yield from px.open("/f", "r")
            with pytest.raises(UnsupportedOperation):
                yield from g.write(LiteralData(b"x"))
            yield from g.close()
            with pytest.raises(InvalidArgument):
                yield from px.open("/f", "rw")
            return True

        assert solo(world, fn)

    def test_closed_file_rejected(self, world):
        def fn(ctx):
            px = PosixAdapter(world.mount, ctx.client)
            f = yield from px.open("/f", "w")
            yield from f.close()
            with pytest.raises(BadFileHandle):
                yield from f.write(LiteralData(b"x"))
            with pytest.raises(BadFileHandle):
                f.seek(0)
            return True

        assert solo(world, fn)

    def test_seek_before_start_rejected(self, world):
        def fn(ctx):
            px = PosixAdapter(world.mount, ctx.client)
            f = yield from px.open("/f", "w")
            with pytest.raises(InvalidArgument):
                f.seek(-1)
            with pytest.raises(InvalidArgument):
                f.seek(0, 99)
            yield from f.close()
            return True

        assert solo(world, fn)


class TestPosixNamespace:
    def test_listdir_stat_unlink(self, world):
        def fn(ctx):
            px = PosixAdapter(world.mount, ctx.client)
            yield from px.mkdir("/d")
            f = yield from px.open("/d/a", "w")
            yield from f.write(LiteralData(b"abc"))
            yield from f.close()
            st = yield from px.stat("/d/a")
            names = yield from px.listdir("/d")
            yield from px.unlink("/d/a")
            return st.size, names, px.exists("/d/a")

        size, names, still_there = solo(world, fn)
        assert size == 3
        assert names == ["a"]
        assert not still_there

    def test_two_processes_share_logical_file(self, world):
        """A FUSE-path writer and a separate reader process interoperate."""
        def writer(ctx):
            px = PosixAdapter(world.mount, ctx.client)
            f = yield from px.open("/shared", "w")
            yield from f.write(PatternData(7, 0, 5000))
            yield from f.close()

        run_job(world.env, world.cluster, 1, writer)

        def reader(ctx):
            px = PosixAdapter(world.mount, ctx.client)
            g = yield from px.open("/shared", "r")
            view = yield from g.read()
            yield from g.close()
            return view.content_equal(PatternData(7, 0, 5000))

        assert solo(world, reader, base=99)
