"""Unit tests for the block-ownership lock manager."""

import pytest

from repro.pfs.config import PfsConfig
from repro.pfs.locks import RangeLockManager
from repro.sim import Engine


def make(env, lock_block=100, revoke=1e-3, grant=1e-4):
    cfg = PfsConfig(lock_block=lock_block, lock_revoke_time=revoke,
                    lock_grant_time=grant)
    return RangeLockManager(env, cfg)


class TestRangeLockManager:
    def test_blocks_for(self):
        env = Engine()
        mgr = make(env)
        assert list(mgr.blocks_for(0, 100)) == [0]
        assert list(mgr.blocks_for(0, 101)) == [0, 1]
        assert list(mgr.blocks_for(250, 100)) == [2, 3]
        assert list(mgr.blocks_for(0, 0)) == []

    def test_disabled_when_block_zero(self):
        env = Engine()
        mgr = make(env, lock_block=0)
        assert not mgr.enabled

        def proc(env):
            held = yield from mgr.acquire(1, 10, 0, 1000)
            return held, env.now

        held, t = env.run_process(proc(env))
        assert held == [] and t == 0

    def test_first_touch_pays_grant(self):
        env = Engine()
        mgr = make(env)

        def proc(env):
            held = yield from mgr.acquire(1, 10, 0, 100)
            mgr.release(held)
            return env.now

        assert env.run_process(proc(env)) == pytest.approx(1e-4)
        assert mgr.grants == 1 and mgr.revocations == 0

    def test_owner_rewrites_free(self):
        env = Engine()
        mgr = make(env)

        def proc(env):
            held = yield from mgr.acquire(1, 10, 0, 100)
            mgr.release(held)
            t1 = env.now
            held = yield from mgr.acquire(1, 10, 0, 100)
            mgr.release(held)
            return t1, env.now

        t1, t2 = env.run_process(proc(env))
        assert t2 == t1  # cached ownership: second acquire is free
        assert mgr.grants == 1

    def test_steal_pays_revocation(self):
        env = Engine()
        mgr = make(env)
        times = {}

        def proc(env, cid):
            held = yield from mgr.acquire(cid, 10, 0, 100)
            mgr.release(held)
            times[cid] = env.now

        env.run_process(proc(env, 1))
        env.run_process(proc(env, 2))
        # Client 2 demotes client 1's whole-file lock (one revocation), then
        # picks up the unowned block (one grant).
        assert mgr.revocations == 1
        assert times[2] == pytest.approx(times[1] + 1e-3 + 1e-4)

    def test_conflicting_writers_serialize_while_held(self):
        env = Engine()
        mgr = make(env, revoke=0.0, grant=0.0)
        order = []

        def pre_demote(env):
            # Two distinct clients touch the file so it is block-granular
            # before the timed writers start.
            held = yield from mgr.acquire(8, 10, 500, 10)
            mgr.release(held)
            held = yield from mgr.acquire(9, 10, 500, 10)
            mgr.release(held)

        def writer(env, cid, hold):
            held = yield from mgr.acquire(cid, 10, 0, 100)
            order.append(("in", cid, env.now))
            yield env.timeout(hold)
            order.append(("out", cid, env.now))
            mgr.release(held)

        env.run_process(pre_demote(env))
        env.process(writer(env, 1, 5.0))
        env.process(writer(env, 2, 5.0))
        env.run()
        assert order == [("in", 1, 0), ("out", 1, 5.0), ("in", 2, 5.0), ("out", 2, 10.0)]

    def test_disjoint_blocks_do_not_serialize(self):
        env = Engine()
        mgr = make(env, revoke=0.0, grant=0.0)
        ends = []

        def writer(env, cid, offset):
            held = yield from mgr.acquire(cid, 10, offset, 100)
            yield env.timeout(5.0)
            mgr.release(held)
            ends.append(env.now)

        env.process(writer(env, 1, 0))
        env.process(writer(env, 2, 100))  # next block
        env.run()
        assert ends == [5.0, 5.0]

    def test_false_sharing_on_boundary_block(self):
        """Writes to disjoint byte ranges in one block still conflict."""
        env = Engine()
        mgr = make(env, revoke=1e-3, grant=0.0)

        def writer(env, cid, offset):
            held = yield from mgr.acquire(cid, 10, offset, 50)
            mgr.release(held)

        env.run_process(writer(env, 1, 0))
        env.run_process(writer(env, 2, 50))  # same block 0, different bytes
        assert mgr.revocations == 1

    def test_different_files_independent(self):
        env = Engine()
        mgr = make(env)

        def writer(env, cid, uid):
            held = yield from mgr.acquire(cid, uid, 0, 100)
            mgr.release(held)

        env.run_process(writer(env, 1, 10))
        env.run_process(writer(env, 2, 11))
        assert mgr.revocations == 0

    def test_forget_file_clears_state(self):
        env = Engine()
        mgr = make(env)

        def writer(env):
            held = yield from mgr.acquire(1, 10, 0, 300)
            mgr.release(held)

        env.run_process(writer(env))
        mgr.forget_file(10)
        assert not mgr._owner and not mgr._mutex
