"""Invariants of the file-system presets (the §III portability models)."""

import pytest

from repro.pfs.presets import PRESETS, gpfs, lustre, panfs, panfs_cielo, preset


class TestPresets:
    @pytest.mark.parametrize("factory", [panfs, lustre, gpfs, panfs_cielo])
    def test_constructible_and_consistent(self, factory):
        cfg = factory()
        assert cfg.stripe_width <= cfg.n_osds
        assert cfg.osd_bw > 0
        assert cfg.mds_ops_per_sec > cfg.dir_ops_per_sec  # dir ceiling is lower

    def test_panfs_models_client_raid(self):
        cfg = panfs()
        assert cfg.rmw_factor > 1.0
        assert cfg.full_stripe == 8 * cfg.stripe_unit  # an 8+1 parity group
        assert cfg.lock_block == cfg.full_stripe

    def test_lustre_and_gpfs_have_no_client_raid(self):
        assert lustre().rmw_factor == 1.0
        assert gpfs().rmw_factor == 1.0

    def test_lock_granularities_differ(self):
        # Lustre's extent locks are the coarsest; GPFS tokens block-sized.
        assert lustre().lock_block > gpfs().lock_block
        assert gpfs().lock_block > 0

    def test_all_presets_model_readahead_pollution(self):
        for factory in (panfs, lustre, gpfs):
            assert factory().readahead_waste > 0

    def test_cielo_is_a_bigger_panfs(self):
        small, big = panfs(), panfs_cielo()
        assert big.n_osds > small.n_osds
        assert big.rmw_factor == small.rmw_factor  # same mechanisms

    def test_overrides_apply(self):
        cfg = panfs(n_osds=100, osd_bw=1.0)
        assert cfg.n_osds == 100 and cfg.osd_bw == 1.0

    def test_lookup_by_name(self):
        assert preset("lustre").name == "lustre"
        assert set(PRESETS) == {"panfs", "lustre", "gpfs", "panfs_cielo"}
        with pytest.raises(KeyError):
            preset("zfs")
