"""Unit tests for DataSpec / DataView content algebra."""

import numpy as np
import pytest

from repro.errors import InvalidArgument
from repro.pfs.data import (
    DataView,
    LiteralData,
    PatternData,
    ZeroData,
    pattern_bytes,
)


class TestPatternBytes:
    def test_deterministic(self):
        a = pattern_bytes(7, 100, 64)
        b = pattern_bytes(7, 100, 64)
        assert np.array_equal(a, b)

    def test_shift_consistency(self):
        """pattern(seed, off, n)[k:] == pattern(seed, off+k, n-k)."""
        whole = pattern_bytes(3, 50, 100)
        tail = pattern_bytes(3, 70, 80)
        assert np.array_equal(whole[20:], tail)

    def test_different_seeds_differ(self):
        a = pattern_bytes(1, 0, 256)
        b = pattern_bytes(2, 0, 256)
        assert not np.array_equal(a, b)

    def test_not_degenerate(self):
        """The pattern uses the full byte range, not a constant."""
        a = pattern_bytes(42, 0, 4096)
        assert len(np.unique(a)) > 200

    def test_negative_length_rejected(self):
        with pytest.raises(InvalidArgument):
            pattern_bytes(0, 0, -1)


class TestSpecs:
    def test_slice_bounds_checked(self):
        spec = PatternData(1, 0, 10)
        with pytest.raises(InvalidArgument):
            spec.slice(5, 6)
        with pytest.raises(InvalidArgument):
            spec.slice(-1, 2)

    def test_pattern_slice_matches_materialized(self):
        spec = PatternData(9, 1000, 50)
        sub = spec.slice(10, 20)
        assert np.array_equal(sub.materialize(), spec.materialize()[10:30])

    def test_structural_pattern_equality(self):
        assert PatternData(5, 30, 10).content_equal(PatternData(5, 30, 10))
        assert not PatternData(5, 30, 10).content_equal(PatternData(6, 30, 10))
        assert not PatternData(5, 30, 10).content_equal(PatternData(5, 31, 10))

    def test_shifted_pattern_slices_compare_equal(self):
        """Equal content through different (offset) routes is still equal."""
        a = PatternData(5, 0, 100).slice(40, 10)
        b = PatternData(5, 40, 10)
        assert a.content_equal(b)

    def test_zero_equality(self):
        assert ZeroData(8).content_equal(ZeroData(8))
        assert not ZeroData(8).content_equal(ZeroData(9))

    def test_literal_roundtrip_and_equality(self):
        lit = LiteralData(b"hello world")
        assert lit.length == 11
        assert lit.materialize().tobytes() == b"hello world"
        assert lit.content_equal(LiteralData(b"hello world"))
        assert not lit.content_equal(LiteralData(b"hello worlD"))

    def test_cross_kind_equality_materializes_small(self):
        zero = ZeroData(4)
        lit = LiteralData(b"\x00\x00\x00\x00")
        assert zero.content_equal(lit)
        assert lit.content_equal(zero)

    def test_length_mismatch_never_equal(self):
        assert not ZeroData(4).content_equal(ZeroData(5))
        assert not PatternData(1, 0, 4).content_equal(LiteralData(b"abc"))


class TestDataView:
    def test_view_concatenation(self):
        v = DataView([LiteralData(b"ab"), LiteralData(b"cd")])
        assert v.length == 4
        assert v.to_bytes() == b"abcd"

    def test_view_drops_empty_pieces(self):
        v = DataView([LiteralData(b""), LiteralData(b"x"), ZeroData(0)])
        assert v.length == 1
        assert len(v.pieces) == 1

    def test_piecewise_equality_across_different_splits(self):
        spec = PatternData(11, 0, 100)
        a = DataView([spec.slice(0, 30), spec.slice(30, 70)])
        b = DataView([spec.slice(0, 50), spec.slice(50, 25), spec.slice(75, 25)])
        assert a.content_equal(b)
        assert a.content_equal(spec)

    def test_piecewise_inequality(self):
        a = DataView([PatternData(1, 0, 10), PatternData(1, 10, 10)])
        b = DataView([PatternData(1, 0, 10), PatternData(2, 10, 10)])
        assert not a.content_equal(b)

    def test_empty_views_equal(self):
        assert DataView([]).content_equal(DataView([]))
        assert DataView([]).materialize().size == 0
