"""Unit tests for the extent journal and last-writer-wins flattening."""

import numpy as np
import pytest

from repro.errors import InvalidArgument
from repro.pfs.extents import HOLE, ExtentJournal


def segs(flat):
    return list(flat.segments())


class TestJournalBasics:
    def test_empty(self):
        j = ExtentJournal()
        assert len(j) == 0
        assert j.size == 0
        assert segs(j.flatten()) == []
        assert j.flatten().query(0, 100) == [(0, 100, HOLE, 0)]

    def test_single_record(self):
        j = ExtentJournal()
        j.append(10, 5, src=1, src_off=100)
        assert j.size == 15
        assert segs(j.flatten()) == [(10, 15, 1, 100)]

    def test_zero_length_ignored(self):
        j = ExtentJournal()
        j.append(10, 0, src=1, src_off=0)
        assert len(j) == 0

    def test_negative_rejected(self):
        j = ExtentJournal()
        with pytest.raises(InvalidArgument):
            j.append(-1, 5, 0, 0)
        with pytest.raises(InvalidArgument):
            j.append(0, -5, 0, 0)

    def test_disjoint_records_fast_path(self):
        j = ExtentJournal()
        j.append(20, 10, src=2, src_off=0)
        j.append(0, 10, src=1, src_off=50)
        assert segs(j.flatten()) == [(0, 10, 1, 50), (20, 30, 2, 0)]

    def test_size_tracks_max_end(self):
        j = ExtentJournal()
        j.append(100, 10, 0, 0)
        j.append(5, 10, 0, 0)
        assert j.size == 110

    def test_nbytes_counts_records(self):
        j = ExtentJournal()
        j.append(0, 10, 0, 0)
        j.append(10, 10, 0, 0)
        assert j.nbytes == 96


class TestLastWriterWins:
    def test_full_overwrite(self):
        j = ExtentJournal()
        j.append(0, 10, src=1, src_off=0, stamp=1.0)
        j.append(0, 10, src=2, src_off=0, stamp=2.0)
        assert segs(j.flatten()) == [(0, 10, 2, 0)]

    def test_partial_overwrite_splits(self):
        j = ExtentJournal()
        j.append(0, 100, src=1, src_off=0, stamp=1.0)
        j.append(40, 20, src=2, src_off=0, stamp=2.0)
        assert segs(j.flatten()) == [(0, 40, 1, 0), (40, 60, 2, 0), (60, 100, 1, 60)]

    def test_earlier_stamp_loses_even_if_appended_later(self):
        j = ExtentJournal()
        j.append(0, 10, src=2, src_off=0, stamp=5.0)
        j.append(0, 10, src=1, src_off=0, stamp=1.0)  # stale record arrives late
        assert segs(j.flatten()) == [(0, 10, 2, 0)]

    def test_minor_stamp_breaks_ties(self):
        j = ExtentJournal()
        j.append(0, 10, src=1, src_off=0, stamp=1.0, minor=3)
        j.append(0, 10, src=2, src_off=0, stamp=1.0, minor=7)
        assert segs(j.flatten()) == [(0, 10, 2, 0)]

    def test_overlapping_chain(self):
        j = ExtentJournal()
        j.append(0, 30, src=1, src_off=0, stamp=1.0)
        j.append(20, 30, src=2, src_off=0, stamp=2.0)
        j.append(40, 30, src=3, src_off=0, stamp=3.0)
        assert segs(j.flatten()) == [(0, 20, 1, 0), (20, 40, 2, 0), (40, 70, 3, 0)]

    def test_src_offset_adjusted_on_split(self):
        j = ExtentJournal()
        j.append(0, 100, src=1, src_off=1000, stamp=1.0)
        j.append(50, 10, src=2, src_off=0, stamp=2.0)
        flat = j.flatten()
        assert segs(flat)[2] == (60, 100, 1, 1060)

    def test_against_naive_bytemap_model(self):
        """Randomized differential test versus a literal per-byte array."""
        rng = np.random.default_rng(1234)
        for _ in range(25):
            size = 500
            model = np.full(size, -1, dtype=np.int64)  # which record owns each byte
            j = ExtentJournal()
            n_rec = int(rng.integers(1, 40))
            rec_starts = []
            for rec in range(n_rec):
                start = int(rng.integers(0, size - 1))
                length = int(rng.integers(1, size - start))
                rec_starts.append(start)
                j.append(start, length, src=rec, src_off=start * 7, stamp=float(rec))
                model[start:start + length] = rec
            flat = j.flatten()
            rebuilt = np.full(size, -1, dtype=np.int64)
            for s, e, src, src_off in flat.segments():
                assert rebuilt[s:e].max(initial=-1) == -1, "segments overlap"
                rebuilt[s:e] = src
                # src_off = record base + intra-record displacement
                assert src_off == rec_starts[src] * 7 + (s - rec_starts[src])
            assert np.array_equal(rebuilt[: j.size], model[: j.size])

    def test_extend_merges_journals(self):
        a = ExtentJournal()
        a.append(0, 10, src=1, src_off=0, stamp=1.0)
        b = ExtentJournal()
        b.append(5, 10, src=2, src_off=0, stamp=2.0)
        a.extend(b)
        assert a.size == 15
        assert segs(a.flatten()) == [(0, 5, 1, 0), (5, 15, 2, 0)]


class TestQuery:
    def make(self):
        j = ExtentJournal()
        j.append(10, 10, src=1, src_off=0)   # [10,20)
        j.append(30, 10, src=2, src_off=5)   # [30,40)
        return j.flatten()

    def test_query_tiles_range_with_holes(self):
        flat = self.make()
        assert flat.query(0, 50) == [
            (0, 10, HOLE, 0),
            (10, 20, 1, 0),
            (20, 30, HOLE, 0),
            (30, 40, 2, 5),
            (40, 50, HOLE, 0),
        ]

    def test_query_mid_extent(self):
        flat = self.make()
        assert flat.query(15, 3) == [(15, 18, 1, 5)]

    def test_query_spanning_boundary(self):
        flat = self.make()
        assert flat.query(18, 14) == [(18, 20, 1, 8), (20, 30, HOLE, 0), (30, 32, 2, 5)]

    def test_query_zero_length(self):
        assert self.make().query(15, 0) == []

    def test_query_invalid(self):
        with pytest.raises(InvalidArgument):
            self.make().query(-1, 5)


class TestScale:
    def test_large_disjoint_flatten_is_fast_path(self):
        j = ExtentJournal()
        n = 200_000
        starts = np.random.default_rng(0).permutation(n) * 10
        for s in starts[:1000]:  # appends are Python-level; keep the loop bounded
            j.append(int(s), 10, src=int(s) % 7, src_off=0)
        flat = j.flatten()
        assert len(flat) == 1000
        ends = flat.ends
        assert np.all(flat.starts[1:] >= ends[:-1])
