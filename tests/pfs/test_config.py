"""Validation tests for model configurations."""

import pytest

from repro.errors import ConfigError
from repro.pfs.config import DEFAULT_OP_COSTS, PfsConfig
from repro.plfs.config import PlfsConfig


class TestPfsConfigValidation:
    def test_defaults_valid(self):
        cfg = PfsConfig()
        assert cfg.aggregate_osd_bw == cfg.n_osds * cfg.osd_bw

    @pytest.mark.parametrize("kw", [
        dict(n_osds=0),
        dict(stripe_width=0),
        dict(stripe_unit=0),
        dict(osd_bw=0),
        dict(mds_ops_per_sec=0),
        dict(dir_ops_per_sec=-1),
        dict(lock_block=-1),
        dict(lock_revoke_time=-1),
        dict(rmw_factor=0.5),
        dict(full_stripe=-1),
    ])
    def test_bad_parameters_rejected(self, kw):
        with pytest.raises(ConfigError):
            PfsConfig(**kw)

    def test_wide_stripe_allowed(self):
        # Lanes may wrap around the pool: OsdPool batches same-OSD lanes.
        cfg = PfsConfig(n_osds=4, stripe_width=8)
        assert cfg.stripe_width == 8

    def test_op_costs_must_be_complete(self):
        with pytest.raises(ConfigError, match="op_costs missing"):
            PfsConfig(op_costs={"open": 1.0})

    def test_op_costs_extensible(self):
        costs = dict(DEFAULT_OP_COSTS)
        costs["custom"] = 2.0
        assert PfsConfig(op_costs=costs).op_costs["custom"] == 2.0

    def test_frozen(self):
        cfg = PfsConfig()
        with pytest.raises(Exception):
            cfg.n_osds = 99


class TestPlfsConfigValidation:
    def test_defaults_valid(self):
        cfg = PlfsConfig()
        assert cfg.aggregation == "parallel"
        assert cfg.index_merge is True

    @pytest.mark.parametrize("kw", [
        dict(aggregation="bogus"),
        dict(federation="bogus"),
        dict(n_subdirs=0),
        dict(flatten_threshold=-1),
        dict(parallel_group_size=-1),
        dict(index_spill_records=-1),
    ])
    def test_bad_parameters_rejected(self, kw):
        with pytest.raises(ConfigError):
            PlfsConfig(**kw)

    @pytest.mark.parametrize("agg", ["original", "flatten", "parallel"])
    def test_all_aggregations_accepted(self, agg):
        assert PlfsConfig(aggregation=agg).aggregation == agg

    @pytest.mark.parametrize("fed", ["none", "container", "subdir"])
    def test_all_federations_accepted(self, fed):
        assert PlfsConfig(federation=fed).federation == fed
