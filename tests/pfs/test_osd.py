"""Unit tests for stripe placement math and the OSD device model."""

import pytest

from repro.pfs.config import PfsConfig
from repro.pfs.osd import Osd, OsdPool, stripe_lanes
from repro.sim import Engine
from repro.units import KiB


def brute_lanes(offset, length, su, width):
    """Byte-at-a-time reference for stripe_lanes totals."""
    per_lane = {}
    for b in range(offset, offset + length):
        lane = (b // su) % width
        per_lane[lane] = per_lane.get(lane, 0) + 1
    return per_lane


class TestStripeLanes:
    @pytest.mark.parametrize("offset,length", [
        (0, 64), (0, 1000), (100, 1), (64, 64), (63, 2),
        (0, 64 * 8), (10, 64 * 8), (64 * 7, 200), (64 * 16 + 5, 64 * 3),
    ])
    def test_bytes_per_lane_match_reference(self, offset, length):
        su, width = 64, 8
        got = {lane: n for lane, _, n in stripe_lanes(offset, length, su, width)}
        assert got == brute_lanes(offset, length, su, width)

    def test_total_bytes_conserved(self):
        for offset, length in [(0, 12345), (777, 9999), (63, 65)]:
            lanes = stripe_lanes(offset, length, 64, 8)
            assert sum(n for _, _, n in lanes) == length

    def test_object_offsets(self):
        # su=64, width=4: byte 0 -> lane0 obj 0; byte 256 (unit 4) -> lane0 obj 64.
        lanes = dict((l, o) for l, o, _ in stripe_lanes(0, 64, 64, 4))
        assert lanes == {0: 0}
        lanes = dict((l, o) for l, o, _ in stripe_lanes(256, 64, 64, 4))
        assert lanes == {0: 64}
        # Mid-unit start: byte 70 is unit 1 (lane 1), 6 bytes into it.
        lanes = {l: o for l, o, _ in stripe_lanes(70, 10, 64, 4)}
        assert lanes == {1: 6}

    def test_sequential_writes_are_object_sequential(self):
        """Consecutive file ranges produce consecutive object ranges per lane."""
        su, width = 64, 4
        ends = {}
        for i in range(16):
            for lane, obj_off, n in stripe_lanes(i * 128, 128, su, width):
                if lane in ends:
                    assert obj_off == ends[lane], f"lane {lane} jumped"
                ends[lane] = obj_off + n

    def test_zero_length(self):
        assert stripe_lanes(0, 0, 64, 8) == []

    def test_width_one(self):
        assert stripe_lanes(10, 100, 64, 1) == [(0, 10, 100)]


class TestOsd:
    def cfg(self, **kw):
        defaults = dict(n_osds=4, stripe_unit=64 * KiB, stripe_width=2,
                        osd_bw=100e6, osd_seek_time=1e-3, osd_op_overhead=0.0)
        defaults.update(kw)
        return PfsConfig(**defaults)

    def test_sequential_access_skips_seek(self):
        env = Engine()
        osd = Osd(env, self.cfg(), 0)

        def proc(env):
            yield osd.io(1, 0, 1_000_000)
            t1 = env.now
            yield osd.io(1, 1_000_000, 1_000_000)  # sequential: no seek
            return t1, env.now

        t1, t2 = env.run_process(proc(env))
        # First op pays one seek (1ms at 100MB/s = 100KB equivalent).
        assert t1 == pytest.approx(1e-3 + 0.01)
        assert t2 - t1 == pytest.approx(0.01)
        assert osd.seeks == 1

    def test_non_sequential_pays_seek(self):
        env = Engine()
        osd = Osd(env, self.cfg(), 0)

        def proc(env):
            yield osd.io(1, 0, 1000)
            yield osd.io(1, 500_000, 1000)  # jump
            yield osd.io(1, 0, 1000)        # jump back

        env.run_process(proc(env))
        assert osd.seeks == 3

    def test_interleaved_objects_tracked_separately(self):
        env = Engine()
        osd = Osd(env, self.cfg(), 0)

        def proc(env):
            yield osd.io(1, 0, 100)
            yield osd.io(2, 0, 100)
            yield osd.io(1, 100, 100)  # still sequential within object 1
            yield osd.io(2, 100, 100)

        env.run_process(proc(env))
        assert osd.seeks == 2  # only the two first-touches

    def test_rmw_inflation(self):
        env = Engine()
        cfg = self.cfg(osd_seek_time=0.0)
        osd = Osd(env, cfg, 0)

        def proc(env):
            yield osd.io(1, 0, 1_000_000, inflate=3.0)
            return env.now

        assert env.run_process(proc(env)) == pytest.approx(0.03)

    def test_pool_lane_placement_is_stable_and_spread(self):
        env = Engine()
        pool = OsdPool(env, self.cfg())
        a = pool.lane_osd(10, 0)
        assert pool.lane_osd(10, 0) is a
        osds = {pool.lane_osd(uid, lane).index for uid in range(8) for lane in range(2)}
        assert len(osds) == 4  # all OSDs used across files

    def test_pool_io_events_cover_lanes(self):
        env = Engine()
        pool = OsdPool(env, self.cfg())

        def proc(env):
            events = pool.io_events(5, 0, 10 * 64 * KiB)
            assert len(events) == 2  # stripe_width lanes
            yield env.all_of(events)

        env.run_process(proc(env))
        assert pool.total_bytes_moved == 10 * 64 * KiB

    def test_io_many_matches_loop_of_io(self):
        """Batched submission must keep the io() loop's exact timing and
        seek accounting (demands are charged in request order)."""
        reqs = [(7, 0, 64 * KiB), (7, 64 * KiB, 64 * KiB), (9, 0, 32 * KiB)]

        def completions(batch):
            env = Engine()
            osd = Osd(env, self.cfg(), 0)
            times = {}

            def proc(env):
                yield env.timeout(0.25)
                if batch:
                    events = osd.io_many(list(reqs))
                else:
                    events = [osd.io(*r) for r in reqs]
                for i, ev in enumerate(events):
                    ev._add_callback(lambda _e, i=i: times.setdefault(i, env.now))
                yield env.all_of(events)

            env.run_process(proc(env))
            return times, osd.seeks, osd.requests, osd.bytes_moved

        assert completions(batch=True) == completions(batch=False)

    def test_wide_stripe_batches_same_osd_lanes(self):
        """stripe_width > n_osds wraps lanes around the pool; io_events
        must still emit one event per lane, covering every byte."""
        cfg = PfsConfig(n_osds=2, stripe_unit=64 * KiB, stripe_width=4,
                        osd_bw=100e6)
        env = Engine()
        pool = OsdPool(env, cfg)

        def proc(env):
            events = pool.io_events(3, 0, 8 * 64 * KiB)
            assert len(events) == 4  # one per lane, two lanes per OSD
            assert all(ev is not None for ev in events)
            yield env.all_of(events)

        env.run_process(proc(env))
        assert pool.total_bytes_moved == 8 * 64 * KiB
        # Both OSDs served two lanes' worth of the I/O.
        assert all(osd.bytes_moved == 4 * 64 * KiB for osd in pool.osds)


class TestReadaheadPollution:
    def cfg(self, waste):
        return PfsConfig(n_osds=4, stripe_unit=64 * KiB, stripe_width=2,
                         osd_bw=100e6, osd_seek_time=0.0, osd_op_overhead=0.0,
                         readahead_waste=waste)

    def test_interleaved_readers_pay_waste(self):
        env = Engine()
        osd = Osd(env, self.cfg(waste=1_000_000), 0)

        def proc(env):
            yield osd.io(1, 0, 1000, client_id=7, is_read=True)
            t0 = env.now
            yield osd.io(1, 500_000, 1000, client_id=8, is_read=True)  # switch
            return env.now - t0

        dt = env.run_process(proc(env))
        assert osd.stream_switches == 1
        assert dt == pytest.approx((1000 + 1_000_000) / 100e6)

    def test_single_reader_random_access_pays_no_waste(self):
        env = Engine()
        osd = Osd(env, self.cfg(waste=1_000_000), 0)

        def proc(env):
            yield osd.io(1, 0, 1000, client_id=7, is_read=True)
            yield osd.io(1, 500_000, 1000, client_id=7, is_read=True)

        env.run_process(proc(env))
        assert osd.stream_switches == 0

    def test_writes_never_pay_waste(self):
        env = Engine()
        osd = Osd(env, self.cfg(waste=1_000_000), 0)

        def proc(env):
            yield osd.io(1, 0, 1000, client_id=7, is_read=False)
            yield osd.io(1, 500_000, 1000, client_id=8, is_read=False)

        env.run_process(proc(env))
        assert osd.stream_switches == 0

    def test_disabled_by_default_config(self):
        env = Engine()
        osd = Osd(env, self.cfg(waste=0), 0)

        def proc(env):
            yield osd.io(1, 0, 1000, client_id=7, is_read=True)
            yield osd.io(1, 500_000, 1000, client_id=8, is_read=True)

        env.run_process(proc(env))
        assert osd.stream_switches == 0
