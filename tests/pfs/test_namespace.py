"""Unit tests for the functional namespace and file data."""

import pytest

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from repro.pfs.data import LiteralData, PatternData
from repro.pfs.namespace import FileData, Namespace, normalize, split_path


class TestPaths:
    def test_normalize(self):
        assert normalize("/a/b/") == "/a/b"
        assert normalize("a//b") == "/a/b"
        assert normalize("/") == "/"
        assert normalize("") == "/"
        assert normalize("/./a/.") == "/a"

    def test_dotdot_rejected(self):
        with pytest.raises(InvalidArgument):
            normalize("/a/../b")

    def test_split(self):
        assert split_path("/a/b/c") == ("/a/b", "c")
        assert split_path("/top") == ("/", "top")
        with pytest.raises(InvalidArgument):
            split_path("/")


class TestFileData:
    def test_write_read_roundtrip(self):
        fd = FileData()
        fd.write(0, LiteralData(b"hello"))
        assert fd.read(0, 5).to_bytes() == b"hello"
        assert fd.size == 5

    def test_overwrite_wins(self):
        fd = FileData()
        fd.write(0, LiteralData(b"aaaaaa"))
        fd.write(2, LiteralData(b"BB"))
        assert fd.read(0, 6).to_bytes() == b"aaBBaa"

    def test_holes_read_as_zeros(self):
        fd = FileData()
        fd.write(4, LiteralData(b"x"))
        assert fd.read(0, 5).to_bytes() == b"\x00\x00\x00\x00x"

    def test_short_read_at_eof(self):
        fd = FileData()
        fd.write(0, LiteralData(b"abc"))
        assert fd.read(1, 100).to_bytes() == b"bc"
        assert fd.read(10, 5).length == 0

    def test_append_returns_offset(self):
        fd = FileData()
        assert fd.append(LiteralData(b"ab")) == 0
        assert fd.append(LiteralData(b"cd")) == 2
        assert fd.read(0, 4).to_bytes() == b"abcd"

    def test_truncate(self):
        fd = FileData()
        fd.write(0, LiteralData(b"abcd"))
        fd.truncate()
        assert fd.size == 0
        assert fd.read(0, 4).length == 0

    def test_pattern_data_stays_virtual(self):
        fd = FileData()
        spec = PatternData(7, 0, 1 << 30)  # 1 GiB, never materialized
        fd.write(0, spec)
        view = fd.read(1000, 64)
        assert view.content_equal(PatternData(7, 1000, 64))

    def test_negative_write_offset_rejected(self):
        with pytest.raises(InvalidArgument):
            FileData().write(-1, LiteralData(b"x"))


class TestNamespace:
    def test_mkdir_and_resolve(self):
        ns = Namespace()
        ns.mkdir("/a")
        ns.mkdir("/a/b")
        assert ns.resolve("/a/b").is_dir
        assert ns.readdir("/a") == ["b"]

    def test_mkdir_missing_parent(self):
        ns = Namespace()
        with pytest.raises(FileNotFound):
            ns.mkdir("/a/b")

    def test_mkdir_exists(self):
        ns = Namespace()
        ns.mkdir("/a")
        with pytest.raises(FileExists):
            ns.mkdir("/a")

    def test_makedirs(self):
        ns = Namespace()
        ns.makedirs("/x/y/z")
        assert ns.resolve("/x/y/z").is_dir
        ns.makedirs("/x/y/z")  # idempotent

    def test_create_and_unlink(self):
        ns = Namespace()
        ns.create("/f")
        assert not ns.resolve("/f").is_dir
        assert ns.n_files == 1
        ns.unlink("/f")
        assert ns.n_files == 0
        assert not ns.exists("/f")

    def test_create_exclusive(self):
        ns = Namespace()
        ns.create("/f", exclusive=True)
        with pytest.raises(FileExists):
            ns.create("/f", exclusive=True)

    def test_create_truncate(self):
        ns = Namespace()
        node = ns.create("/f")
        node.data.write(0, LiteralData(b"abc"))
        ns.create("/f", truncate=True)
        assert node.data.size == 0

    def test_create_over_dir_rejected(self):
        ns = Namespace()
        ns.mkdir("/d")
        with pytest.raises(IsADirectory):
            ns.create("/d")
        with pytest.raises(IsADirectory):
            ns.unlink("/d")

    def test_file_is_not_a_directory(self):
        ns = Namespace()
        ns.create("/f")
        with pytest.raises(NotADirectory):
            ns.resolve("/f/x")
        with pytest.raises(NotADirectory):
            ns.readdir("/f")

    def test_rmdir(self):
        ns = Namespace()
        ns.mkdir("/d")
        ns.mkdir("/d/e")
        with pytest.raises(DirectoryNotEmpty):
            ns.rmdir("/d")
        ns.rmdir("/d/e")
        ns.rmdir("/d")
        assert not ns.exists("/d")

    def test_rename(self):
        ns = Namespace()
        ns.mkdir("/a")
        ns.mkdir("/b")
        ns.create("/a/f")
        ns.rename("/a/f", "/b/g")
        assert ns.exists("/b/g")
        assert not ns.exists("/a/f")
        ns.create("/a/h")
        with pytest.raises(FileExists):
            ns.rename("/a/h", "/b/g")

    def test_walk(self):
        ns = Namespace()
        ns.makedirs("/a/b")
        ns.create("/a/f")
        paths = [p for p, _ in ns.walk("/")]
        assert paths == ["/", "/a", "/a/b", "/a/f"]

    def test_uids_unique(self):
        ns = Namespace()
        uids = {ns.create(f"/f{i}").uid for i in range(50)}
        assert len(uids) == 50
