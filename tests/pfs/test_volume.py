"""Integration-ish tests of the Volume facade (state + charged time)."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.errors import BadFileHandle, FileNotFound, InvalidArgument, PermissionDenied
from repro.pfs import Client, PatternData, Volume, panfs
from repro.pfs.config import PfsConfig
from repro.sim import Engine
from repro.units import KiB, MiB


def make_world(cfg=None, n_nodes=4):
    env = Engine()
    spec = ClusterSpec(name="t", n_nodes=n_nodes, node=NodeSpec(cores=4))
    cluster = Cluster(env, spec)
    vol = Volume(env, cluster, cfg or panfs())
    client = Client(node=cluster.nodes[0], client_id=0)
    return env, cluster, vol, client


class TestVolumeBasics:
    def test_write_read_roundtrip(self):
        env, _, vol, client = make_world()
        spec = PatternData(1, 0, 256 * KiB)

        def proc(env):
            fh = yield from vol.open(client, "/f", "w", create=True)
            yield from fh.write(0, spec)
            yield from fh.close()
            view = yield from vol.read_file(client, "/f")
            return view

        view = env.run_process(proc(env))
        assert view.content_equal(spec)
        assert env.now > 0

    def test_open_missing_without_create(self):
        env, _, vol, client = make_world()

        def proc(env):
            yield from vol.open(client, "/nope", "r")

        with pytest.raises(FileNotFound):
            env.run_process(proc(env))

    def test_mode_enforcement(self):
        env, _, vol, client = make_world()

        def proc(env):
            fh = yield from vol.open(client, "/f", "w", create=True)
            yield from fh.write(0, PatternData(1, 0, 10))
            with pytest.raises(PermissionDenied):
                yield from fh.read(0, 10)
            yield from fh.close()
            rh = yield from vol.open(client, "/f", "r")
            with pytest.raises(PermissionDenied):
                yield from rh.write(0, PatternData(1, 0, 10))
            yield from rh.close()

        env.run_process(proc(env))

    def test_closed_handle_rejected(self):
        env, _, vol, client = make_world()

        def proc(env):
            fh = yield from vol.open(client, "/f", "w", create=True)
            yield from fh.close()
            with pytest.raises(BadFileHandle):
                yield from fh.write(0, PatternData(1, 0, 1))
            with pytest.raises(BadFileHandle):
                yield from fh.close()

        env.run_process(proc(env))

    def test_truncate_on_open(self):
        env, _, vol, client = make_world()

        def proc(env):
            yield from vol.write_file(client, "/f", PatternData(1, 0, 1000))
            fh = yield from vol.open(client, "/f", "w", truncate=True)
            assert fh.size() == 0
            yield from fh.close()

        env.run_process(proc(env))

    def test_stat_and_readdir(self):
        env, _, vol, client = make_world()

        def proc(env):
            yield from vol.makedirs(client, "/d/e")
            yield from vol.write_file(client, "/d/f", PatternData(1, 0, 123))
            st = yield from vol.stat(client, "/d/f")
            listing = yield from vol.readdir(client, "/d")
            return st, listing

        st, listing = env.run_process(proc(env))
        assert st.size == 123 and not st.is_dir
        assert listing == ["e", "f"]

    def test_unlink_and_rename(self):
        env, _, vol, client = make_world()

        def proc(env):
            yield from vol.write_file(client, "/a", PatternData(1, 0, 10))
            yield from vol.rename(client, "/a", "/b")
            assert vol.ns.exists("/b") and not vol.ns.exists("/a")
            yield from vol.unlink(client, "/b")
            assert not vol.ns.exists("/b")

        env.run_process(proc(env))

    def test_invalid_mode(self):
        env, _, vol, client = make_world()

        def proc(env):
            yield from vol.open(client, "/f", "x", create=True)

        with pytest.raises(InvalidArgument):
            env.run_process(proc(env))


class TestVolumeTiming:
    def test_large_write_bandwidth_bounded_by_storage_net(self):
        """A 100 MiB streaming write lands near the 1.25 GB/s pipe rate."""
        env, _, vol, client = make_world()
        nbytes = 100 * MiB

        def proc(env):
            fh = yield from vol.open(client, "/big", "w", create=True)
            # Full-stripe aligned: no RMW.
            chunk = vol.cfg.full_stripe * 32
            off = 0
            while off < nbytes:
                n = min(chunk, nbytes - off)
                yield from fh.write(off, PatternData(1, off, n))
                off += n
            yield from fh.close()
            return env.now

        t = env.run_process(proc(env))
        ideal = nbytes / 1.25e9
        assert ideal < t < 4 * ideal

    def test_cached_reread_beats_storage(self):
        """Read-after-write from the same node is served from page cache."""
        env, _, vol, client = make_world()
        nbytes = 8 * MiB

        def proc(env):
            yield from vol.write_file(client, "/f", PatternData(1, 0, nbytes))
            t0 = env.now
            yield from vol.read_file(client, "/f")
            warm = env.now - t0
            client.node.page_cache.clear()
            t0 = env.now
            yield from vol.read_file(client, "/f")
            cold = env.now - t0
            return warm, cold

        warm, cold = env.run_process(proc(env))
        assert warm < cold / 3

    def test_remote_node_misses_cache(self):
        env, cluster, vol, client = make_world()
        other = Client(node=cluster.nodes[1], client_id=1)
        nbytes = 8 * MiB

        def proc(env):
            yield from vol.write_file(client, "/f", PatternData(1, 0, nbytes))
            t0 = env.now
            view = yield from vol.read_file(other, "/f")
            return env.now - t0, view

        dt, view = env.run_process(proc(env))
        assert dt > nbytes / 1.25e9 * 0.5  # paid the storage path
        assert view.content_equal(PatternData(1, 0, nbytes))

    def test_partial_stripe_write_pays_rmw(self):
        env, _, vol, client = make_world()
        fs = vol.cfg.full_stripe

        def timed_write(env, path, offset, nbytes):
            fh = yield from vol.open(client, path, "w", create=True)
            t0 = env.now
            yield from fh.write(offset, PatternData(1, 0, nbytes))
            dt = env.now - t0
            yield from fh.close()
            return dt

        def proc(env):
            aligned = yield from timed_write(env, "/a", 0, fs * 8)
            partial = yield from timed_write(env, "/b", fs // 2, fs * 8)
            return aligned, partial

        aligned, partial = env.run_process(proc(env))
        assert partial > aligned * 1.5

    def test_bulk_read_files_returns_contents(self):
        env, _, vol, client = make_world()

        def proc(env):
            for i in range(5):
                yield from vol.write_file(client, f"/f{i}", PatternData(i, 0, 1000))
            views = yield from vol.bulk_read_files(client, [f"/f{i}" for i in range(5)])
            return views

        views = env.run_process(proc(env))
        assert len(views) == 5
        for i, v in enumerate(views):
            assert v.content_equal(PatternData(i, 0, 1000))

    def test_bulk_read_charges_less_wall_time_than_serial(self):
        """The batch API must charge comparable aggregate demand (not free)."""
        env, _, vol, client = make_world()

        def proc(env):
            for i in range(20):
                yield from vol.write_file(client, f"/f{i}", PatternData(i, 0, 50_000))
            vol.cluster.drop_caches()
            vol._md_cache.clear()
            t0 = env.now
            yield from vol.bulk_read_files(client, [f"/f{i}" for i in range(20)])
            return env.now - t0

        dt = env.run_process(proc(env))
        assert dt > 0.002  # 20 files x per-file device overhead is not free

    def test_bulk_read_coalesces_concurrent_node_fetches(self):
        """Two ranks on one node slurping the same files: one storage fetch."""
        env, cluster, vol, client = make_world()
        other = Client(node=cluster.nodes[0], client_id=7)
        times = {}

        def setup(env):
            for i in range(30):
                yield from vol.write_file(client, f"/f{i}", PatternData(i, 0, 50_000))
            vol.cluster.drop_caches()
            vol._md_cache.clear()

        env.run_process(setup(env))
        paths = [f"/f{i}" for i in range(30)]

        def reader(env, who, c):
            t0 = env.now
            yield from vol.bulk_read_files(c, paths)
            times[who] = env.now - t0

        moved_before = vol.storage_net.bytes_moved
        env.process(reader(env, "a", client))
        env.process(reader(env, "b", other))
        env.run()
        moved = vol.storage_net.bytes_moved - moved_before
        # Only one copy of the 1.5 MB of file data crossed the network.
        assert moved < 2 * 30 * 50_000


class TestConcurrency:
    def test_n1_shared_file_slower_than_nn(self):
        """The core premise: strided N-1 writes collapse vs N-N (§II)."""
        nprocs, per_proc, rec = 16, 2 * MiB, 47 * KiB

        def run(pattern):
            env, cluster, vol, _ = make_world(n_nodes=4)
            done = []

            def writer(env, rank):
                client = Client(node=cluster.node_for_rank(rank, nprocs), client_id=rank)
                if pattern == "n1":
                    fh = yield from vol.open(client, "/shared", "w", create=True)
                else:
                    fh = yield from vol.open(client, f"/file.{rank}", "w", create=True)
                off, written = rank * rec, 0
                while written < per_proc:
                    base = off if pattern == "n1" else written
                    yield from fh.write(base, PatternData(rank, written, rec))
                    off += nprocs * rec
                    written += rec
                yield from fh.close()
                done.append(env.now)

            for r in range(nprocs):
                env.process(writer(env, r))
            env.run()
            return max(done)

        t_n1 = run("n1")
        t_nn = run("nn")
        assert t_n1 > 3 * t_nn, f"N-1 {t_n1:.2f}s should be >> N-N {t_nn:.2f}s"
