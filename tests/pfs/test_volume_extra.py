"""Additional Volume coverage: bulk_stat, md cache, write-back edges."""

import pytest

from repro.pfs import Client, PatternData
from repro.pfs.presets import panfs
from repro.units import KiB, MiB
from tests.conftest import make_world


def world_client():
    w = make_world()
    return w, w.volume, Client(node=w.cluster.nodes[0], client_id=0)


class TestBulkStat:
    def test_charges_linear_time(self):
        w, vol, client = world_client()

        def proc(env):
            t0 = env.now
            yield from vol.bulk_stat(client, 10)
            small = env.now - t0
            t0 = env.now
            yield from vol.bulk_stat(client, 1000)
            big = env.now - t0
            return small, big

        small, big = w.env.run_process(proc(w.env))
        assert big > 10 * small


class TestClientMetadataCache:
    def test_reopen_from_same_node_is_cheaper(self):
        w, vol, client = world_client()

        def proc(env):
            yield from vol.write_file(client, "/f", PatternData(1, 0, 10))
            t0 = env.now
            fh = yield from vol.open(client, "/f", "r")
            yield from fh.close()
            first = env.now - t0
            t0 = env.now
            fh = yield from vol.open(client, "/f", "r")
            yield from fh.close()
            second = env.now - t0
            return first, second

        first, second = w.env.run_process(proc(w.env))
        assert second < first

    def test_other_node_pays_full_open(self):
        w, vol, client = world_client()
        other = Client(node=w.cluster.nodes[1], client_id=9)

        def proc(env):
            yield from vol.write_file(client, "/f", PatternData(1, 0, 10))
            fh = yield from vol.open(client, "/f", "r")   # seeds node 0 cache
            yield from fh.close()
            t0 = env.now
            fh = yield from vol.open(other, "/f", "r")
            yield from fh.close()
            return env.now - t0

        dt = w.env.run_process(proc(w.env))
        full = vol.cfg.mds_latency + 0.35 / vol.cfg.mds_ops_per_sec \
            + vol.cfg.mds_latency + 0.15 / vol.cfg.mds_ops_per_sec
        assert dt == pytest.approx(full, rel=0.05)

    def test_drop_caches_resets_md_cache(self):
        w, vol, client = world_client()

        def open_close(env):
            fh = yield from vol.open(client, "/f", "r")
            yield from fh.close()
            return None

        def proc(env):
            yield from vol.write_file(client, "/f", PatternData(1, 0, 10))
            yield from open_close(env)
            w.drop_caches()
            t0 = env.now
            yield from open_close(env)
            return env.now - t0

        dt = w.env.run_process(proc(w.env))
        # Full (uncached) open cost again after the drop.
        assert dt > vol.cfg.mds_latency + 0.3 / vol.cfg.mds_ops_per_sec


class TestWriteBackEdges:
    def test_second_writer_disables_writeback(self):
        """The moment a file has two open writers, appends write through."""
        w, vol, client = world_client()
        other = Client(node=w.cluster.nodes[1], client_id=1)

        def proc(env):
            a = yield from vol.open(client, "/f", "w", create=True)
            b = yield from vol.open(other, "/f", "w")
            moved0 = vol.storage_net.bytes_moved
            yield from a.write(0, PatternData(1, 0, 64 * KiB))
            through = vol.storage_net.bytes_moved - moved0
            yield from a.close()
            yield from b.close()
            return through

        through = w.env.run_process(proc(w.env))
        assert through >= 64 * KiB  # not absorbed by the write-back buffer

    def test_non_contiguous_write_flushes_pending(self):
        w, vol, client = world_client()

        def proc(env):
            fh = yield from vol.open(client, "/f", "w", create=True)
            yield from fh.write(0, PatternData(1, 0, 100 * KiB))  # buffered
            moved0 = vol.storage_net.bytes_moved
            yield from fh.write(10 * MiB, PatternData(1, 0, 4 * KiB))  # jump
            moved = vol.storage_net.bytes_moved - moved0
            yield from fh.close()
            return moved

        moved = w.env.run_process(proc(w.env))
        # The jump forced the pending 100 KiB out plus its own bytes.
        assert moved >= 100 * KiB + 4 * KiB

    def test_close_flushes_remainder(self):
        w, vol, client = world_client()

        def proc(env):
            fh = yield from vol.open(client, "/f", "w", create=True)
            yield from fh.write(0, PatternData(1, 0, 100 * KiB))
            moved_before_close = vol.storage_net.bytes_moved
            yield from fh.close()
            return vol.storage_net.bytes_moved - moved_before_close

        flushed = w.env.run_process(proc(w.env))
        assert flushed >= 100 * KiB

    def test_writeback_disabled_config(self):
        w = make_world(pfs_cfg=panfs(writeback_bytes=0))
        vol = w.volume
        client = Client(node=w.cluster.nodes[0], client_id=0)

        def proc(env):
            fh = yield from vol.open(client, "/f", "w", create=True)
            moved0 = vol.storage_net.bytes_moved
            yield from fh.write(0, PatternData(1, 0, 4 * KiB))
            moved = vol.storage_net.bytes_moved - moved0
            yield from fh.close()
            return moved

        assert w.env.run_process(proc(w.env)) >= 4 * KiB
