"""Unit tests for the metadata-server model."""

import pytest

from repro.errors import ConfigError
from repro.pfs.config import PfsConfig
from repro.pfs.mds import MetadataServer
from repro.sim import Engine


def make(env, **kw):
    cfg = PfsConfig(mds_ops_per_sec=1000.0, dir_ops_per_sec=100.0,
                    mds_latency=1e-3, **kw)
    return MetadataServer(env, cfg)


class TestMds:
    def test_single_op_cost(self):
        env = Engine()
        mds = make(env)

        def proc(env):
            yield from mds.op("open")  # 0.35 units at 1000/s + 1ms latency
            return env.now

        assert env.run_process(proc(env)) == pytest.approx(1e-3 + 0.35 / 1000)

    def test_batched_ops_cost_linearly(self):
        env = Engine()
        mds = make(env)

        def proc(env):
            yield from mds.op("open", count=100)
            return env.now

        assert env.run_process(proc(env)) == pytest.approx(1e-3 + 35.0 / 1000)

    def test_fractional_count_for_cached_opens(self):
        env = Engine()
        mds = make(env)

        def proc(env):
            yield from mds.op("open", count=0.1)
            return env.now

        assert env.run_process(proc(env)) == pytest.approx(1e-3 + 0.035 / 1000)

    def test_unknown_op_rejected(self):
        env = Engine()
        mds = make(env)
        with pytest.raises(ConfigError):
            list(mds.op("frobnicate"))

    def test_nonpositive_count_rejected(self):
        env = Engine()
        mds = make(env)
        with pytest.raises(ConfigError):
            list(mds.op("open", count=0))

    def test_same_directory_creates_hit_the_dir_ceiling(self):
        """Creates in ONE directory run at dir rate; spread creates run at
        server rate — the §V single-directory bottleneck."""
        def storm(same_dir):
            env = Engine()
            mds = make(env)

            def proc(env, i):
                dir_uid = 7 if same_dir else i
                yield from mds.op("create", dir_uid=dir_uid)

            for i in range(50):
                env.process(proc(env, i))
            env.run()
            return env.now

        t_same = storm(True)
        t_spread = storm(False)
        # 50 creates at dir 100 u/s ~ 0.5s; at server 1000 u/s ~ 0.05s.
        assert t_same > 5 * t_spread

    def test_non_mutating_ops_skip_dir_ceiling(self):
        env = Engine()
        mds = make(env)

        def proc(env):
            for _ in range(20):
                yield from mds.op("stat", dir_uid=7)
            return env.now

        t = env.run_process(proc(env))
        assert t < 20 * (1e-3 + 0.25 / 100)  # far below dir-rate pacing

    def test_directory_size_degradation(self):
        env = Engine()
        mds = make(env, dir_degradation_entries=100)

        def proc(env):
            t0 = env.now
            yield from mds.op("create", dir_uid=1, dir_entries=0)
            small = env.now - t0
            t0 = env.now
            yield from mds.op("create", dir_uid=2, dir_entries=300)
            big = env.now - t0
            return small, big

        small, big = env.run_process(proc(env))
        assert big > 2.5 * small  # 1 + 300/100 = 4x demand

    def test_degradation_disabled(self):
        env = Engine()
        mds = make(env, dir_degradation_entries=0)

        def proc(env):
            t0 = env.now
            yield from mds.op("create", dir_uid=1, dir_entries=10_000)
            return env.now - t0

        t = env.run_process(proc(env))
        assert t == pytest.approx(1e-3 + 1.0 / 100)

    def test_op_counts_tracked(self):
        env = Engine()
        mds = make(env)

        def proc(env):
            yield from mds.op("open", count=3)
            yield from mds.op("close")

        env.run_process(proc(env))
        assert mds.op_counts == {"open": 3, "close": 1}
        assert mds.total_ops == 4
