"""Unit tests for unit helpers and the error hierarchy."""

import pytest

from repro import errors
from repro.units import GiB, KiB, MiB, fmt_bw, fmt_bytes, fmt_time


class TestFormatting:
    def test_fmt_bytes(self):
        assert fmt_bytes(0) == "0 B"
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(50 * MiB) == "50.0 MiB"
        assert fmt_bytes(3 * GiB) == "3.0 GiB"
        assert fmt_bytes(1536) == "1.5 KiB"

    def test_fmt_bw(self):
        assert fmt_bw(1.25e9) == "1.25 GB/s"
        assert fmt_bw(310e6) == "310.00 MB/s"
        assert fmt_bw(10) == "10.00 B/s"

    def test_fmt_time(self):
        assert fmt_time(2.5) == "2.500 s"
        assert fmt_time(0.0042) == "4.20 ms"
        assert fmt_time(3.3e-6) == "3.3 us"
        assert fmt_time(-1.0) == "-1.000 s"

    def test_unit_constants(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(errors.FileNotFound, errors.FSError)
        assert issubclass(errors.FSError, errors.ReproError)
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert issubclass(errors.PLFSError, errors.ReproError)

    def test_errno_names_in_message(self):
        err = errors.FileNotFound("/some/path")
        assert "ENOENT" in str(err)
        assert "/some/path" in str(err)
        assert errors.FileExists("/x").errno_name == "EEXIST"
        assert errors.UnsupportedOperation("/x").errno_name == "ENOTSUP"

    def test_message_without_path(self):
        err = errors.InvalidArgument(message="bad flag combo")
        assert "bad flag combo" in str(err)

    @pytest.mark.parametrize("cls,name", [
        (errors.NotADirectory, "ENOTDIR"),
        (errors.IsADirectory, "EISDIR"),
        (errors.DirectoryNotEmpty, "ENOTEMPTY"),
        (errors.BadFileHandle, "EBADF"),
        (errors.PermissionDenied, "EACCES"),
        (errors.InvalidArgument, "EINVAL"),
    ])
    def test_all_errnos(self, cls, name):
        assert cls.errno_name == name
