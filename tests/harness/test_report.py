"""Unit tests for tables, scales, and the harness CLI plumbing."""

import json

import pytest

from repro.harness.report import Table, fmt_cell, render_table, save_json, tables_to_json
from repro.harness.scales import PAPER, SMALL, get_scale


class TestTable:
    def test_add_and_column(self):
        t = Table(id="t", title="x", columns=["a", "b"])
        t.add(1, 2.5)
        t.add(3, 4.5)
        assert t.column("b") == [2.5, 4.5]

    def test_row_arity_checked(self):
        t = Table(id="t", title="x", columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_render_aligns(self):
        t = Table(id="fig0", title="demo", columns=["name", "value"],
                  notes="a note")
        t.add("alpha", 1.0)
        t.add("b", 123456.0)
        out = render_table(t)
        assert "fig0" in out and "demo" in out
        assert "a note" in out
        lines = out.splitlines()
        assert len({len(l) for l in lines[1:4]}) <= 2  # header/body aligned

    def test_fmt_cell(self):
        assert fmt_cell(None) == "-"
        assert fmt_cell(True) == "yes"
        assert fmt_cell(0.0) == "0"
        assert fmt_cell(0.000123) == "0.000123"
        assert fmt_cell(1234567.0) == "1.23e+06"
        assert fmt_cell(12) == "12"

    def test_json_roundtrip(self, tmp_path):
        t = Table(id="t1", title="x", columns=["a"], rows=[[1], [2]])
        path = tmp_path / "out.json"
        save_json([t], str(path))
        data = json.loads(path.read_text())
        assert data["t1"]["rows"] == [[1], [2]]
        assert tables_to_json([t])["t1"]["columns"] == ["a"]


class TestScales:
    def test_get_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "small"

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale().name == "paper"

    def test_get_scale_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale("small").name == "small"

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_paper_scale_reaches_published_counts(self):
        assert max(PAPER.fig4_streams) == 2048
        assert max(PAPER.fig8_read_procs) == 65536
        assert max(PAPER.fig8_meta_procs) == 32768
        assert max(SMALL.fig4_streams) <= 512


class TestCLI:
    def test_main_rejects_unknown_figure(self, capsys):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit):
            main(["figX"])

    def test_main_runs_smallest_figure(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        out_json = tmp_path / "r.json"
        # fig7 is the fastest figure end-to-end.
        assert main(["fig7", "--json", str(out_json)]) == 0
        captured = capsys.readouterr().out
        assert "fig7a" in captured
        data = json.loads(out_json.read_text())
        assert "fig7a" in data and "fig7b" in data

    def test_main_chart_flag(self, capsys):
        from repro.harness.__main__ import main

        assert main(["fig7", "--chart", "--logy"]) == 0
        captured = capsys.readouterr().out
        assert "[log y]" in captured
        assert "a=PLFS-1" in captured
