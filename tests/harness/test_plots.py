"""Tests for the ASCII chart renderer."""

import pytest

from repro.harness.plots import ascii_chart, chart_table
from repro.harness.report import Table


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart([1, 2, 3], [[1.0, 2.0, 3.0]], ["up"], title="t")
        assert "t" in out
        assert "a=up" in out
        lines = out.splitlines()
        assert any("a" in l for l in lines[1:-3])

    def test_monotone_series_renders_monotone(self):
        out = ascii_chart([0, 1, 2, 3], [[0.0, 1.0, 2.0, 3.0]], ["s"],
                          width=8, height=4)
        rows = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        cols = [r.index("a") for r in rows if "a" in r]
        # Top rows hold the largest y values, which for an increasing series
        # sit at the largest x: columns shrink as we scan downward.
        assert cols == sorted(cols, reverse=True)

    def test_multiple_series_distinct_marks(self):
        out = ascii_chart([1, 2], [[1.0, 2.0], [2.0, 1.0]], ["x", "y"])
        assert "a=x" in out and "b=y" in out

    def test_log_scale(self):
        out = ascii_chart([1, 2, 3], [[1.0, 100.0, 10000.0]], ["s"], logy=True)
        assert "[log y]" in out
        assert "1e+04" in out or "10000" in out or "1e+4" in out

    def test_log_scale_rejects_all_nonpositive(self):
        assert "positive" in ascii_chart([1], [[0.0]], ["s"], logy=True)

    def test_none_values_skipped(self):
        out = ascii_chart([1, 2, 3], [[1.0, None, 3.0]], ["s"])
        assert "a=s" in out

    def test_empty(self):
        assert ascii_chart([], [], []) == "(no data)"

    def test_flat_series(self):
        out = ascii_chart([1, 2], [[5.0, 5.0]], ["flat"])
        assert "a=flat" in out


class TestChartTable:
    def make(self):
        t = Table(id="x", title="demo", columns=["procs", "direct", "plfs", "note"])
        t.add(16, 100.0, 200.0, "n/a")
        t.add(32, 90.0, 250.0, "n/a")
        return t

    def test_charts_numeric_columns_only(self):
        out = chart_table(self.make())
        assert "a=direct" in out and "b=plfs" in out
        assert "note" not in out.splitlines()[-1]

    def test_non_numeric_x_rejected(self):
        t = Table(id="x", title="t", columns=["name", "v"])
        t.add("a", 1.0)
        assert "not numeric" in chart_table(t)

    def test_empty_table(self):
        assert "(empty table)" in chart_table(Table(id="x", title="t", columns=["a"]))
