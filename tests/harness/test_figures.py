"""Integration smoke tests: every figure function runs end-to-end.

A micro scale keeps each figure to seconds while still exercising every
code path the real reproductions use (worlds, sweeps, both stacks,
federation, Cielo preset, table assembly).
"""

import pytest

from repro.harness.figures import FIGURES
from repro.harness.report import render_tables, tables_to_json
from repro.harness.scales import Scale
from repro.units import KB, MB, MiB

MICRO = Scale(
    name="micro",
    fig2_nprocs=8,
    fig2_app_scale=0.05,
    fig4_streams=[4, 8],
    fig4_size_per_proc=1 * MB,
    fig4_transfer=100 * KB,
    fig5_procs=[4, 8],
    fig5_scale=0.05,
    fig7_nprocs=8,
    fig7_files_per_proc=[1, 2],
    fig7_mds_counts=[1, 3],
    fig8_read_procs=[16, 32],
    fig8_meta_procs=[16, 32],
    fig8_size_per_proc=2 * MB,
    fig8_transfer=1 * MiB,
    fig8_mds_counts=[1, 2],
    faults_nprocs=4,
    faults_per_proc=1 * MB,
    faults_work=40.0,
    faults_interval=10.0,
    faults_mtbfs=[20.0],
)

EXPECTED_TABLES = {
    "fig2": {"fig2", "fig2-portability"},
    "fig4": {"fig4a", "fig4b", "fig4c", "fig4d"},
    "fig5": {"fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f"},
    "fig7": {"fig7a", "fig7b"},
    "fig8": {"fig8a", "fig8b", "fig8c", "fig8d"},
    "ablations": {"ablate-threshold", "ablate-groups", "ablate-locks",
                  "ablate-federation", "ablate-index-merge"},
    "headline": {"headline"},
    "diagnose": {"diagnose-direct", "diagnose-direct-cache",
                 "diagnose-plfs", "diagnose-plfs-cache"},
    "faults": {"faults-eff", "faults-rec"},
}


@pytest.mark.parametrize("name", sorted(set(FIGURES) - {"headline"}))
def test_figure_runs_at_micro_scale(name):
    tables = FIGURES[name](MICRO)
    assert {t.id for t in tables} == EXPECTED_TABLES[name]
    for t in tables:
        assert t.rows, f"{t.id} produced no rows"
        assert all(len(r) == len(t.columns) for r in t.rows)
    # Rendering and JSON conversion must not choke on any cell type.
    text = render_tables(tables)
    assert all(t.id in text for t in tables)
    blob = tables_to_json(tables)
    assert set(blob) == EXPECTED_TABLES[name]
