"""Tests for world assembly (the harness's build_world wiring)."""

import pytest

from repro.harness.setup import World, build_world
from repro.cluster import CIELO, cielo
from repro.pfs import lustre
from repro.plfs import PlfsConfig


class TestBuildWorld:
    def test_defaults(self):
        w = build_world()
        assert isinstance(w, World)
        assert len(w.volumes) == 1
        assert w.volume is w.volumes[0]
        assert w.mount.cfg.aggregation == "parallel"

    def test_federated_volumes_share_physical_storage(self):
        w = build_world(n_volumes=4, federation="container")
        pools = {id(v.pool) for v in w.volumes}
        locks = {id(v.locks) for v in w.volumes}
        assert pools == {id(w.volume.pool)}
        assert locks == {id(w.volume.locks)}
        # ...but each volume has its own metadata server.
        assert len({id(v.mds) for v in w.volumes}) == 4

    def test_plfs_kwargs_forwarded(self):
        w = build_world(aggregation="flatten", n_subdirs=8)
        assert w.mount.cfg.aggregation == "flatten"
        assert w.mount.cfg.n_subdirs == 8

    def test_explicit_plfs_cfg_wins(self):
        cfg = PlfsConfig(aggregation="original")
        w = build_world(plfs_cfg=cfg)
        assert w.mount.cfg is cfg

    def test_pfs_cfg_applied_to_all_volumes(self):
        w = build_world(n_volumes=3, federation="subdir", pfs_cfg=lustre())
        assert all(v.cfg.name == "lustre" for v in w.volumes)

    def test_cluster_spec_applied(self):
        w = build_world(cluster_spec=cielo())
        assert w.cluster.spec is CIELO
        assert len(w.cluster.nodes) == CIELO.n_nodes

    def test_drop_caches_clears_everything(self):
        w = build_world(n_volumes=2, federation="container")
        w.cluster.nodes[0].page_cache.insert(1, 0, 1 << 20)
        w.volumes[1]._md_cache.add((0, 1))
        w.drop_caches()
        assert len(w.cluster.nodes[0].page_cache) == 0
        assert not w.volumes[1]._md_cache
