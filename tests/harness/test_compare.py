"""Tests for the result-snapshot comparison utility."""

import json

import pytest

from repro.harness.compare import compare_files, compare_results, render_diffs


def snap(rows, columns=("x", "y"), table="t1"):
    return {table: {"title": "t", "columns": list(columns), "rows": rows,
                    "notes": ""}}


class TestCompare:
    def test_identical_snapshots_have_no_diffs(self):
        a = snap([[1, 2.0], [3, 4.0]])
        assert compare_results(a, a) == []

    def test_drift_above_threshold_reported(self):
        old = snap([[1, 100.0]])
        new = snap([[1, 111.0]])
        diffs = compare_results(old, new, threshold=0.05)
        assert len(diffs) == 1
        d = diffs[0]
        assert d.column == "y" and d.rel_change == pytest.approx(0.11)
        assert "+11.0%" in str(d)

    def test_drift_below_threshold_suppressed(self):
        old = snap([[1, 100.0]])
        new = snap([[1, 102.0]])
        assert compare_results(old, new, threshold=0.05) == []

    def test_missing_table_reported(self):
        old = snap([[1, 2.0]])
        diffs = compare_results(old, {}, threshold=0.05)
        assert diffs[0].column == "<table>"

    def test_shape_change_reported(self):
        old = snap([[1, 2.0]])
        new = snap([[1, 2.0], [3, 4.0]])
        diffs = compare_results(old, new)
        assert diffs[0].column == "<shape>"

    def test_non_numeric_change_always_reported(self):
        old = snap([["a", 1.0]])
        new = snap([["b", 1.0]])
        diffs = compare_results(old, new)
        assert diffs[0].old == "a" and diffs[0].new == "b"

    def test_sorted_by_magnitude(self):
        old = snap([[100.0, 100.0]])
        new = snap([[110.0, 200.0]])
        diffs = compare_results(old, new)
        assert diffs[0].column == "y"  # +100% before +10%

    def test_zero_to_nonzero_is_infinite(self):
        diffs = compare_results(snap([[0.0, 1.0]]), snap([[5.0, 1.0]]))
        assert diffs[0].rel_change == float("inf")

    def test_file_roundtrip(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(snap([[1, 10.0]])))
        b.write_text(json.dumps(snap([[1, 20.0]])))
        diffs = compare_files(str(a), str(b))
        assert len(diffs) == 1

    def test_render(self):
        diffs = compare_results(snap([[1, 10.0]]), snap([[1, 20.0]]))
        out = render_diffs(diffs)
        assert "t1[0].y" in out
        assert render_diffs([]) == "no drifts above threshold"
