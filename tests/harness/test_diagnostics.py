"""Tests for the bottleneck-diagnostics reports."""

from repro.harness.diagnostics import cache_report, resource_report
from repro.harness.report import render_table
from repro.units import KB, MB
from repro.workloads import MPIIOTest, direct_stack, plfs_stack, run_workload
from tests.conftest import make_world


def run_some_io(world, stack_fn):
    wl = MPIIOTest(8, size_per_proc=1 * MB, transfer=100 * KB)
    run_workload(world, wl, stack_fn(world), cold_read=False)
    return world


class TestResourceReport:
    def test_report_rows_present(self):
        world = run_some_io(make_world(), plfs_stack)
        table = resource_report(world)
        names = table.column("resource")
        assert "storage pipe" in names
        assert "interconnect fabric" in names
        assert any("MDS" in n for n in names)
        assert "OSD pool (sum)" in names
        assert "lock manager" in names
        rendered = render_table(table)
        assert "GB moved" in rendered

    def test_utilizations_bounded(self):
        world = run_some_io(make_world(), plfs_stack)
        for row in resource_report(world).rows:
            util = row[2]
            assert 0.0 <= util <= 1.0 + 1e-9

    def test_direct_n1_shows_lock_traffic_plfs_does_not(self):
        wd = run_some_io(make_world(), direct_stack)
        wp = run_some_io(make_world(), plfs_stack)

        def revocations(world):
            table = resource_report(world)
            row = table.rows[table.column("resource").index("lock manager")]
            return int(row[3].split()[0])

        assert revocations(wd) > 0
        assert revocations(wp) == 0  # decoupled logs never conflict

    def test_federated_worlds_report_every_mds(self):
        world = make_world(n_volumes=3, federation="container")
        run_some_io(world, plfs_stack)
        names = resource_report(world).column("resource")
        assert sum("MDS" in n for n in names) == 3


class TestCacheReport:
    def test_warm_read_shows_hits(self):
        world = run_some_io(make_world(), plfs_stack)  # warm re-read inside
        table = cache_report(world)
        metrics = dict(zip(table.column("metric"), table.column("value")))
        assert metrics["block lookups"] > 0
        assert metrics["hit rate"] > 0.3
        assert metrics["resident blocks"] > 0

    def test_empty_world_is_all_zero(self):
        table = cache_report(make_world())
        metrics = dict(zip(table.column("metric"), table.column("value")))
        assert metrics["block lookups"] == 0
        assert metrics["hit rate"] == 0.0
