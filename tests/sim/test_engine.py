"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import AllOf, AnyOf, Engine


def test_timeout_advances_clock():
    env = Engine()

    def proc(env):
        yield env.timeout(2.5)
        return env.now

    assert env.run_process(proc(env)) == 2.5
    assert env.now == 2.5


def test_timeout_carries_value():
    env = Engine()

    def proc(env):
        got = yield env.timeout(1.0, value="payload")
        return got

    assert env.run_process(proc(env)) == "payload"


def test_zero_timeout_runs_in_order():
    env = Engine()
    order = []

    def proc(env, tag):
        yield env.timeout(0)
        order.append(tag)

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert order == ["a", "b"]


def test_negative_timeout_rejected():
    env = Engine()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_events_fire_in_time_order():
    env = Engine()
    seen = []

    def proc(env, delay):
        yield env.timeout(delay)
        seen.append(delay)

    for d in (5.0, 1.0, 3.0, 2.0, 4.0):
        env.process(proc(env, d))
    env.run()
    assert seen == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_process_waits_on_process():
    env = Engine()

    def child(env):
        yield env.timeout(3)
        return 42

    def parent(env):
        result = yield env.process(child(env))
        return (result, env.now)

    assert env.run_process(parent(env)) == (42, 3)


def test_waiting_on_finished_process_resumes_inline():
    env = Engine()

    def child(env):
        yield env.timeout(1)
        return "done"

    def parent(env):
        c = env.process(child(env))
        yield env.timeout(10)
        assert c.processed
        got = yield c  # already processed: must not deadlock
        return (got, env.now)

    assert env.run_process(parent(env)) == ("done", 10)


def test_process_exception_propagates_to_waiter():
    env = Engine()

    def child(env):
        yield env.timeout(1)
        raise ValueError("boom")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            return str(exc)
        return "no exception"

    assert env.run_process(parent(env)) == "boom"


def test_unhandled_process_exception_raises_from_run():
    env = Engine()

    def child(env):
        yield env.timeout(1)
        raise ValueError("unwatched")

    env.process(child(env))
    with pytest.raises(ValueError, match="unwatched"):
        env.run()


def test_yielding_non_event_is_an_error():
    env = Engine()

    def proc(env):
        yield 7

    env.process(proc(env))
    with pytest.raises(SimulationError, match="must yield Event"):
        env.run()


def test_process_requires_generator():
    env = Engine()
    with pytest.raises(SimulationError, match="generator"):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_run_until_stops_clock():
    env = Engine()

    def proc(env):
        yield env.timeout(100)

    p = env.process(proc(env))
    env.run(until=10)
    assert env.now == 10
    assert p.alive
    env.run()
    assert not p.alive
    assert env.now == 100


def test_run_until_past_rejected():
    env = Engine()
    env.run_process(iter_timeout(env, 5))
    with pytest.raises(SimulationError):
        env.run(until=1)


def iter_timeout(env, d):
    yield env.timeout(d)


def test_manual_event_succeed():
    env = Engine()
    ev = env.event()

    def waiter(env):
        got = yield ev
        return (got, env.now)

    def firer(env):
        yield env.timeout(4)
        ev.succeed("sig")

    p = env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert p.value == ("sig", 4)


def test_event_double_trigger_rejected():
    env = Engine()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)

    ev2 = env.event()

    def waiter(env):
        try:
            yield ev2
        except RuntimeError:
            return "caught"

    p = env.process(waiter(env))

    def firer(env):
        yield env.timeout(1)
        ev2.fail(RuntimeError("x"))
        with pytest.raises(SimulationError):
            ev2.succeed()

    env.process(firer(env))
    env.run()
    assert p.value == "caught"


def test_event_value_before_trigger_raises():
    env = Engine()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_fail_requires_exception():
    env = Engine()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_all_of_waits_for_all():
    env = Engine()

    def child(env, d):
        yield env.timeout(d)
        return d

    def parent(env):
        vals = yield AllOf(env, [env.process(child(env, d)) for d in (3, 1, 2)])
        return (vals, env.now)

    vals, t = env.run_process(parent(env))
    assert vals == [3, 1, 2]  # value order matches construction order
    assert t == 3


def test_all_of_empty_triggers_immediately():
    env = Engine()

    def parent(env):
        vals = yield AllOf(env, [])
        return (vals, env.now)

    assert env.run_process(parent(env)) == ([], 0)


def test_all_of_with_already_processed_children():
    env = Engine()

    def child(env):
        yield env.timeout(1)
        return "c"

    def parent(env):
        c1 = env.process(child(env))
        yield env.timeout(5)
        c2 = env.process(child(env))
        vals = yield AllOf(env, [c1, c2])  # c1 processed, c2 pending
        return (vals, env.now)

    assert env.run_process(parent(env)) == (["c", "c"], 6)


def test_all_of_fails_fast():
    env = Engine()

    def bad(env):
        yield env.timeout(1)
        raise RuntimeError("bad child")

    def slow(env):
        yield env.timeout(100)

    def parent(env):
        try:
            yield AllOf(env, [env.process(bad(env)), env.process(slow(env))])
        except RuntimeError as exc:
            return (str(exc), env.now)

    assert env.run_process(parent(env)) == ("bad child", 1)


def test_any_of_returns_first():
    env = Engine()

    def child(env, d):
        yield env.timeout(d)
        return d

    def parent(env):
        val = yield AnyOf(env, [env.process(child(env, d)) for d in (7, 2, 5)])
        return (val, env.now)

    assert env.run_process(parent(env)) == (2, 2)


def test_any_of_empty_triggers_immediately():
    env = Engine()

    def parent(env):
        val = yield AnyOf(env, [])
        return val

    assert env.run_process(parent(env)) is None


def test_run_process_detects_deadlock():
    env = Engine()

    def stuck(env):
        yield env.event()  # never triggered

    with pytest.raises(DeadlockError):
        env.run_process(stuck(env))


def test_many_processes_scale():
    """10k processes with interleaved timeouts complete in order."""
    env = Engine()
    done = []

    def proc(env, i):
        yield env.timeout(i % 17)
        done.append(i)

    for i in range(10_000):
        env.process(proc(env, i))
    env.run()
    assert len(done) == 10_000
    assert sorted(done) == list(range(10_000))


def test_deep_dependency_chain_does_not_overflow_stack():
    """5k processes each waiting on the next must not recurse."""
    env = Engine()

    def link(env, nxt):
        if nxt is None:
            yield env.timeout(1)
            return 0
        depth = yield nxt
        return depth + 1

    prev = None
    for _ in range(5000):
        prev = env.process(link(env, prev))
    assert env.run_process(link(env, prev)) == 5000
