"""Unit tests for phase clocks and job metrics."""

import pytest

from repro.sim import JobMetrics, PhaseClock, summarize


class TestPhaseClock:
    def test_basic_phase(self):
        clk = PhaseClock()
        clk.start("open", t=1.0)
        assert clk.stop("open", t=3.5) == 2.5
        assert clk.total("open") == 2.5

    def test_phases_accumulate(self):
        clk = PhaseClock()
        clk.start("write", t=0.0)
        clk.stop("write", t=1.0)
        clk.start("write", t=5.0)
        clk.stop("write", t=7.0)
        assert clk.total("write") == 3.0

    def test_double_start_rejected(self):
        clk = PhaseClock()
        clk.start("x", t=0)
        with pytest.raises(ValueError):
            clk.start("x", t=1)

    def test_stop_without_start_rejected(self):
        with pytest.raises(ValueError):
            PhaseClock().stop("x", t=1)

    def test_wall_span_tracked(self):
        clk = PhaseClock()
        clk.start("open", t=2.0)
        clk.stop("open", t=3.0)
        clk.start("close", t=9.0)
        clk.stop("close", t=10.0)
        assert clk.first_start == 2.0
        assert clk.last_stop == 10.0

    def test_unknown_phase_total_is_zero(self):
        assert PhaseClock().total("nope") == 0.0


class TestJobMetrics:
    def make_clocks(self):
        clocks = []
        for i in range(4):
            c = PhaseClock()
            c.start("open", t=0.0)
            c.stop("open", t=1.0 + i)  # open times 1..4
            c.start("io", t=1.0 + i)
            c.stop("io", t=10.0)
            clocks.append(c)
        return clocks

    def test_phase_max_and_mean(self):
        m = JobMetrics.from_rank_clocks(self.make_clocks(), bytes_total=100)
        assert m.phase_max["open"] == 4.0
        assert m.phase_mean["open"] == pytest.approx(2.5)
        assert m.nprocs == 4

    def test_wall_and_effective_bandwidth(self):
        m = JobMetrics.from_rank_clocks(self.make_clocks(), bytes_total=1000)
        assert m.wall_start == 0.0
        assert m.wall_end == 10.0
        assert m.effective_bandwidth == pytest.approx(100.0)

    def test_empty_clock_safe(self):
        m = JobMetrics.from_rank_clocks([PhaseClock()], bytes_total=10)
        assert m.wall_time == 0.0
        assert m.effective_bandwidth == 0.0


class TestSummary:
    def test_mean_std(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.std == pytest.approx((2.0 / 3) ** 0.5)
        assert s.n == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_format(self):
        s = summarize([2.0, 2.0])
        assert "±" in f"{s:.2f}"
