"""Kernel edges the hot-path overhaul must keep intact.

The immediate-event fast path and the deadline-based FairShareServer
timers both change *how* events are queued without being allowed to
change *when* or *in what order* they fire.  These tests pin the
observable contracts: (time, eid) FIFO ordering of same-timestamp
events, daemon-event run termination, step() on an exhausted queue, the
float-underflow completion branch, and serve_many's exact equivalence to
a loop of serve() calls.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, FairShareServer


class TestSameTimestampOrdering:
    def test_fifo_order_of_immediate_triggers(self):
        """Events triggered at one instant fire in trigger (eid) order."""
        env = Engine()
        log = []
        events = [env.event() for _ in range(5)]
        for i, ev in enumerate(events):
            ev._add_callback(lambda _e, i=i: log.append(i))
        # Trigger out of creation order: firing must follow *trigger* order.
        for i in (2, 0, 4, 1, 3):
            events[i].succeed()
        env.run()
        assert log == [2, 0, 4, 1, 3]

    def test_heap_entry_beats_later_immediate_at_same_time(self):
        """A timeout landing exactly now fires before immediates triggered
        while it was still queued — global (time, eid) order, not
        queue-of-origin order."""
        env = Engine()
        log = []
        first = env.timeout(1.0)   # heap, small eid
        second = env.timeout(1.0)  # heap, next eid
        bystander = env.event()

        def on_first(_ev):
            log.append("first")
            # Triggered at t=1.0 *after* `second` was armed: must fire last.
            bystander.succeed()

        first._add_callback(on_first)
        second._add_callback(lambda _ev: log.append("second"))
        bystander._add_callback(lambda _ev: log.append("bystander"))
        env.run()
        assert log == ["first", "second", "bystander"]

    def test_processes_start_in_spawn_order(self):
        env = Engine()
        log = []

        def proc(env, tag):
            log.append(tag)
            yield env.timeout(1)

        for tag in ("a", "b", "c"):
            env.process(proc(env, tag))
        env.run()
        assert log == ["a", "b", "c"]


class TestDaemonTermination:
    def test_daemon_timeout_does_not_keep_run_alive(self):
        env = Engine()
        env.timeout(100.0, daemon=True)
        env.timeout(2.0)
        env.run()
        assert env.now == 2.0

    def test_daemon_only_queue_stops_immediately(self):
        env = Engine()
        env.timeout(5.0, daemon=True)
        env.run()
        assert env.now == 0.0

    def test_daemon_fires_if_real_work_outlasts_it(self):
        env = Engine()
        fired = []
        probe = env.timeout(1.0, daemon=True)
        probe._add_callback(lambda _ev: fired.append(env.now))
        env.timeout(3.0)
        env.run()
        assert fired == [1.0]


class TestStepEmptyQueue:
    def test_step_on_fresh_engine_raises_simulation_error(self):
        env = Engine()
        with pytest.raises(SimulationError, match="empty event queue"):
            env.step()

    def test_step_after_run_exhausts_raises_simulation_error(self):
        env = Engine()
        env.timeout(1.0)
        env.run()
        with pytest.raises(SimulationError):
            env.step()


class TestScheduleAt:
    def test_fires_at_exact_absolute_time(self):
        env = Engine()
        times = []
        # 0.1 + 0.2 != 0.3 in floats; schedule_at must not re-round.
        target = 0.30000000000000004
        ev = env.schedule_at(target)
        ev._add_callback(lambda _ev: times.append(env.now))
        env.run()
        assert times == [target]

    def test_past_time_rejected(self):
        env = Engine()
        env.timeout(5.0)
        env.run()
        with pytest.raises(SimulationError, match="in the past"):
            env.schedule_at(1.0)

    def test_at_current_instant_fires_now(self):
        env = Engine()
        times = []

        def proc(env):
            yield env.timeout(2.0)
            at = env.schedule_at(env.now)
            at._add_callback(lambda _ev: times.append(env.now))

        env.process(proc(env))
        env.run()
        assert times == [2.0]


class TestFairShareUnderflow:
    def test_tiny_residual_at_huge_now_completes(self):
        """When now is so large the residual wall delay underflows below
        one ulp, the server must force-complete the top job rather than
        loop forever re-arming a timer for 'now'."""
        env = Engine()
        srv = FairShareServer(env, capacity=1e9)
        done = []

        def proc(env):
            yield env.timeout(1e18)  # ulp(1e18) = 128 >> 1e-9 service time
            ev = srv.serve(1.0)
            ev._add_callback(lambda _ev: done.append(env.now))

        env.process(proc(env))
        env.run()
        assert done == [1e18]
        assert srv.active == 0

    def test_vtime_snaps_to_forced_finish(self):
        env = Engine()
        srv = FairShareServer(env, capacity=1e9)

        def proc(env):
            yield env.timeout(1e18)
            yield srv.serve(1.0)

        env.run_process(proc(env))
        assert srv._vtime == pytest.approx(1.0)


class TestServeMany:
    def test_matches_loop_of_serve_exactly(self):
        """serve_many must reproduce a serve() loop's completion times
        bit-for-bit (same virtual finish order, same wall timestamps)."""
        demands = [3e6, 1e6, 2e6, 1e6, 5e5]

        def completions(batch: bool):
            env = Engine()
            srv = FairShareServer(env, capacity=1e9)
            times = {}

            def submit(env):
                yield env.timeout(0.5)  # arrive mid-run, not at t=0
                if batch:
                    events = srv.serve_many(demands)
                else:
                    events = [srv.serve(d) for d in demands]
                for i, ev in enumerate(events):
                    ev._add_callback(lambda _e, i=i: times.setdefault(i, env.now))

            env.process(submit(env))
            env.run()
            return times

        assert completions(batch=True) == completions(batch=False)

    def test_zero_demand_succeeds_immediately(self):
        env = Engine()
        srv = FairShareServer(env, capacity=1e9)
        events = srv.serve_many([0.0, 1e6, 0.0])
        assert events[0].triggered and events[2].triggered
        assert not events[1].triggered
        env.run()
        assert events[1].triggered

    def test_negative_demand_rejected(self):
        env = Engine()
        srv = FairShareServer(env, capacity=1e9)
        with pytest.raises(SimulationError, match="negative demand"):
            srv.serve_many([1e6, -1.0])

    def test_empty_batch_is_a_no_op(self):
        env = Engine()
        srv = FairShareServer(env, capacity=1e9)
        assert srv.serve_many([]) == []
        assert srv.active == 0


class TestSkipRearmTimerEconomy:
    def test_storm_of_laggards_arms_one_timer(self):
        """Arrivals behind the heap top must not create timer events."""
        env = Engine()
        srv = FairShareServer(env, capacity=1e9)
        done = []

        def submit(env):
            first = srv.serve(1e6)  # becomes and stays the earliest finish
            laggards = srv.serve_many([2e6] * 50)
            for ev in [first] + laggards:
                ev._add_callback(lambda _e: done.append(env.now))
            yield first

        seq_before = srv._timer_seq
        env.process(submit(env))
        env.run()
        # One arm for `first`, plus the early-fire chain and completion
        # re-arms — far fewer than the 51 per-arrival timers of old.
        assert srv._timer_seq - seq_before <= 4
        assert len(done) == 51

    def test_earlier_arrival_still_preempts_armed_timer(self):
        """An arrival that becomes the new earliest finish must re-arm."""
        env = Engine()
        srv = FairShareServer(env, capacity=1e6)
        order = []

        def submit(env):
            big = srv.serve(10e6)
            small = srv.serve(1e6)  # earlier virtual finish than big
            big._add_callback(lambda _e: order.append(("big", env.now)))
            small._add_callback(lambda _e: order.append(("small", env.now)))
            yield big

        env.process(submit(env))
        env.run()
        assert [tag for tag, _ in order] == ["small", "big"]
        # small: 1e6 demand at half rate (2 jobs) -> 2s.
        assert order[0][1] == pytest.approx(2.0)
        # big: 2s at half rate + remaining 9e6 at full rate -> 11s.
        assert order[1][1] == pytest.approx(11.0)
