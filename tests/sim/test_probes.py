"""Tests for daemon events and bandwidth probes."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, FairShareServer
from repro.sim.probes import BandwidthProbe, summarize_probe


class TestDaemonEvents:
    def test_daemon_timeout_does_not_keep_run_alive(self):
        env = Engine()
        env.timeout(100.0, daemon=True)

        def proc(env):
            yield env.timeout(1.0)
            return env.now

        assert env.run_process(proc(env)) == 1.0
        assert env.now == 1.0  # did not run on to t=100

    def test_daemon_events_fire_when_real_work_passes_them(self):
        env = Engine()
        fired = []
        t = env.timeout(5.0, daemon=True)
        t._add_callback(lambda ev: fired.append(env.now))

        def proc(env):
            yield env.timeout(10.0)

        env.run_process(proc(env))
        assert fired == [5.0]

    def test_pure_daemon_engine_stops_immediately(self):
        env = Engine()
        env.timeout(1.0, daemon=True)
        env.run()
        assert env.now == 0.0


class TestBandwidthProbe:
    def test_probe_samples_service_rate(self):
        env = Engine()
        srv = FairShareServer(env, capacity=100.0)
        probe = BandwidthProbe(env, srv, period=1.0)

        def proc(env):
            yield env.timeout(2.0)
            yield srv.serve(300.0)  # 3s at full rate: t=2..5
            yield env.timeout(3.0)  # idle tail so late samples exist

        env.run_process(proc(env))
        series = dict(probe.series())
        assert series[1.0] == 0.0                      # idle before the burst
        assert series[4.0] == pytest.approx(100.0)     # mid-burst at capacity
        assert series[7.0] == 0.0                      # idle after

    def test_probe_does_not_extend_the_run(self):
        env = Engine()
        srv = FairShareServer(env, capacity=10.0)
        BandwidthProbe(env, srv, period=0.5)

        def proc(env):
            yield srv.serve(20.0)

        env.run_process(proc(env))
        assert env.now == pytest.approx(2.0)

    def test_probe_survives_across_jobs(self):
        env = Engine()
        srv = FairShareServer(env, capacity=10.0)
        probe = BandwidthProbe(env, srv, period=1.0)

        def job(env):
            yield srv.serve(20.0)

        env.run_process(job(env))
        first = len(probe.series())
        env.run_process(job(env))
        assert len(probe.series()) > first

    def test_summary(self):
        env = Engine()
        srv = FairShareServer(env, capacity=100.0)
        probe = BandwidthProbe(env, srv, period=1.0)

        def proc(env):
            yield srv.serve(200.0)
            yield env.timeout(2.0)

        env.run_process(proc(env))
        peak, mean, duty = summarize_probe(probe, capacity=100.0)
        assert peak == pytest.approx(100.0)
        assert 0 < mean < 100.0
        assert 0 < duty < 1.0

    def test_bad_period_rejected(self):
        env = Engine()
        srv = FairShareServer(env, capacity=1.0)
        with pytest.raises(SimulationError):
            BandwidthProbe(env, srv, period=0)

    def test_stop(self):
        env = Engine()
        srv = FairShareServer(env, capacity=10.0)
        probe = BandwidthProbe(env, srv, period=1.0)
        probe.stop()

        def proc(env):
            yield srv.serve(100.0)

        env.run_process(proc(env))
        # Stopped after at most one further tick.
        assert len(probe.series()) <= 1
