"""Additional engine edge-case coverage."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Engine


class TestEventEdges:
    def test_succeeded_event_with_no_waiters_is_fine(self):
        env = Engine()
        env.event().succeed("ignored")
        env.run()  # must not raise

    def test_anyof_with_failed_child_propagates(self):
        env = Engine()

        def bad(env):
            yield env.timeout(1)
            raise RuntimeError("child failed")

        def good(env):
            yield env.timeout(5)

        def parent(env):
            try:
                yield AnyOf(env, [env.process(bad(env)), env.process(good(env))])
            except RuntimeError as exc:
                return str(exc)

        assert env.run_process(parent(env)) == "child failed"

    def test_anyof_with_already_processed_child(self):
        env = Engine()

        def child(env):
            yield env.timeout(1)
            return "early"

        def parent(env):
            c = env.process(child(env))
            yield env.timeout(3)
            got = yield AnyOf(env, [c, env.timeout(100)])
            return (got, env.now)

        assert env.run_process(parent(env)) == ("early", 3)

    def test_allof_value_order_is_construction_order(self):
        env = Engine()

        def child(env, d, v):
            yield env.timeout(d)
            return v

        def parent(env):
            vals = yield AllOf(env, [
                env.process(child(env, 3, "slow")),
                env.process(child(env, 1, "fast")),
            ])
            return vals

        assert env.run_process(parent(env)) == ["slow", "fast"]

    def test_condition_rejects_cross_engine_events(self):
        env1, env2 = Engine(), Engine()
        with pytest.raises(SimulationError, match="different engines"):
            AllOf(env1, [env2.event()])

    def test_nested_processes(self):
        env = Engine()

        def leaf(env, d):
            yield env.timeout(d)
            return d

        def mid(env):
            a = yield env.process(leaf(env, 2))
            b = yield env.process(leaf(env, 3))
            return a + b

        def top(env):
            total = yield env.process(mid(env))
            return (total, env.now)

        assert env.run_process(top(env)) == (5, 5)

    def test_generator_cleanup_on_bad_yield(self):
        env = Engine()
        cleaned = []

        def proc(env):
            try:
                yield "not an event"
            finally:
                cleaned.append(True)

        env.process(proc(env))
        with pytest.raises(SimulationError):
            env.run()
        assert cleaned == [True]

    def test_run_until_boundary_inclusive_behavior(self):
        env = Engine()
        fired = []

        def proc(env):
            yield env.timeout(10)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=10)  # event AT the boundary runs
        assert fired == [10]

    def test_timeout_zero_value_passthrough(self):
        env = Engine()

        def proc(env):
            v = yield env.timeout(0, value={"k": 1})
            return v

        assert env.run_process(proc(env)) == {"k": 1}

    def test_interleaved_engines_are_independent(self):
        env1, env2 = Engine(), Engine()

        def proc(env, d):
            yield env.timeout(d)
            return env.now

        p1 = env1.process(proc(env1, 5))
        p2 = env2.process(proc(env2, 7))
        env1.run()
        assert p1.value == 5 and env2.now == 0
        env2.run()
        assert p2.value == 7
