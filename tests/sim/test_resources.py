"""Unit tests for Resource, Mutex, FairShareServer, and Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, FairShareServer, Mutex, Resource, Store


class TestResource:
    def test_immediate_grant(self):
        env = Engine()
        res = Resource(env, 2)

        def proc(env):
            yield res.acquire()
            return env.now

        assert env.run_process(proc(env)) == 0

    def test_blocks_at_capacity(self):
        env = Engine()
        res = Resource(env, 1)
        order = []

        def holder(env):
            yield res.acquire()
            yield env.timeout(5)
            order.append(("holder-release", env.now))
            res.release()

        def waiter(env):
            yield res.acquire()
            order.append(("waiter-acquired", env.now))
            res.release()

        env.process(holder(env))
        env.process(waiter(env))
        env.run()
        assert order == [("holder-release", 5), ("waiter-acquired", 5)]

    def test_fifo_granting_no_barging(self):
        env = Engine()
        res = Resource(env, 2)
        grants = []

        def proc(env, tag, n, hold):
            yield res.acquire(n)
            grants.append(tag)
            yield env.timeout(hold)
            res.release(n)

        # big (2 units) queued first must be granted before later small one
        def scenario(env):
            yield res.acquire(2)
            env.process(proc(env, "big", 2, 1))
            env.process(proc(env, "small", 1, 1))
            yield env.timeout(3)
            res.release(2)

        env.run_process(scenario(env))
        env.run()
        assert grants[0] == "big"

    def test_acquire_more_than_capacity_rejected(self):
        env = Engine()
        res = Resource(env, 2)
        with pytest.raises(SimulationError):
            res.acquire(3)
        with pytest.raises(SimulationError):
            res.acquire(0)

    def test_over_release_rejected(self):
        env = Engine()
        res = Resource(env, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_capacity_validation(self):
        env = Engine()
        with pytest.raises(SimulationError):
            Resource(env, 0)

    def test_mutex_serializes(self):
        env = Engine()
        m = Mutex(env)
        spans = []

        def critical(env, tag):
            yield m.acquire()
            start = env.now
            yield env.timeout(2)
            spans.append((tag, start, env.now))
            m.release()

        for i in range(4):
            env.process(critical(env, i))
        env.run()
        # No two critical sections overlap.
        spans.sort(key=lambda s: s[1])
        for (_, _, end0), (_, start1, _) in zip(spans, spans[1:]):
            assert start1 >= end0
        assert env.now == 8


class TestFairShareServer:
    def test_single_job_full_rate(self):
        env = Engine()
        srv = FairShareServer(env, capacity=100.0)

        def proc(env):
            yield srv.serve(500.0)
            return env.now

        assert env.run_process(proc(env)) == pytest.approx(5.0)

    def test_two_equal_jobs_share_equally(self):
        env = Engine()
        srv = FairShareServer(env, capacity=100.0)
        ends = []

        def proc(env):
            yield srv.serve(500.0)
            ends.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        # Each sees rate 50 -> both finish at t=10; aggregate stays 100.
        assert ends == [pytest.approx(10.0)] * 2

    def test_work_conservation_with_staggered_arrivals(self):
        env = Engine()
        srv = FairShareServer(env, capacity=100.0)
        ends = {}

        def proc(env, tag, start, demand):
            yield env.timeout(start)
            yield srv.serve(demand)
            ends[tag] = env.now

        # a: 600 units at t=0. b: 200 units at t=2.
        # t in [0,2): a alone, rate 100 -> a has 400 left at t=2.
        # t in [2,?): both, rate 50 each. b finishes 200 at t=6; a has 200 left.
        # a alone again, rate 100 -> finishes at t=8.
        env.process(proc(env, "a", 0, 600))
        env.process(proc(env, "b", 2, 200))
        env.run()
        assert ends["b"] == pytest.approx(6.0)
        assert ends["a"] == pytest.approx(8.0)

    def test_late_arrival_delays_earlier_job(self):
        """A previously-armed completion must be re-evaluated on arrival."""
        env = Engine()
        srv = FairShareServer(env, capacity=10.0)
        ends = {}

        def proc(env, tag, start, demand):
            yield env.timeout(start)
            yield srv.serve(demand)
            ends[tag] = env.now

        # a: demand 100, alone would finish at t=10.
        # b arrives at t=9 with demand 100: from t=9 each gets rate 5.
        # a has 10 left -> +2s -> t=11.  b then alone: 90 left at rate 10 -> t=20.
        env.process(proc(env, "a", 0, 100))
        env.process(proc(env, "b", 9, 100))
        env.run()
        assert ends["a"] == pytest.approx(11.0)
        assert ends["b"] == pytest.approx(20.0)

    def test_zero_demand_completes_immediately(self):
        env = Engine()
        srv = FairShareServer(env, capacity=1.0)

        def proc(env):
            yield srv.serve(0.0)
            return env.now

        assert env.run_process(proc(env)) == 0

    def test_negative_demand_rejected(self):
        env = Engine()
        srv = FairShareServer(env, capacity=1.0)
        with pytest.raises(SimulationError):
            srv.serve(-1.0)

    def test_capacity_validation(self):
        env = Engine()
        with pytest.raises(SimulationError):
            FairShareServer(env, capacity=0.0)

    def test_aggregate_throughput_is_capacity(self):
        """N simultaneous equal jobs all finish at N*d/C (bulk-sync case)."""
        env = Engine()
        srv = FairShareServer(env, capacity=1000.0)
        ends = []

        def proc(env):
            yield srv.serve(10.0)
            ends.append(env.now)

        n = 256
        for _ in range(n):
            env.process(proc(env))
        env.run()
        assert all(t == pytest.approx(n * 10.0 / 1000.0) for t in ends)
        assert srv.total_served == pytest.approx(n * 10.0)
        assert srv.peak_active == n

    def test_utilization(self):
        env = Engine()
        srv = FairShareServer(env, capacity=10.0)

        def proc(env):
            yield env.timeout(5)
            yield srv.serve(50.0)  # takes 5s

        env.run_process(proc(env))
        assert env.now == pytest.approx(10.0)
        assert srv.utilization() == pytest.approx(0.5)


class TestStore:
    def test_put_then_get(self):
        env = Engine()
        store = Store(env)
        store.put("x")

        def proc(env):
            item = yield store.get()
            return item

        assert env.run_process(proc(env)) == "x"

    def test_get_blocks_until_put(self):
        env = Engine()
        store = Store(env)

        def getter(env):
            item = yield store.get()
            return (item, env.now)

        def putter(env):
            yield env.timeout(3)
            store.put("late")

        p = env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert p.value == ("late", 3)

    def test_fifo_order_items_and_getters(self):
        env = Engine()
        store = Store(env)
        got = []

        def getter(env, tag):
            item = yield store.get()
            got.append((tag, item))

        env.process(getter(env, "g1"))
        env.process(getter(env, "g2"))

        def putter(env):
            yield env.timeout(1)
            store.put("a")
            store.put("b")
            store.put("c")

        env.process(putter(env))
        env.run()
        assert got == [("g1", "a"), ("g2", "b")]
        assert len(store) == 1
