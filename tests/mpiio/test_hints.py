"""Validation tests for MPI-IO hints."""

import pytest

from repro.errors import ConfigError
from repro.mpiio import Hints


class TestHints:
    def test_defaults(self):
        h = Hints()
        assert not h.cb_enable
        assert h.cb_nodes == 0
        assert h.cb_buffer_size > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            Hints(cb_nodes=-1)
        with pytest.raises(ConfigError):
            Hints(cb_buffer_size=0)

    def test_frozen(self):
        h = Hints()
        with pytest.raises(Exception):
            h.cb_enable = True
