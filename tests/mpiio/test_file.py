"""Tests for the MPI-IO layer: drivers, collective open, two-phase I/O."""

import pytest

from repro.errors import UnsupportedOperation
from repro.mpi import run_job
from repro.mpiio import Hints, MPIFile, PlfsDriver, UfsDriver
from repro.pfs.data import PatternData
from tests.conftest import make_world

KB = 1000


def strided_writer(driver_factory, path, per_proc, rec, hints=None, collective=False):
    def fn(ctx):
        driver = driver_factory()
        f = yield from MPIFile.open(ctx, path, "w", driver, hints)
        pieces = []
        written = 0
        while written < per_proc:
            n = min(rec, per_proc - written)
            logical = ctx.rank * rec + (written // rec) * ctx.nprocs * rec
            pieces.append((logical, PatternData(ctx.rank, written, n)))
            written += n
        if collective:
            yield from f.write_at_all(pieces)
        else:
            for off, spec in pieces:
                yield from f.write_at(off, spec)
        yield from f.close()
        return f.size()

    return fn


def strided_reader(driver_factory, path, per_proc, rec, hints=None,
                   collective=False, shift=0):
    def fn(ctx):
        driver = driver_factory()
        f = yield from MPIFile.open(ctx, path, "r", driver, hints)
        src = (ctx.rank + shift) % ctx.nprocs
        reqs, specs = [], []
        got = 0
        while got < per_proc:
            n = min(rec, per_proc - got)
            logical = src * rec + (got // rec) * ctx.nprocs * rec
            reqs.append((logical, n))
            specs.append(PatternData(src, got, n))
            got += n
        if collective:
            views = yield from f.read_at_all(reqs)
        else:
            views = []
            for off, n in reqs:
                v = yield from f.read_at(off, n)
                views.append(v)
        yield from f.close()
        return all(v.content_equal(s) for v, s in zip(views, specs))

    return fn


@pytest.mark.parametrize("use_plfs", [False, True], ids=["ufs", "plfs"])
class TestDrivers:
    nprocs, per_proc, rec = 8, 35 * KB, 7 * KB

    def factory(self, w, use_plfs):
        return (lambda: PlfsDriver(w.mount)) if use_plfs else (lambda: UfsDriver(w.volume))

    def test_independent_roundtrip(self, use_plfs):
        w = make_world()
        fac = self.factory(w, use_plfs)
        res = run_job(w.env, w.cluster, self.nprocs,
                      strided_writer(fac, "/f", self.per_proc, self.rec))
        # Ranks close at different times; the last closer sees the full size
        # (and a PLFS write handle reports its own writer's EOF).
        assert max(res.results) == self.nprocs * self.per_proc
        rres = run_job(w.env, w.cluster, self.nprocs,
                       strided_reader(fac, "/f", self.per_proc, self.rec, shift=2),
                       client_id_base=1000)
        assert all(rres.results)

    def test_collective_roundtrip_with_cb(self, use_plfs):
        w = make_world()
        fac = self.factory(w, use_plfs)
        hints = Hints(cb_enable=True, cb_nodes=2)
        res = run_job(w.env, w.cluster, self.nprocs,
                      strided_writer(fac, "/f", self.per_proc, self.rec,
                                     hints=hints, collective=True))
        assert max(res.results) == self.nprocs * self.per_proc
        rres = run_job(w.env, w.cluster, self.nprocs,
                       strided_reader(fac, "/f", self.per_proc, self.rec,
                                      hints=hints, collective=True, shift=3),
                       client_id_base=1000)
        assert all(rres.results)

    def test_cb_write_then_independent_read(self, use_plfs):
        w = make_world()
        fac = self.factory(w, use_plfs)
        hints = Hints(cb_enable=True)
        run_job(w.env, w.cluster, self.nprocs,
                strided_writer(fac, "/f", self.per_proc, self.rec,
                               hints=hints, collective=True))
        rres = run_job(w.env, w.cluster, self.nprocs,
                       strided_reader(fac, "/f", self.per_proc, self.rec, shift=1),
                       client_id_base=1000)
        assert all(rres.results)


class TestCollectiveBuffering:
    def test_cb_reduces_fs_requests_for_tiny_records(self):
        """Two-phase turns many 1 KB writes into few large ones (§IV-D6)."""
        nprocs, per_proc, rec = 16, 64 * KB, 1 * KB

        def count_requests(hints, collective):
            w = make_world()
            fac = lambda: UfsDriver(w.volume)  # noqa: E731
            run_job(w.env, w.cluster, nprocs,
                    strided_writer(fac, "/f", per_proc, rec,
                                   hints=hints, collective=collective))
            return sum(o.requests for o in w.volume.pool.osds), w.env.now

        reqs_plain, t_plain = count_requests(None, False)
        reqs_cb, t_cb = count_requests(Hints(cb_enable=True, cb_nodes=4), True)
        assert reqs_cb < reqs_plain / 5
        assert t_cb < t_plain

    def test_rw_mode_rejected_by_plfs_driver(self):
        w = make_world()

        def fn(ctx):
            with pytest.raises(UnsupportedOperation):
                yield from MPIFile.open(ctx, "/f", "rw", PlfsDriver(w.mount))
            return True

        assert run_job(w.env, w.cluster, 2, fn).results == [True, True]

    def test_empty_collective_participation(self):
        """Ranks with no data still complete collective calls."""
        w = make_world()

        def fn(ctx):
            f = yield from MPIFile.open(ctx, "/f", "w", UfsDriver(w.volume),
                                        Hints(cb_enable=True))
            pieces = [(0, PatternData(1, 0, 10 * KB))] if ctx.rank == 0 else []
            yield from f.write_at_all(pieces)
            yield from f.write_at_all([])  # an all-empty round
            yield from f.close()
            return True

        assert all(run_job(w.env, w.cluster, 4, fn).results)

    def test_double_close_rejected(self):
        w = make_world()

        def fn(ctx):
            f = yield from MPIFile.open(ctx, "/f", "w", UfsDriver(w.volume))
            yield from f.close()
            try:
                yield from f.close()
            except Exception:
                return "raised"

        assert run_job(w.env, w.cluster, 1, fn).results == ["raised"]
