"""Edge cases of the two-phase collective buffering implementation."""

import pytest

from repro.mpi import run_job
from repro.mpiio import Hints, MPIFile, UfsDriver
from repro.pfs.data import LiteralData, PatternData, ZeroData
from repro.units import KB, KiB, MiB
from tests.conftest import make_world


def open_cb(ctx, world, mode, cb_nodes=2):
    return MPIFile.open(ctx, "/f", mode, UfsDriver(world.volume),
                        Hints(cb_enable=True, cb_nodes=cb_nodes))


class TestTwoPhaseWrite:
    def test_piece_spanning_domain_boundary(self):
        """One rank's large piece splits across two aggregator domains."""
        world = make_world()

        def fn(ctx):
            f = yield from open_cb(ctx, world, "w")
            pieces = []
            if ctx.rank == 0:
                pieces = [(0, PatternData(1, 0, 2 * MiB))]
            elif ctx.rank == 1:
                pieces = [(2 * MiB, PatternData(2, 0, 2 * MiB))]
            yield from f.write_at_all(pieces)
            yield from f.close()

        run_job(world.env, world.cluster, 4, fn)
        node = world.volume.ns.resolve("/f")
        assert node.data.size == 4 * MiB
        assert node.data.read(0, 2 * MiB).content_equal(PatternData(1, 0, 2 * MiB))
        assert node.data.read(2 * MiB, 2 * MiB).content_equal(PatternData(2, 0, 2 * MiB))

    def test_single_aggregator(self):
        world = make_world()

        def fn(ctx):
            f = yield from open_cb(ctx, world, "w", cb_nodes=1)
            yield from f.write_at_all([(ctx.rank * KB, PatternData(ctx.rank, 0, KB))])
            yield from f.close()

        run_job(world.env, world.cluster, 8, fn)
        node = world.volume.ns.resolve("/f")
        for r in range(8):
            assert node.data.read(r * KB, KB).content_equal(PatternData(r, 0, KB))

    def test_more_aggregators_than_ranks_clamped(self):
        world = make_world()

        def fn(ctx):
            f = yield from MPIFile.open(ctx, "/f", "w", UfsDriver(world.volume),
                                        Hints(cb_enable=True, cb_nodes=64))
            yield from f.write_at_all([(ctx.rank * KB, LiteralData(b"z" * 1000))])
            yield from f.close()

        run_job(world.env, world.cluster, 2, fn)
        assert world.volume.ns.resolve("/f").data.size == 2 * KB

    def test_interleaved_tiny_records_coalesce(self):
        """The aggregator's writes are big & few even with 1 KB records."""
        world = make_world()
        nprocs = 8

        def fn(ctx):
            f = yield from open_cb(ctx, world, "w", cb_nodes=1)
            pieces = [(i * nprocs * KB + ctx.rank * KB, PatternData(ctx.rank, i * KB, KB))
                      for i in range(16)]
            yield from f.write_at_all(pieces)
            yield from f.close()

        run_job(world.env, world.cluster, nprocs, fn)
        # The round spans 128 KB contiguous -> one coalesced write run.
        node = world.volume.ns.resolve("/f")
        assert node.data.size == 16 * nprocs * KB
        assert len(node.data.sources) <= 4  # coalesced, not 128 tiny writes


class TestTwoPhaseRead:
    def test_read_with_holes_returns_zeros(self):
        world = make_world()

        def writer(ctx):
            f = yield from open_cb(ctx, world, "w")
            pieces = [(0, LiteralData(b"A" * 1000))] if ctx.rank == 0 else []
            yield from f.write_at_all(pieces)
            # Leave [1000, 5000) a hole, then more data.
            pieces = [(5000, LiteralData(b"B" * 1000))] if ctx.rank == 1 else []
            yield from f.write_at_all(pieces)
            yield from f.close()

        run_job(world.env, world.cluster, 4, fn=writer)

        def reader(ctx):
            f = yield from open_cb(ctx, world, "r")
            views = yield from f.read_at_all([(500, 1000)])
            yield from f.close()
            got = views[0].to_bytes()
            return got == b"A" * 500 + b"\x00" * 500

        res = run_job(world.env, world.cluster, 4, reader, client_id_base=100)
        assert all(res.results)

    def test_disjoint_requests_per_rank(self):
        world = make_world()
        nprocs = 4

        def writer(ctx):
            f = yield from open_cb(ctx, world, "w")
            yield from f.write_at_all(
                [(ctx.rank * 100 * KB, PatternData(ctx.rank, 0, 100 * KB))])
            yield from f.close()

        run_job(world.env, world.cluster, nprocs, writer)

        def reader(ctx):
            src = (ctx.rank + 1) % nprocs
            f = yield from open_cb(ctx, world, "r")
            views = yield from f.read_at_all([
                (src * 100 * KB, 50 * KB),
                (src * 100 * KB + 50 * KB, 50 * KB),
            ])
            yield from f.close()
            return (views[0].content_equal(PatternData(src, 0, 50 * KB))
                    and views[1].content_equal(PatternData(src, 50 * KB, 50 * KB)))

        res = run_job(world.env, world.cluster, nprocs, reader, client_id_base=100)
        assert all(res.results)

    def test_empty_read_round(self):
        world = make_world()

        def fn(ctx):
            f = yield from open_cb(ctx, world, "w")
            yield from f.write_at_all([(0, ZeroData(1000))] if ctx.rank == 0 else [])
            yield from f.close()
            g = yield from open_cb(ctx, world, "r")
            out = yield from g.read_at_all([])
            yield from g.close()
            return out == []

        assert all(run_job(world.env, world.cluster, 3, fn).results)
