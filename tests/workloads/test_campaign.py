"""Tests for the failure-injected checkpoint/restart campaign."""

import math

import pytest

from repro.errors import ConfigError
from repro.units import KB, MB
from repro.workloads import direct_stack, plfs_stack
from repro.workloads.campaign import Campaign, CampaignResult, daly_interval
from tests.conftest import make_world


class TestDalyInterval:
    def test_reduces_to_young_for_small_cost(self):
        c, m = 1.0, 100_000.0
        young = math.sqrt(2 * c * m)
        assert daly_interval(c, m) == pytest.approx(young, rel=0.02)

    def test_monotone_in_cost(self):
        m = 3600.0
        assert daly_interval(1.0, m) < daly_interval(10.0, m) < daly_interval(100.0, m)

    def test_clamped_for_huge_cost(self):
        assert daly_interval(10_000.0, 100.0) == 100.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            daly_interval(0, 100)
        with pytest.raises(ConfigError):
            daly_interval(1, -5)


def make_campaign(stack_fn, *, mtbf, interval, work=200.0, seed=7):
    world = make_world(n_nodes=8, cores=4, aggregation="parallel")
    stack = stack_fn(world)
    return Campaign(world, stack, nprocs=8, per_proc_bytes=1 * MB,
                    record_bytes=100 * KB, work_target=work,
                    interval=interval, mtbf=mtbf, seed=seed)


class TestCampaign:
    def test_failure_free_campaign(self):
        c = make_campaign(plfs_stack, mtbf=1e9, interval=50.0)
        res = c.run()
        assert res.n_failures == 0
        assert res.n_checkpoints == 3  # 200s work / 50s interval, last skipped
        assert res.lost_work == 0
        assert res.wall_time == pytest.approx(200.0 + res.checkpoint_time)
        assert 0 < res.efficiency < 1

    def test_failures_cost_work_and_restarts(self):
        c = make_campaign(plfs_stack, mtbf=80.0, interval=20.0, work=300.0)
        res = c.run()
        assert res.n_failures > 0
        assert res.restart_time > 0
        assert res.lost_work > 0
        assert res.wall_time > 300.0
        assert res.efficiency < 1.0

    def test_deterministic_given_seed(self):
        r1 = make_campaign(plfs_stack, mtbf=100.0, interval=25.0, seed=3).run()
        r2 = make_campaign(plfs_stack, mtbf=100.0, interval=25.0, seed=3).run()
        assert r1.n_failures == r2.n_failures
        assert r1.wall_time == pytest.approx(r2.wall_time)

    def test_faster_checkpoints_raise_efficiency(self):
        """The paper's argument, quantified: under the same failure stream,
        the stack with cheaper checkpoints wastes less wall time."""
        kw = dict(mtbf=150.0, interval=25.0, work=250.0, seed=11)
        plfs = make_campaign(plfs_stack, **kw).run()
        direct = make_campaign(direct_stack, **kw).run()
        assert plfs.checkpoint_time < direct.checkpoint_time
        assert plfs.efficiency > direct.efficiency

    def test_validation(self):
        world = make_world()
        with pytest.raises(ConfigError):
            Campaign(world, plfs_stack(world), nprocs=0, per_proc_bytes=1,
                     record_bytes=1, work_target=1, interval=1, mtbf=1)
        with pytest.raises(ConfigError):
            Campaign(world, plfs_stack(world), nprocs=1, per_proc_bytes=1,
                     record_bytes=1, work_target=0, interval=1, mtbf=1)
