"""Workload framework tests: plans, round trips, phase metrics."""

import pytest

from repro.units import KB, KiB, MB, MiB
from repro.workloads import (
    IOR,
    LANL1,
    LANL3,
    Aramco,
    MADbench,
    MPIIOTest,
    Pixie3D,
    app_suite,
    direct_stack,
    n1_open_storm,
    nn_metadata_storm,
    plfs_stack,
    run_workload,
)
from tests.conftest import make_world


def flat_extents(workload, rank):
    return [e for rnd in workload.write_rounds(rank) for e in rnd]


class TestPlans:
    def test_strided_interleaves(self):
        wl = MPIIOTest(4, size_per_proc=4 * KB, transfer=1 * KB, layout="strided")
        assert flat_extents(wl, 0) == [(0, KB), (4 * KB, KB), (8 * KB, KB), (12 * KB, KB)]
        assert flat_extents(wl, 1)[0] == (KB, KB)

    def test_segmented_is_contiguous(self):
        wl = MPIIOTest(4, size_per_proc=4 * KB, transfer=1 * KB, layout="segmented")
        assert flat_extents(wl, 1) == [(4 * KB, KB), (5 * KB, KB), (6 * KB, KB), (7 * KB, KB)]

    def test_nn_has_private_paths(self):
        wl = MPIIOTest(4, layout="nn")
        assert not wl.shared_file
        assert wl.file_path(0) != wl.file_path(1)

    def test_plans_cover_disjoint_extents(self):
        """No two ranks' write extents overlap, for every workload."""
        for wl in [
            MPIIOTest(4, size_per_proc=8 * KB, transfer=3 * KB),
            IOR(4, size_per_proc=8 * KB, transfer=3 * KB),
            Pixie3D(4, per_proc=2 * MiB, n_vars=2, io_size=MiB),
            Aramco(4, total_bytes=8 * MiB, chunk=MiB),
            MADbench(4, matrix_bytes_per_rank=2 * MiB, n_components=2),
            LANL1(4, per_proc=2 * MB, record=500 * KB),
            LANL3(4, total_bytes=8 * MiB, round_bytes=4 * MiB),
        ]:
            seen = []
            for r in range(4):
                for off, ln in flat_extents(wl, r):
                    assert ln > 0
                    seen.append((off, off + ln))
            seen.sort()
            for (s1, e1), (s2, e2) in zip(seen, seen[1:]):
                assert e1 <= s2, f"{wl.name}: [{s1},{e1}) overlaps [{s2},{e2})"

    def test_totals_consistent(self):
        wl = IOR(4, size_per_proc=8 * KB, transfer=3 * KB)
        assert wl.total_bytes == 32 * KB
        assert wl.bytes_per_rank(0) == 8 * KB

    def test_lanl3_rounds_are_collective(self):
        wl = LANL3(8, total_bytes=16 * MiB, round_bytes=8 * MiB)
        assert wl.collective_write
        rounds = list(wl.write_rounds(3))
        assert len(rounds) == 2
        assert rounds[0][0][1] == MiB  # 8 MiB round / 8 ranks


@pytest.mark.parametrize("stack_kind", ["direct", "plfs"])
class TestRoundTrips:
    def make_stack(self, world, kind, hints=None):
        return direct_stack(world, hints) if kind == "direct" else plfs_stack(world, hints)

    @pytest.mark.parametrize("wl_factory", [
        lambda n: MPIIOTest(n, size_per_proc=40 * KB, transfer=10 * KB),
        lambda n: IOR(n, size_per_proc=40 * KB, transfer=10 * KB),
        lambda n: Pixie3D(n, per_proc=1 * MiB, n_vars=2, io_size=512 * KiB),
        lambda n: Aramco(n, total_bytes=4 * MiB, chunk=512 * KiB),
        lambda n: MADbench(n, matrix_bytes_per_rank=1 * MiB, n_components=2),
        lambda n: LANL1(n, per_proc=2 * MB, record=500 * KB),
    ], ids=["mpiio", "ior", "pixie3d", "aramco", "madbench", "lanl1"])
    def test_write_read_verified(self, stack_kind, wl_factory):
        world = make_world()
        wl = wl_factory(4)
        stack = self.make_stack(world, stack_kind)
        res = run_workload(world, wl, stack, verify=True)
        assert res.read.verified is True
        assert res.write.bytes_moved == wl.total_bytes
        assert res.write.wall_time > 0
        assert res.read.effective_bandwidth > 0

    def test_lanl3_collective_verified(self, stack_kind):
        from repro.mpiio import Hints

        world = make_world()
        wl = LANL3(4, total_bytes=8 * MiB, round_bytes=4 * MiB)
        stack = self.make_stack(world, stack_kind, Hints(cb_enable=True, cb_nodes=2))
        res = run_workload(world, wl, stack, verify=True)
        assert res.read.verified is True

    def test_nn_layout_verified(self, stack_kind):
        world = make_world()
        wl = MPIIOTest(4, size_per_proc=40 * KB, transfer=10 * KB, layout="nn")
        stack = self.make_stack(world, stack_kind)
        res = run_workload(world, wl, stack, verify=True)
        assert res.read.verified is True


class TestPhaseSemantics:
    def test_cold_read_slower_than_warm(self):
        world = make_world()
        wl = MPIIOTest(4, size_per_proc=2 * MB, transfer=500 * KB)
        warm = run_workload(world, wl, plfs_stack(world), cold_read=False)
        world2 = make_world()
        cold = run_workload(world2, wl, plfs_stack(world2), cold_read=True)
        assert cold.read.io_time > warm.read.io_time

    def test_write_only_and_read_only(self):
        world = make_world()
        wl = IOR(2, size_per_proc=20 * KB, transfer=10 * KB)
        r1 = run_workload(world, wl, plfs_stack(world), do_read=False)
        assert r1.read is None and r1.write is not None
        r2 = run_workload(world, wl, plfs_stack(world), do_write=False, verify=True)
        assert r2.write is None and r2.read.verified is True


class TestMetadataBench:
    def test_nn_storm_direct_vs_plfs_federated(self):
        world = make_world(n_volumes=6, federation="container", n_nodes=4)
        direct = nn_metadata_storm(world, 16, 4, "direct", dirname="/m1")
        plfs6 = nn_metadata_storm(world, 16, 4, "plfs", dirname="/m2")
        assert direct.open_time > 0 and plfs6.open_time > 0
        # Closes: PLFS pays the metadata dropping; direct always wins (Fig 7b).
        assert plfs6.close_time > direct.close_time

    def test_nn_storm_plfs1_slower_than_direct(self):
        world = make_world(n_volumes=1)
        direct = nn_metadata_storm(world, 16, 4, "direct", dirname="/m1")
        plfs1 = nn_metadata_storm(world, 16, 4, "plfs", dirname="/m2")
        assert plfs1.open_time > direct.open_time  # container burden, 1 MDS

    def test_n1_open_storm_runs(self):
        world = make_world(n_volumes=2, federation="subdir")
        direct = n1_open_storm(world, 16, "direct", path="/s1/f")
        plfs = n1_open_storm(world, 16, "plfs", path="/s2/f")
        assert direct.open_time > 0 and plfs.open_time > 0


class TestAppSuite:
    def test_suite_builds_and_scales(self):
        specs = app_suite(scale=0.01)
        assert len(specs) == 7
        for spec in specs:
            wl = spec.make(4)
            assert wl.total_bytes > 0

    def test_suite_labels_unique(self):
        labels = [s.label for s in app_suite()]
        assert len(set(labels)) == len(labels)
