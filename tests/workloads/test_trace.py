"""Tests for trace-driven workloads."""

import pytest

from repro.errors import ConfigError
from repro.units import KB
from repro.workloads import direct_stack, plfs_stack, run_workload
from repro.workloads.trace import (
    IOTrace,
    TraceOp,
    TraceWorkload,
    synthesize_strided_trace,
)
from tests.conftest import make_world

SAMPLE = """
# a two-rank checkpoint
0 write 0     1000
1 write 1000  1000
0 write 2000  1000
0 barrier
0 read 0     1000
1 read 1000  1000
0 read 2000  1000
"""


class TestTraceParsing:
    def test_parse_and_shape(self):
        t = IOTrace.parse(SAMPLE)
        assert t.nprocs == 2
        assert len(t.ops_for(0, "write")) == 2
        assert t.bytes_for(0) == 2000
        assert t.bytes_for(1) == 1000

    def test_dump_parse_roundtrip(self):
        t = IOTrace.parse(SAMPLE)
        t2 = IOTrace.parse(t.dump())
        assert t2.ops == t.ops

    def test_save_load_roundtrip(self, tmp_path):
        t = IOTrace.parse(SAMPLE)
        path = tmp_path / "trace.txt"
        t.save(str(path))
        assert IOTrace.load(str(path)).ops == t.ops

    def test_bad_lines_rejected(self):
        with pytest.raises(ConfigError, match="line 1"):
            IOTrace.parse("0 write 10")
        with pytest.raises(ConfigError):
            IOTrace.parse("0 frobnicate 0 10")
        with pytest.raises(ConfigError):
            IOTrace.parse("0 write 0 0")  # zero length
        with pytest.raises(ConfigError):
            IOTrace.parse("   # only comments\n")

    def test_op_validation(self):
        with pytest.raises(ConfigError):
            TraceOp(rank=-1, op="write", offset=0, length=1)
        with pytest.raises(ConfigError):
            TraceOp(rank=0, op="write", offset=-1, length=1)
        TraceOp(rank=0, op="barrier")  # barriers need no extent


class TestTraceWorkload:
    def test_plans_follow_trace(self):
        wl = TraceWorkload(IOTrace.parse(SAMPLE))
        writes0 = [e for rnd in wl.write_rounds(0) for e in rnd]
        assert writes0 == [(0, 1000), (2000, 1000)]
        reads1 = [e for rnd in wl.read_rounds(1) for e in rnd]
        assert reads1 == [(1000, 1000)]

    def test_mirrored_reads_enable_verification(self):
        wl = TraceWorkload(IOTrace.parse(SAMPLE))
        assert wl.read_matches_write

    def test_divergent_reads_disable_verification(self):
        t = IOTrace.parse("0 write 0 100\n0 read 50 100\n")
        assert not TraceWorkload(t).read_matches_write

    def test_restart_convention_without_reads(self):
        t = IOTrace.parse("0 write 0 100\n")
        wl = TraceWorkload(t)
        assert list(wl.read_rounds(0)) == list(wl.write_rounds(0))

    @pytest.mark.parametrize("stack_fn", [direct_stack, plfs_stack])
    def test_trace_replay_verified_end_to_end(self, stack_fn):
        trace = synthesize_strided_trace(4, per_proc=20 * KB, record=5 * KB)
        wl = TraceWorkload(trace, name="trace-e2e")
        world = make_world()
        res = run_workload(world, wl, stack_fn(world), verify=True)
        assert res.read.verified is True
        assert res.write.bytes_moved == 4 * 20 * KB


class TestSynthesize:
    def test_strided_layout(self):
        t = synthesize_strided_trace(2, per_proc=300, record=100)
        w0 = [(op.offset, op.length) for op in t.ops_for(0, "write")]
        assert w0 == [(0, 100), (200, 100), (400, 100)]
        assert t.bytes_for(0) == 300
        assert len(t.ops_for(0, "read")) == 3

    def test_without_readback(self):
        t = synthesize_strided_trace(2, per_proc=100, record=100,
                                     with_readback=False)
        assert not t.ops_for(0, "read")

    def test_validation(self):
        with pytest.raises(ConfigError):
            synthesize_strided_trace(0, 10, 10)


class TestBarrierRounds:
    def test_barriers_split_rounds(self):
        t = IOTrace.parse(
            "0 write 0 100\n0 write 100 100\n0 barrier\n0 write 200 100\n")
        wl = TraceWorkload(t)
        rounds = list(wl.write_rounds(0))
        assert rounds == [[(0, 100), (100, 100)], [(200, 100)]]

    def test_no_barriers_single_round(self):
        t = IOTrace.parse("0 write 0 100\n0 write 100 100\n")
        rounds = list(TraceWorkload(t).write_rounds(0))
        assert rounds == [[(0, 100), (100, 100)]]

    def test_collective_trace_replay(self):
        """Barrier-grouped trace through two-phase collective buffering."""
        from repro.mpiio import Hints
        from repro.workloads.base import IOStack
        from repro.mpiio import UfsDriver

        lines = []
        nprocs = 4
        for rnd in range(3):
            for r in range(nprocs):
                lines.append(f"{r} write {rnd * 4000 + r * 1000} 1000")
            lines.append("0 barrier")
        t = IOTrace.parse("\n".join(lines))
        wl = TraceWorkload(t, name="trace-cb")
        wl.collective_write = True
        world = make_world()
        stack = IOStack(name="direct-cb",
                        make_driver=lambda: UfsDriver(world.volume),
                        hints=Hints(cb_enable=True, cb_nodes=2))
        res = run_workload(world, wl, stack, verify=True)
        assert res.read.verified is True
