"""Unit tests for the workload framework's own API surface."""

import pytest

from repro.errors import ConfigError
from repro.units import KB
from repro.workloads import IOR, MPIIOTest, Workload, direct_stack, plfs_stack
from repro.workloads.base import PhaseResult
from tests.conftest import make_world


class TestWorkloadBase:
    def test_abstract_plan_required(self):
        wl = Workload(4)
        with pytest.raises(NotImplementedError):
            list(wl.write_rounds(0))

    def test_nprocs_validated(self):
        with pytest.raises(ConfigError):
            MPIIOTest(0)

    def test_describe(self):
        assert "N-1" in MPIIOTest(4).describe()
        assert "N-N" in MPIIOTest(4, layout="nn").describe()

    def test_seeds_differ_per_rank_and_workload(self):
        a, b = MPIIOTest(4), IOR(4)
        assert a.seed(0) != a.seed(1)
        assert a.seed(0) != b.seed(0)

    def test_transfer_validation(self):
        with pytest.raises(ConfigError):
            MPIIOTest(2, size_per_proc=0)
        with pytest.raises(ConfigError):
            IOR(2, transfer=0)
        with pytest.raises(ConfigError):
            MPIIOTest(2, layout="diagonal")


class TestStacks:
    def test_stack_names(self, world):
        assert direct_stack(world).name == "direct"
        assert plfs_stack(world).name == "plfs"

    def test_driver_factories_fresh_per_call(self, world):
        stack = plfs_stack(world)
        assert stack.make_driver() is not stack.make_driver()
        assert stack.make_driver().mount is world.mount


class TestPhaseResult:
    def test_effective_bandwidth(self):
        pr = PhaseResult(phase="read", nprocs=4, bytes_moved=1000,
                         open_time=0.1, io_time=0.3, close_time=0.1,
                         wall_time=0.5)
        assert pr.effective_bandwidth == pytest.approx(2000.0)

    def test_zero_wall_safe(self):
        pr = PhaseResult(phase="read", nprocs=1, bytes_moved=10,
                         open_time=0, io_time=0, close_time=0, wall_time=0)
        assert pr.effective_bandwidth == 0.0
