#!/usr/bin/env python
"""A tour of the paper's I/O kernels (§IV-D) at demo scale.

Runs each of the six kernels — Pixie3D (pnetCDF), ARAMCO (HDF5), IOR,
MADbench, LANL 1, LANL 3 (with collective buffering) — through both
stacks, verifying every byte of the restart reads, and prints the
PLFS-vs-direct effective read bandwidths side by side.

Run:  python examples/io_kernels_tour.py
"""

from repro.harness.setup import build_world
from repro.mpiio import Hints
from repro.units import KB, MB, MiB, fmt_bw
from repro.workloads import (
    IOR,
    LANL1,
    LANL3,
    Aramco,
    MADbench,
    Pixie3D,
    direct_stack,
    plfs_stack,
    run_workload,
)

NPROCS = 32

KERNELS = [
    ("Pixie3D  (pnetCDF, big blocks)",
     lambda: Pixie3D(NPROCS, per_proc=16 * MiB, n_vars=4, io_size=4 * MiB), Hints()),
    ("ARAMCO   (HDF5, strong scaling)",
     lambda: Aramco(NPROCS, total_bytes=256 * MiB, chunk=1 * MiB), Hints()),
    ("IOR      (segmented, 1 MB ops)",
     lambda: IOR(NPROCS, size_per_proc=8 * MB, transfer=1 * MB), Hints()),
    ("MADbench (matrix components)",
     lambda: MADbench(NPROCS, matrix_bytes_per_rank=4 * MiB, n_components=4), Hints()),
    ("LANL 1   (strided 500 KB)",
     lambda: LANL1(NPROCS, per_proc=8 * MB, record=500 * KB), Hints()),
    ("LANL 3   (1 KB records + collective buffering)",
     lambda: LANL3(NPROCS, total_bytes=256 * MiB, round_bytes=32 * MiB),
     Hints(cb_enable=True)),
]


def main():
    print(f"{NPROCS} ranks; every read verified byte-for-byte\n")
    print(f"{'kernel':<48} {'direct read':>14} {'PLFS read':>14} {'speedup':>8}")
    for label, factory, hints in KERNELS:
        wl = factory()
        wd = build_world(n_nodes=16, cores=4)
        rd = run_workload(wd, wl, direct_stack(wd, hints), verify=True)
        wp = build_world(n_nodes=16, cores=4, aggregation="parallel")
        rp = run_workload(wp, wl, plfs_stack(wp, hints), verify=True)
        assert rd.read.verified and rp.read.verified
        bw_d = rd.read.effective_bandwidth
        bw_p = rp.read.effective_bandwidth
        print(f"{label:<48} {fmt_bw(bw_d):>14} {fmt_bw(bw_p):>14} "
              f"{bw_p / bw_d:>7.2f}x")
    print("\n(§IV-D: PLFS wins where records are small/strided; direct keeps up "
          "on large\naligned blocks; ARAMCO's strong scaling erodes the PLFS "
          "edge as N grows.)")


if __name__ == "__main__":
    main()
