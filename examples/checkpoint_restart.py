#!/usr/bin/env python
"""Checkpoint/restart campaign: choosing an index-aggregation strategy.

A long-running simulated application alternates compute and checkpoint
phases; node failures are injected, and each failure forces a restart that
reads the latest checkpoint back.  The experiment compares the paper's
three index-aggregation strategies (§IV) over the whole campaign:

* write-once/read-rarely favours Parallel Index Read (no close cost);
* failure-heavy campaigns (many restarts per checkpoint) amortize Index
  Flatten's slower closes over many cheap read-opens — exactly the
  trade-off §IV-A describes.

Run:  python examples/checkpoint_restart.py
"""

import random

from repro.harness.setup import build_world
from repro.mpi import run_job
from repro.mpiio import MPIFile, PlfsDriver
from repro.pfs.data import PatternData
from repro.units import KB, MB, fmt_time

NPROCS = 64
PER_PROC = 10 * MB
RECORD = 100 * KB
N_CHECKPOINTS = 4


def write_checkpoint(world, path, version):
    def rank_fn(ctx):
        if ctx.rank == 0:
            yield from world.mount.mkdir(ctx.client, "/campaign")
        yield from ctx.comm.barrier()
        f = yield from MPIFile.open(ctx, path, "w", PlfsDriver(world.mount))
        written = 0
        while written < PER_PROC:
            n = min(RECORD, PER_PROC - written)
            offset = ctx.rank * RECORD + (written // RECORD) * NPROCS * RECORD
            yield from f.write_at(offset, PatternData(version * NPROCS + ctx.rank,
                                                      written, n))
            written += n
        yield from f.close()

    return run_job(world.env, world.cluster, NPROCS, rank_fn,
                   client_id_base=version * NPROCS).duration


def restart_from(world, path, version, attempt):
    def rank_fn(ctx):
        f = yield from MPIFile.open(ctx, path, "r", PlfsDriver(world.mount))
        got, ok = 0, True
        while got < PER_PROC:
            n = min(RECORD, PER_PROC - got)
            offset = ctx.rank * RECORD + (got // RECORD) * NPROCS * RECORD
            view = yield from f.read_at(offset, n)
            ok = ok and view.content_equal(
                PatternData(version * NPROCS + ctx.rank, got, n))
            got += n
        yield from f.close()
        return ok

    world.drop_caches()  # the failed job's caches are gone
    job = run_job(world.env, world.cluster, NPROCS, rank_fn,
                  client_id_base=1_000_000 + attempt * NPROCS)
    assert all(job.results), "restart read corrupt data!"
    return job.duration


def run_campaign(aggregation, failures_per_checkpoint):
    """Simulate the I/O of a campaign; returns total time spent in I/O."""
    world = build_world(n_nodes=16, cores=4, aggregation=aggregation)
    rng = random.Random(42)
    write_time = read_time = 0.0
    attempt = 0
    for version in range(N_CHECKPOINTS):
        path = f"/campaign/ckpt.{version}"
        write_time += write_checkpoint(world, path, version)
        for _ in range(failures_per_checkpoint):
            # A node died mid-compute; the job restarts from this checkpoint.
            rng.random()
            attempt += 1
            read_time += restart_from(world, path, version, attempt)
    return write_time, read_time


def main():
    print(f"campaign: {N_CHECKPOINTS} checkpoints x {NPROCS} ranks x "
          f"{PER_PROC // MB} MB, {RECORD // 1000} KB strided records\n")
    for failures in (0, 3):
        print(f"--- {failures} failure(s)/restart(s) per checkpoint ---")
        rows = []
        for aggregation in ("original", "flatten", "parallel"):
            w, r = run_campaign(aggregation, failures)
            rows.append((aggregation, w, r, w + r))
        for aggregation, w, r, total in rows:
            print(f"  {aggregation:<9} write={fmt_time(w):>10}  "
                  f"restart-reads={fmt_time(r):>10}  total={fmt_time(total):>10}")
        best = min(rows, key=lambda x: x[3])[0]
        print(f"  -> best strategy for this failure rate: {best}\n")


if __name__ == "__main__":
    main()
