#!/usr/bin/env python
"""Federated metadata: gluing file systems together to survive create storms.

An N-N job (every process makes its own files) hammers one directory on
one metadata server — the §V bottleneck.  This example sweeps the number
of federated backing volumes and shows the create storm's open time fall,
PLFS-1 losing to direct access (container burden on a single MDS) but
PLFS-6+ winning — Fig. 7's story — plus the N-1 flavour where spreading a
single container's *subdirs* is what helps (Fig. 8c's mechanism).

Run:  python examples/metadata_federation.py
"""

from repro.harness.setup import build_world
from repro.units import fmt_time
from repro.workloads import n1_open_storm, nn_metadata_storm

NPROCS = 64
FILES_PER_PROC = 8


def main():
    print(f"N-N create storm: {NPROCS} procs x {FILES_PER_PROC} files each "
          f"({NPROCS * FILES_PER_PROC} containers)\n")

    direct_world = build_world()
    direct = nn_metadata_storm(direct_world, NPROCS, FILES_PER_PROC, "direct")
    print(f"  without PLFS (1 MDS, 1 directory)   open={fmt_time(direct.open_time):>10}"
          f"  close={fmt_time(direct.close_time):>10}")

    for k in (1, 3, 6, 9):
        world = build_world(n_volumes=k,
                            federation="container" if k > 1 else "none")
        t = nn_metadata_storm(world, NPROCS, FILES_PER_PROC, "plfs")
        verdict = "wins" if t.open_time < direct.open_time else "loses"
        print(f"  PLFS-{k} (containers over {k} MDS)      open={fmt_time(t.open_time):>10}"
              f"  close={fmt_time(t.close_time):>10}   ({verdict} on opens)")

    print("\nN-1 open storm: every rank opens ONE shared PLFS file for write\n")
    for k, federation in ((1, "none"), (6, "subdir")):
        world = build_world(n_volumes=k, federation=federation)
        t = n1_open_storm(world, NPROCS * FILES_PER_PROC, "plfs")
        label = f"PLFS-{k} ({'subdirs spread over ' + str(k) + ' MDS' if k > 1 else 'single MDS'})"
        print(f"  {label:<42} open={fmt_time(t.open_time):>10}")

    print("\nFig. 7's conclusion: federation turns PLFS's container burden into "
          "a win,\nwhile plain closes stay cheaper without PLFS (the dropping cost).")


if __name__ == "__main__":
    main()
