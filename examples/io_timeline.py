#!/usr/bin/env python
"""I/O timelines: watch the storage pipe breathe during a campaign.

Attaches a bandwidth probe to the storage network, runs checkpoint +
restart through PLFS (and the same checkpoint through burst buffers), and
charts the delivered-throughput timeline — the burst/drain/idle rhythm
that storage papers draw, rendered in your terminal.

Run:  python examples/io_timeline.py
"""

from repro.harness.plots import ascii_chart
from repro.harness.setup import build_world
from repro.mpi import run_job
from repro.pfs.data import PatternData
from repro.plfs import PlfsBurstMount, PlfsConfig
from repro.sim.probes import BandwidthProbe
from repro.units import KB, MB

NPROCS = 32
PER_PROC = 8 * MB
RECORD = 200 * KB


def checkpoint(world, mount, compute_first=0.0):
    def fn(ctx):
        if compute_first:
            yield ctx.env.timeout(compute_first)
        fh = yield from mount.open_write(ctx.client, "/ckpt", ctx.comm)
        written = 0
        while written < PER_PROC:
            n = min(RECORD, PER_PROC - written)
            off = ctx.rank * RECORD + (written // RECORD) * NPROCS * RECORD
            yield from fh.write(off, PatternData(ctx.rank, written, n))
            written += n
        yield from mount.close_write(fh, ctx.comm)

    return run_job(world.env, world.cluster, NPROCS, fn)


def chart(probe, title):
    series = probe.series()
    xs = [t for t, _ in series]
    ys = [r / 1e6 for _, r in series]  # MB/s
    print(ascii_chart(xs, [ys], ["pipe MB/s"], title=title, height=10))
    print()


def main():
    # Plain PLFS: the pipe saturates for the whole checkpoint.
    world = build_world(n_nodes=8, cores=4, aggregation="parallel")
    probe = BandwidthProbe(world.env, world.cluster.storage_net.pipe, period=0.05)
    checkpoint(world, world.mount, compute_first=0.3)
    world.env.run()
    chart(probe, "PLFS checkpoint: storage-pipe throughput over time")

    # Burst buffers: the app's dump barely touches the pipe; the drain does.
    world = build_world(n_nodes=8, cores=4)
    world.mount = PlfsBurstMount(world.env, world.volumes,
                                 PlfsConfig(aggregation="parallel"))
    probe = BandwidthProbe(world.env, world.cluster.storage_net.pipe, period=0.05)
    job = checkpoint(world, world.mount, compute_first=0.3)
    world.env.run()  # let the drain finish
    chart(probe, f"Burst-buffer checkpoint (app stalled only "
                 f"{job.duration - 0.3:.2f}s; drain continues behind)")


if __name__ == "__main__":
    main()
