#!/usr/bin/env python
"""Burst buffers: the post-paper direction, built on the same middleware.

The paper closes by predicting that transformative middleware will carry
the exascale I/O stack (§VIII); within a few years that meant node-local
burst buffers.  This example runs the same checkpoint through three
stacks and shows what staging buys:

* direct N-1 to the parallel file system   (the §II disaster),
* PLFS to the parallel file system         (the paper),
* PLFS staged through node-local buffers   (the extension) — the
  application resumes at local speed while data drains behind it.

Run:  python examples/burst_buffer.py
"""

from repro.harness.setup import build_world
from repro.mpi import run_job
from repro.pfs.data import PatternData
from repro.plfs import PlfsBurstMount, PlfsConfig
from repro.units import KB, MB, fmt_time

NPROCS = 32
PER_PROC = 8 * MB
RECORD = 100 * KB


def checkpoint(world, open_fn, close_fn):
    def rank_fn(ctx):
        fh = yield from open_fn(ctx)
        written = 0
        while written < PER_PROC:
            n = min(RECORD, PER_PROC - written)
            off = ctx.rank * RECORD + (written // RECORD) * NPROCS * RECORD
            yield from fh.write(off, PatternData(ctx.rank, written, n))
            written += n
        yield from close_fn(ctx, fh)

    return run_job(world.env, world.cluster, NPROCS, rank_fn)


def main():
    total = NPROCS * PER_PROC
    print(f"checkpoint: {NPROCS} ranks x {PER_PROC // MB} MB "
          f"({RECORD // KB} KB strided records)\n")

    w = build_world(n_nodes=8, cores=4)
    t_direct = checkpoint(
        w,
        lambda ctx: w.volume.open(ctx.client, "/ckpt", "w", create=True),
        lambda ctx, fh: fh.close(),
    ).duration
    print(f"  direct N-1 to the PFS        : {fmt_time(t_direct):>10}")

    w = build_world(n_nodes=8, cores=4, aggregation="parallel")
    t_plfs = checkpoint(
        w,
        lambda ctx: w.mount.open_write(ctx.client, "/ckpt", ctx.comm),
        lambda ctx, fh: w.mount.close_write(fh, ctx.comm),
    ).duration
    print(f"  PLFS to the PFS              : {fmt_time(t_plfs):>10}"
          f"   ({t_direct / t_plfs:.1f}x vs direct)")

    w = build_world(n_nodes=8, cores=4)
    w.mount = PlfsBurstMount(w.env, w.volumes, PlfsConfig(aggregation="parallel"),
                             bb_bw_per_node=2.0e9)
    job = checkpoint(
        w,
        lambda ctx: w.mount.open_write(ctx.client, "/ckpt", ctx.comm),
        lambda ctx, fh: w.mount.close_write(fh, ctx.comm),
    )
    t_burst = job.duration
    drain_end = w.env.now  # run_job ran the engine until the drains finished
    print(f"  PLFS through burst buffers   : {fmt_time(t_burst):>10}"
          f"   ({t_direct / t_burst:.1f}x vs direct)")
    print(f"    ...background drain done at {fmt_time(drain_end)} "
          f"(the app was computing again after {fmt_time(t_burst)})")

    # A restart must wait for the drain, then reads a normal PLFS container.
    def restart(ctx):
        yield from w.mount.wait_drains("/ckpt")
        fh = yield from w.mount.open_read(ctx.client, "/ckpt", ctx.comm)
        view = yield from fh.read(ctx.rank * RECORD, RECORD)
        yield from fh.close()
        return view.content_equal(PatternData(ctx.rank, 0, RECORD))

    ok = all(run_job(w.env, w.cluster, NPROCS, restart,
                     client_id_base=10_000).results)
    print(f"  restart after drain verified : {ok}")
    assert ok
    print(f"\ntotal data: {total // MB} MB; checkpoint stall shrinks "
          f"{t_direct / t_burst:.0f}x end to end.")


if __name__ == "__main__":
    main()
