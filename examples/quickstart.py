#!/usr/bin/env python
"""Quickstart: the paper's pitch in sixty lines.

Sixteen simulated MPI ranks checkpoint into ONE shared file (the N-1
pattern that cripples parallel file systems), first directly, then through
PLFS.  Same logical file, same data — PLFS just transforms the physical
workload (§II) — and the restart verifies every byte came back.

Run:  python examples/quickstart.py
"""

from repro.harness.setup import build_world
from repro.mpi import run_job
from repro.pfs.data import PatternData
from repro.units import KB, MB, fmt_bw, fmt_time

NPROCS = 16
PER_PROC = 4 * MB
RECORD = 47 * KB  # small, unaligned, strided: a classic checkpoint shape


def checkpoint_direct(world):
    """Every rank writes its strided records straight to the shared file."""

    def rank_fn(ctx):
        fh = yield from world.volume.open(ctx.client, "/ckpt", "w", create=True)
        written = 0
        while written < PER_PROC:
            n = min(RECORD, PER_PROC - written)
            offset = ctx.rank * RECORD + (written // RECORD) * NPROCS * RECORD
            yield from fh.write(offset, PatternData(ctx.rank, written, n))
            written += n
        yield from fh.close()

    return run_job(world.env, world.cluster, NPROCS, rank_fn).duration


def checkpoint_plfs(world):
    """Same logical writes, but through the PLFS mount."""

    def rank_fn(ctx):
        fh = yield from world.mount.open_write(ctx.client, "/ckpt", ctx.comm)
        written = 0
        while written < PER_PROC:
            n = min(RECORD, PER_PROC - written)
            offset = ctx.rank * RECORD + (written // RECORD) * NPROCS * RECORD
            yield from fh.write(offset, PatternData(ctx.rank, written, n))
            written += n
        yield from world.mount.close_write(fh, ctx.comm)

    return run_job(world.env, world.cluster, NPROCS, rank_fn).duration


def restart_plfs(world):
    """A new job reads the checkpoint back and verifies the content."""

    def rank_fn(ctx):
        fh = yield from world.mount.open_read(ctx.client, "/ckpt", ctx.comm)
        got, ok = 0, True
        while got < PER_PROC:
            n = min(RECORD, PER_PROC - got)
            offset = ctx.rank * RECORD + (got // RECORD) * NPROCS * RECORD
            view = yield from fh.read(offset, n)
            ok = ok and view.content_equal(PatternData(ctx.rank, got, n))
            got += n
        yield from fh.close()
        return ok

    world.drop_caches()  # a restart is a cold start
    job = run_job(world.env, world.cluster, NPROCS, rank_fn, client_id_base=1000)
    return job.duration, all(job.results)


def main():
    total = NPROCS * PER_PROC

    direct_world = build_world()
    t_direct = checkpoint_direct(direct_world)

    plfs_world = build_world(aggregation="parallel")
    t_plfs = checkpoint_plfs(plfs_world)
    t_read, verified = restart_plfs(plfs_world)

    print(f"checkpoint: {NPROCS} ranks x {PER_PROC // MB} MB, {RECORD // 1000} KB strided records (N-1)")
    print(f"  direct to the parallel file system : {fmt_time(t_direct)}  ({fmt_bw(total / t_direct)})")
    print(f"  through PLFS middleware            : {fmt_time(t_plfs)}  ({fmt_bw(total / t_plfs)})")
    print(f"  write speedup                      : {t_direct / t_plfs:.1f}x")
    print(f"restart read back via PLFS           : {fmt_time(t_read)}  ({fmt_bw(total / t_read)})")
    print(f"every byte verified                  : {verified}")
    assert verified


if __name__ == "__main__":
    main()
