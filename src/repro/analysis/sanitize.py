"""Yield-point race sanitizer: dynamic stale-read / lost-update detection.

The engine is cooperative — only one simulated process runs between two
``yield`` points — so data races here are not torn reads but *logical*
races: a process reads shared state, yields (letting other processes
run), and then acts on the stale value.  That is exactly the shape of
the pre-PR-2 last-closer bug in :mod:`repro.plfs.writer`: decrement a
refcount, see zero, yield on metadata ops, and only then retire the
registry entry — clobbering a writer that re-opened in between.

Two pieces make the hazard observable:

* every simulated process is wrapped (see :meth:`Sanitizer.instrument`,
  installed by :meth:`repro.sim.Engine.attach_sanitizer`) so the
  sanitizer always knows *which* process is running and how many times
  it has yielded — its **yield epoch**;
* shared mutable containers opt in through :func:`tracked`, which
  returns a recording proxy.  Each read notes ``(version, epoch)`` in
  the reading process's read vector; each write checks it: if the
  process last read the key **before its current epoch** (i.e. across a
  yield) and the key's version moved in between because **another**
  process wrote it, the write is acting on stale data.

Conflict kinds:

* ``lost-update`` — the stale writer overwrites/deletes state another
  process updated after the read;
* ``stale-read`` — the entry the process read was *deleted* (and
  possibly recreated as a new generation) while it was parked at a
  yield; its write targets an entry that no longer means what it read.

Everything is disabled by default and free when disabled:
:func:`tracked` returns the container unchanged and the engine's hot
paths are untouched unless :func:`attach_sanitizer` ran first.  Enable
per world with ``REPRO_SANITIZE=1`` (the harness ``--sanitize`` flag
sets it) — :func:`repro.harness.setup.build_world` checks the variable
so sweep worker processes inherit the setting.

In strict mode (the default) a conflict raises
:class:`~repro.errors.RaceConditionError` at the offending write, with
the container, key, both process names, and both epochs in the message
— the traceback points at the exact line that acted on stale state.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterator, List, Optional, Tuple

from ..errors import RaceConditionError

__all__ = [
    "Conflict",
    "Sanitizer",
    "TrackedDict",
    "TrackedSet",
    "attach_sanitizer",
    "raw_snapshot",
    "sanitize_enabled",
    "tracked",
]

_ENV_FLAG = "REPRO_SANITIZE"


def sanitize_enabled() -> bool:
    """True when the ``REPRO_SANITIZE`` environment flag is set."""
    return os.environ.get(_ENV_FLAG, "") not in ("", "0")


@dataclass(frozen=True)
class Conflict:
    """One detected yield-point race, reported at the stale write."""

    kind: str          # "lost-update" | "stale-read"
    container: str     # tracked container name
    key: Any
    proc: str          # process that wrote after a stale read
    read_epoch: int    # its yield epoch at the stale read
    write_epoch: int   # its yield epoch at the write
    other: str         # process that modified the key in between
    time: float        # simulated time of the write

    def render(self) -> str:
        return (
            f"{self.kind} on {self.container}[{self.key!r}] at "
            f"t={self.time:g}: process {self.proc!r} read at yield-epoch "
            f"{self.read_epoch}, then wrote at epoch {self.write_epoch} "
            f"after {self.other!r} modified it in between"
        )


class _ProcRecord:
    """Per-process sanitizer state: yield epoch + read vector."""

    __slots__ = ("name", "epoch", "reads")

    def __init__(self, name: str):
        self.name = name
        self.epoch = 0
        # (container id, key) -> (version seen, epoch of the read)
        self.reads: Dict[Tuple[int, Any], Tuple[int, int]] = {}


class Sanitizer:
    """Collects per-process records, tracked containers, and conflicts."""

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.conflicts: List[Conflict] = []
        self.current: Optional[_ProcRecord] = None
        self.containers = 0
        self.env: Any = None
        self._nproc = 0
        self._ncid = 0
        # Optional access-footprint observer (the model checker's schedule
        # controller): called as ``observer.on_access(container, key,
        # is_write)`` for every tracked access.  None costs one attribute
        # load per access and nothing else.
        self.observer: Any = None

    # -- wiring ------------------------------------------------------------
    def _attach(self, env: Any) -> None:
        self.env = env

    def instrument(self, gen: Generator, name: str) -> Generator:
        """Wrap a process generator with yield-epoch bookkeeping."""
        self._nproc += 1
        return self._run(gen, _ProcRecord(f"{name}#{self._nproc}"))

    def _run(self, gen: Generator, rec: _ProcRecord) -> Generator:
        value: Any = None
        exc: Optional[BaseException] = None
        while True:
            rec.epoch += 1
            prev, self.current = self.current, rec
            try:
                if exc is not None:
                    item = gen.throw(exc)
                else:
                    item = gen.send(value)
            except StopIteration as stop:
                return stop.value
            except BaseException:
                raise
            finally:
                self.current = prev
            try:
                value = yield item
                exc = None
            except BaseException as e:  # thrown in by the engine
                exc = e

    # -- reporting ---------------------------------------------------------
    def report(self, conflict: Conflict) -> None:
        self.conflicts.append(conflict)
        if self.strict:
            raise RaceConditionError(conflict.render())

    def summary(self) -> str:
        n = len(self.conflicts)
        return (f"sanitizer: {self.containers} tracked containers, "
                f"{self._nproc} instrumented processes, {n} conflict(s)")


def attach_sanitizer(env: Any, strict: bool = True) -> Sanitizer:
    """Create a :class:`Sanitizer` and install it on *env* (an Engine)."""
    san = Sanitizer(strict=strict)
    env.attach_sanitizer(san)
    return san


def tracked(env: Any, container: Any, name: str) -> Any:
    """Register *container* (a dict or a set) as shared mutable state.

    With no sanitizer attached to *env* this returns *container*
    unchanged — the instrumentation is structurally free when disabled.
    With one attached it returns a :class:`TrackedDict` (or
    :class:`TrackedSet`) proxy that records read/write vectors per yield
    epoch.
    """
    san = getattr(env, "sanitizer", None)
    if san is None:
        return container
    if isinstance(container, set):
        return TrackedSet(container, san, name)
    return TrackedDict(container, san, name)


def raw_snapshot(container: Any) -> Any:
    """The plain dict/set behind a tracked proxy (identity when untracked).

    Invariant oracles read simulator state through this so their
    inspections never perturb the sanitizer's read vectors or the model
    checker's access footprints.
    """
    if isinstance(container, TrackedDict):
        return container._d
    if isinstance(container, TrackedSet):
        return container._s
    return container


class _TrackedList:
    """Proxy for a mutable list stored *inside* a tracked dict.

    Mutating an entry's fields (``entry[0] += 1``) must count as a write
    to the owning key — the last-closer registry stores ``[refcount,
    eof, records]`` lists, and the race is on the refcount, not on the
    dict slot itself.
    """

    __slots__ = ("_lst", "_owner", "_key")

    def __init__(self, lst: list, owner: "TrackedDict", key: Any):
        self._lst = lst
        self._owner = owner
        self._key = key

    def __getitem__(self, i: Any) -> Any:
        self._owner._note_read(self._key)
        return self._lst[i]

    def __setitem__(self, i: Any, value: Any) -> None:
        self._owner._note_write(self._key)
        self._lst[i] = value

    def __len__(self) -> int:
        self._owner._note_read(self._key)
        return len(self._lst)

    def __iter__(self) -> Iterator[Any]:
        self._owner._note_read(self._key)
        return iter(list(self._lst))

    def __eq__(self, other: Any) -> bool:
        self._owner._note_read(self._key)
        if isinstance(other, _TrackedList):
            other = other._lst
        return self._lst == other

    def append(self, value: Any) -> None:
        self._owner._note_write(self._key)
        self._lst.append(value)

    def pop(self, i: int = -1) -> Any:
        self._owner._note_write(self._key)
        return self._lst.pop(i)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"tracked({self._lst!r})"


class _TrackedBase:
    """Shared version/read-vector bookkeeping for tracked containers.

    Subclasses expose a dict or set surface; every access funnels through
    :meth:`_note_read` / :meth:`_note_write`, which record the vectors the
    race detector compares and notify the sanitizer's access-footprint
    observer (when one is installed by the model checker).
    """

    __slots__ = ("_san", "name", "_cid", "_ver", "_writer", "_del_ver")

    def __init__(self, san: Sanitizer, name: str):
        self._san = san
        self.name = name
        san._ncid += 1
        san.containers += 1
        self._cid = san._ncid
        self._ver: Dict[Any, int] = {}
        self._writer: Dict[Any, str] = {}
        self._del_ver: Dict[Any, int] = {}   # version at last deletion

    # -- bookkeeping -------------------------------------------------------
    def _note_read(self, key: Any) -> None:
        san = self._san
        rec = san.current
        if rec is not None:
            rec.reads[(self._cid, key)] = (self._ver.get(key, 0), rec.epoch)
        obs = san.observer
        if obs is not None:
            obs.on_access(self.name, key, False)

    def _note_write(self, key: Any, deleted: bool = False) -> None:
        san = self._san
        obs = san.observer
        if obs is not None:
            obs.on_access(self.name, key, True)
        rec = san.current
        ver = self._ver.get(key, 0)
        # Deletions *by others since the read* decide the conflict kind, so
        # snapshot before recording this write's own (possibly del) version.
        del_since = self._del_ver.get(key, -1)
        self._ver[key] = ver + 1
        if deleted:
            self._del_ver[key] = ver + 1
        if rec is None:
            # Engine-context mutation (world construction, probes): bump
            # the version so process-side staleness still shows, but never
            # flag — there is no yield to race across here.
            self._writer[key] = "<engine>"
            return
        seen = rec.reads.get((self._cid, key))
        if seen is not None:
            v_read, e_read = seen
            other = self._writer.get(key, "<engine>")
            if e_read < rec.epoch and v_read != ver and other != rec.name:
                kind = "stale-read" if del_since > v_read else "lost-update"
                san.report(Conflict(
                    kind=kind, container=self.name, key=key, proc=rec.name,
                    read_epoch=e_read, write_epoch=rec.epoch, other=other,
                    time=float(getattr(san.env, "now", 0.0))))
        self._writer[key] = rec.name
        # A write retires the read basis: only a read *after* the last
        # write (the "check" of a check-then-act) can arm a conflict.
        # Blind last-writer-wins overwrites therefore never flag.
        rec.reads.pop((self._cid, key), None)


class TrackedDict(_TrackedBase):
    """Recording proxy around a plain dict of shared simulation state.

    Supports the mapping surface the instrumented modules actually use
    (item access, ``get``/``setdefault``/``pop``/``update``, ``del``,
    ``in``, iteration, ``values``/``items``/``keys``, ``clear``, ``|=``,
    ``len``).  List values come back wrapped in :class:`_TrackedList` so
    in-place field mutations are visible to the race detector.
    """

    __slots__ = ("_d", "_wrappers")

    def __init__(self, d: dict, san: Sanitizer, name: str):
        super().__init__(san, name)
        self._d = d
        self._wrappers: Dict[Any, _TrackedList] = {}

    def _wrap(self, key: Any, value: Any) -> Any:
        if type(value) is list:
            w = self._wrappers.get(key)
            if w is None or w._lst is not value:
                w = _TrackedList(value, self, key)
                self._wrappers[key] = w
            return w
        return value

    # -- mapping surface ---------------------------------------------------
    def __getitem__(self, key: Any) -> Any:
        value = self._d[key]
        self._note_read(key)
        return self._wrap(key, value)

    def __setitem__(self, key: Any, value: Any) -> None:
        self._note_write(key)
        self._d[key] = value

    def __delitem__(self, key: Any) -> None:
        self._note_write(key, deleted=True)
        del self._d[key]
        self._wrappers.pop(key, None)

    def __contains__(self, key: Any) -> bool:
        self._note_read(key)
        return key in self._d

    def __len__(self) -> int:
        return len(self._d)

    def __iter__(self) -> Iterator[Any]:
        keys = list(self._d)
        for k in keys:
            self._note_read(k)
        return iter(keys)

    def __bool__(self) -> bool:
        return bool(self._d)

    def get(self, key: Any, default: Any = None) -> Any:
        self._note_read(key)
        if key in self._d:
            return self._wrap(key, self._d[key])
        return default

    def setdefault(self, key: Any, default: Any = None) -> Any:
        if key not in self._d:
            self._note_write(key)
            self._d[key] = default
        self._note_read(key)
        return self._wrap(key, self._d[key])

    def pop(self, key: Any, *default: Any) -> Any:
        if key in self._d or not default:
            self._note_write(key, deleted=True)
            value = self._d.pop(key)
            self._wrappers.pop(key, None)
            return value
        self._note_read(key)
        return default[0]

    def update(self, other: Any = (), **kw: Any) -> None:
        items = other.items() if hasattr(other, "items") else other
        for k, v in items:
            self._note_write(k)
            self._d[k] = v
        for k, v in kw.items():  # repro: noqa[REP004] -- kwargs preserve call order (PEP 468)
            self._note_write(k)
            self._d[k] = v

    def __ior__(self, other: Any) -> "TrackedDict":
        self.update(other)
        return self

    def keys(self) -> List[Any]:
        return list(iter(self))

    def values(self) -> List[Any]:
        return [self._wrap(k, self._d[k]) for k in iter(self)]

    def items(self) -> List[Tuple[Any, Any]]:
        return [(k, self._wrap(k, self._d[k])) for k in iter(self)]

    def clear(self) -> None:
        for k in list(self._d):
            self._note_write(k, deleted=True)
        self._d.clear()
        self._wrappers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrackedDict({self.name!r}, {self._d!r})"


class TrackedSet(_TrackedBase):
    """Recording proxy around a plain set of shared simulation state.

    Each element is its own conflict key (membership is the state), so a
    membership test is a read of that element and ``add``/``discard``/
    ``remove`` are writes to it — a process that checks ``x in s``,
    yields, and then mutates ``x``'s membership after another process
    changed it gets flagged exactly like a stale dict write.
    """

    __slots__ = ("_s",)

    def __init__(self, s: set, san: Sanitizer, name: str):
        super().__init__(san, name)
        self._s = s

    def __contains__(self, key: Any) -> bool:
        self._note_read(key)
        return key in self._s

    def __len__(self) -> int:
        return len(self._s)

    def __bool__(self) -> bool:
        return bool(self._s)

    def __iter__(self) -> Iterator[Any]:
        keys = sorted(self._s, key=repr)
        for k in keys:
            self._note_read(k)
        return iter(keys)

    def add(self, key: Any) -> None:
        self._note_write(key)
        self._s.add(key)

    def discard(self, key: Any) -> None:
        if key in self._s:
            self._note_write(key, deleted=True)
            self._s.discard(key)
        else:
            self._note_read(key)

    def remove(self, key: Any) -> None:
        if key not in self._s:
            self._note_read(key)
            raise KeyError(key)
        self._note_write(key, deleted=True)
        self._s.remove(key)

    def update(self, other: Any) -> None:
        for k in other:
            self._note_write(k)
            self._s.add(k)

    def __ior__(self, other: Any) -> "TrackedSet":
        self.update(other)
        return self

    def clear(self) -> None:
        for k in list(self._s):
            self._note_write(k, deleted=True)
        self._s.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrackedSet({self.name!r}, {self._s!r})"
