"""Checker workloads: small concurrent kernels with known ground truth.

A :class:`Scenario` bundles what the model checker needs to explore a
workload: how to build its world, how to drive the concurrent processes,
and the ground truth its oracles compare against (which logical files
exist, what bytes they must hold).  Kernels are deliberately tiny — the
explorer re-runs them hundreds of times — and deliberately *aligned*:
metadata op costs are uniform and write-back/spill buffering is disabled
so that concurrent open/close chains march in lockstep and their
registry-mutating segments become ready at the same simulated instants.
Same-instant readiness is what gives the controlled scheduler genuine
tie-breaks to explore; with staggered costs the chains never meet and
every schedule collapses to the default.

Registry: :data:`SCENARIOS` maps workload names (the ``--workload``
choices of ``python -m repro.analysis check``) to constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from ..faults.policies import RetryPolicy
from ..harness.setup import build_world
from ..pfs.config import DEFAULT_OP_COSTS, PfsConfig
from ..pfs.data import PatternData
from ..pfs.volume import Client
from ..plfs.config import PlfsConfig

__all__ = ["SCENARIOS", "Scenario", "get_scenario"]


@dataclass
class Scenario:
    """One checker workload: world builder, driver, and ground truth."""

    name: str
    description: str
    build: Callable[[], Any]                      # () -> World
    drive: Callable[[Any], List[Any]]             # world -> live processes
    # path -> write ledger [(offset, length, seed)]; oracles read every
    # path back through all index strategies and compare.
    ledgers: Dict[str, List[Tuple[int, int, int]]] = field(default_factory=dict)
    sizes: Dict[str, int] = field(default_factory=dict)
    equiv_ranks: int = 2


def _aligned_pfs_cfg(**overrides: Any) -> PfsConfig:
    """Uniform-cost metadata, no write-back buffering: lockstep chains.

    Every metadata op costs 0.5 units at 2000 units/s, so a solo serve
    takes exactly ``mds_latency`` (0.25 ms) and a whole op spans two
    latency quanta — concurrent chains issue and complete ops on a
    common grid of instants, which is where tie-breaks live.  Client-side
    metadata caching is off so repeat ops keep the uniform cost.
    """
    kw: Dict[str, Any] = dict(
        op_costs={k: 0.5 for k in DEFAULT_OP_COSTS},
        writeback_bytes=0,
        mds_ops_per_sec=2000.0,       # serve(0.5) == mds_latency == 0.25 ms
        dir_ops_per_sec=2000.0,       # == mds rate: no dir skew
        dir_degradation_entries=0,    # no load-dependent cost terms
        md_client_cache=False,        # cache hits would break uniformity
    )
    kw.update(overrides)
    return PfsConfig(**kw)


# -- smallio: last-closer vs re-opener on one host --------------------------

def _build_smallio() -> Any:
    return build_world(
        pfs_cfg=_aligned_pfs_cfg(),
        plfs_cfg=PlfsConfig(aggregation="parallel", index_spill_records=1),
    )


def _drive_smallio(world: Any) -> List[Any]:
    """Writer A closes its handle while writer B re-opens on the same host.

    The timing is engineered so that B's registry *increment* (the final
    segment of its open, riding the index-log create's AllOf) and the
    *retirement* of A's registry entry (the final segment of A's close,
    riding the openhost-unlink AllOf) become ready at the same instant,
    with A's carrier first in eid order.  On the aligned op grid
    (:func:`_aligned_pfs_cfg`, one op = two latency quanta ``L``), A's
    close runs ops at arrival instants L, 3L, 5L, 7L, 9L; B waits 6L so
    its two creates arrive at 7L and 9L and finish in lockstep with A's
    last op.  The default order is clean even for the pre-PR-2 racy
    close — A's whole zero-check window has closed before B's increment
    runs, which is exactly why the single-schedule sanitizer misses the
    re-introduced bug.  One explored deviation fires B's increment
    before A's final segment, landing it inside the racy window: the
    sanitizer sees the lost update and B's own close then crashes on the
    vanished entry.
    """
    env, mount = world.env, world.mount
    node = world.cluster.nodes[0]
    first = Client(node=node, client_id=0)
    second = Client(node=node, client_id=1)
    procs: List[Any] = []
    lat = world.mount.volumes[0].cfg.mds_latency

    def closer(env: Any, handle: Any):
        yield from mount.close_write(handle)

    def reopener(env: Any):
        yield env.timeout(6 * lat)
        h2 = yield from mount.open_write(second, "/f")
        yield from h2.write(8192, PatternData(2, 8192, 4096))
        yield from mount.close_write(h2)

    def writer_a(env: Any):
        h1 = yield from mount.open_write(first, "/f")
        yield from h1.write(0, PatternData(1, 0, 4096))
        # Spawn order seeds the default schedule: the closer's FIFO slot
        # precedes the re-opener's, so A's segments lead B's at every
        # shared instant and the uncontrolled run retires A's registry
        # entry before B's increment — the safe order.
        procs.append(env.process(closer(env, h1), "closer"))
        procs.append(env.process(reopener(env), "reopener"))

    procs.append(env.process(writer_a(env), "writer-a"))
    return procs


def _smallio() -> Scenario:
    return Scenario(
        name="smallio",
        description="same-host close/re-open race on the PLFS host registry",
        build=_build_smallio,
        drive=_drive_smallio,
        ledgers={"/f": [(0, 4096, 1), (8192, 4096, 2)]},
        sizes={"/f": 12288},
    )


# -- federated: concurrent closes across federated volumes ------------------

def _build_federated() -> Any:
    return build_world(
        n_volumes=2,
        pfs_cfg=_aligned_pfs_cfg(),
        plfs_cfg=PlfsConfig(aggregation="parallel", index_spill_records=1,
                            federation="subdir", n_subdirs=2),
    )


def _drive_federated(world: Any) -> List[Any]:
    """Two nodes write one container whose subdirs federate across volumes.

    Exercises concurrent skeleton creation, per-node subdir placement,
    and two independent last-closer paths (one host registry each); the
    namespace oracle checks the federation map afterwards.
    """
    env, mount = world.env, world.mount
    a = Client(node=world.cluster.nodes[0], client_id=0)
    b = Client(node=world.cluster.nodes[1], client_id=1)

    def writer(client: Client, offset: int, seed: int):
        h = yield from mount.open_write(client, "/g")
        yield from h.write(offset, PatternData(seed, offset, 4096))
        yield from mount.close_write(h)

    return [
        env.process(writer(a, 0, 3), "writer-n0"),
        env.process(writer(b, 4096, 4), "writer-n1"),
    ]


def _federated() -> Scenario:
    return Scenario(
        name="federated",
        description="two-node writes into a subdir-federated container",
        build=_build_federated,
        drive=_drive_federated,
        ledgers={"/g": [(0, 4096, 3), (4096, 4096, 4)]},
        sizes={"/g": 8192},
    )


# -- partition: retried writes under single-node partitions -----------------

def _build_partition() -> Any:
    return build_world(
        pfs_cfg=_aligned_pfs_cfg(),
        plfs_cfg=PlfsConfig(aggregation="parallel", index_spill_records=1),
    )


def _drive_partition(world: Any) -> List[Any]:
    """A retrying writer races the fault injector's partition/heal of its
    node: transfers read the partitioned-node set the injector mutates,
    so their order is a genuine (and explored) tie-break.  The content
    oracle then proves every write survived the faults."""
    env, mount = world.env, world.mount
    node = world.cluster.nodes[0]
    client = Client(node=node, client_id=0)
    net = world.cluster.storage_net
    # Deterministic backoff (no rng => no jitter): replays are exact.
    policy = RetryPolicy(max_retries=8, base_delay=1e-3, jitter=0.0)

    def writer(env: Any):
        h = yield from mount.open_write(client, "/p", retry=policy)
        yield from h.write(0, PatternData(5, 0, 4096))
        yield from h.write(4096, PatternData(6, 4096, 4096))
        yield from mount.close_write(h)

    def chaos(env: Any):
        net.partition_node(node.id)
        yield env.timeout(2e-3)
        net.heal_node(node.id)

    return [
        env.process(writer(env), "writer"),
        env.process(chaos(env), "chaos"),
    ]


def _partition() -> Scenario:
    return Scenario(
        name="partition",
        description="retried writes racing single-node storage partitions",
        build=_build_partition,
        drive=_drive_partition,
        ledgers={"/p": [(0, 4096, 5), (4096, 4096, 6)]},
        sizes={"/p": 8192},
    )


SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "smallio": _smallio,
    "federated": _federated,
    "partition": _partition,
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choices: {sorted(SCENARIOS)}")
