"""Static and dynamic determinism analysis for the repro stack.

The reproduction's headline guarantee is that every figure table is
bit-identical across runs, seeds, ``--jobs`` counts, and fault plans.
This package turns that contract from a hand-audited convention into an
enforced invariant, with two engines:

* a **determinism linter** (:mod:`repro.analysis.linter`) — an AST pass
  over the source tree that flags the constructs that historically break
  simulated determinism: wall-clock reads, unseeded global RNGs, salted
  ``hash()``, unordered-container iteration feeding results or event
  schedules, mutable default arguments, and order-sensitive float
  reductions.  Rules are identified as ``REP001``..``REP006``
  (:mod:`repro.analysis.rules`), suppressible per line with
  ``# repro: noqa[REPnnn]`` and per file via ``[tool.repro.analysis]``
  in ``pyproject.toml``.

* a **yield-point race sanitizer** (:mod:`repro.analysis.sanitize`) — a
  dynamic checker for the hazard class behind the PR 2 last-closer bug:
  shared mutable state read before a generator ``yield`` and acted on
  after it, while another simulated process mutated it in between.
  Worlds built with ``REPRO_SANITIZE=1`` (or ``--sanitize`` on the
  harness CLI) wrap every simulated process with a per-process
  yield-epoch counter and every registered shared container in a
  :func:`~repro.analysis.sanitize.tracked` proxy; stale-read and
  lost-update conflicts raise :class:`~repro.errors.RaceConditionError`
  at the exact write that acted on stale data.

* a **schedule-exploring model checker** (:mod:`repro.analysis.explore`)
  — a CHESS-style bounded enumerator of same-instant interleavings.  A
  controlled scheduler hooks the engine's tie-breaking, reorders ready
  events under a preemption bound, prunes DPOR-style using the access
  footprints the ``tracked()`` proxies record, and evaluates semantic
  invariant oracles (:mod:`repro.analysis.oracles`) at every quiescent
  point.  Violating schedules are delta-minimized
  (:mod:`repro.analysis.minimize`) into replayable traces.

Command line::

    python -m repro.analysis lint src/      # determinism linter
    python -m repro.analysis rules          # rule table
    python -m repro.analysis check --workload smallio --budget 200
    python -m repro.harness faults --sanitize   # sanitized experiment run
    python -m repro.harness --replay-schedule trace.json  # replay a violation
"""

from __future__ import annotations

from .linter import Finding, lint_paths, lint_source
from .rules import RULES, Rule
from .sanitize import (
    Conflict,
    Sanitizer,
    TrackedDict,
    TrackedSet,
    attach_sanitizer,
    raw_snapshot,
    sanitize_enabled,
    tracked,
)

__all__ = [
    "Conflict",
    "Finding",
    "RULES",
    "Rule",
    "Sanitizer",
    "TrackedDict",
    "TrackedSet",
    "attach_sanitizer",
    "lint_paths",
    "lint_source",
    "raw_snapshot",
    "sanitize_enabled",
    "tracked",
]
