"""Call-graph construction over the analyzed source tree.

The collective analyzer summarizes functions bottom-up: a helper's
collective sequence must be known before any caller inlines it (the
parallel index read's leader/member helpers are the motivating case).
This module owns the graph: one :class:`FuncInfo` per function or method
definition across every analyzed file, syntactic call-edge resolution,
and a callee-first topological order with cycle detection.

Resolution is deliberately name-based and conservative:

* ``f(...)`` — the function named ``f`` in the caller's own module,
  else the *unique* module-level function of that name tree-wide;
* ``self.m(...)`` — the method ``m`` of the caller's own class, else
  the unique method of that name tree-wide;
* ``x.m(...)`` — the unique definition named ``m`` tree-wide.

Anything ambiguous (two classes both define ``open``) or external
(stdlib, numpy) resolves to nothing and is treated as collective-free —
an unsoundness the runtime collective-trace validator exists to catch.
Functions on a call cycle are marked ``in_cycle`` and summarized as
opaque rather than iterated to fixpoint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["CallGraph", "FuncInfo", "build_callgraph"]


@dataclass
class FuncInfo:
    """One function or method definition in the analyzed set."""

    key: str                 # "<path>::<qualname>"
    path: str                # source file
    name: str                # bare name
    qualname: str            # Class.method or function name
    cls: Optional[str]       # enclosing class, if a method
    node: ast.AST            # the FunctionDef
    params: Tuple[str, ...]  # positional+kw parameter names, in order
    in_cycle: bool = False
    callees: List[str] = field(default_factory=list)  # resolved keys


def _params_of(node: ast.AST) -> Tuple[str, ...]:
    a = node.args  # type: ignore[attr-defined]
    names = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    return tuple(names)


@dataclass
class CallGraph:
    """Functions, name indexes, and resolved call edges."""

    functions: Dict[str, FuncInfo]
    by_module: Dict[Tuple[str, str], List[FuncInfo]]  # (path, name) -> defs
    by_name: Dict[str, List[FuncInfo]]                # bare name -> defs

    def resolve(self, call: ast.Call, caller: FuncInfo) -> Optional[FuncInfo]:
        """The FuncInfo a call statically resolves to, or None."""
        func = call.func
        if isinstance(func, ast.Name):
            local = [f for f in self.by_module.get((caller.path, func.id), [])
                     if f.cls is None or f.cls == caller.cls]
            if len(local) == 1:
                return local[0]
            globl = [f for f in self.by_name.get(func.id, []) if f.cls is None]
            return globl[0] if len(globl) == 1 else None
        if isinstance(func, ast.Attribute):
            name = func.attr
            if isinstance(func.value, ast.Name) and func.value.id == "self" \
                    and caller.cls is not None:
                own = [f for f in self.by_module.get((caller.path, name), [])
                       if f.cls == caller.cls]
                if len(own) == 1:
                    return own[0]
            candidates = self.by_name.get(name, [])
            return candidates[0] if len(candidates) == 1 else None
        return None

    def topo_order(self) -> List[FuncInfo]:
        """Callee-first order; members of call cycles get ``in_cycle``."""
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[str, int] = {k: WHITE for k in self.functions}
        order: List[FuncInfo] = []

        for root in sorted(self.functions):
            if color[root] != WHITE:
                continue
            # Iterative DFS with an explicit phase marker per frame.
            stack: List[Tuple[str, int]] = [(root, 0)]
            while stack:
                key, phase = stack.pop()
                info = self.functions[key]
                if phase == 0:
                    if color[key] == BLACK:
                        continue
                    if color[key] == GREY:
                        continue
                    color[key] = GREY
                    stack.append((key, 1))
                    for callee in info.callees:
                        c = color.get(callee, BLACK)
                        if c == WHITE:
                            stack.append((callee, 0))
                        elif c == GREY:
                            # Back edge: everything currently grey on
                            # this chain may sit on the cycle; marking
                            # both endpoints is enough to make their
                            # summaries opaque.
                            info.in_cycle = True
                            self.functions[callee].in_cycle = True
                else:
                    if color[key] != BLACK:
                        color[key] = BLACK
                        order.append(info)
        return order


def build_callgraph(modules: Dict[str, ast.Module]) -> CallGraph:
    """Collect every function definition in *modules* and resolve edges."""
    functions: Dict[str, FuncInfo] = {}
    by_module: Dict[Tuple[str, str], List[FuncInfo]] = {}
    by_name: Dict[str, List[FuncInfo]] = {}

    for path in sorted(modules):
        tree = modules[path]
        for cls, node in _iter_defs(tree):
            qualname = f"{cls}.{node.name}" if cls else node.name
            # Nested defs (rank functions named `fn` in two workloads,
            # say) share qualnames; the line makes every key unique.
            info = FuncInfo(
                key=f"{path}::{qualname}:{node.lineno}", path=path,
                name=node.name,
                qualname=qualname, cls=cls, node=node,
                params=_params_of(node))
            functions[info.key] = info
            by_module.setdefault((path, node.name), []).append(info)
            by_name.setdefault(node.name, []).append(info)

    graph = CallGraph(functions=functions, by_module=by_module,
                      by_name=by_name)
    for info in functions.values():  # repro: noqa[REP004] -- edges are
        # per-function state; population order cannot change them.
        seen: set = set()
        for call in _iter_calls(info.node):
            callee = graph.resolve(call, info)
            if callee is not None and callee.key not in seen:
                seen.add(callee.key)
                info.callees.append(callee.key)
    return graph


def _iter_defs(tree: ast.Module):
    """(enclosing class or None, def node) for every function definition."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
            yield from _nested(node, None)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, item
                    yield from _nested(item, node.name)


def _nested(fn: ast.AST, cls: Optional[str]):
    """Nested defs keep their enclosing class for self-resolution."""
    for node in ast.walk(fn):
        if node is fn:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield cls, node


def _iter_calls(fn: ast.AST):
    """Every call in *fn*'s body, excluding nested function definitions
    (they are separate graph nodes) but including lambda bodies (they
    run within the caller's dynamic extent for our purposes)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))
