"""SARIF 2.1.0 output for every analysis rule (REP001..REP104).

One reporter for the determinism linter and the collective analyzer, so
CI uploads a single artifact and annotates PRs inline regardless of
which pass produced a finding.  :func:`to_sarif` builds the document;
:func:`validate_sarif` structurally checks it against the parts of the
2.1.0 schema we emit (CI asserts this before upload, and the tests
assert it on every shape of result set).

The document is minimal but complete: one ``run`` with a ``tool.driver``
carrying the full rule catalogue (id, shortDescription, fullDescription,
help), and one ``result`` per finding referencing its rule by id and
index with a physical location.  Paths are emitted as relative URIs,
which is what GitHub code scanning expects for inline annotation.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from .linter import Finding
from .rules import RULES

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "to_sarif", "render_sarif",
           "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_TOOL_NAME = "repro-analysis"


def _rule_descriptor(rule_id: str) -> Dict:
    rule = RULES.get(rule_id)
    if rule is None:
        # REP000 (syntax error) and future IDs: a stub descriptor keeps
        # ruleIndex references valid.
        return {"id": rule_id,
                "shortDescription": {"text": rule_id}}
    return {
        "id": rule.id,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.rationale},
        "help": {"text": rule.rationale},
        "defaultConfiguration": {"level": "error"},
    }


def to_sarif(findings: Iterable[Finding]) -> Dict:
    """A SARIF 2.1.0 document (as a dict) for *findings*."""
    findings = list(findings)
    rule_ids: List[str] = sorted({f.rule for f in findings} | set(RULES))
    index_of = {rid: i for i, rid in enumerate(rule_ids)}
    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule,
            "ruleIndex": index_of[f.rule],
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, f.line),
                        "startColumn": max(1, f.col + 1),
                    },
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "informationUri":
                        "https://github.com/repro/repro",
                    "rules": [_rule_descriptor(r) for r in rule_ids],
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///"},
            },
            "results": results,
        }],
    }


def render_sarif(findings: Iterable[Finding]) -> str:
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True)


def validate_sarif(doc: Dict) -> List[str]:
    """Structural 2.1.0 conformance errors in *doc* (empty = valid).

    Covers every constraint the emitted subset is subject to: required
    top-level members, run/tool/driver shape, rule descriptors, result
    member types, ruleIndex consistency, and location regions.
    """
    errors: List[str] = []

    def need(obj: Dict, key: str, typ, where: str) -> bool:
        if key not in obj:
            errors.append(f"{where}: missing required member {key!r}")
            return False
        if not isinstance(obj[key], typ):
            errors.append(f"{where}.{key}: expected {typ.__name__}, "
                          f"got {type(obj[key]).__name__}")
            return False
        return True

    if not isinstance(doc, dict):
        return ["document: not an object"]
    if need(doc, "version", str, "document") \
            and doc["version"] != SARIF_VERSION:
        errors.append(f"document.version: {doc['version']!r} != "
                      f"{SARIF_VERSION!r}")
    if not need(doc, "runs", list, "document"):
        return errors
    for ri, run in enumerate(doc["runs"]):
        where = f"runs[{ri}]"
        if not isinstance(run, dict):
            errors.append(f"{where}: not an object")
            continue
        rules: Sequence[Dict] = ()
        if need(run, "tool", dict, where):
            tool = run["tool"]
            if need(tool, "driver", dict, f"{where}.tool"):
                driver = tool["driver"]
                need(driver, "name", str, f"{where}.tool.driver")
                rules = driver.get("rules", [])
                for qi, rule in enumerate(rules):
                    rwhere = f"{where}.tool.driver.rules[{qi}]"
                    if isinstance(rule, dict):
                        need(rule, "id", str, rwhere)
                    else:
                        errors.append(f"{rwhere}: not an object")
        if not need(run, "results", list, where):
            continue
        for si, res in enumerate(run["results"]):
            rwhere = f"{where}.results[{si}]"
            if not isinstance(res, dict):
                errors.append(f"{rwhere}: not an object")
                continue
            if need(res, "message", dict, rwhere):
                need(res["message"], "text", str, f"{rwhere}.message")
            rid = res.get("ruleId")
            ridx = res.get("ruleIndex")
            if isinstance(ridx, int):
                if not (0 <= ridx < len(rules)):
                    errors.append(f"{rwhere}.ruleIndex: {ridx} out of "
                                  f"range for {len(rules)} rules")
                elif isinstance(rid, str) \
                        and rules[ridx].get("id") != rid:
                    errors.append(
                        f"{rwhere}: ruleIndex {ridx} names "
                        f"{rules[ridx].get('id')!r}, ruleId is {rid!r}")
            for li, loc in enumerate(res.get("locations", [])):
                lwhere = f"{rwhere}.locations[{li}]"
                phys = loc.get("physicalLocation") \
                    if isinstance(loc, dict) else None
                if not isinstance(phys, dict):
                    errors.append(f"{lwhere}: missing physicalLocation")
                    continue
                art = phys.get("artifactLocation")
                if not isinstance(art, dict) or \
                        not isinstance(art.get("uri"), str):
                    errors.append(f"{lwhere}: artifactLocation.uri "
                                  f"missing or not a string")
                region = phys.get("region")
                if isinstance(region, dict):
                    for k in ("startLine", "startColumn"):
                        v = region.get(k)
                        if v is not None and (
                                not isinstance(v, int) or v < 1):
                            errors.append(f"{lwhere}.region.{k}: must "
                                          f"be a positive integer")
    return errors
