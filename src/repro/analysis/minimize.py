"""Delta-minimization of violating schedules (greedy ddmin).

A violating schedule found by the explorer may carry deviations that are
irrelevant to the bug — preemption-bounded search tries combinations,
and only some of the flips in a failing combination actually build the
racy interleaving.  Minimization re-runs the workload (deterministic, so
re-running is exact) with subsets of the deviations and keeps the
smallest set that still fails.

The schedules here are tiny (the preemption bound caps them at a
handful of decisions), so the classic greedy variant of ddmin — drop one
decision at a time, restart whenever a drop sticks — is both simplest
and optimal enough: it terminates in O(n²) runs for n decisions, with
n <= the bound.
"""

from __future__ import annotations

from typing import Callable, Dict

__all__ = ["minimize_schedule"]

Schedule = Dict[int, int]


def minimize_schedule(schedule: Schedule,
                      still_fails: Callable[[Schedule], bool]) -> Schedule:
    """Smallest subset of *schedule*'s decisions for which *still_fails*.

    *still_fails* must be deterministic (the simulator guarantees it:
    identical schedules give identical runs).  The input schedule is
    assumed failing; the result is 1-minimal — dropping any single
    remaining decision makes the run pass.
    """
    current = dict(schedule)
    shrunk = True
    while shrunk:
        shrunk = False
        for idx in sorted(current):
            trial = {k: v for k, v in sorted(current.items()) if k != idx}
            if still_fails(trial):
                current = trial
                shrunk = True
                break
    return current
