"""Analysis CLI: determinism linter, rule reference, and model checker.

Usage::

    python -m repro.analysis lint src/              # lint a tree
    python -m repro.analysis lint src/ --json       # machine-readable
    python -m repro.analysis lint a.py --select REP004,REP006
    python -m repro.analysis rules                  # rule table
    python -m repro.analysis check --workload smallio --budget 200

Exit status: 0 when no findings/violations, 1 when any, 2 on usage
error.  The sanitizer has no subcommand here — it is a *runtime* check,
enabled per experiment run with ``python -m repro.harness <figure>
--sanitize`` (and implicitly by ``check``, whose schedule explorer
feeds on the sanitizer's access footprints).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .config import AnalysisConfig, load_config
from .linter import Finding, lint_paths
from .rules import RULES


def _cmd_lint(args: argparse.Namespace) -> int:
    config: AnalysisConfig
    if args.no_config:
        config = AnalysisConfig()
    else:
        pyproject = Path(args.config) if args.config else None
        config = load_config(pyproject)
    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",") if r.strip()}
        unknown = wanted - set(RULES)
        if unknown:
            print(f"unknown rule(s): {sorted(unknown)}", file=sys.stderr)
            return 2
        config = AnalysisConfig(
            disable=frozenset(set(RULES) - wanted) | config.disable,
            exclude=config.exclude,
            per_file_rules=config.per_file_rules)
    findings: List[Finding] = lint_paths(args.paths, config)
    if args.json:
        print(json.dumps([f.__dict__ for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
        n = len(findings)
        files = len({f.path for f in findings})
        if n:
            print(f"\n{n} finding(s) in {files} file(s)")
        else:
            print("no findings")
    return 1 if findings else 0


def _cmd_rules(_args: argparse.Namespace) -> int:
    for rule in RULES.values():  # repro: noqa[REP004] -- registry is a
        # literal table; printed in definition order by design.
        print(f"{rule.id}  {rule.summary}")
        print(f"        {rule.rationale}\n")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    # Lazy imports: the explorer pulls in the whole simulator stack,
    # which `lint` runs (CI's most frequent path) should not pay for.
    from .explore import run_check, save_trace

    if args.budget < 1 or args.bound < 0:
        print("check needs --budget >= 1 and --bound >= 0", file=sys.stderr)
        return 2
    print(f"exploring workload {args.workload!r} "
          f"(bound {args.bound}, budget {args.budget})")
    report = run_check(args.workload, budget=args.budget, bound=args.bound,
                       log=print)
    print(report.render())
    if report.trace is not None:
        save_trace(args.trace, report.trace)
        print(f"  trace written to {args.trace} — replay with:\n"
              f"    python -m repro.harness --replay-schedule {args.trace}")
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism analysis for the repro source tree.")
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the determinism linter")
    lint.add_argument("paths", nargs="+", help="files or directories to lint")
    lint.add_argument("--select", default="",
                      help="comma-separated rule IDs to run (default: all)")
    lint.add_argument("--config", default="",
                      help="explicit pyproject.toml (default: nearest)")
    lint.add_argument("--no-config", action="store_true",
                      help="ignore [tool.repro.analysis] settings")
    lint.add_argument("--json", action="store_true",
                      help="emit findings as JSON")
    lint.set_defaults(fn=_cmd_lint)

    rules = sub.add_parser("rules", help="print the rule table")
    rules.set_defaults(fn=_cmd_rules)

    check = sub.add_parser(
        "check", help="bounded schedule exploration with invariant oracles")
    check.add_argument("--workload", default="smallio",
                       help="checker workload (see repro.analysis.scenarios)")
    check.add_argument("--budget", type=int, default=200,
                       help="max schedules to explore (default 200)")
    check.add_argument("--bound", type=int, default=2,
                       help="preemption bound: max deviations per schedule "
                            "(default 2)")
    check.add_argument("--trace", default="trace.json",
                       help="where to write the minimized violation trace")
    check.set_defaults(fn=_cmd_check)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
