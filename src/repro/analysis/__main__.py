"""Analysis CLI: determinism linter, collective analyzer, model checker.

Usage::

    python -m repro.analysis lint src/              # lint a tree
    python -m repro.analysis lint src/ --json       # machine-readable
    python -m repro.analysis lint src/ --format sarif -o out.sarif
    python -m repro.analysis lint src/ --show-suppressed   # noqa audit
    python -m repro.analysis lint a.py --select REP004,REP006
    python -m repro.analysis collectives src/       # REP101..REP104
    python -m repro.analysis rules                  # rule table
    python -m repro.analysis check --workload smallio --budget 200

Exit status: 0 when no findings/violations, 1 when any, 2 on usage
error.  ``--format sarif`` emits a SARIF 2.1.0 document shared by every
rule (REP001..REP104) so CI annotates PRs inline from one artifact.
The sanitizer has no subcommand here — it is a *runtime* check, enabled
per experiment run with ``python -m repro.harness <figure> --sanitize``
(and implicitly by ``check``); the collective-trace validator likewise
runs with ``--validate-collectives``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .config import AnalysisConfig, load_config
from .linter import Finding, collect_suppressions, lint_paths
from .rules import RULES


def _load_cli_config(args: argparse.Namespace) -> Optional[AnalysisConfig]:
    """Config per the shared --config/--no-config/--select flags; None
    on a usage error (already reported)."""
    config: AnalysisConfig
    if args.no_config:
        config = AnalysisConfig()
    else:
        pyproject = Path(args.config) if args.config else None
        config = load_config(pyproject)
    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",") if r.strip()}
        unknown = wanted - set(RULES)
        if unknown:
            print(f"unknown rule(s): {sorted(unknown)}", file=sys.stderr)
            return None
        config = AnalysisConfig(
            disable=frozenset(set(RULES) - wanted) | config.disable,
            exclude=config.exclude,
            per_file_rules=config.per_file_rules)
    return config


def _show_suppressed(paths: List[str], config: AnalysisConfig) -> int:
    suppressions = collect_suppressions(paths, config)
    for s in suppressions:
        print(s.render())
    n = len(suppressions)
    unjustified = sum(1 for s in suppressions if not s.justification)
    print(f"\n{n} suppression(s), {unjustified} without a justification"
          if n else "no suppressions")
    return 0


def _report(findings: List[Finding], args: argparse.Namespace) -> int:
    fmt = getattr(args, "format", "text")
    if args.json:
        fmt = "json"
    if fmt == "sarif":
        from .sarif import render_sarif, to_sarif, validate_sarif
        errors = validate_sarif(to_sarif(findings))
        if errors:  # never expected; a reporter bug must fail loudly
            for e in errors:
                print(f"sarif internal error: {e}", file=sys.stderr)
            return 2
        text = render_sarif(findings)
    elif fmt == "json":
        text = json.dumps([f.__dict__ for f in findings], indent=2)
    else:
        lines = [f.render() for f in findings]
        n = len(findings)
        files = len({f.path for f in findings})
        lines.append(f"\n{n} finding(s) in {files} file(s)" if n
                     else "no findings")
        text = "\n".join(lines)
    if getattr(args, "output", None):
        Path(args.output).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 1 if findings else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    config = _load_cli_config(args)
    if config is None:
        return 2
    if args.show_suppressed:
        return _show_suppressed(args.paths, config)
    findings = lint_paths(args.paths, config)
    return _report(findings, args)


def _cmd_collectives(args: argparse.Namespace) -> int:
    config = _load_cli_config(args)
    if config is None:
        return 2
    if args.show_suppressed:
        return _show_suppressed(args.paths, config)
    from .collectives import analyze_paths

    findings = analyze_paths(args.paths, config)
    return _report(findings, args)


def _cmd_rules(_args: argparse.Namespace) -> int:
    for rule in RULES.values():  # repro: noqa[REP004] -- registry is a
        # literal table; printed in definition order by design.
        print(f"{rule.id}  {rule.summary}")
        print(f"        {rule.rationale}\n")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    # Lazy imports: the explorer pulls in the whole simulator stack,
    # which `lint` runs (CI's most frequent path) should not pay for.
    from .explore import run_check, save_trace

    if args.budget < 1 or args.bound < 0:
        print("check needs --budget >= 1 and --bound >= 0", file=sys.stderr)
        return 2
    print(f"exploring workload {args.workload!r} "
          f"(bound {args.bound}, budget {args.budget})")
    report = run_check(args.workload, budget=args.budget, bound=args.bound,
                       log=print)
    print(report.render())
    if report.trace is not None:
        save_trace(args.trace, report.trace)
        print(f"  trace written to {args.trace} — replay with:\n"
              f"    python -m repro.harness --replay-schedule {args.trace}")
    return 0 if report.ok else 1


def _add_common_lint_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("paths", nargs="+", help="files or directories")
    p.add_argument("--select", default="",
                   help="comma-separated rule IDs to run (default: all)")
    p.add_argument("--config", default="",
                   help="explicit pyproject.toml (default: nearest)")
    p.add_argument("--no-config", action="store_true",
                   help="ignore [tool.repro.analysis] settings")
    p.add_argument("--json", action="store_true",
                   help="emit findings as JSON (same as --format json)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="output format (default text)")
    p.add_argument("-o", "--output", default="",
                   help="write the report to a file instead of stdout")
    p.add_argument("--show-suppressed", action="store_true",
                   help="audit: list every noqa suppression with its "
                        "justification instead of linting")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism analysis for the repro source tree.")
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the determinism linter")
    _add_common_lint_args(lint)
    lint.set_defaults(fn=_cmd_lint)

    coll = sub.add_parser(
        "collectives",
        help="interprocedural collective-matching analysis "
             "(REP101..REP104)")
    _add_common_lint_args(coll)
    coll.set_defaults(fn=_cmd_collectives)

    rules = sub.add_parser("rules", help="print the rule table")
    rules.set_defaults(fn=_cmd_rules)

    check = sub.add_parser(
        "check", help="bounded schedule exploration with invariant oracles")
    check.add_argument("--workload", default="smallio",
                       help="checker workload (see repro.analysis.scenarios)")
    check.add_argument("--budget", type=int, default=200,
                       help="max schedules to explore (default 200)")
    check.add_argument("--bound", type=int, default=2,
                       help="preemption bound: max deviations per schedule "
                            "(default 2)")
    check.add_argument("--trace", default="trace.json",
                       help="where to write the minimized violation trace")
    check.set_defaults(fn=_cmd_check)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
