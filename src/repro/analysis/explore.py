"""CHESS-style bounded schedule exploration for the simulator.

The engine is deterministic: with no scheduler attached it fires events
in (time, sequence-id) order, so one workload is one schedule.  This
module enumerates the *other* schedules.  A :class:`_Controller`
attaches to the engine's scheduler hook (see
:meth:`repro.sim.Engine.attach_scheduler`) and decides every same-instant
tie-break; a **schedule** is the sparse map ``{decision_index: choice}``
of the tie-breaks where it deviated from the default choice 0.  The
empty schedule reproduces the uncontrolled run exactly, which is what
makes violating schedules replayable as JSON traces.

Exploration is bounded and pruned:

* **preemption bound** — at most ``bound`` deviations per schedule
  (CHESS's insight: real concurrency bugs need very few);
* **DPOR-style pruning** — a deviation at decision point *p* is only
  explored when the access footprints of the two reordered segments
  conflict (same tracked container and key, at least one write).  The
  footprints come for free: the sanitizer's ``tracked()`` proxies report
  every access to the controller via the observer hook, attributed to
  the event segment that performed it.  Footprints are *causally
  closed* within an instant: a segment inherits the footprints of every
  event it triggers that fires at the same simulated time, because
  reordering the segment reorders that whole same-instant cascade.
  (An ``AllOf`` completion is the canonical case — the serve event that
  satisfies it has an empty footprint itself, but firing it is what
  releases the process segment that mutates the registries.)

At every quiescent point (an instant fully drained) the controller
evaluates :func:`repro.analysis.oracles.quick_invariants`; when a
schedule's workload finishes, the final PLFS oracles (namespace
consistency, conservation, index-strategy equivalence) run against the
drained world.  Any violation stops the search, is delta-minimized
(:mod:`repro.analysis.minimize`), and is emitted as a trace that
``python -m repro.harness --replay-schedule trace.json`` reproduces.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..pfs.volume import Client
from ..plfs.aggregation import aggregate_original
from ..sim.engine import blocked_report
from .oracles import (
    check_conservation,
    check_index_equivalence,
    check_namespace,
    quick_invariants,
)
from .sanitize import _ENV_FLAG
from .scenarios import Scenario, get_scenario

__all__ = [
    "CheckReport",
    "Violation",
    "load_trace",
    "replay_trace",
    "run_check",
    "run_schedule",
    "save_trace",
]

TRACE_VERSION = 1

Schedule = Dict[int, int]
Footprint = FrozenSet[Tuple[str, str, bool]]
_EMPTY_FP: Footprint = frozenset()


@dataclass(frozen=True)
class Violation:
    """One invariant breach found under an explored schedule."""

    kind: str      # "crash" | "deadlock" | "race" | "invariant" | "oracle"
    message: str

    def render(self) -> str:
        return f"[{self.kind}] {self.message}"


class _Controller:
    """Scheduler hook + sanitizer observer for one controlled run.

    Doubles as both halves of the instrumentation: the engine asks it to
    break ties (``select``/``fired``/``quiescent``) and the tracked
    proxies report accesses to it (``on_access``), which it attributes
    to the event segment currently executing — the footprints DPOR
    pruning needs.
    """

    def __init__(self, schedule: Schedule):
        self.schedule = dict(schedule)
        self.decisions: List[Tuple[int, ...]] = []  # ready eids per point
        self.choices: List[int] = []
        self.footprints: Dict[int, set] = {}
        self.fired_eids: set = set()
        # (eid, eid-allocation watermark at fire entry, fire time): the
        # watermark brackets which events each segment triggered, which
        # is what the causal footprint closure walks.
        self.fire_log: List[Tuple[int, int, float]] = []
        self.quick_cb: Any = None
        self._cur: Optional[int] = None
        self._env: Any = None

    def bind(self, env: Any) -> None:
        self._env = env

    # -- engine scheduler hook --------------------------------------------
    def select(self, ready: Sequence[Tuple[int, Any]]) -> int:
        idx = len(self.decisions)
        self.decisions.append(tuple(eid for eid, _ev in ready))
        choice = self.schedule.get(idx, 0)
        if not (0 <= choice < len(ready)):
            choice = 0
        self.choices.append(choice)
        return choice

    def fired(self, eid: int, event: Any) -> None:
        self.fired_eids.add(eid)
        self._cur = eid
        self.fire_log.append((eid, self._env._eid, self._env.now))

    def quiescent(self, now: float) -> None:
        self._cur = None
        if self.quick_cb is not None:
            self.quick_cb(now)

    # -- sanitizer observer hook ------------------------------------------
    def on_access(self, container: str, key: Any, is_write: bool) -> None:
        cur = self._cur
        if cur is None:
            return
        fp = self.footprints.get(cur)
        if fp is None:
            fp = self.footprints[cur] = set()
        fp.add((container, repr(key), is_write))


@dataclass
class RunResult:
    """Everything one controlled run leaves behind."""

    schedule: Schedule
    decisions: List[Tuple[int, ...]]
    workload_decisions: int          # decision points before the oracle phase
    footprints: Dict[int, Footprint]
    causal_footprints: Dict[int, Footprint]
    fired_eids: set
    violations: List[Violation]

    @property
    def failed(self) -> bool:
        return bool(self.violations)


def run_schedule(scenario: Scenario, schedule: Schedule, *,
                 final_oracles: bool = True) -> RunResult:
    """Execute *scenario* once under *schedule* and collect violations.

    The world is built with the sanitizer enabled (its proxies are the
    footprint source) but in collecting mode — a conflict is a reported
    violation, not an exception, so the run drains and the oracles still
    see the damage the race did.
    """
    prev = os.environ.get(_ENV_FLAG)
    os.environ[_ENV_FLAG] = "1"
    try:
        world = scenario.build()
    finally:
        if prev is None:
            os.environ.pop(_ENV_FLAG, None)
        else:
            os.environ[_ENV_FLAG] = prev
    env = world.env
    san = env.sanitizer
    san.strict = False
    # Collective-trace recording in oracle mode: non-strict, so a
    # divergent schedule drains fully and the mismatch is reported as a
    # violation below rather than aborting the exploration.
    from ..mpi.trace import attach_tracer

    tracer = attach_tracer(env, strict=False)

    controller = _Controller(schedule)
    quick_msgs: List[str] = []
    seen_quick: set = set()

    def on_quiescent(_now: float) -> None:
        for msg in quick_invariants(world):
            if msg not in seen_quick:
                seen_quick.add(msg)
                quick_msgs.append(msg)

    controller.quick_cb = on_quiescent
    controller.bind(env)
    san.observer = controller
    env.attach_scheduler(controller)

    procs = scenario.drive(world)
    crash: Optional[BaseException] = None
    try:
        env.run()
    except Exception as exc:  # a schedule that crashes the model is a finding
        crash = exc

    workload_decisions = len(controller.decisions)
    workload_conflicts = list(san.conflicts)
    san.observer = None
    controller.quick_cb = None
    env.detach_scheduler()

    violations: List[Violation] = []
    if crash is not None:
        violations.append(Violation(
            "crash", f"{type(crash).__name__}: {crash}"))
    else:
        stuck = [p for p in procs if not p.triggered]
        if stuck:
            violations.append(Violation(
                "deadlock",
                f"{len(stuck)} process(es) never finished:\n"
                + blocked_report(stuck)))
    for conflict in workload_conflicts:
        violations.append(Violation("race", conflict.render()))
    for msg in quick_msgs:
        violations.append(Violation("invariant", msg))
    # Quiescent-drain collective-congruence oracle: every communicator
    # the workload touched must show identical per-rank traces.  This is
    # the runtime confirmation channel for static REP101..REP104
    # findings (repro.analysis.collectives).
    from ..mpi.trace import validate_tracer

    for msg in validate_tracer(tracer):
        violations.append(Violation("oracle", f"collective-trace: {msg}"))

    if final_oracles and not violations:
        try:
            violations.extend(_final_oracles(world, scenario))
        except Exception as exc:
            violations.append(Violation(
                "oracle",
                f"final oracle run failed: {type(exc).__name__}: {exc}"))

    footprints = {eid: frozenset(fp)
                  for eid, fp in sorted(controller.footprints.items())}
    return RunResult(
        schedule=dict(schedule),
        decisions=controller.decisions,
        workload_decisions=workload_decisions,
        footprints=footprints,
        causal_footprints=_causal_footprints(controller.fire_log, footprints),
        fired_eids=controller.fired_eids,
        violations=violations,
    )


def _final_oracles(world: Any, scenario: Scenario) -> List[Violation]:
    """PLFS semantic invariants over the drained world."""
    out: List[Violation] = []
    for msg in quick_invariants(world):
        out.append(Violation("invariant", msg))
    for path in sorted(scenario.ledgers):
        for msg in check_namespace(world, path):
            out.append(Violation("oracle", f"{path}: {msg}"))
        layout = world.mount.layout(path)
        client = Client(node=world.cluster.nodes[0], client_id=9500)
        gi = world.env.run_process(
            aggregate_original(layout, client, {}), "oracle-merge")
        for msg in check_conservation(world, path, gi):
            out.append(Violation("oracle", f"{path}: {msg}"))
        for msg in check_index_equivalence(
                world, path, scenario.sizes[path], scenario.ledgers[path],
                ranks=scenario.equiv_ranks):
            out.append(Violation("oracle", f"{path}: {msg}"))
    return out


# -- DPOR candidate generation ---------------------------------------------

def _causal_footprints(fire_log: List[Tuple[int, int, float]],
                       footprints: Dict[int, Footprint],
                       ) -> Dict[int, Footprint]:
    """Close each segment's footprint over its same-instant cascade.

    Choosing an event at a tie-break doesn't just run that segment — it
    runs everything the segment transitively triggers at the same
    instant (callbacks allocate new immediate events, which fire before
    time advances).  Deferring the event defers that whole cascade, so
    conflict detection must compare cascades, not lone segments.

    The fire log records, per fired event, the engine's eid-allocation
    watermark on entry; events allocated between one segment's entry and
    the next segment's entry were triggered *by* that segment.  Walking
    the log backwards unions each segment's own footprint with the
    (already-closed) footprints of the same-instant events it triggered.
    """
    causal: Dict[int, Footprint] = {}
    n = len(fire_log)
    for i in range(n - 1, -1, -1):
        eid, watermark, t = fire_log[i]
        hi = fire_log[i + 1][1] if i + 1 < n else None
        fp = set(footprints.get(eid, _EMPTY_FP))
        for j in range(i + 1, n):
            child_eid, _wm, child_t = fire_log[j]
            if child_t != t:
                break    # fire times only move forward: cascade over
            if child_eid > watermark and (hi is None or child_eid <= hi):
                fp |= causal.get(child_eid, _EMPTY_FP)
        causal[eid] = frozenset(fp)
    return causal


def _conflicting(a: Footprint, b: Footprint) -> bool:
    """Do two segment footprints touch the same state, one writing?"""
    for container, key, is_write in a:
        if is_write:
            if (container, key, False) in b or (container, key, True) in b:
                return True
        elif (container, key, True) in b:
            return True
    return False


def _children(result: RunResult, bound: int) -> List[Schedule]:
    """Schedules one deviation deeper than *result*'s, DPOR-pruned.

    Deviations are only added after the parent schedule's last deviation
    (the search tree is ordered, so earlier points were covered by the
    parent's siblings), only at workload decision points (reordering the
    oracle phase's own reads proves nothing), and only when the deferred
    default *cascade* conflicts with the promoted one (causally-closed
    footprints; see :func:`_causal_footprints`) — or the promoted event
    never fired in the parent run, which is treated conservatively.
    """
    schedule = result.schedule
    if len(schedule) >= bound:
        return []
    out: List[Schedule] = []
    last_dev = max(schedule, default=-1)
    for p in range(last_dev + 1, result.workload_decisions):
        eids = result.decisions[p]
        default_fp = result.causal_footprints.get(eids[0], _EMPTY_FP)
        for k in range(1, len(eids)):
            alt = eids[k]
            alt_fp = result.causal_footprints.get(alt)
            if alt in result.fired_eids and (
                    alt_fp is None
                    or not _conflicting(default_fp, alt_fp)):
                continue
            child = dict(schedule)
            child[p] = k
            out.append(child)
    return out


# -- traces ----------------------------------------------------------------

def trace_dict(workload: str, schedule: Schedule,
               violation: Optional[Violation]) -> Dict[str, Any]:
    return {
        "version": TRACE_VERSION,
        "workload": workload,
        "decisions": [[idx, schedule[idx]] for idx in sorted(schedule)],
        "violation": (
            {"kind": violation.kind, "message": violation.message}
            if violation is not None else None),
    }


def save_trace(path: str, trace: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_trace(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        trace = json.load(fh)
    if trace.get("version") != TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {trace.get('version')!r} in {path}")
    return trace


def replay_trace(trace: Dict[str, Any]) -> RunResult:
    """Re-run a trace's workload under its recorded schedule."""
    scenario = get_scenario(trace["workload"])
    schedule = {int(idx): int(choice) for idx, choice in trace["decisions"]}
    return run_schedule(scenario, schedule)


# -- the search ------------------------------------------------------------

@dataclass
class CheckReport:
    """Outcome of one bounded exploration."""

    workload: str
    budget: int
    bound: int
    runs: int = 0
    minimize_runs: int = 0
    schedules_queued: int = 0
    violation: Optional[Violation] = None
    violations: List[Violation] = field(default_factory=list)
    schedule: Optional[Schedule] = None           # minimized, when violating
    trace: Optional[Dict[str, Any]] = None
    exhausted: bool = False   # queue drained before budget ran out

    @property
    def ok(self) -> bool:
        return self.violation is None

    def render(self) -> str:
        head = (f"check --workload {self.workload}: {self.runs} schedule(s) "
                f"explored (bound {self.bound}, budget {self.budget}"
                + (", search exhausted" if self.exhausted else "") + ")")
        if self.ok:
            return head + "\n  no violations; all oracles passed"
        lines = [head,
                 f"  VIOLATION after {self.runs} run(s): "
                 f"{self.violation.render()}"]
        for extra in self.violations[1:]:
            lines.append(f"    also: {extra.render()}")
        lines.append(
            f"  minimized schedule: {len(self.schedule)} decision(s) "
            f"{sorted(self.schedule.items())} "
            f"({self.minimize_runs} minimization run(s))")
        return "\n".join(lines)


def run_check(workload: str, *, budget: int = 200, bound: int = 2,
              log: Any = None) -> CheckReport:
    """Bounded DPOR exploration of *workload*; stops at the first violation.

    Breadth-first over deviation count: the default schedule runs first,
    then every pruned one-deviation child, and so on up to *bound*.
    *budget* caps the number of executed schedules (minimization runs
    are counted separately).  The first violating schedule is
    delta-minimized and packaged as a replayable trace.
    """
    scenario = get_scenario(workload)
    report = CheckReport(workload=workload, budget=budget, bound=bound)
    queue: deque = deque([{}])
    visited = {frozenset()}
    while queue and report.runs < budget:
        schedule = queue.popleft()
        result = run_schedule(scenario, schedule)
        report.runs += 1
        if log is not None and report.runs % 25 == 0:
            log(f"  explored {report.runs} schedule(s), "
                f"{len(queue)} queued")
        if result.failed:
            _minimize_into(report, scenario, schedule, result)
            return report
        for child in _children(result, bound):
            key = frozenset(child.items())
            if key not in visited:
                visited.add(key)
                queue.append(child)
                report.schedules_queued += 1
    report.exhausted = not queue
    return report


def _minimize_into(report: CheckReport, scenario: Scenario,
                   schedule: Schedule, result: RunResult) -> None:
    """Delta-minimize the violating schedule and fill the report."""
    from .minimize import minimize_schedule

    def still_fails(trial: Schedule) -> bool:
        report.minimize_runs += 1
        return run_schedule(scenario, trial).failed

    minimized = minimize_schedule(schedule, still_fails)
    final = result if minimized == schedule else run_schedule(
        scenario, minimized)
    report.violations = final.violations
    report.violation = final.violations[0]
    report.schedule = minimized
    report.trace = trace_dict(report.workload, minimized, report.violation)
