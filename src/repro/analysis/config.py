"""Linter configuration: the ``[tool.repro.analysis]`` pyproject table.

Three knobs, all optional::

    [tool.repro.analysis]
    disable = ["REP005"]          # rules switched off everywhere
    exclude = ["src/vendored/*"]  # path globs never linted

    [tool.repro.analysis.per-file-rules]
    "repro/harness/__main__.py" = ["REP001"]   # rules ignored per file

Paths and globs are matched against the linted file's path with ``/``
separators; a pattern matches if it matches the whole path or any
suffix of it, so configs stay valid whether the linter is invoked from
the repo root or elsewhere.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Tuple

__all__ = ["AnalysisConfig", "find_pyproject", "load_config"]


@dataclass(frozen=True)
class AnalysisConfig:
    """Parsed ``[tool.repro.analysis]`` settings."""

    disable: FrozenSet[str] = frozenset()
    exclude: Tuple[str, ...] = ()
    per_file_rules: Tuple[Tuple[str, FrozenSet[str]], ...] = ()

    def is_excluded(self, path: str) -> bool:
        norm = _normalize(path)
        return any(_match(pat, norm) for pat in self.exclude)

    def ignored_rules(self, path: str) -> FrozenSet[str]:
        """Rules to skip for *path*: global disables plus per-file entries."""
        norm = _normalize(path)
        ignored = set(self.disable)
        for pattern, rules in self.per_file_rules:
            if _match(pattern, norm):
                ignored.update(rules)
        return frozenset(ignored)


def _normalize(path: str) -> str:
    return str(path).replace("\\", "/")


def _match(pattern: str, path: str) -> bool:
    pattern = _normalize(pattern)
    if fnmatch(path, pattern):
        return True
    # Suffix match: "repro/pfs/mds.py" hits "src/repro/pfs/mds.py".
    parts = path.split("/")
    return any(fnmatch("/".join(parts[i:]), pattern)
               for i in range(1, len(parts)))


def find_pyproject(start: Optional[Path] = None) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above *start* (default: cwd)."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        p = candidate / "pyproject.toml"
        if p.is_file():
            return p
    return None


def load_config(pyproject: Optional[Path] = None) -> AnalysisConfig:
    """Load settings from *pyproject* (or the nearest one); empty if none."""
    path = pyproject or find_pyproject()
    if path is None or not path.is_file():
        return AnalysisConfig()
    with open(path, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro", {}).get("analysis", {})
    disable: List[str] = list(table.get("disable", []))
    exclude: List[str] = list(table.get("exclude", []))
    per_file: Dict[str, List[str]] = table.get("per-file-rules", {})
    return AnalysisConfig(
        disable=frozenset(disable),
        exclude=tuple(exclude),
        per_file_rules=tuple(
            (pattern, frozenset(rules))
            # Matching is additive, so table order cannot change the outcome.
            for pattern, rules in per_file.items()  # repro: noqa[REP004] -- matching is additive; table order cannot change it
        ),
    )
