"""The determinism rule registry.

Each rule names one construct that can make a simulated run differ
between two executions of the *same* configuration — the exact property
the figure pipeline promises never varies.  The registry is data, not
code: the linter (:mod:`repro.analysis.linter`) owns the AST matching,
this module owns the IDs, one-line summaries, and rationale shown by
``python -m repro.analysis rules`` and used in reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Rule:
    """One determinism rule: stable ID plus human-readable rationale."""

    id: str
    summary: str
    rationale: str


RULES: Dict[str, Rule] = {
    r.id: r
    for r in (
        Rule(
            "REP001",
            "wall-clock read outside the harness timer",
            "time.time()/datetime.now() and friends leak host wall-clock "
            "into a simulation whose only clock is Engine.now; any value "
            "derived from them differs between runs.  Only the harness "
            "CLI's wall-time progress report may read the host clock.",
        ),
        Rule(
            "REP002",
            "unseeded or process-global random source",
            "random.* module functions, np.random.* legacy globals, and "
            "seedless Random()/default_rng() draw from per-process state "
            "that differs across runs and --jobs workers.  All randomness "
            "must flow through an explicitly seeded generator (see "
            "repro.faults.plan.FaultPlan.rng).",
        ),
        Rule(
            "REP003",
            "salted hash() in a result path",
            "Python string hashing is salted per process "
            "(PYTHONHASHSEED), so hash() values — and anything placed or "
            "ordered by them — differ between runs and between --jobs "
            "workers.  Use zlib.crc32 or an explicit stable key.",
        ),
        Rule(
            "REP004",
            "iteration over an unordered container",
            "dict .values()/.keys()/.items() iterate in insertion order, "
            "which is only as deterministic as the code that inserted; "
            "set iteration is salted for strings.  Where the order can "
            "reach a result table or the event schedule, iterate "
            "sorted(...) or annotate the loop order-insensitive with "
            "# repro: noqa[REP004] and a reason.",
        ),
        Rule(
            "REP005",
            "mutable default argument",
            "A mutable default is shared across calls: state leaks from "
            "one simulated job into the next, making results depend on "
            "call history rather than configuration.",
        ),
        Rule(
            "REP006",
            "float reduction over an unordered iterable",
            "Float addition is not associative: sum()/math.fsum() over "
            ".values() or a set can change in the last bit when the "
            "iteration order changes, which is exactly how figure cells "
            "drift.  Reduce over a sorted or explicitly ordered sequence, "
            "or annotate integer sums with # repro: noqa[REP006].",
        ),
        Rule(
            "REP007",
            "registry read separated from its write by a yield",
            "A value read from a tracked() shared registry is stale after "
            "any yield: the event loop may run another process that "
            "mutates the registry at the same simulated instant (the "
            "PR 2 last-closer bug was exactly a zero-refcount check "
            "cached across metadata ops).  Re-read after resuming, or "
            "restructure so the read and the dependent write straddle no "
            "yield; a # repro: noqa[REP007] with a reason documents a "
            "site proven atomic by other means.",
        ),
        Rule(
            "REP101",
            "collective under a rank-dependent branch, arms not congruent",
            "A collective reached only when a rank-dependent predicate "
            "holds (if comm.rank == 0: comm.bcast(...)) is issued by "
            "some ranks and skipped by others of the same communicator. "
            "In real MPI the skipped ranks hang the job; in this "
            "simulator the per-communicator tag counter desynchronizes "
            "and later collectives silently cross-match each other's "
            "messages.  Hoist the collective out of the branch, make "
            "both arms issue a congruent sequence, or split() a sub-"
            "communicator so each color group is internally uniform.",
        ),
        Rule(
            "REP102",
            "rank-dependent root= argument of a collective",
            "Every rank of a communicator must name the same root in "
            "the same collective: a root derived from comm.rank makes "
            "ranks address different binomial trees at once.  Roots "
            "must be provably uniform — a constant, a caller-supplied "
            "parameter, or a value previously bcast/allreduced (whose "
            "results the taint analysis treats as uniform).",
        ),
        Rule(
            "REP103",
            "unmatched or cyclically-waiting send/recv pairing",
            "A recv whose (peer, tag) class no send ever posts waits "
            "forever; a symmetric blocking recv-before-send on a ring "
            "(recv from rank-1, then send to rank+1) waits on its "
            "neighbor who is waiting on theirs.  Tag classes are "
            "matched tree-wide, so the two-phase I/O tags in "
            "mpiio/file.py pair across functions.",
        ),
        Rule(
            "REP104",
            "collective inside a loop with a rank-dependent trip count",
            "A collective issued once per iteration of `for x in "
            "mine(rank)` runs a different number of times on each "
            "rank: after the shortest rank exits, the others' next "
            "collective pairs with garbage.  Loop bounds around "
            "collectives must be rank-uniform; annotate bounds that "
            "are uniform by construction with a justified noqa and a "
            "runtime-validated trace (--validate-collectives).",
        ),
    )
}

__all__ = ["Rule", "RULES"]
