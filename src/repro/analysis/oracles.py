"""Semantic invariant oracles for the schedule-exploring model checker.

The checker (:mod:`repro.analysis.explore`) runs a workload under many
interleavings; these oracles say what *correct* means independently of
any particular schedule.  Two tiers:

* **quick invariants** (:func:`quick_invariants`) — cheap structural
  checks evaluated at every quiescent point of every explored schedule:
  host-refcount non-negativity, per-directory inflight-counter sanity,
  partition-set consistency.  They read simulator state exclusively
  through the ``*_snapshot`` accessors the registry modules export, so
  evaluating them never perturbs the sanitizer's read vectors or the
  DPOR footprints.

* **final oracles** — PLFS semantic invariants checked once a schedule
  has drained: the container namespace is consistent (no orphaned
  openhost marks or droppings, subdir spread matches the federation
  map, meta droppings account for every index record —
  :func:`check_namespace`); every logical byte in the merged index maps
  to exactly one live data-log extent (:func:`check_conservation`); and
  all three index-aggregation strategies return byte-identical data
  matching the workload's write ledger (:func:`check_index_equivalence`
  — also reused directly by the property tests).

Every oracle returns a list of violation messages; empty means the
invariant holds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..mpi.runtime import run_job
from ..pfs.data import pattern_bytes
from ..pfs.volume import Client
from ..plfs.aggregation import (
    aggregate_original,
    aggregate_parallel,
    read_flattened_index,
)
from ..plfs.container import parse_meta_dropping
from ..plfs.index import RECORD_DTYPE, GlobalIndex
from ..plfs.reader import PlfsReadHandle
from ..plfs.writer import host_refs_snapshot

__all__ = [
    "check_conservation",
    "check_index_equivalence",
    "check_namespace",
    "expected_bytes",
    "quick_invariants",
    "read_back",
]

_RECORD_BYTES = RECORD_DTYPE.itemsize


# -- quick invariants (every quiescent point) ------------------------------

def quick_invariants(world: Any) -> List[str]:
    """Cheap structural invariants; safe to evaluate mid-run."""
    out: List[str] = []
    for vol in world.volumes:
        for (path, node_id), entry in sorted(host_refs_snapshot(vol).items()):
            rc, max_eof, records = entry
            if rc < 0:
                out.append(
                    f"negative host refcount {rc} for container {path!r} "
                    f"node {node_id} on volume {vol.name!r}")
            if max_eof < 0 or records < 0:
                out.append(
                    f"negative accumulators {entry} for container {path!r} "
                    f"node {node_id} on volume {vol.name!r}")
        snap = vol.mds.registry_snapshot()
        for dir_uid, inflight in sorted(snap["inflight"].items()):
            if inflight < 0:
                out.append(
                    f"negative dir-inflight count {inflight} for dir "
                    f"{dir_uid} on MDS of volume {vol.name!r}")
    known = {node.id for node in world.cluster.nodes}
    for nid in sorted(world.cluster.storage_net.partition_snapshot()):
        if nid not in known:
            out.append(f"partitioned-node set names unknown node {nid}")
    return out


# -- final oracle: namespace consistency -----------------------------------

def check_namespace(world: Any, path: str) -> List[str]:
    """Container-namespace consistency once all writers have closed.

    Checks: the host registry is drained for the container; no openhost
    marks remain; every data log pairs with an index log (and vice
    versa); each writer's droppings sit in the subdir the federation map
    assigns its node; meta droppings parse and account for exactly the
    records the index logs hold; subdirs exist only on their mapped
    volumes.
    """
    layout = world.mount.layout(path)
    out: List[str] = []
    home = layout.home_volume
    for (p, node_id), entry in sorted(host_refs_snapshot(home).items()):
        if p == layout.path:
            out.append(
                f"host registry not drained after close: entry "
                f"{entry} for node {node_id} of {path!r}")
    cnode = home.ns.try_resolve(layout.path)
    if cnode is None or not cnode.is_dir:
        out.append(f"container {path!r} missing on home volume {home.name!r}")
        return out
    oh = home.ns.try_resolve(layout.openhosts_path)
    if oh is not None and oh.children:
        out.append(
            f"orphaned openhost marks after close: {sorted(oh.children)}")

    meta_eof, meta_records = 0, 0
    meta = home.ns.try_resolve(layout.meta_path)
    if meta is None:
        out.append(f"meta dir of {path!r} missing")
    else:
        for name in sorted(meta.children or {}):
            try:
                eof, nrec, node_id, _writer = parse_meta_dropping(name)
            except Exception:
                out.append(f"unparseable meta dropping {name!r}")
                continue
            meta_eof = max(meta_eof, eof)
            meta_records += nrec

    index_records = 0
    for s in range(layout.cfg.n_subdirs):
        mapped = layout.subdir_volume(s)
        for vol in layout.all_volumes():
            sd = vol.ns.try_resolve(layout.subdir_path(s))
            if sd is None:
                continue
            if vol is not mapped:
                out.append(
                    f"subdir {s} of {path!r} found on volume {vol.name!r}, "
                    f"federation maps it to {mapped.name!r}")
                continue
            datas, indexes = set(), set()
            for name in sorted(sd.children or {}):
                child = (sd.children or {})[name]
                parts = name.split(".")
                if name.startswith("dropping.data."):
                    datas.add((int(parts[2]), int(parts[3])))
                elif name.startswith("dropping.index."):
                    indexes.add((int(parts[2]), int(parts[3])))
                    index_records += (child.data.size if child.data else 0) \
                        // _RECORD_BYTES
                else:
                    out.append(f"unexpected dropping {name!r} in subdir {s}")
                    continue
                node_id = int(parts[2])
                if layout.subdir_for_writer(node_id) != s:
                    out.append(
                        f"dropping {name!r} of node {node_id} landed in "
                        f"subdir {s}, federation maps it to "
                        f"{layout.subdir_for_writer(node_id)}")
            for node_id, writer in sorted(datas - indexes):
                out.append(
                    f"data log of writer {writer} (node {node_id}) has no "
                    f"index log")
            for node_id, writer in sorted(indexes - datas):
                out.append(
                    f"index log of writer {writer} (node {node_id}) has no "
                    f"data log")
    if meta_records != index_records:
        out.append(
            f"meta droppings account for {meta_records} records but index "
            f"logs hold {index_records}")
    return out


# -- final oracle: conservation --------------------------------------------

def check_conservation(world: Any, path: str, gi: GlobalIndex) -> List[str]:
    """Every logical byte of the merged index maps to one live extent.

    The merged journal's flatten already guarantees *at most one* extent
    per byte; what a lost metadata update breaks is *liveness* — a
    record pointing into a data log that was clobbered or never grew to
    the promised length.  Walks the journal columns and checks each
    referenced extent against the actual data-log inode.
    """
    layout = world.mount.layout(path)
    out: List[str] = []
    start, length, src, src_off, _stamp, _minor = gi.journal.columns()
    for i in range(len(start)):
        writer_id = int(src[i])
        node_id = gi.writers.get(writer_id)
        if node_id is None:
            out.append(
                f"index record {i} names unknown writer {writer_id}")
            continue
        vol = layout.subdir_volume(layout.subdir_for_writer(node_id))
        log_path = layout.data_log_path(node_id, writer_id)
        inode = vol.ns.try_resolve(log_path)
        if inode is None or inode.data is None:
            out.append(
                f"index record {i} (logical [{int(start[i])}, "
                f"{int(start[i]) + int(length[i])})) points at missing "
                f"data log {log_path!r}")
            continue
        end = int(src_off[i]) + int(length[i])
        if inode.data.size < end:
            out.append(
                f"index record {i} needs {end} bytes of {log_path!r}, "
                f"which holds only {inode.data.size}")
    if gi.logical_size != gi.journal.size:  # pragma: no cover - defensive
        out.append(
            f"merged index logical size {gi.logical_size} != journal "
            f"extent size {gi.journal.size}")
    return out


# -- final oracle: index-strategy equivalence ------------------------------

def expected_bytes(size: int, ledger: Sequence[Tuple[int, int, int]]) -> bytes:
    """Ground-truth content from a write ledger of (offset, length, seed).

    Unwritten ranges are holes and read back as zeros, which is what the
    ``np.zeros`` base models.
    """
    buf = np.zeros(size, dtype=np.uint8)
    for offset, length, seed in ledger:
        buf[offset:offset + length] = pattern_bytes(seed, offset, length)
    return buf.tobytes()


def _read_full(layout: Any, client: Client, gi: GlobalIndex):
    handle = PlfsReadHandle(layout, client, gi)
    view = yield from handle.read(0, gi.logical_size)
    yield from handle.close()
    return view.to_bytes()


def read_back(world: Any, path: str, strategy: str, *, ranks: int = 1,
              client_id_base: int = 9000) -> Optional[bytes]:
    """Simulated full read of *path* via one aggregation *strategy*.

    ``"original"`` aggregates every index log itself; ``"parallel"``
    runs a *ranks*-rank collective (the genuine hierarchical path needs
    >= 2 ranks — with one it degrades to original); ``"flatten"``
    reads the global.index dropping and returns None when the workload
    never produced one.
    """
    env = world.env
    layout = world.mount.layout(path)
    if strategy == "original":
        client = Client(node=world.cluster.nodes[0],
                        client_id=client_id_base)

        def go_original():
            gi = yield from aggregate_original(layout, client, {})
            return (yield from _read_full(layout, client, gi))

        return env.run_process(go_original(), "oracle-read-original")
    if strategy == "flatten":
        client = Client(node=world.cluster.nodes[0],
                        client_id=client_id_base)

        def go_flatten():
            gi = yield from read_flattened_index(layout, client, None)
            if gi is None:
                return None
            return (yield from _read_full(layout, client, gi))

        return env.run_process(go_flatten(), "oracle-read-flatten")
    if strategy == "parallel":
        cfg = world.mount.cfg

        def rank_fn(ctx):
            gi = yield from aggregate_parallel(layout, ctx.client, ctx.comm,
                                               cfg)
            if ctx.rank == 0:
                return (yield from _read_full(layout, ctx.client, gi))
            return None

        result = run_job(env, world.cluster, ranks, rank_fn,
                         name="oracle-read-parallel",
                         client_id_base=client_id_base)
        return result.results[0]
    raise ValueError(f"unknown read-back strategy {strategy!r}")


def check_index_equivalence(world: Any, path: str, size: int,
                            ledger: Sequence[Tuple[int, int, int]], *,
                            ranks: int = 2) -> List[str]:
    """All index strategies agree with each other and with the ledger.

    Reads the file back via original, parallel (a *ranks*-rank
    collective), and — when a global.index exists — flattened
    aggregation; every result must equal :func:`expected_bytes` of the
    write ledger.  Reused by the checker as a final oracle and by the
    property tests standalone.
    """
    out: List[str] = []
    expect = expected_bytes(size, ledger)
    original = read_back(world, path, "original", client_id_base=9000)
    if len(original) != size:
        out.append(
            f"original read-back of {path!r} returned {len(original)} "
            f"bytes, expected {size}")
    if original != expect:
        out.append(
            f"original read-back of {path!r} differs from the write ledger")
    parallel = read_back(world, path, "parallel", ranks=max(ranks, 2),
                         client_id_base=9100)
    if parallel != expect:
        out.append(
            f"parallel-index read-back of {path!r} differs from the "
            f"write ledger (and the original strategy)")
    flattened = read_back(world, path, "flatten", client_id_base=9200)
    if flattened is not None and flattened != expect:
        out.append(
            f"flattened read-back of {path!r} differs from the write ledger")
    return out
