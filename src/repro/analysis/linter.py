"""The determinism linter: an AST pass enforcing the repro contract.

Rules (see :mod:`repro.analysis.rules` for rationale):

========  ===========================================================
REP001    wall-clock reads (``time.time``, ``datetime.now``, ...)
REP002    unseeded / process-global random sources
REP003    salted builtin ``hash()``
REP004    iteration over unordered containers (``.values()``, sets)
REP005    mutable default arguments
REP006    float reductions (``sum``/``fsum``) over unordered iterables
REP007    registry read separated from its dependent write by a yield
========  ===========================================================

Suppression forms, narrowest first:

* ``# repro: noqa[REP004]`` on the flagged line (several IDs comma-
  separated; a trailing ``-- reason`` is encouraged and audited);
* ``# noqa: REP003,REP101`` — the flake8-style spelling, same
  semantics, so editors and other tools recognize the suppression;
* ``# repro: noqa`` / ``# noqa`` on the flagged line silences every
  rule there;
* per-file and global switches in ``[tool.repro.analysis]``
  (:mod:`repro.analysis.config`).

Every suppression is an auditable record (:class:`Suppression`): its
line, the codes it silences, and the justification text after ``--``.
``python -m repro.analysis lint --show-suppressed`` lists them all, so
unjustified suppressions are one grep away from review.

The matcher is deliberately syntactic: it cannot prove an iteration
order reaches a result table, so REP004/REP006 over-approximate and the
suppression comment *is* the documentation that a site was audited.
That trade keeps the pass dependency-free, fast (one ``ast.parse`` per
file), and — most importantly — loud for the next person who writes
``for x in d.values()`` into an event schedule.

REP007 is the static face of the model checker's favourite dynamic bug
(:mod:`repro.analysis.explore`): inside a *generator* function, a value
read from a ``tracked()`` shared registry and then *written back* after
a ``yield`` — without re-reading — is a lost update waiting for the
right interleaving.  The pass recognises registries syntactically
(variables assigned from ``tracked(...)``, attributes so assigned
anywhere in the module, and results of same-module helpers whose body
calls ``tracked``), walks each generator's statements in order tracking
read/yield/write phases per registry, and forks the tracking state at
``if``/``try`` branches so a yield on one arm cannot taint the other.
Loop bodies are walked twice, catching reads cached across an
iteration's yields.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .config import AnalysisConfig, load_config
from .rules import RULES

__all__ = [
    "Finding", "Suppression", "lint_source", "lint_file", "lint_paths",
    "filter_findings", "iter_suppressions", "collect_suppressions",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One ``noqa`` comment: where, what it silences, and why."""

    path: str
    line: int
    rules: Optional[frozenset]  # None: suppresses every rule on the line
    justification: str          # text after `--` (or trailing prose); ""

    def render(self) -> str:
        what = "all rules" if self.rules is None \
            else ",".join(sorted(self.rules))
        why = self.justification or "(no justification)"
        return f"{self.path}:{self.line}: noqa[{what}] -- {why}"


# -- rule tables -------------------------------------------------------------

# Dotted call targets that read the host wall clock (REP001).
_WALLCLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime", "time.ctime",
    "time.asctime", "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "date.today", "datetime.date.today",
})

# Module-global random draws (REP002): always nondeterministic.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
    "expovariate", "choice", "choices", "sample", "shuffle", "betavariate",
    "triangular", "vonmisesvariate", "paretovariate", "weibullvariate",
    "lognormvariate", "getrandbits", "random_sample", "rand", "randn",
    "permutation", "standard_normal", "seed",
})

# Constructors that are fine *seeded* but nondeterministic bare (REP002).
_SEEDABLE_CTORS = frozenset({
    "random.Random", "random.SystemRandom",
    "np.random.default_rng", "numpy.random.default_rng",
    "np.random.RandomState", "numpy.random.RandomState",
})

# Reducers whose value cannot depend on operand order (for REP004 only;
# float accumulation order is REP006's business).
_ORDER_INSENSITIVE = frozenset({
    "sum", "min", "max", "any", "all", "len", "set", "frozenset",
    "sorted", "fsum", "Counter", "dict",
})

_UNORDERED_METHODS = frozenset({"values", "keys", "items"})

# Both spellings: `repro: noqa[REP004]` (bracketed, project-native)
# and `noqa: REP003,REP101` (flake8-style colon list).  A bare
# `noqa` / `repro: noqa` suppresses every rule on the line.
_NOQA_RE = re.compile(
    r"#\s*(?:repro:\s*)?noqa"
    r"(?:\[(?P<bracket>[A-Za-z0-9,\s]+)\]"
    r"|:\s*(?P<colon>[A-Za-z][A-Za-z0-9]*(?:\s*,\s*[A-Za-z][A-Za-z0-9]*)*)"
    r")?")


def _dotted(node: ast.AST) -> Optional[str]:
    """'a.b.c' for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_unordered(node: ast.AST) -> bool:
    """Does *node* evaluate to an unordered (or order-fragile) iterable?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _UNORDERED_METHODS:
            return True
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, enabled: Set[str]):
        self.enabled = enabled
        self.findings: List[Finding] = []
        # Names bound by `from random import X` at module level.
        self._from_random: Set[str] = set()
        # Iteration expressions consumed by order-insensitive reducers
        # (sum/min/max/...): REP004 stands down there.
        self._blessed: Set[int] = set()

    # -- helpers ----------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.enabled:
            self.findings.append(Finding(
                rule=rule, path="", line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0), message=message))

    def _bless(self, node: ast.AST) -> None:
        self._blessed.add(id(node))
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for gen in node.generators:
                self._blessed.add(id(gen.iter))

    # -- imports ----------------------------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name in _GLOBAL_RANDOM_FNS:
                    self._from_random.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- calls ------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        name = node.func.id if isinstance(node.func, ast.Name) else None

        if dotted in _WALLCLOCK:
            self._emit("REP001", node,
                       f"wall-clock read {dotted}() — simulated code must "
                       f"use Engine.now (host time varies per run)")

        self._check_random(node, dotted, name)

        if name == "hash":
            self._emit("REP003", node,
                       "builtin hash() is salted per process "
                       "(PYTHONHASHSEED); use zlib.crc32 or a stable key")

        if name in _ORDER_INSENSITIVE or (
                dotted is not None and dotted.split(".")[-1] == "fsum"):
            for arg in node.args:
                self._bless(arg)
            if name in {"sum"} or (
                    dotted is not None and dotted.split(".")[-1] == "fsum"):
                self._check_float_reduction(node)

        self.generic_visit(node)

    def _check_random(self, node: ast.Call, dotted: Optional[str],
                      name: Optional[str]) -> None:
        if dotted is not None:
            head, _, tail = dotted.rpartition(".")
            if head in {"random", "np.random", "numpy.random"} \
                    and tail in _GLOBAL_RANDOM_FNS:
                self._emit("REP002", node,
                           f"{dotted}() draws from process-global state; "
                           f"thread an explicitly seeded Generator instead")
                return
            if dotted in _SEEDABLE_CTORS and not node.args \
                    and not node.keywords:
                self._emit("REP002", node,
                           f"{dotted}() without a seed is nondeterministic; "
                           f"pass an explicit seed")
                return
        if name is not None and name in self._from_random:
            self._emit("REP002", node,
                       f"{name}() (from random import) draws from "
                       f"process-global state; use a seeded Generator")

    def _check_float_reduction(self, node: ast.Call) -> None:
        if not node.args:
            return
        arg = node.args[0]
        unordered = _is_unordered(arg)
        if not unordered and isinstance(
                arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            unordered = any(_is_unordered(gen.iter) for gen in arg.generators)
        if unordered:
            self._emit("REP006", node,
                       "float reduction over an unordered iterable: "
                       "accumulation order can change the last bit; reduce "
                       "over sorted(...) (or noqa an integer-only sum)")

    # -- iteration sites (REP004) -----------------------------------------
    def _check_iter(self, node: ast.AST) -> None:
        if id(node) in self._blessed:
            return
        if _is_unordered(node):
            self._emit("REP004", node,
                       "iteration over an unordered container: sort, or "
                       "annotate the loop order-insensitive with a reason")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- function definitions (REP005) ------------------------------------
    def _check_defaults(self, node: ast.AST) -> None:
        args = node.args  # type: ignore[attr-defined]
        for default in (*args.defaults, *args.kw_defaults):
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if isinstance(default, ast.Call) and \
                    isinstance(default.func, ast.Name) and \
                    default.func.id in {"list", "dict", "set", "bytearray"}:
                mutable = True
            if mutable:
                self._emit("REP005", default,
                           "mutable default argument is shared across "
                           "calls; default to None and construct inside")
        self.generic_visit(node)

    visit_FunctionDef = _check_defaults
    visit_AsyncFunctionDef = _check_defaults


# -- REP007: registry atomicity across yields --------------------------------

_REG_READ_METHODS = frozenset({"get", "keys", "values", "items", "copy"})
_REG_WRITE_METHODS = frozenset({
    "pop", "popitem", "clear", "update", "add", "discard", "remove",
})
# setdefault reads and writes in one engine step: atomic by construction.
_REG_RW_METHODS = frozenset({"setdefault"})

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SKIP_NODES = (*_FUNC_NODES, ast.Lambda)


def _is_tracked_call(node: ast.AST) -> bool:
    """Is *node* a call of ``tracked(...)`` (any dotted spelling)?"""
    if not isinstance(node, ast.Call):
        return False
    dotted = _dotted(node.func)
    return dotted is not None and dotted.split(".")[-1] == "tracked"


@dataclass
class _RegState:
    """Read-basis tracking for one registry inside one generator."""

    armed: bool = False       # a read's value may still be live
    stale: bool = False       # ... and a yield has happened since it
    read_line: int = 0

    def copy(self) -> "_RegState":
        return _RegState(self.armed, self.stale, self.read_line)


class _AtomicityPass:
    """REP007: find read -> yield -> write chains on tracked registries.

    Purely syntactic and module-local.  Registries are variables or
    attributes assigned from ``tracked(...)`` — directly, or via a
    same-module helper function whose body calls ``tracked`` (the
    ``_host_registry(home)`` idiom).  Within each *generator* function
    the pass walks statements in order: a registry read arms a basis, a
    yield marks every armed basis stale, and a write on a stale basis is
    a finding (the written value may derive from a read that another
    process has since invalidated).  A re-read re-arms fresh, and a
    write always retires the basis — so single-statement
    read-modify-writes (``r[k] -= 1``, ``setdefault``) never flag.
    """

    def __init__(self, emit) -> None:
        self._emit = emit
        self._reported: Set = set()

    # -- module pre-scan ---------------------------------------------------
    def run(self, tree: ast.Module) -> None:
        factories: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, _FUNC_NODES) and any(
                    _is_tracked_call(n) for n in ast.walk(node)):
                factories.add(node.name)

        def makes_registry(value: ast.AST) -> bool:
            if _is_tracked_call(value):
                return True
            if isinstance(value, ast.Call):
                dotted = _dotted(value.func)
                return dotted is not None \
                    and dotted.split(".")[-1] in factories
            return False

        attr_regs: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and makes_registry(node.value):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Attribute):
                        attr_regs.add(tgt.attr)
            elif isinstance(node, ast.AnnAssign) and node.value is not None \
                    and makes_registry(node.value):
                if isinstance(node.target, ast.Attribute):
                    attr_regs.add(node.target.attr)

        for node in ast.walk(tree):
            if isinstance(node, _FUNC_NODES) and self._is_generator(node):
                self._walk_function(node, makes_registry, attr_regs)

    @staticmethod
    def _is_generator(fn: ast.AST) -> bool:
        stack = list(fn.body)  # type: ignore[attr-defined]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, _SKIP_NODES):
                continue
            stack.extend(ast.iter_child_nodes(node))
        return False

    # -- per-function walk -------------------------------------------------
    def _walk_function(self, fn, makes_registry, attr_regs: Set[str]) -> None:
        local_regs: Set[str] = set()
        state: Dict[str, _RegState] = {}

        def rid_of(node: ast.AST) -> Optional[str]:
            if isinstance(node, ast.Name) and node.id in local_regs:
                return f"{node.id}"
            if isinstance(node, ast.Attribute) and node.attr in attr_regs:
                return f".{node.attr}"
            return None

        def scan(expr: ast.AST, reads: List, writes: List,
                 yields: List) -> None:
            """Registry touches and yields in one statement's expressions."""
            # Inner Name/Attribute nodes already classified as part of an
            # enclosing access (the `reg` of `del reg[k]`) must not also
            # count as bare reads — a write statement would otherwise
            # re-arm its own basis fresh and mask the staleness.
            # ast.walk is breadth-first, so parents precede children.
            consumed: Set[int] = set()
            for node in ast.walk(expr):
                if isinstance(node, _SKIP_NODES):
                    # ast.walk has no skip; nested defs inside simulated
                    # generators don't occur in this tree.
                    continue
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    yields.append(node)
                elif isinstance(node, ast.Subscript):
                    rid = rid_of(node.value)
                    if rid is None:
                        continue
                    consumed.add(id(node.value))
                    if isinstance(node.ctx, ast.Load):
                        reads.append((rid, node))
                    else:             # Store or Del
                        writes.append((rid, node))
                elif isinstance(node, ast.Compare):
                    for op, cmp in zip(node.ops, node.comparators):
                        if isinstance(op, (ast.In, ast.NotIn)):
                            rid = rid_of(cmp)
                            if rid is not None:
                                consumed.add(id(cmp))
                                reads.append((rid, node))
                elif isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute):
                    rid = rid_of(node.func.value)
                    if rid is None:
                        continue
                    m = node.func.attr
                    if m in _REG_READ_METHODS or m in _REG_RW_METHODS:
                        consumed.add(id(node.func.value))
                        reads.append((rid, node))
                    if m in _REG_WRITE_METHODS or m in _REG_RW_METHODS:
                        consumed.add(id(node.func.value))
                        writes.append((rid, node))
                elif isinstance(node, (ast.Name, ast.Attribute)):
                    rid = rid_of(node)
                    if rid is not None and id(node) not in consumed \
                            and isinstance(
                                getattr(node, "ctx", None), ast.Load):
                        # Bare registry use: iteration, len(), snapshot
                        # helpers — a read, conservatively.
                        reads.append((rid, node))

        def stmt_events(stmt: ast.stmt) -> None:
            reads: List = []
            writes: List = []
            yields: List = []
            if isinstance(stmt, ast.AugAssign):
                rid = rid_of(stmt.target.value) \
                    if isinstance(stmt.target, ast.Subscript) else None
                if rid is not None:
                    reads.append((rid, stmt))
                    writes.append((rid, stmt))
                scan(stmt.value, reads, writes, yields)
            else:
                scan(stmt, reads, writes, yields)
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if value is not None and makes_registry(value):
                    targets = stmt.targets if isinstance(stmt, ast.Assign) \
                        else [stmt.target]
                    for tgt in targets:
                        if isinstance(tgt, ast.Name):
                            local_regs.add(tgt.id)
            for rid, node in reads:
                state[rid] = _RegState(True, False, node.lineno)
            if yields:
                for _rid, st in sorted(state.items()):
                    if st.armed:
                        st.stale = True
            for rid, node in writes:
                st = state.get(rid)
                if st is not None and st.armed and st.stale:
                    key = (node.lineno, node.col_offset, rid)
                    if key not in self._reported:
                        self._reported.add(key)
                        name = rid.lstrip(".")
                        self._emit("REP007", node,
                                   f"write to tracked registry {name!r} "
                                   f"uses a value read at line "
                                   f"{st.read_line}, before a yield: the "
                                   f"registry may have changed while "
                                   f"suspended — re-read after resuming")
                state[rid] = _RegState()

        def merge(a: Dict[str, _RegState],
                  b: Dict[str, _RegState]) -> Dict[str, _RegState]:
            out: Dict[str, _RegState] = {}
            for rid in sorted(set(a) | set(b)):
                sa = a.get(rid, _RegState())
                sb = b.get(rid, _RegState())
                out[rid] = _RegState(
                    sa.armed or sb.armed,
                    (sa.armed and sa.stale) or (sb.armed and sb.stale),
                    max(sa.read_line, sb.read_line))
            return out

        def block(stmts: Sequence[ast.stmt]) -> None:
            nonlocal state
            for stmt in stmts:
                if isinstance(stmt, _SKIP_NODES):
                    continue
                if isinstance(stmt, ast.If):
                    stmt_events(ast.Expr(stmt.test))
                    before = {k: v.copy() for k, v in sorted(state.items())}
                    block(stmt.body)
                    then_state = state
                    state = before
                    block(stmt.orelse)
                    state = merge(then_state, state)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    stmt_events(ast.Expr(stmt.iter))
                    block(stmt.body)   # twice: catch reads cached across
                    block(stmt.body)   # one iteration's yields
                    block(stmt.orelse)
                elif isinstance(stmt, ast.While):
                    stmt_events(ast.Expr(stmt.test))
                    block(stmt.body)
                    block(stmt.body)
                    block(stmt.orelse)
                elif isinstance(stmt, ast.Try):
                    block(stmt.body)
                    body_state = {k: v.copy()
                                  for k, v in sorted(state.items())}
                    for handler in stmt.handlers:
                        block(handler.body)
                        state = merge(body_state, state)
                    block(stmt.orelse)
                    block(stmt.finalbody)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        stmt_events(ast.Expr(item.context_expr))
                    block(stmt.body)
                else:
                    stmt_events(stmt)

        block(fn.body)


# -- entry points ------------------------------------------------------------

def iter_suppressions(source: str, path: str = "<string>",
                      ) -> List[Suppression]:
    """Every ``noqa`` comment in *source*, with its justification.

    The justification is the text after ``--`` on the comment (the
    convention the bracketed form has always encouraged), else whatever
    prose trails the codes.
    """
    out: List[Suppression] = []
    for lineno, comment in _comments(source):
        m = _NOQA_RE.search(comment)
        if not m:
            continue
        codes = m.group("bracket") or m.group("colon")
        rules = None if codes is None else frozenset(
            r.strip().upper() for r in codes.split(",") if r.strip())
        trailing = comment[m.end():]
        if "--" in trailing:
            just = trailing.split("--", 1)[1]
        else:
            just = trailing.lstrip(":#")
        out.append(Suppression(path=path, line=lineno, rules=rules,
                               justification=" ".join(just.split())))
    return out


def _comments(source: str) -> List[Tuple[int, str]]:
    """(line, text) of every real comment token in *source*.

    Tokenizing (rather than regex-scanning lines) keeps ``noqa``
    mentions inside docstrings and string literals — this module's own
    documentation, say — from being honored as suppressions.
    """
    import io
    import tokenize

    comments: List[Tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # keep what tokenized; broken files get REP000 anyway
    return comments


def _noqa_map(source: str) -> Dict[int, Optional[Set[str]]]:
    """line -> suppressed rule IDs (None means: every rule)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for s in iter_suppressions(source):
        if s.rules is None:
            out[s.line] = None
        elif out.get(s.line, set()) is not None:
            out.setdefault(s.line, set()).update(s.rules)
    return out


def filter_findings(findings: Iterable[Finding],
                    source: str) -> List[Finding]:
    """Drop findings suppressed by a ``noqa`` on their own line."""
    noqa = _noqa_map(source)
    out: List[Finding] = []
    for f in findings:
        suppressed = noqa.get(f.line, ...)
        if suppressed is None:
            continue
        if suppressed is not ... and f.rule in suppressed:
            continue
        out.append(f)
    return out


def collect_suppressions(paths: Sequence[str],
                         config: Optional[AnalysisConfig] = None,
                         ) -> List[Suppression]:
    """Audit: every noqa under *paths* (files or directories)."""
    cfg = config if config is not None else load_config()
    files: List[Path] = []
    for p in paths:
        root = Path(p)
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        elif root.suffix == ".py":
            files.append(root)
    out: List[Suppression] = []
    for f in files:
        name = str(f)
        if cfg.is_excluded(name):
            continue
        out.extend(iter_suppressions(f.read_text(encoding="utf-8"),
                                     path=name))
    return out


def lint_source(source: str, path: str = "<string>",
                enabled: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one source string; returns findings after noqa filtering."""
    rules = set(enabled) if enabled is not None else set(RULES)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(rule="REP000", path=path,
                        line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                        message=f"syntax error: {exc.msg}")]
    visitor = _Visitor(rules)
    visitor.visit(tree)
    if "REP007" in rules:
        _AtomicityPass(visitor._emit).run(tree)
    placed = [Finding(rule=f.rule, path=path, line=f.line, col=f.col,
                      message=f.message) for f in visitor.findings]
    out = filter_findings(placed, source)
    out.sort(key=lambda f: (f.line, f.col, f.rule))
    return out


def lint_file(path: Path, config: AnalysisConfig) -> List[Finding]:
    """Lint one file under *config* (exclusions and per-file disables)."""
    name = str(path)
    if config.is_excluded(name):
        return []
    enabled = set(RULES) - set(config.ignored_rules(name))
    if not enabled:
        return []
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=name, enabled=enabled)


def lint_paths(paths: Sequence[str],
               config: Optional[AnalysisConfig] = None) -> List[Finding]:
    """Lint every ``*.py`` file under *paths*; findings in path order."""
    cfg = config if config is not None else load_config()
    files: List[Path] = []
    for p in paths:
        root = Path(p)
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        elif root.suffix == ".py":
            files.append(root)
    findings: List[Finding] = []
    for f in files:
        findings.extend(lint_file(f, cfg))
    return findings
