"""Interprocedural collective-matching analysis (REP101..REP104).

The paper's read-path mechanisms (Index Flatten's gather-at-close /
broadcast-at-open, Parallel Index Read's two-level leader collectives)
assume SPMD congruence: *every rank of a communicator issues the same
collective sequence with the same roots*.  One rank-divergent
``bcast``/``gather`` leaves the others parked on the interconnect — or
worse in this simulator, where sends complete eagerly, a skipped
collective silently desynchronizes the per-communicator tag counter and
later collectives cross-match each other's messages.  This pass proves
congruence statically, over every user of :class:`repro.mpi.comm.Comm`:

1. each function is lowered to a CFG (:mod:`repro.analysis.cfg`) and
   its bounded paths abstracted to sequences of collective events;
2. branch conditions, roots, loop iterables, and p2p peers are
   classified by a taint lattice seeded from ``comm.rank``/``self.rank``
   and leader-predicate idioms (results of ``bcast``/``allgather``/
   ``allreduce`` are *uniform* and launder taint; ``gather``/``reduce``/
   ``scatter`` results stay rank-dependent);
3. functions are summarized bottom-up over the call graph
   (:mod:`repro.analysis.callgraph`), so collectives inside helpers are
   matched interprocedurally at every call site.

Rules::

    REP101  collective under a rank-dependent branch whose other arm's
            collective sequence is not congruent (divergence/hang)
    REP102  rank-dependent root= argument of a collective
    REP103  unmatched or cyclically-waiting send/recv pairing
    REP104  collective inside a loop with a rank-dependent trip count

Sub-communicators from ``comm.split(color)`` with a rank-dependent
color are *partitioned*: collectives on them are congruent per color
group by construction, so a rank-dependent branch in which only one arm
uses the partitioned comm (the two-level leader idiom) is tolerated;
both arms using it differently is still flagged.

Every static finding can be confirmed or dismissed at runtime with the
collective-trace validator (``--validate-collectives``,
:mod:`repro.mpi.trace`), which records per-rank per-communicator
sequences and asserts congruence at drain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path as _Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, FuncInfo, build_callgraph
from .cfg import build_cfg, iter_paths
from .config import AnalysisConfig, load_config
from .linter import Finding, filter_findings

__all__ = ["COLLECTIVE_OPS", "analyze_paths", "analyze_modules"]

COLLECTIVE_OPS = frozenset({
    "gather", "bcast", "barrier", "allgather", "reduce", "allreduce",
    "scatter", "alltoall", "split",
})
_P2P_OPS = frozenset({"send", "recv", "isend", "irecv"})
# Collective results that are identical on every rank: assignment from
# them LAUNDERS taint.  gather/reduce/scatter results are rank-dependent
# (root-only or per-rank) and are NOT here.
_UNIFORM_RESULTS = frozenset({"bcast", "allgather", "allreduce", "alltoall"})

_REP1XX = frozenset({"REP101", "REP102", "REP103", "REP104"})

_MAX_PATHS = 64          # CFG paths per function
_MAX_VARIANTS = 24       # exported sequence variants per summary

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


# -- events ------------------------------------------------------------------

@dataclass(frozen=True)
class Event:
    """One abstract communication operation on a path."""

    kind: str          # "coll" | "p2p"
    comm: str          # abstract communicator identity
    op: str            # gather/bcast/... or send/recv/isend/irecv
    root: str          # abstract root (coll) or peer (p2p):
    #                    "c:<k>" constant, "u" uniform, "t" tainted,
    #                    "p:<param>" caller-decided, "s:<+d>" rank shift
    tag: str           # p2p tag class; "" for collectives
    line: int
    partitioned: bool  # comm is a rank-dependent split
    blocking: bool = True


# A decision key: (line, label, tainted).  Callee-variant choices are
# recorded as untainted synthetic decisions so caller-level congruence
# comparison never re-reports a divergence the callee already owns.
DecisionKey = Tuple[int, str, bool]


@dataclass
class Variant:
    """One distinct abstract behavior of a function."""

    events: Tuple[Event, ...]
    decisions: FrozenSet[DecisionKey]


@dataclass
class Summary:
    """Bottom-up function summary used at call sites."""

    key: str
    variants: List[Variant] = field(default_factory=list)
    overflow: bool = False
    # Params whose value flows into a collective root: (param, op, line).
    root_params: List[Tuple[str, str, int]] = field(default_factory=list)

    @property
    def has_events(self) -> bool:
        return any(v.events for v in self.variants)


# -- small AST helpers -------------------------------------------------------

def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _calls_in_order(node: ast.AST) -> List[ast.Call]:
    """Call nodes in source order, skipping nested function definitions."""
    out: List[ast.Call] = []
    stack = [node]
    while stack:
        n = stack.pop()
        if isinstance(n, _FUNC_NODES):
            continue
        if isinstance(n, ast.Call):
            out.append(n)
        stack.extend(ast.iter_child_nodes(n))
    out.sort(key=lambda c: (c.lineno, c.col_offset))
    return out


# -- taint -------------------------------------------------------------------

class _Taint:
    """Flow-insensitive rank-taint for one function.

    Seeds: any ``<x>.rank`` attribute, names bound ``rank``/``vrank``,
    and parameters named ``rank``.  Propagates through assignments,
    tuple unpacking, loop targets, and calls (an unresolved call with a
    tainted argument is tainted); launders through uniform collectives
    (``bcast``/``allgather``/``allreduce``/``alltoall`` results are the
    same on every rank).
    """

    def __init__(self, fn: ast.AST):
        self.tainted: Set[str] = set()
        for p in getattr(fn, "args", None).args if hasattr(fn, "args") else []:
            if p.arg in ("rank", "vrank"):
                self.tainted.add(p.arg)
        self._fixpoint(fn)

    def _fixpoint(self, fn: ast.AST) -> None:
        assigns = []
        for node in ast.walk(fn):
            if isinstance(node, _FUNC_NODES) and node is not fn:
                continue
            if isinstance(node, ast.Assign):
                assigns.append((node.targets, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                assigns.append(([node.target], node.value))
            elif isinstance(node, ast.AugAssign):
                assigns.append(([node.target], node.value))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                assigns.append(([node.target], node.iter))
            elif isinstance(node, ast.NamedExpr):
                assigns.append(([node.target], node.value))
            elif isinstance(node, ast.withitem) and \
                    node.optional_vars is not None:
                assigns.append(([node.optional_vars], node.context_expr))
        for _ in range(len(assigns) + 1):
            changed = False
            for targets, value in assigns:
                changed |= self._bind(targets, value)
            if not changed:
                return

    def _bind(self, targets: Sequence[ast.AST], value: ast.expr) -> bool:
        changed = False
        for tgt in targets:
            if isinstance(tgt, ast.Tuple) and isinstance(value, ast.Tuple) \
                    and len(tgt.elts) == len(value.elts):
                for t, v in zip(tgt.elts, value.elts):
                    changed |= self._bind([t], v)
                continue
            names = [n.id for n in ast.walk(tgt)
                     if isinstance(n, ast.Name)]
            if self.is_tainted(value):
                for name in names:
                    if name not in self.tainted:
                        self.tainted.add(name)
                        changed = True
        return changed

    def is_tainted(self, expr: Optional[ast.expr]) -> bool:
        if expr is None:
            return False
        if self._laundered(expr):
            # The whole expression is a uniform-collective result: the
            # same value lands on every rank no matter how rank-
            # dependent the arguments were.
            return False
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and node.attr == "rank":
                return True
            if isinstance(node, ast.Name) and node.id in self.tainted:
                return True
        return False

    @staticmethod
    def _laundered(expr: ast.expr) -> bool:
        """Is the *whole* expression a uniform-collective result?

        ``yield from comm.bcast(tainted)`` is uniform regardless of its
        arguments; anything less than the full expression being such a
        call keeps the taint.
        """
        probe = expr
        while isinstance(probe, (ast.Await, ast.YieldFrom)):
            probe = probe.value
        if isinstance(probe, ast.Call) and \
                isinstance(probe.func, ast.Attribute) and \
                probe.func.attr in _UNIFORM_RESULTS:
            return True
        return False


# -- abstractions ------------------------------------------------------------

def _root_class(expr: Optional[ast.expr], taint: _Taint,
                params: Sequence[str]) -> str:
    if expr is None:
        return "c:0"
    if isinstance(expr, ast.Constant):
        return f"c:{expr.value!r}"
    if isinstance(expr, ast.Name) and expr.id in params \
            and expr.id not in taint.tainted:
        return f"p:{expr.id}"
    if taint.is_tainted(expr):
        return "t"
    return "u"


def _peer_class(expr: Optional[ast.expr], taint: _Taint) -> str:
    """Abstract p2p peer: constant, rank±d shift, tainted, or unknown."""
    if expr is None:
        return "?"
    probe = expr
    # (self.rank ± d) % size — the ring idiom.
    if isinstance(probe, ast.BinOp) and isinstance(probe.op, ast.Mod):
        probe = probe.left
    if isinstance(probe, ast.BinOp) and \
            isinstance(probe.op, (ast.Add, ast.Sub)):
        left, right = probe.left, probe.right
        is_rank = (isinstance(left, ast.Attribute) and left.attr == "rank") \
            or (isinstance(left, ast.Name) and left.id == "rank")
        if is_rank and isinstance(right, ast.Constant) \
                and isinstance(right.value, int):
            d = right.value if isinstance(probe.op, ast.Add) else -right.value
            return f"s:{d:+d}"
    if isinstance(probe, ast.Constant):
        return f"c:{probe.value!r}"
    if taint.is_tainted(expr):
        return "t"
    return "u"


def _tag_class(expr: Optional[ast.expr], tag_env: Dict[str, str]) -> str:
    """Abstract tag: first constant of a tuple, a constant, or wildcard."""
    if expr is None:
        return "c:0"
    if isinstance(expr, ast.Name) and expr.id in tag_env:
        return tag_env[expr.id]
    if isinstance(expr, ast.Constant):
        return f"c:{expr.value!r}"
    if isinstance(expr, ast.Tuple) and expr.elts and \
            isinstance(expr.elts[0], ast.Constant):
        return f"c:{expr.elts[0].value!r}"
    return "?"


def _arg(call: ast.Call, pos: int, kw: str) -> Optional[ast.expr]:
    for k in call.keywords:
        if k.arg == kw:
            return k.value
    if len(call.args) > pos:
        return call.args[pos]
    return None


# Positional index of the root/peer/tag argument per operation.
_ROOT_POS = {"gather": 2, "bcast": 2, "reduce": 3, "scatter": 2}
_PEER_POS = {"send": 0, "recv": 0, "isend": 0, "irecv": 0}
_TAG_POS = {"send": 3, "recv": 1, "isend": 3, "irecv": 1}


# -- per-function analysis ---------------------------------------------------

class _FunctionPass:
    """Summarize one function and collect its local findings."""

    def __init__(self, info: FuncInfo, graph: CallGraph,
                 summaries: Dict[str, Summary],
                 emit) -> None:
        self.info = info
        self.graph = graph
        self.summaries = summaries
        self.emit = emit                      # emit(rule, line, col, msg)
        self.taint = _Taint(info.node)
        self.comm_vars: Set[str] = set()      # names known to be comms
        self.partitioned: Set[str] = set()    # rank-dependent splits
        self.tag_env: Dict[str, str] = {}     # local tag name -> class
        self.root_params: List[Tuple[str, str, int]] = []
        self._rep104_lines: Set[int] = set()
        self._rep102_lines: Set[int] = set()
        self._prescan()

    # -- pre-scan: comm variables, partitioned splits, tag bindings ---------
    def _prescan(self) -> None:
        node = self.info.node
        for p in self.info.params:
            if p == "comm" or p.endswith("_comm"):
                self.comm_vars.add(p)
        for n in ast.walk(node):
            if isinstance(n, _FUNC_NODES) and n is not node:
                continue
            if isinstance(n, ast.Assign) and len(n.targets) == 1:
                tgt, val = n.targets[0], n.value
                names = None
                if isinstance(tgt, ast.Name):
                    names = tgt.id
                probe = val
                while isinstance(probe, (ast.Await, ast.YieldFrom)):
                    probe = probe.value
                if names and isinstance(probe, ast.Call) and \
                        isinstance(probe.func, ast.Attribute):
                    attr = probe.func.attr
                    if attr == "split":
                        self.comm_vars.add(names)
                        color = _arg(probe, 0, "color")
                        if self.taint.is_tainted(color):
                            self.partitioned.add(names)
                    elif attr == "view":
                        self.comm_vars.add(names)
                if names and not isinstance(probe, ast.Call):
                    cls = _tag_class(probe, {})
                    if names == "tag" or cls.startswith("c:"):
                        if isinstance(probe, (ast.Tuple, ast.Constant)):
                            self.tag_env[names] = _tag_class(probe, {})
                # `tag = ("_cb_w", comm._next_tag()[1])`: tuple with a
                # call inside — classify by the first constant element.
                if names and isinstance(probe, ast.Tuple) and probe.elts \
                        and isinstance(probe.elts[0], ast.Constant):
                    self.tag_env[names] = f"c:{probe.elts[0].value!r}"

    def _is_comm(self, dotted: str) -> bool:
        head = dotted.split(".")[0]
        last = dotted.split(".")[-1]
        return dotted in self.comm_vars or head in self.comm_vars \
            or last == "comm" or last.endswith("_comm")

    def _comm_id(self, dotted: str) -> str:
        return dotted

    # -- main entry ---------------------------------------------------------
    def run(self) -> Summary:
        cfg = build_cfg(self.info.node)
        paths, overflow = iter_paths(cfg, max_paths=_MAX_PATHS)
        summary = Summary(key=self.info.key)
        variants: List[Variant] = []
        for path in paths:
            expanded = self._expand_path(path)
            if expanded is None:
                overflow = True
                continue
            variants.extend(expanded)
            if len(variants) > _MAX_PATHS * 2:
                overflow = True
                break
        summary.overflow = overflow or self.info.in_cycle
        summary.root_params = self.root_params
        # Dedupe variants by (events, decisions) for compactness.
        seen: Set[Tuple] = set()
        for v in variants:
            sig = (v.events, v.decisions)
            if sig not in seen:
                seen.add(sig)
                summary.variants.append(v)
        if len(summary.variants) > _MAX_VARIANTS:
            summary.overflow = True
            del summary.variants[_MAX_VARIANTS:]

        if not summary.overflow:
            self._check_congruence(summary.variants)
        self._check_cycles(summary.variants)
        return summary

    # -- path expansion (event emission + callee inlining) ------------------
    def _expand_path(self, path) -> Optional[List[Variant]]:
        # Loop-entry decisions ("lt"/"lf") are recorded untainted even
        # when the trip count is rank-dependent: REP104 owns trip-count
        # divergence, and letting it double as REP101 evidence would
        # report every collective-in-tainted-loop twice.
        decisions: FrozenSet[DecisionKey] = frozenset(
            (line, label,
             not label.startswith("l") and self.taint.is_tainted(test))
            for line, label, test in path.decisions)
        partials: List[List[Event]] = [[]]
        extra_decisions: List[Set[DecisionKey]] = [set()]
        for stmt, loops in path.steps:
            loop_tainted = any(self.taint.is_tainted(expr)
                               for expr, _line in loops)
            for call in _calls_in_order(stmt):
                ev = self._event_of(call)
                if ev is not None:
                    if loop_tainted and ev.kind == "coll":
                        self._rep104(ev.line, ev.op)
                    if ev.kind == "coll" and ev.root == "t":
                        self._rep102(ev.line, ev.op)
                    for p in partials:
                        p.append(ev)
                    continue
                callee = self.graph.resolve(call, self.info)
                if callee is None:
                    continue
                callee_summary = self.summaries.get(callee.key)
                if callee_summary is None or not callee_summary.has_events:
                    if callee_summary is not None:
                        self._check_root_args(call, callee,
                                              callee_summary)
                    continue
                if callee_summary.overflow:
                    # Opaque callee with collectives: treat as one
                    # unknown collective on an unknown comm so REP104
                    # still sees it, but congruence stays comparable.
                    ev = Event(kind="coll", comm="?", op="?", root="u",
                               tag="", line=stmt.lineno,
                               partitioned=False)
                    if loop_tainted:
                        self._rep104(stmt.lineno, "?")
                    for p in partials:
                        p.append(ev)
                    continue
                self._check_root_args(call, callee, callee_summary)
                if loop_tainted and any(
                        e.kind == "coll"
                        for v in callee_summary.variants for e in v.events):
                    self._rep104(stmt.lineno, callee.name)
                partials, extra_decisions = self._splice(
                    partials, extra_decisions, call, callee,
                    callee_summary, stmt.lineno)
                if partials is None:
                    return None
        return [Variant(events=tuple(p),
                        decisions=decisions | frozenset(extra))
                for p, extra in zip(partials, extra_decisions)]

    def _splice(self, partials, extra_decisions, call: ast.Call,
                callee: FuncInfo, summary: Summary, line: int):
        """Cross partial sequences with the callee's variants."""
        mapping = self._comm_mapping(call, callee)
        inlined: List[Tuple[Tuple[Event, ...], DecisionKey]] = []
        for vi, variant in enumerate(summary.variants):
            events = tuple(self._rebind(e, mapping, callee, line)
                           for e in variant.events)
            events = tuple(e for e in events if e is not None)
            inlined.append((events, (line, f"call[{callee.name}]#{vi}",
                                     False)))
        # Dedupe callee variants that rebind to identical sequences
        # (e.g. every arm collective-free after a None-comm drop).
        uniq: Dict[Tuple[Event, ...], DecisionKey] = {}
        for events, dk in inlined:
            uniq.setdefault(events, dk)
        new_partials: List[List[Event]] = []
        new_extra: List[Set[DecisionKey]] = []
        for p, extra in zip(partials, extra_decisions):
            for events, dk in uniq.items():  # repro: noqa[REP004] -- insertion-ordered over the deterministic variant order
                new_partials.append(p + list(events))
                new_extra.append(extra | ({dk} if len(uniq) > 1 else set()))
                if len(new_partials) > _MAX_PATHS:
                    return None, None
        return new_partials, new_extra

    def _comm_mapping(self, call: ast.Call, callee: FuncInfo,
                      ) -> Dict[str, Optional[str]]:
        """Map callee formal comm names to caller comm ids (None drops)."""
        mapping: Dict[str, Optional[str]] = {}
        params = list(callee.params)
        for i, arg in enumerate(call.args):
            if i >= len(params):
                break
            self._map_one(mapping, params[i], arg)
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in params:
                self._map_one(mapping, kw.arg, kw.value)
        return mapping

    def _map_one(self, mapping: Dict[str, Optional[str]], formal: str,
                 actual: ast.expr) -> None:
        if isinstance(actual, ast.Constant) and actual.value is None:
            mapping[formal] = None
            return
        dotted = _dotted(actual)
        if dotted is not None:
            mapping[formal] = dotted

    def _rebind(self, event: Event, mapping: Dict[str, Optional[str]],
                callee: FuncInfo, call_line: int) -> Optional[Event]:
        comm = event.comm
        head = comm.split(".")[0]
        if head in mapping:
            actual = mapping[head]
            if actual is None:
                return None  # comm=None at this call site: no collective
            comm = actual + comm[len(head):]
        elif head in callee.params:
            comm = f"{callee.name}.{comm}"
        else:
            comm = f"{callee.name}::{comm}"
        # Findings about an inlined event must point at the *call site*
        # in the caller's file, not at the callee's line number.
        return Event(kind=event.kind, comm=comm, op=event.op,
                     root=event.root, tag=event.tag, line=call_line,
                     partitioned=event.partitioned,
                     blocking=event.blocking)

    def _check_root_args(self, call: ast.Call, callee: FuncInfo,
                         summary: Summary) -> None:
        """REP102 interprocedurally: tainted actual into a root param."""
        params = list(callee.params)
        for formal, op, line in summary.root_params:
            actual: Optional[ast.expr] = None
            for kw in call.keywords:
                if kw.arg == formal:
                    actual = kw.value
            if actual is None and formal in params:
                i = params.index(formal)
                if i < len(call.args):
                    actual = call.args[i]
            if actual is None:
                continue
            if self.taint.is_tainted(actual):
                self._rep102(call.lineno, op)
            elif isinstance(actual, ast.Name) \
                    and actual.id in self.info.params:
                self.root_params.append((actual.id, op, call.lineno))

    # -- event emission ------------------------------------------------------
    def _event_of(self, call: ast.Call) -> Optional[Event]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        op = func.attr
        if op not in COLLECTIVE_OPS and op not in _P2P_OPS:
            return None
        dotted = _dotted(func.value)
        if dotted is None or not self._is_comm(dotted):
            return None
        comm = self._comm_id(dotted)
        if op in COLLECTIVE_OPS:
            root_expr = _arg(call, _ROOT_POS[op], "root") \
                if op in _ROOT_POS else None
            root = _root_class(root_expr, self.taint, self.info.params) \
                if op in _ROOT_POS else "u"
            if root.startswith("p:"):
                self.root_params.append((root[2:], op, call.lineno))
            return Event(kind="coll", comm=comm, op=op, root=root, tag="",
                         line=call.lineno,
                         partitioned=dotted in self.partitioned)
        peer = _peer_class(_arg(call, _PEER_POS[op],
                                "dst" if "send" in op else "src"),
                           self.taint)
        tag = _tag_class(_arg(call, _TAG_POS[op], "tag"), self.tag_env)
        return Event(kind="p2p", comm=comm, op=op, root=peer, tag=tag,
                     line=call.lineno,
                     partitioned=dotted in self.partitioned,
                     blocking=op == "recv")

    # -- REP101: cross-path congruence ---------------------------------------
    def _check_congruence(self, variants: List[Variant]) -> None:
        reported: Set[int] = set()
        for i in range(len(variants)):
            for j in range(i + 1, len(variants)):
                a, b = variants[i], variants[j]
                bad = _incongruence(a, b)
                if bad is None:
                    continue
                # Two paths are taken by *different ranks of one run*
                # only if every decision line they both reach and
                # disagree on is rank-dependent: an untainted predicate
                # evaluates identically on every rank, so disagreeing
                # there means the paths belong to different runs (or
                # different callee variants), not different ranks.
                tainted_divergence = _rank_divergence(a, b)
                if tainted_divergence is None:
                    continue
                line, ev = bad
                if ev.line in reported:
                    continue
                reported.add(ev.line)
                branch_line = tainted_divergence
                self.emit(
                    "REP101", ev.line, 0,
                    f"collective {ev.op}() on {ev.comm!r} is reachable "
                    f"only on some ranks: the branch at line "
                    f"{branch_line} is rank-dependent and its other arm "
                    f"issues a non-congruent collective sequence — "
                    f"ranks diverge (hang or cross-matched tags); hoist "
                    f"the collective out of the branch or make both "
                    f"arms issue the same sequence")

    def _check_cycles(self, variants: List[Variant]) -> None:
        """REP103 cyclic waits: blocking recv from rank±d before the
        symmetric send that would satisfy it."""
        reported: Set[int] = set()
        for v in variants:
            events = [e for e in v.events if e.kind == "p2p"]
            for idx, ev in enumerate(events):
                if ev.op != "recv" or not ev.root.startswith("s:"):
                    continue
                shift = int(ev.root[2:])
                inverse = f"s:{-shift:+d}"
                matches = [
                    (k, s) for k, s in enumerate(events)
                    if "send" in s.op and s.root == inverse
                    and _tags_compatible(s.tag, ev.tag)]
                if matches and all(k > idx for k, _s in matches) \
                        and ev.line not in reported:
                    reported.add(ev.line)
                    self.emit(
                        "REP103", ev.line, 0,
                        f"blocking recv from rank{shift:+d} precedes the "
                        f"send to rank{-shift:+d} that satisfies it: "
                        f"every rank waits on its neighbor before "
                        f"sending — a cyclic wait; send first (or use "
                        f"isend) to break the ring")

    def collect_p2p(self) -> List[Event]:
        """Every p2p event in this function, by flat AST walk.

        The tree-wide REP103 send/recv registry must see *all* p2p
        sites, including those on paths dropped by enumeration overflow
        — matching needs no path context, so it reads the raw AST.
        """
        out: List[Event] = []
        stack = list(ast.iter_child_nodes(self.info.node))
        while stack:
            n = stack.pop()
            if isinstance(n, _FUNC_NODES):
                continue
            if isinstance(n, ast.Call):
                ev = self._event_of(n)
                if ev is not None and ev.kind == "p2p":
                    out.append(ev)
            stack.extend(ast.iter_child_nodes(n))
        out.sort(key=lambda e: e.line)
        return out

    # -- finding helpers -----------------------------------------------------
    def _rep104(self, line: int, what: str) -> None:
        if line in self._rep104_lines:
            return
        self._rep104_lines.add(line)
        self.emit(
            "REP104", line, 0,
            f"collective ({what}) inside a loop whose trip count is "
            f"rank-dependent: ranks iterating different counts issue "
            f"different collective sequences and desynchronize; hoist "
            f"the collective, or make the bound uniform (and annotate "
            f"with a runtime-validated trace)")

    def _rep102(self, line: int, op: str) -> None:
        if line in self._rep102_lines:
            return
        self._rep102_lines.add(line)
        self.emit(
            "REP102", line, 0,
            f"root argument of {op}() is rank-dependent: ranks would "
            f"address different roots in the same collective; roots "
            f"must be provably uniform across ranks (a constant, or a "
            f"value broadcast/allreduced beforehand)")


def _tags_compatible(a: str, b: str) -> bool:
    return a == "?" or b == "?" or a == b


def _rank_divergence(a: Variant, b: Variant) -> Optional[int]:
    """Line of a rank-dependent decision that can split ranks of one run
    across variants *a* and *b*, or None when the pair is not
    co-reachable (they disagree at some rank-uniform decision)."""
    by_line_a: Dict[int, Set[Tuple[str, bool]]] = {}
    by_line_b: Dict[int, Set[Tuple[str, bool]]] = {}
    for line, label, tainted in a.decisions:
        by_line_a.setdefault(line, set()).add((label, tainted))
    for line, label, tainted in b.decisions:
        by_line_b.setdefault(line, set()).add((label, tainted))
    evidence: Optional[int] = None
    for line in sorted(set(by_line_a) & set(by_line_b)):
        da, db = by_line_a[line], by_line_b[line]
        if da == db:
            continue
        if any(tainted for _lbl, tainted in da | db):
            if evidence is None:
                evidence = line
        else:
            return None  # uniform disagreement: not the same run
    return evidence


def _incongruence(a: Variant, b: Variant,
                  ) -> Optional[Tuple[int, Event]]:
    """First point where two variants' collective sequences diverge.

    Compared per communicator.  A partitioned comm used by only one of
    the two variants is the leader idiom (members of the other color
    never touch it) and is tolerated; everything else must match op-
    and root-wise, in order.
    """
    per_comm_a = _coll_by_comm(a)
    per_comm_b = _coll_by_comm(b)
    worst: Optional[Tuple[int, Event]] = None
    for comm in sorted(set(per_comm_a) | set(per_comm_b)):
        seq_a = per_comm_a.get(comm, [])
        seq_b = per_comm_b.get(comm, [])
        if (not seq_a or not seq_b) and (
                (seq_a and seq_a[0].partitioned)
                or (seq_b and seq_b[0].partitioned)):
            continue  # leader idiom on a rank-partitioned split
        n = min(len(seq_a), len(seq_b))
        sites_a = {(e.op, e.line) for e in seq_a}
        sites_b = {(e.op, e.line) for e in seq_b}
        diverge: Optional[Event] = None
        for k in range(n):
            if (seq_a[k].op, seq_a[k].root) != (seq_b[k].op, seq_b[k].root):
                # Anchor the finding at the collective unique to one arm
                # (the one *inside* the rank-dependent region), falling
                # back to the later site when both are one-sided.
                only_a = (seq_a[k].op, seq_a[k].line) not in sites_b
                only_b = (seq_b[k].op, seq_b[k].line) not in sites_a
                if only_a and not only_b:
                    diverge = seq_a[k]
                elif only_b and not only_a:
                    diverge = seq_b[k]
                else:
                    diverge = seq_a[k] if seq_a[k].line >= seq_b[k].line \
                        else seq_b[k]
                break
        if diverge is None and len(seq_a) != len(seq_b):
            longer = seq_a if len(seq_a) > len(seq_b) else seq_b
            diverge = longer[n]
        if diverge is not None:
            cand = (diverge.line, diverge)
            if worst is None or cand[0] < worst[0]:
                worst = cand
    return worst


def _coll_by_comm(v: Variant) -> Dict[str, List[Event]]:
    out: Dict[str, List[Event]] = {}
    for e in v.events:
        if e.kind == "coll":
            out.setdefault(e.comm, []).append(e)
    return out


# -- tree-wide REP103 matching ----------------------------------------------

def _match_p2p(all_events: List[Tuple[str, Event]], emit) -> None:
    """Unmatched pairing: a recv whose tag class no send ever uses (and
    vice versa) can never complete — flag it at its site."""
    send_tags: Set[str] = set()
    recv_tags: Set[str] = set()
    for _path, e in all_events:
        if "send" in e.op:
            send_tags.add(e.tag)
        else:
            recv_tags.add(e.tag)
    for path, e in all_events:
        if "recv" in e.op:
            if e.tag != "?" and not any(
                    _tags_compatible(e.tag, t) for t in send_tags):
                emit(path, "REP103", e.line, 0,
                     f"{e.op}() waits for tag class {e.tag} but no send "
                     f"anywhere in the analyzed tree uses that tag: the "
                     f"receive can never complete")
        elif e.tag != "?" and not any(
                _tags_compatible(e.tag, t) for t in recv_tags):
            emit(path, "REP103", e.line, 0,
                 f"{e.op}() posts tag class {e.tag} but no recv anywhere "
                 f"in the analyzed tree matches it: the message is never "
                 f"consumed (payload leak / tag-space pollution)")


# -- entry points ------------------------------------------------------------

def analyze_modules(modules: Dict[str, ast.Module],
                    config: Optional[AnalysisConfig] = None,
                    ) -> List[Finding]:
    """Run REP101..REP104 over parsed *modules* (path -> AST)."""
    cfg = config if config is not None else AnalysisConfig()
    graph = build_callgraph(modules)
    summaries: Dict[str, Summary] = {}
    raw: Dict[str, List[Finding]] = {p: [] for p in modules}
    p2p_events: List[Tuple[str, Event]] = []

    # Files whose REP1xx rules are all disabled (the Comm implementation
    # itself) are opaque: their internals are rank-divergent by design
    # and must be neither linted nor inlined into callers.
    def impl_file(path: str) -> bool:
        return _REP1XX <= set(cfg.ignored_rules(path))

    for info in graph.topo_order():
        if impl_file(info.path):
            summaries[info.key] = Summary(key=info.key)
            continue

        def emit(rule: str, line: int, col: int, msg: str,
                 _path: str = info.path) -> None:
            raw[_path].append(Finding(rule=rule, path=_path, line=line,
                                      col=col, message=msg))

        pass_ = _FunctionPass(info, graph, summaries, emit)
        summary = pass_.run()
        summaries[info.key] = summary
        seen_lines: Set[int] = set()
        for e in pass_.collect_p2p():
            if e.line not in seen_lines:
                seen_lines.add(e.line)
                p2p_events.append((info.path, e))

    def emit_p2p(path: str, rule: str, line: int, col: int,
                 msg: str) -> None:
        raw[path].append(Finding(rule=rule, path=path, line=line,
                                 col=col, message=msg))

    _match_p2p(p2p_events, emit_p2p)

    out: List[Finding] = []
    for path in sorted(raw):
        if not raw[path]:
            continue
        enabled = _REP1XX - set(cfg.ignored_rules(path))
        findings = [f for f in raw[path] if f.rule in enabled]
        source = _Path(path).read_text(encoding="utf-8") \
            if _Path(path).is_file() else ""
        out.extend(filter_findings(findings, source))
    out.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return out


def analyze_paths(paths: Sequence[str],
                  config: Optional[AnalysisConfig] = None,
                  ) -> List[Finding]:
    """Analyze every ``*.py`` under *paths* (files or directories)."""
    cfg = config if config is not None else load_config()
    files: List[_Path] = []
    for p in paths:
        root = _Path(p)
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        elif root.suffix == ".py":
            files.append(root)
    modules: Dict[str, ast.Module] = {}
    findings: List[Finding] = []
    for f in files:
        name = str(f)
        if cfg.is_excluded(name):
            continue
        try:
            modules[name] = ast.parse(f.read_text(encoding="utf-8"),
                                      filename=name)
        except SyntaxError as exc:
            findings.append(Finding(
                rule="REP000", path=name, line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}"))
    findings.extend(analyze_modules(modules, cfg))
    return findings
