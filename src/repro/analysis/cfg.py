"""Control-flow graphs for the collective-matching analyzer.

:func:`build_cfg` lowers one function body to a graph of basic blocks;
:func:`iter_paths` enumerates bounded acyclic paths through it.  The
collective analyzer (:mod:`repro.analysis.collectives`) abstracts each
path to its sequence of collective operations and compares the
sequences — rank congruence is a *path* property, so the CFG is the
natural substrate: branches become decision points whose taintedness
(rank-dependent or not) decides whether two diverging paths may be taken
by *different ranks* of the same job.

The lowering is structured (one pass over the AST, no goto recovery):

* ``if`` — the current block gets the test as its branch condition and
  two labeled successors (``t``/``f``) that re-join afterwards;
* ``while``/``for`` — a loop-header block holding the test (or the
  iterable, for ``for``) with an entry edge into the body and an exit
  edge past it; the body's tail jumps back to the header.  Headers are
  marked so path enumeration bounds the unrolling (a body runs 0 or 1
  times per path) and so statements carry their enclosing-loop stack,
  which is what REP104's rank-dependent-trip-count check reads;
* ``try`` — the protected body runs, then either falls through or
  transfers to one handler (an *untainted* decision: the analyzer treats
  exception edges as rank-uniform to avoid drowning real divergence in
  hypothetical ones); ``finally`` joins every outcome;
* ``return``/``raise``/``break``/``continue`` — edge to the function
  exit or the loop's after/header block; the fallthrough path dies.

Paths longer than ``max_paths`` are cut off and reported via the
``overflow`` flag — the analyzer then treats the function as opaque
rather than pretending partial enumeration proved congruence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = ["Block", "CFG", "LoopContext", "Path", "build_cfg", "iter_paths"]

# One enclosing loop: (header expression, header line).  For a `for`
# loop the expression is the iterable; for `while`, the test.
LoopContext = Tuple[ast.expr, int]


@dataclass
class Block:
    """One basic block: straight-line statements plus an optional branch."""

    bid: int
    stmts: List[ast.stmt] = field(default_factory=list)
    # Enclosing loop headers, outermost first (shared by every statement
    # in the block — blocks never straddle a loop boundary).
    loops: Tuple[LoopContext, ...] = ()
    # Branch condition evaluated after `stmts`; None for fallthrough
    # blocks and for decision blocks with no condition (try/except).
    test: Optional[ast.expr] = None
    test_line: int = 0
    is_loop_header: bool = False
    # (successor bid, label): "n" fallthrough, "t"/"f" branch arms,
    # "e<i>" exception edge into handler i.
    succs: List[Tuple[int, str]] = field(default_factory=list)


@dataclass
class CFG:
    """A function's control-flow graph."""

    blocks: List[Block]
    entry: int
    exit: int

    def block(self, bid: int) -> Block:
        return self.blocks[bid]


# One decision taken along a path: (line, label, test expression or
# None).  The analyzer classifies the decision's taint from the test.
Decision = Tuple[int, str, Optional[ast.expr]]


@dataclass
class Path:
    """One bounded acyclic walk entry->exit."""

    # (statement, enclosing loop stack) in execution order.
    steps: List[Tuple[ast.stmt, Tuple[LoopContext, ...]]]
    decisions: List[Decision]


_DEAD = -1  # pseudo block id: the current flow terminated (return/raise)


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[Block] = []

    def new(self, loops: Tuple[LoopContext, ...]) -> int:
        b = Block(bid=len(self.blocks), loops=loops)
        self.blocks.append(b)
        return b.bid

    def edge(self, src: int, dst: int, label: str = "n") -> None:
        if src != _DEAD:
            self.blocks[src].succs.append((dst, label))

    # -- statement lowering -------------------------------------------------
    def stmts(self, body: Sequence[ast.stmt], cur: int,
              loops: Tuple[LoopContext, ...],
              exit_bid: int, brk: Optional[int], cont: Optional[int]) -> int:
        """Lower *body* starting in block *cur*; returns the live tail
        block id, or _DEAD when every path through *body* terminated."""
        for stmt in body:
            if cur == _DEAD:
                return _DEAD  # unreachable code after return/raise
            if isinstance(stmt, ast.If):
                blk = self.blocks[cur]
                blk.test = stmt.test
                blk.test_line = stmt.lineno
                then_b = self.new(loops)
                else_b = self.new(loops)
                self.edge(cur, then_b, "t")
                self.edge(cur, else_b, "f")
                end_t = self.stmts(stmt.body, then_b, loops,
                                   exit_bid, brk, cont)
                end_f = self.stmts(stmt.orelse, else_b, loops,
                                   exit_bid, brk, cont)
                if end_t == _DEAD and end_f == _DEAD:
                    cur = _DEAD
                else:
                    join = self.new(loops)
                    self.edge(end_t, join)
                    self.edge(end_f, join)
                    cur = join
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                header = self.new(loops)
                hb = self.blocks[header]
                hb.is_loop_header = True
                if isinstance(stmt, ast.While):
                    hb.test = stmt.test
                else:
                    # The iterable is evaluated at the header; the
                    # element binding itself is not a branch.
                    hb.test = stmt.iter
                hb.test_line = stmt.lineno
                self.edge(cur, header)
                inner = loops + ((hb.test, stmt.lineno),)
                body_b = self.new(inner)
                after = self.new(loops)
                # Loop edges get their own labels ("lt"/"lf", not
                # "t"/"f") so the analyzer can tell trip-count decisions
                # (REP104's concern) from branch decisions (REP101's).
                self.edge(header, body_b, "lt")
                end_body = self.stmts(stmt.body, body_b, inner,
                                      exit_bid, after, header)
                self.edge(end_body, header)  # back edge
                if stmt.orelse:
                    else_b = self.new(loops)
                    self.edge(header, else_b, "lf")
                    end_e = self.stmts(stmt.orelse, else_b, loops,
                                       exit_bid, brk, cont)
                    self.edge(end_e, after)
                else:
                    self.edge(header, after, "lf")
                cur = after
            elif isinstance(stmt, ast.Try):
                body_b = self.new(loops)
                self.edge(cur, body_b)
                end_body = self.stmts(stmt.body, body_b, loops,
                                      exit_bid, brk, cont)
                if stmt.orelse:
                    end_body = self.stmts(stmt.orelse,
                                          self._chain(end_body, loops),
                                          loops, exit_bid, brk, cont)
                join = self.new(loops)
                self.edge(end_body, join)
                # Exception edges: from the entry of the protected body
                # to each handler (the exception may strike anywhere in
                # the body; entry-level edges over-approximate that
                # cheaply).  The decision carries no test: untainted.
                for i, handler in enumerate(stmt.handlers):
                    h_b = self.new(loops)
                    self.edge(body_b, h_b, f"e{i}")
                    end_h = self.stmts(handler.body, h_b, loops,
                                       exit_bid, brk, cont)
                    self.edge(end_h, join)
                cur = join
                if stmt.finalbody:
                    cur = self.stmts(stmt.finalbody, cur, loops,
                                     exit_bid, brk, cont)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self.blocks[cur].stmts.append(
                        _expr_stmt(item.context_expr))
                cur = self.stmts(stmt.body, cur, loops, exit_bid, brk, cont)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                self.blocks[cur].stmts.append(stmt)
                self.edge(cur, exit_bid)
                cur = _DEAD
            elif isinstance(stmt, ast.Break):
                if brk is not None:
                    self.edge(cur, brk)
                cur = _DEAD
            elif isinstance(stmt, ast.Continue):
                if cont is not None:
                    self.edge(cur, cont)
                cur = _DEAD
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                continue  # nested definitions are separate CFGs
            else:
                self.blocks[cur].stmts.append(stmt)
        return cur

    def _chain(self, cur: int, loops: Tuple[LoopContext, ...]) -> int:
        """A fresh block after *cur* (which may be dead)."""
        if cur == _DEAD:
            return _DEAD
        nxt = self.new(loops)
        self.edge(cur, nxt)
        return nxt


def _expr_stmt(expr: ast.expr) -> ast.stmt:
    stmt = ast.Expr(value=expr)
    stmt.lineno = getattr(expr, "lineno", 1)
    stmt.col_offset = getattr(expr, "col_offset", 0)
    return stmt


def build_cfg(fn: ast.AST) -> CFG:
    """Lower one function definition's body to a CFG."""
    builder = _Builder()
    entry = builder.new(())
    exit_bid = builder.new(())
    end = builder.stmts(fn.body, entry, (), exit_bid, None, None)  # type: ignore[attr-defined]
    builder.edge(end, exit_bid)
    return CFG(blocks=builder.blocks, entry=entry, exit=exit_bid)


def iter_paths(cfg: CFG, max_paths: int = 64,
               ) -> Tuple[List[Path], bool]:
    """Enumerate bounded paths entry->exit; returns (paths, overflow).

    Loop bodies are unrolled at most once per path (the loop-taken
    decision is recorded like a branch, so trip-count divergence still
    surfaces as a decision difference).  When more than *max_paths*
    paths exist, enumeration stops and ``overflow`` is True.
    """
    paths: List[Path] = []
    overflow = False

    # Iterative DFS; each frame: (bid, steps, decisions, header visits).
    stack: List[Tuple[int, List, List, dict]] = [
        (cfg.entry, [], [], {})]
    while stack:
        bid, steps, decisions, visits = stack.pop()
        while True:
            block = cfg.block(bid)
            steps = steps + [(s, block.loops) for s in block.stmts]
            if block.test is not None and not block.is_loop_header:
                pass  # the branch decision is recorded per successor below
            succs = block.succs
            if not succs:
                if len(paths) < max_paths:
                    paths.append(Path(steps=steps, decisions=decisions))
                else:
                    overflow = True
                break
            if block.is_loop_header:
                seen = visits.get(bid, 0)
                visits = dict(visits)
                visits[bid] = seen + 1
                if seen >= 1:
                    # Second arrival: the single unrolled iteration is
                    # done, only the exit edge remains.
                    succs = [(d, lbl) for d, lbl in succs if lbl != "lt"]
                    if not succs:  # infinite loop (while True: no break)
                        if len(paths) < max_paths:
                            paths.append(Path(steps=steps,
                                              decisions=decisions))
                        else:
                            overflow = True
                        break
            if len(succs) == 1:
                dst, lbl = succs[0]
                if lbl != "n":
                    decisions = decisions + [
                        (block.test_line, lbl, block.test)]
                bid = dst
                continue
            # Decision point: fork.  Push the alternatives, continue
            # with the first in-line.
            if len(stack) + len(paths) > max_paths:
                overflow = True
                break
            for dst, lbl in succs[1:]:
                stack.append((dst, steps,
                              decisions + [(block.test_line, lbl,
                                            block.test)],
                              visits))
            dst, lbl = succs[0]
            decisions = decisions + [(block.test_line, lbl, block.test)]
            bid = dst
    return paths, overflow


def iter_blocks(cfg: CFG) -> Iterator[Block]:
    """Blocks in allocation (roughly source) order."""
    return iter(cfg.blocks)
