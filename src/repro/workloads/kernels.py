"""The paper's application I/O kernels (§IV-D): Pixie3D, ARAMCO, MADbench,
LANL 1, LANL 3.

Each kernel reproduces the *access pattern* the paper describes; sizes
default to scaled-down values (the harness scales them up for paper-scale
runs).  All are N-1 (shared file) — that is the whole point of the study.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import ConfigError
from ..formats import HDF5Layout, NetCDFLayout
from ..units import KB, MB, MiB
from .base import Extent, Workload

__all__ = ["Pixie3D", "Aramco", "MADbench", "LANL1", "LANL3"]


class Pixie3D(Workload):
    """Pixie3D MHD checkpoint via pnetCDF [15]: large per-variable blocks.

    Weak scaling, 1 GB per process in the paper (§IV-D1); each rank owns
    one contiguous block per variable, written in ``io_size`` chunks.
    Rank 0 also writes the netCDF header.
    """

    name = "pixie3d"

    def __init__(self, nprocs: int, *, per_proc: int = 64 * MiB,
                 n_vars: int = 8, io_size: int = 8 * MiB):
        super().__init__(nprocs)
        if per_proc % n_vars:
            raise ConfigError("per_proc must divide evenly across variables")
        self.layout = NetCDFLayout(n_vars=n_vars, block_per_rank=per_proc // n_vars,
                                   nprocs=nprocs)
        self.io_size = io_size

    def write_rounds(self, rank: int) -> Iterator[List[Extent]]:
        """Per-variable blocks (rank 0 also writes the netCDF header)."""
        if rank == 0:
            yield [self.layout.header_extent()]
        for off, ln in self.layout.rank_extents(rank):
            pos = 0
            while pos < ln:
                n = min(self.io_size, ln - pos)
                yield [(off + pos, n)]
                pos += n


class Aramco(Workload):
    """The Saudi ARAMCO seismic kernel (§IV-D2): HDF5, strong scaling.

    The total dataset size is fixed; more processes each write (and read)
    less, so index-aggregation time eventually dominates reading — the
    crossover the paper highlights.  Rank 0 interleaves the HDF5 metadata
    dribbles.
    """

    name = "aramco"

    def __init__(self, nprocs: int, *, total_bytes: int = 2 * 1024 * MiB,
                 chunk: int = 1 * MiB):
        super().__init__(nprocs)
        chunks_total = total_bytes // chunk
        per_rank = max(1, chunks_total // nprocs)
        self.layout = HDF5Layout(chunk_bytes=chunk, chunks_per_rank=per_rank,
                                 nprocs=nprocs)

    def write_rounds(self, rank: int) -> Iterator[List[Extent]]:
        """Round-robin chunks; rank 0 interleaves HDF5 metadata dribbles."""
        if rank == 0:
            yield [self.layout.superblock_extent()]
            md = list(self.layout.metadata_extents())
        else:
            md = []
        md_i = 0
        for c, ext in enumerate(self.layout.rank_extents(rank)):
            yield [ext]
            if rank == 0 and c % self.layout.md_every_chunks == 0 and md_i < len(md):
                yield [md[md_i]]
                md_i += 1
        while rank == 0 and md_i < len(md):
            yield [md[md_i]]
            md_i += 1


class MADbench(Workload):
    """MADbench [17] (§IV-D4): out-of-core matrices, big segments per phase,
    then read back in its entirety (as the paper ran only the I/O phases)."""

    name = "madbench"

    def __init__(self, nprocs: int, *, matrix_bytes_per_rank: int = 16 * MiB,
                 n_components: int = 8, io_size: int = 4 * MiB):
        super().__init__(nprocs)
        self.segment = matrix_bytes_per_rank
        self.n_components = n_components
        self.io_size = io_size

    def write_rounds(self, rank: int) -> Iterator[List[Extent]]:
        """Per-component contiguous segments."""
        phase_bytes = self.segment * self.nprocs
        for comp in range(self.n_components):
            base = comp * phase_bytes + rank * self.segment
            pos = 0
            while pos < self.segment:
                n = min(self.io_size, self.segment - pos)
                yield [(base + pos, n)]
                pos += n


class LANL1(Workload):
    """LANL 1 (§IV-D5): mission-critical weak-scaling code, N-1 strided
    writes in ~500,000-byte increments."""

    name = "lanl1"

    def __init__(self, nprocs: int, *, per_proc: int = 16 * MB,
                 record: int = 500 * KB):
        super().__init__(nprocs)
        self.per_proc = per_proc
        self.record = record

    def write_rounds(self, rank: int) -> Iterator[List[Extent]]:
        """Strided ~500 KB records."""
        written, i = 0, 0
        while written < self.per_proc:
            ln = min(self.record, self.per_proc - written)
            yield [(rank * self.record + i * self.nprocs * self.record, ln)]
            written += ln
            i += 1


class LANL3(Workload):
    """LANL 3 (§IV-D6): strong scaling, 1024-byte records, 32 GB total,
    run with collective buffering (the paper enables it via hints).

    The two-phase exchange is what actually reaches the file system, so
    the plan is expressed at collective-round granularity: each round
    covers one contiguous span of the file and every rank contributes its
    1/N share.  This is byte- and cost-equivalent to the 1024-byte strided
    description after aggregation, without simulating 33 million records
    individually (see DESIGN.md §2).
    """

    name = "lanl3"
    collective_write = True
    collective_read = True

    def __init__(self, nprocs: int, *, total_bytes: int = 2 * 1024 * MiB,
                 round_bytes: int = 64 * MiB, record: int = 1024):
        super().__init__(nprocs)
        round_bytes = min(round_bytes, total_bytes)
        round_bytes = max(nprocs, (round_bytes // nprocs) * nprocs)
        self.total = max(round_bytes, (total_bytes // round_bytes) * round_bytes)
        self.round_bytes = round_bytes
        self.record = record  # the application's logical record size

    def write_rounds(self, rank: int) -> Iterator[List[Extent]]:
        """Collective rounds: each rank contributes its 1/N share."""
        share = self.round_bytes // self.nprocs
        for r in range(self.total // self.round_bytes):
            base = r * self.round_bytes + rank * share
            yield [(base, share)]
