"""Checkpoint/restart campaigns: the paper's motivating workload, end to end.

§I motivates everything: "long running applications ... protect themselves
from inevitable node failures by periodically writing out checkpoints",
and bigger machines fail more often while needing bigger checkpoints.
This module closes the loop — it runs a whole campaign (compute,
checkpoint, crash, restart) against any I/O stack and measures the
*useful-work efficiency* the storage system actually delivers:

* :func:`daly_interval` — the Young/Daly optimal checkpoint interval for
  a given checkpoint cost and platform MTBF;
* :class:`Campaign` — failure-injected execution: compute phases are
  interrupted by exponentially-distributed failures; every failure rolls
  back to the last completed checkpoint and pays a restart read.

Faster checkpoints (PLFS, burst buffers) permit shorter intervals, which
lose less work per failure — the quantitative version of the paper's
argument for transformative I/O.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Optional

from ..errors import ConfigError
from ..faults.plan import FaultPlan
from ..harness.setup import World
from ..mpi import run_job
from ..mpiio import MPIFile
from ..pfs.data import PatternData
from .base import IOStack

__all__ = ["daly_interval", "CampaignResult", "Campaign"]


def daly_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Daly's higher-order optimal checkpoint interval.

    ``sqrt(2 * C * M) * (1 + ...)`` for checkpoint cost ``C`` and platform
    MTBF ``M``; falls back to Young's first-order form when C << M and is
    clamped to M when C is enormous.
    """
    if checkpoint_cost <= 0 or mtbf <= 0:
        raise ConfigError("checkpoint cost and MTBF must be positive")
    if checkpoint_cost >= 2 * mtbf:
        return mtbf
    t = math.sqrt(2 * checkpoint_cost * mtbf)
    # Daly's correction terms.
    return t * (1 + math.sqrt(checkpoint_cost / (2 * mtbf)) / 3
                + (checkpoint_cost / (2 * mtbf)) / 9) - checkpoint_cost


@dataclass
class CampaignResult:
    """Outcome of one simulated campaign."""

    stack: str
    work_target: float           # compute seconds the app needed
    wall_time: float             # simulated seconds the campaign took
    n_checkpoints: int = 0
    n_failures: int = 0
    checkpoint_time: float = 0.0
    restart_time: float = 0.0
    lost_work: float = 0.0

    @property
    def efficiency(self) -> float:
        """Useful compute divided by total wall time."""
        return self.work_target / self.wall_time if self.wall_time > 0 else 0.0


class Campaign:
    """A failure-injected compute/checkpoint/restart campaign."""

    def __init__(self, world: World, stack: IOStack, *, nprocs: int,
                 per_proc_bytes: int, record_bytes: int,
                 work_target: float, interval: float, mtbf: float,
                 seed: int = 0, plan: FaultPlan = None, injector=None):
        if min(nprocs, per_proc_bytes, record_bytes) < 1:
            raise ConfigError("campaign sizes must be positive")
        if min(work_target, interval, mtbf) <= 0:
            raise ConfigError("campaign times must be positive")
        self.world = world
        self.stack = stack
        self.nprocs = nprocs
        self.per_proc = per_proc_bytes
        self.record = record_bytes
        self.work_target = work_target
        self.interval = interval
        self.mtbf = mtbf
        # The compute-failure clock always derives from a FaultPlan — an
        # empty plan with this seed when none is given — so every stochastic
        # draw in a campaign flows through one seeded, process-stable RNG.
        self.plan = plan if plan is not None else FaultPlan((), seed=seed)
        self.injector = injector
        self._clock = self.plan.failure_clock(mtbf)

    # -- fault-plan synchronization ------------------------------------------
    def _sync_env(self, wall: float) -> None:
        """Map campaign wall time onto the engine clock and arm faults.

        Component faults are scheduled in campaign wall coordinates; before
        each I/O job the engine clock is fast-forwarded to the campaign
        wall (settling any faults due earlier, recoveries included), then
        the next checkpoint interval's worth of faults is armed so they
        can strike while the job is in flight.  Without an injector this
        is a no-op and the engine clock is untouched — fault-free
        campaigns stay bit-identical to the pre-fault implementation.
        """
        if self.injector is None:
            return
        env = self.world.env
        self.injector.arm_until(wall)
        if env.now < wall:
            env.schedule_at(wall)
            env.run()
        self.injector.arm_until(wall + self.interval)

    # -- I/O jobs ------------------------------------------------------------
    def _checkpoint(self, version: int) -> float:
        world, stack = self.world, self.stack

        def fn(ctx):
            if ctx.rank == 0 and not _dir_exists(world, stack, "/campaign"):
                yield from _make_dir(ctx, world, stack, "/campaign")
            yield from ctx.comm.barrier()
            f = yield from MPIFile.open(ctx, f"/campaign/ckpt.{version}", "w",
                                        stack.make_driver(), stack.hints)
            written = 0
            while written < self.per_proc:
                n = min(self.record, self.per_proc - written)
                off = ctx.rank * self.record + (written // self.record) * self.nprocs * self.record
                yield from f.write_at(off, PatternData(version * self.nprocs + ctx.rank,
                                                       written, n))
                written += n
            yield from f.close()

        job = run_job(world.env, world.cluster, self.nprocs, fn,
                      name=f"ckpt{version}", client_id_base=version * self.nprocs)
        return job.duration

    def _restart(self, version: int, attempt: int) -> float:
        world, stack = self.world, self.stack
        world.drop_caches()

        def fn(ctx):
            f = yield from MPIFile.open(ctx, f"/campaign/ckpt.{version}", "r",
                                        stack.make_driver(), stack.hints)
            got = 0
            while got < self.per_proc:
                n = min(self.record, self.per_proc - got)
                off = ctx.rank * self.record + (got // self.record) * self.nprocs * self.record
                yield from f.read_at(off, n)
                got += n
            yield from f.close()

        job = run_job(world.env, world.cluster, self.nprocs, fn,
                      name=f"restart{attempt}",
                      client_id_base=1_000_000 + attempt * self.nprocs)
        return job.duration

    # -- the campaign loop ---------------------------------------------------
    def run(self) -> CampaignResult:
        """Run to completion; failures arrive Exp(MTBF) in wall time."""
        result = CampaignResult(stack=self.stack.name,
                                work_target=self.work_target, wall_time=0.0)
        done_work = 0.0
        committed_work = 0.0     # work protected by the last checkpoint
        last_version: Optional[int] = None
        next_failure = self._clock.next_failure(0.0)
        version = 0
        wall = 0.0

        def advance(dt: float) -> bool:
            """Advance wall time; True if a failure strikes during dt."""
            nonlocal wall, next_failure
            if wall + dt >= next_failure:
                wall = next_failure
                next_failure = self._clock.next_failure(wall)
                return True
            wall += dt
            return False

        while done_work < self.work_target:
            # Compute until the next checkpoint (or completion).
            segment = min(self.interval, self.work_target - done_work)
            seg_start = wall
            if advance(segment):
                result.n_failures += 1
                # Unprotected full segments plus the partial one in flight.
                result.lost_work += (done_work - committed_work) + (wall - seg_start)
                done_work = committed_work
                if last_version is not None:
                    self._sync_env(wall)
                    t = self._restart(last_version, result.n_failures)
                    result.restart_time += t
                    wall += t
                continue
            done_work += segment
            if done_work >= self.work_target:
                break
            # Checkpoint.  A failure mid-checkpoint invalidates it.
            self._sync_env(wall)
            t = self._checkpoint(version)
            result.n_checkpoints += 1
            result.checkpoint_time += t
            if advance(t):
                result.n_failures += 1
                result.lost_work += done_work - committed_work
                done_work = committed_work
                if last_version is not None:
                    self._sync_env(wall)
                    tr = self._restart(last_version, result.n_failures)
                    result.restart_time += tr
                    wall += tr
                continue
            last_version = version
            committed_work = done_work
            version += 1
        result.wall_time = wall
        return result


def _dir_exists(world: World, stack: IOStack, path: str) -> bool:
    from ..mpiio import PlfsDriver

    driver = stack.make_driver()
    if isinstance(driver, PlfsDriver):
        return driver.mount.volumes[0].ns.exists(path)
    return driver.volume.ns.exists(path)


def _make_dir(ctx, world: World, stack: IOStack, path: str) -> Generator:
    from ..mpiio import PlfsDriver

    driver = stack.make_driver()
    if isinstance(driver, PlfsDriver):
        yield from driver.mount.mkdir(ctx.client, path)
    else:
        yield from driver.volume.makedirs(ctx.client, path)
