"""Synthetic benchmarks: LANL's MPI-IO Test and LLNL's IOR.

``MPIIOTest`` is the tunable workload generator behind the paper's Fig. 4
and Fig. 8 ("Each concurrent I/O stream writes/reads 50 MB in 50 KB
increments", §IV-C): N-1 strided, N-1 segmented, or N-N file-per-process.

``IOR`` reproduces the §IV-D3 configuration: shared file, each process
accessing 50 MB in 1 MB increments (segmented), read-write mode patched
out because PLFS rejects it.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import ConfigError
from ..units import KB, MB
from .base import Extent, Workload

__all__ = ["MPIIOTest", "IOR"]

_LAYOUTS = ("strided", "segmented", "nn")


class MPIIOTest(Workload):
    """LANL MPI-IO Test: tunable size / transfer / layout generator [14]."""

    name = "mpiio_test"

    def __init__(self, nprocs: int, *, size_per_proc: int = 50 * MB,
                 transfer: int = 50 * KB, layout: str = "strided",
                 name: str = ""):
        super().__init__(nprocs)
        if layout not in _LAYOUTS:
            raise ConfigError(f"layout must be one of {_LAYOUTS}, got {layout!r}")
        if size_per_proc < 1 or transfer < 1:
            raise ConfigError("size_per_proc and transfer must be >= 1")
        self.size_per_proc = size_per_proc
        self.transfer = transfer
        self.layout = layout
        self.shared_file = layout != "nn"
        self.name = name or f"mpiio_test-{layout}"

    def write_rounds(self, rank: int) -> Iterator[List[Extent]]:
        size, xfer, n = self.size_per_proc, self.transfer, self.nprocs
        written, i = 0, 0
        while written < size:
            ln = min(xfer, size - written)
            if self.layout == "strided":
                off = rank * xfer + i * n * xfer
            elif self.layout == "segmented":
                off = rank * size + written
            else:  # nn: own file, contiguous
                off = written
            yield [(off, ln)]
            written += ln
            i += 1


class IOR(Workload):
    """IOR [16] as the paper ran it: N-1 segmented, 50 MB per proc, 1 MB ops."""

    name = "ior"

    def __init__(self, nprocs: int, *, size_per_proc: int = 50 * MB,
                 transfer: int = 1 * MB):
        super().__init__(nprocs)
        if size_per_proc < 1 or transfer < 1:
            raise ConfigError("size_per_proc and transfer must be >= 1")
        self.size_per_proc = size_per_proc
        self.transfer = transfer

    def write_rounds(self, rank: int) -> Iterator[List[Extent]]:
        written = 0
        base = rank * self.size_per_proc
        while written < self.size_per_proc:
            ln = min(self.transfer, self.size_per_proc - written)
            yield [(base + written, ln)]
            written += ln
