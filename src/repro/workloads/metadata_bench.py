"""Metadata benchmarks (§V, §VI): N-N create storms and N-1 open storms.

Fig. 7 / Fig. 8b measure the open and close time of a simulated large N-N
job — every process creates/opens multiple files — with and without PLFS,
across metadata-server counts.  With PLFS every file is a container, so
an open is a container creation (the burden) spread over federated
volumes (the win).  Fig. 8c measures the N-1 flavour: all processes open
one shared PLFS file for write.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..harness.setup import World
from ..mpi import run_job

__all__ = ["MetadataTimes", "nn_metadata_storm", "n1_open_storm"]


@dataclass
class MetadataTimes:
    """Max-over-ranks open and close phase times of one metadata job."""

    stack: str
    nprocs: int
    files_per_proc: int
    open_time: float
    close_time: float

    @property
    def total_files(self) -> int:
        return self.nprocs * self.files_per_proc


def nn_metadata_storm(world: World, nprocs: int, files_per_proc: int,
                      stack: str, dirname: str = "/meta") -> MetadataTimes:
    """Every rank creates, then closes, ``files_per_proc`` private files.

    ``stack="plfs"`` goes through the mount (container per file, spread by
    the configured federation); ``stack="direct"`` creates plain files in
    one shared directory of volume 0 — the single-MDS, single-directory
    baseline the paper compares against.
    """
    if stack not in ("plfs", "direct"):
        raise ConfigError(f"stack must be 'plfs' or 'direct', got {stack!r}")
    use_plfs = stack == "plfs"
    mount, volume = world.mount, world.volume

    def fn(ctx):
        if ctx.rank == 0:
            if use_plfs:
                yield from mount.mkdir(ctx.client, dirname)
            elif not volume.ns.exists(dirname):
                yield from volume.makedirs(ctx.client, dirname)
        yield from ctx.comm.barrier()
        paths = [f"{dirname}/f.{ctx.client.client_id}.{i}"
                 for i in range(files_per_proc)]
        handles = []
        ctx.start("open")
        for p in paths:
            if use_plfs:
                h = yield from mount.open_write(ctx.client, p, None)
            else:
                h = yield from volume.open(ctx.client, p, "w", create=True)
            handles.append(h)
        ctx.stop("open")
        ctx.start("close")
        for h in handles:
            if use_plfs:
                yield from mount.close_write(h, None)
            else:
                yield from h.close()
        ctx.stop("close")

    job = run_job(world.env, world.cluster, nprocs, fn, name=f"nn-meta-{stack}")
    return MetadataTimes(
        stack=stack, nprocs=nprocs, files_per_proc=files_per_proc,
        open_time=job.metrics.phase_max.get("open", 0.0),
        close_time=job.metrics.phase_max.get("close", 0.0),
    )


def n1_open_storm(world: World, nprocs: int, stack: str,
                  path: str = "/meta-n1/shared") -> MetadataTimes:
    """All ranks open ONE shared file for write (Fig. 8c), then close it."""
    if stack not in ("plfs", "direct"):
        raise ConfigError(f"stack must be 'plfs' or 'direct', got {stack!r}")
    use_plfs = stack == "plfs"
    mount, volume = world.mount, world.volume
    parent = path.rpartition("/")[0]

    def fn(ctx):
        if ctx.rank == 0 and parent:
            if use_plfs:
                yield from mount.mkdir(ctx.client, parent)
            elif not volume.ns.exists(parent):
                yield from volume.makedirs(ctx.client, parent)
        yield from ctx.comm.barrier()
        ctx.start("open")
        if use_plfs:
            h = yield from mount.open_write(ctx.client, path, ctx.comm)
        else:
            if ctx.rank == 0:
                h = yield from volume.open(ctx.client, path, "w", create=True)
                yield from ctx.comm.bcast(None, nbytes=8, root=0)
            else:
                yield from ctx.comm.bcast(None, nbytes=8, root=0)
                h = yield from volume.open(ctx.client, path, "w")
        yield from ctx.comm.barrier()  # open time = until the whole job is open
        ctx.stop("open")
        ctx.start("close")
        if use_plfs:
            yield from mount.close_write(h, ctx.comm)
        else:
            yield from h.close()
        ctx.stop("close")

    job = run_job(world.env, world.cluster, nprocs, fn, name=f"n1-open-{stack}")
    return MetadataTimes(
        stack=stack, nprocs=nprocs, files_per_proc=1,
        open_time=job.metrics.phase_max.get("open", 0.0),
        close_time=job.metrics.phase_max.get("close", 0.0),
    )
