"""Workloads: synthetic generators, the paper's I/O kernels, metadata storms."""

from .appsuite import AppSpec, app_suite
from .campaign import Campaign, CampaignResult, daly_interval
from .base import (
    IOStack,
    PhaseResult,
    Workload,
    WorkloadResult,
    direct_stack,
    plfs_stack,
    run_workload,
)
from .kernels import LANL1, LANL3, Aramco, MADbench, Pixie3D
from .metadata_bench import MetadataTimes, n1_open_storm, nn_metadata_storm
from .synthetic import IOR, MPIIOTest
from .trace import IOTrace, TraceOp, TraceWorkload, synthesize_strided_trace

__all__ = [
    "AppSpec",
    "Campaign",
    "CampaignResult",
    "daly_interval",
    "app_suite",
    "IOStack",
    "PhaseResult",
    "Workload",
    "WorkloadResult",
    "direct_stack",
    "plfs_stack",
    "run_workload",
    "LANL1",
    "LANL3",
    "Aramco",
    "MADbench",
    "Pixie3D",
    "MetadataTimes",
    "n1_open_storm",
    "nn_metadata_storm",
    "IOR",
    "MPIIOTest",
    "IOTrace",
    "TraceOp",
    "TraceWorkload",
    "synthesize_strided_trace",
]
