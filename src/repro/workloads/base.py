"""Workload framework: I/O plans, stacks, and the phase runner.

A :class:`Workload` describes *what* an application does to a file —
which (offset, length) extents each rank touches per round, shared file
or file-per-process, collective or independent — and the runner executes
it against an :class:`IOStack` (direct PFS or PLFS), timing the open /
write / read / close phases the way the paper reports them: phase times
are maxima over ranks, and effective bandwidth includes open and close
(footnote 2).

Content is deterministic per rank (a :class:`PatternData` stream keyed by
rank), so any reader whose plan matches the write plan can verify content
byte-exactly without the framework shipping real buffers around.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Generator, Iterator, List, Optional, Tuple

from ..errors import ConfigError
from ..faults.policies import RetryPolicy
from ..harness.setup import World
from ..mpi import run_job
from ..mpiio import ADIODriver, Hints, MPIFile, PlfsDriver, UfsDriver
from ..pfs.data import PatternData
from ..sim import JobMetrics

__all__ = ["IOStack", "direct_stack", "plfs_stack", "Workload", "PhaseResult",
           "WorkloadResult", "run_workload"]

Extent = Tuple[int, int]  # (offset, length)


@dataclass(frozen=True)
class IOStack:
    """How a job reaches storage: driver factory plus MPI-IO hints."""

    name: str
    make_driver: Callable[[], ADIODriver]
    hints: Hints = field(default_factory=Hints)


def direct_stack(world: World, hints: Hints = None,
                 retry: RetryPolicy = None) -> IOStack:
    """Direct access to the underlying parallel file system ('W/O PLFS')."""
    return IOStack(name="direct",
                   make_driver=lambda: UfsDriver(world.volume, retry=retry),
                   hints=hints or Hints())


def plfs_stack(world: World, hints: Hints = None,
               retry: RetryPolicy = None) -> IOStack:
    """Access through the PLFS middleware's ADIO driver."""
    return IOStack(name="plfs",
                   make_driver=lambda: PlfsDriver(world.mount, retry=retry),
                   hints=hints or Hints())


class Workload:
    """Base class: subclasses define the per-rank extent plans."""

    name = "workload"
    shared_file = True          # N-1 (one shared file) vs N-N (file per rank)
    collective_write = False    # use write_at_all (two-phase when hinted)
    collective_read = False
    read_matches_write = True   # restart reads exactly what this rank wrote

    def __init__(self, nprocs: int):
        if nprocs < 1:
            raise ConfigError("workload needs >= 1 process")
        self.nprocs = nprocs

    # -- identity ---------------------------------------------------------------
    def file_path(self, rank: int) -> str:
        """The logical path rank *rank* opens (shared, or per-rank for N-N)."""
        if self.shared_file:
            return f"/wl/{self.name}"
        return f"/wl/{self.name}.{rank}"

    def seed(self, rank: int) -> int:
        """Deterministic content seed for one rank's pattern stream.

        ``crc32``, not ``hash()``: string hashing is salted per process,
        and content seeds must agree between a write run and a read run
        that may live in different harness worker processes.
        """
        return zlib.crc32(f"{self.name}:{rank}".encode("utf-8")) & 0x7FFFFFFF

    # -- plans --------------------------------------------------------------------
    def write_rounds(self, rank: int) -> Iterator[List[Extent]]:
        """Rounds of extents this rank writes (a round = one collective call)."""
        raise NotImplementedError

    def read_rounds(self, rank: int) -> Iterator[List[Extent]]:
        """Rounds of extents this rank reads; defaults to the write plan."""
        return self.write_rounds(rank)

    def bytes_per_rank(self, rank: int) -> int:
        """Bytes this rank writes over the whole plan."""
        return sum(ln for rnd in self.write_rounds(rank) for _, ln in rnd)

    @property
    def total_bytes(self) -> int:
        """Bytes the whole job writes."""
        return sum(self.bytes_per_rank(r) for r in range(self.nprocs))

    def describe(self) -> str:
        """One-line human description."""
        kind = "N-1" if self.shared_file else "N-N"
        return f"{self.name} ({kind}, {self.nprocs} procs)"


@dataclass
class PhaseResult:
    """Timing of one phase group (a write pass or a read pass)."""

    phase: str
    nprocs: int
    bytes_moved: int
    open_time: float
    io_time: float
    close_time: float
    wall_time: float
    verified: Optional[bool] = None

    @property
    def effective_bandwidth(self) -> float:
        """bytes / (open + io + close) — the paper's end-to-end metric."""
        return self.bytes_moved / self.wall_time if self.wall_time > 0 else 0.0


@dataclass
class WorkloadResult:
    """Write and/or read phase results of one workload run."""

    workload: str
    stack: str
    nprocs: int
    write: Optional[PhaseResult] = None
    read: Optional[PhaseResult] = None


def _phase_result(phase: str, metrics: JobMetrics, verified) -> PhaseResult:
    return PhaseResult(
        phase=phase,
        nprocs=metrics.nprocs,
        bytes_moved=metrics.bytes_total,
        open_time=metrics.phase_max.get("open", 0.0),
        io_time=metrics.phase_max.get(phase, 0.0),
        close_time=metrics.phase_max.get("close", 0.0),
        wall_time=metrics.wall_time,
        verified=verified,
    )


def _writer_fn(workload: Workload, stack: IOStack):
    def fn(ctx):
        path = workload.file_path(ctx.rank)
        if ctx.rank == 0:
            yield from _ensure_parents(ctx, stack, workload)
        yield from ctx.comm.barrier()
        ctx.start("open")
        f = yield from MPIFile.open(ctx, path, "w", stack.make_driver(),
                                    stack.hints,
                                    independent=not workload.shared_file)
        ctx.stop("open")
        ctx.start("write")
        seed, cursor = workload.seed(ctx.rank), 0
        for rnd in workload.write_rounds(ctx.rank):
            pieces = []
            for off, ln in rnd:
                pieces.append((off, PatternData(seed, cursor, ln)))
                cursor += ln
            if workload.collective_write:
                # Workload contract: write_rounds(rank) varies offsets
                # per rank but yields the same *round count* on every
                # rank (tests/mpi/test_collectives_edges.py validates a
                # run under --validate-collectives).
                yield from f.write_at_all(pieces)  # noqa: REP104 -- round count is rank-uniform by the Workload contract; trace-validated
            else:
                for off, spec in pieces:
                    yield from f.write_at(off, spec)
        ctx.stop("write")
        ctx.start("close")
        yield from f.close()
        ctx.stop("close")
        return cursor

    return fn


def _reader_fn(workload: Workload, stack: IOStack, verify: bool):
    def fn(ctx):
        path = workload.file_path(ctx.rank)
        ctx.start("open")
        f = yield from MPIFile.open(ctx, path, "r", stack.make_driver(),
                                    stack.hints,
                                    independent=not workload.shared_file)
        ctx.stop("open")
        ctx.start("read")
        seed, cursor, ok = workload.seed(ctx.rank), 0, True
        for rnd in workload.read_rounds(ctx.rank):
            if workload.collective_read:
                # Same contract as the write side: per-rank offsets,
                # rank-uniform round count.
                views = yield from f.read_at_all(list(rnd))  # noqa: REP104 -- round count is rank-uniform by the Workload contract; trace-validated
            else:
                views = []
                for off, ln in rnd:
                    v = yield from f.read_at(off, ln)
                    views.append(v)
            if verify and workload.read_matches_write:
                for (off, ln), view in zip(rnd, views):
                    ok = ok and view.content_equal(PatternData(seed, cursor, ln))
                    cursor += ln
            else:
                cursor += sum(ln for _, ln in rnd)
        ctx.stop("read")
        ctx.start("close")
        yield from f.close()
        ctx.stop("close")
        return ok

    return fn


def _ensure_parents(ctx, stack: IOStack, workload: Workload) -> Generator:
    """Rank 0 creates the logical parent directory before the job opens files."""
    parent = workload.file_path(0).rpartition("/")[0]
    if not parent:
        return
    driver = stack.make_driver()
    if isinstance(driver, PlfsDriver):
        yield from driver.mount.mkdir(ctx.client, parent)
    else:
        if not driver.volume.ns.exists(parent):
            yield from driver.volume.makedirs(ctx.client, parent)


def run_workload(world: World, workload: Workload, stack: IOStack, *,
                 do_write: bool = True, do_read: bool = True,
                 cold_read: bool = True, verify: bool = False) -> WorkloadResult:
    """Run the write pass and/or read pass of *workload* over *stack*.

    ``cold_read`` drops node page caches between the passes (a restart
    after reboot); leave it False to reproduce the §IV-C caching effects.
    """
    result = WorkloadResult(workload=workload.name, stack=stack.name,
                            nprocs=workload.nprocs)
    if do_write:
        job = run_job(world.env, world.cluster, workload.nprocs,
                      _writer_fn(workload, stack),
                      bytes_total=workload.total_bytes,
                      name=f"{workload.name}-write")
        result.write = _phase_result("write", job.metrics, None)
    if do_read:
        if cold_read:
            world.drop_caches()
        job = run_job(world.env, world.cluster, workload.nprocs,
                      _reader_fn(workload, stack, verify),
                      bytes_total=workload.total_bytes,
                      name=f"{workload.name}-read",
                      client_id_base=1_000_000)
        verified = all(job.results) if verify else None
        result.read = _phase_result("read", job.metrics, verified)
    return result
