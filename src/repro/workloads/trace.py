"""Trace-driven workloads: replay real applications' I/O shapes.

The paper's "I/O kernels derived from applications" (§IV-D) are exactly
this: the offsets and lengths an application issues, detached from its
computation.  This module gives downstream users the same capability —
record or write down a trace, replay it against any stack:

    # rank op    offset      length
    0      write 0           47001
    1      write 47001       47001
    0      read  0           47001

Format: whitespace-separated columns, ``#`` comments, ops ``write`` /
``read``.  Ranks replay their ops in trace order; an optional ``barrier``
op (no offset/length) synchronizes all ranks mid-trace, letting traces
express checkpoint phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import ConfigError
from .base import Extent, Workload

__all__ = ["TraceOp", "IOTrace", "TraceWorkload", "synthesize_strided_trace"]

_OPS = ("write", "read", "barrier")


@dataclass(frozen=True)
class TraceOp:
    """One traced operation."""

    rank: int
    op: str
    offset: int = 0
    length: int = 0

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ConfigError(f"unknown trace op {self.op!r}")
        if self.rank < 0:
            raise ConfigError(f"negative rank {self.rank}")
        if self.op != "barrier" and (self.offset < 0 or self.length <= 0):
            raise ConfigError(
                f"{self.op} needs offset >= 0 and length > 0, got "
                f"({self.offset}, {self.length})")


class IOTrace:
    """An ordered multi-rank I/O trace."""

    def __init__(self, ops: List[TraceOp]):
        self.ops = list(ops)
        self._validate()

    def _validate(self) -> None:
        for op in self.ops:
            if not isinstance(op, TraceOp):
                raise ConfigError(f"trace contains non-TraceOp {op!r}")

    @property
    def nprocs(self) -> int:
        """Rank count implied by the trace (max data-op rank + 1)."""
        data_ops = [op.rank for op in self.ops if op.op != "barrier"]
        return (max(data_ops) + 1) if data_ops else 1

    def ops_for(self, rank: int, kind: str) -> List[TraceOp]:
        """One rank's ops of one kind, in trace order."""
        return [op for op in self.ops if op.op == kind and op.rank == rank]

    def bytes_for(self, rank: int, kind: str = "write") -> int:
        """Total bytes one rank moves for *kind*."""
        return sum(op.length for op in self.ops_for(rank, kind))

    # -- text form -------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "IOTrace":
        """Parse the text trace format (see module docstring)."""
        ops: List[TraceOp] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            try:
                if len(parts) == 2 and parts[1] == "barrier":
                    ops.append(TraceOp(rank=int(parts[0]), op="barrier"))
                elif len(parts) == 4:
                    ops.append(TraceOp(rank=int(parts[0]), op=parts[1],
                                       offset=int(parts[2]), length=int(parts[3])))
                else:
                    raise ValueError("wrong column count")
            except (ValueError, ConfigError) as exc:
                raise ConfigError(f"trace line {lineno}: {raw!r}: {exc}") from None
        if not ops:
            raise ConfigError("empty trace")
        return cls(ops)

    @classmethod
    def load(cls, path: str) -> "IOTrace":
        """Parse a trace file."""
        with open(path) as f:
            return cls.parse(f.read())

    def dump(self) -> str:
        """The trace in its text format."""
        lines = ["# rank op offset length"]
        for op in self.ops:
            if op.op == "barrier":
                lines.append(f"{op.rank} barrier")
            else:
                lines.append(f"{op.rank} {op.op} {op.offset} {op.length}")
        return "\n".join(lines) + "\n"

    def save(self, path: str) -> None:
        """Write the text form to *path*."""
        with open(path, "w") as f:
            f.write(self.dump())


class TraceWorkload(Workload):
    """Replay an :class:`IOTrace` through the workload framework.

    Write/read plans follow the trace's per-rank op order; ``barrier``
    ops split the plan into rounds (the framework's collective boundary).
    Content verification is available when every rank's reads replay its
    own writes (``read_matches_write`` stays True only then).
    """

    name = "trace"

    def __init__(self, trace: IOTrace, name: str = "trace"):
        super().__init__(trace.nprocs)
        self.trace = trace
        self.name = name
        self.read_matches_write = self._reads_mirror_writes()

    def _reads_mirror_writes(self) -> bool:
        for rank in range(self.nprocs):
            writes = [(op.offset, op.length) for op in self.trace.ops_for(rank, "write")]
            reads = [(op.offset, op.length) for op in self.trace.ops_for(rank, "read")]
            if reads and reads != writes:
                return False
        return True

    def _rounds(self, rank: int, kind: str) -> Iterator[List[Extent]]:
        """Extents between barriers form one round (one collective call);
        independent I/O iterates a round's extents one op at a time, so
        granularity is preserved either way."""
        current: List[Extent] = []
        for op in self.trace.ops:
            if op.op == "barrier":
                if current:
                    yield current
                    current = []
                continue
            if op.op == kind and op.rank == rank:
                current.append((op.offset, op.length))
        if current:
            yield current

    def write_rounds(self, rank: int) -> Iterator[List[Extent]]:
        """The trace's write plan for *rank*."""
        return self._rounds(rank, "write")

    def read_rounds(self, rank: int) -> Iterator[List[Extent]]:
        """The trace's read plan (or the restart convention)."""
        reads = self.trace.ops_for(rank, "read")
        if reads:
            return self._rounds(rank, "read")
        return self._rounds(rank, "write")  # restart convention


def synthesize_strided_trace(nprocs: int, per_proc: int, record: int,
                             *, with_readback: bool = True) -> IOTrace:
    """Generate a canonical N-1 strided checkpoint trace (plus read-back)."""
    if nprocs < 1 or per_proc < 1 or record < 1:
        raise ConfigError("synthesize_strided_trace needs positive parameters")
    ops: List[TraceOp] = []
    for kind in (("write", "read") if with_readback else ("write",)):
        for rank in range(nprocs):
            written, i = 0, 0
            while written < per_proc:
                n = min(record, per_proc - written)
                ops.append(TraceOp(rank=rank, op=kind,
                                   offset=rank * record + i * nprocs * record,
                                   length=n))
                written += n
                i += 1
    return IOTrace(ops)
