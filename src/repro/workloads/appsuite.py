"""The Fig. 2 application suite: N-1 write patterns from real HPC codes.

Fig. 2 summarizes PLFS's N-1 write speedups across applications (up to
150x, the paper's headline).  The apps differ mainly in their record
shapes: the smaller and less aligned the strided records, the worse the
underlying file system's lock ping-pong and parity read-modify-write get,
and the bigger PLFS's win.  Record sizes below follow the applications'
published I/O shapes (BTIO's large blocks, QCD's ~3/4 MiB, FLASH's ~100 KB
HDF5 chunks, LANL 2's notoriously tiny unaligned records); per-process
volumes are scaled to simulation-friendly defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from ..mpiio import Hints
from ..units import KiB, MB, MiB
from .base import Workload
from .kernels import LANL3
from .synthetic import MPIIOTest

__all__ = ["AppSpec", "app_suite"]


@dataclass(frozen=True)
class AppSpec:
    """One Fig. 2 application: a label, a workload factory, and its hints."""

    label: str
    make: Callable[[int], Workload]
    hints: Hints = field(default_factory=Hints)


def app_suite(scale: float = 1.0) -> List[AppSpec]:
    """The Fig. 2 suite; *scale* multiplies per-process data volumes."""

    def sz(n: int) -> int:
        return max(1, int(n * scale))

    return [
        AppSpec(
            label="LANL 2",
            make=lambda n: MPIIOTest(n, size_per_proc=sz(2 * MB), transfer=3808,
                                     layout="strided", name="app-lanl2"),
        ),
        AppSpec(
            label="FLASH io",
            make=lambda n: MPIIOTest(n, size_per_proc=sz(4 * MB), transfer=100 * 1000,
                                     layout="strided", name="app-flash"),
        ),
        AppSpec(
            label="Chombo io",
            make=lambda n: MPIIOTest(n, size_per_proc=sz(3 * MB), transfer=37 * KiB,
                                     layout="strided", name="app-chombo"),
        ),
        AppSpec(
            label="QCD",
            make=lambda n: MPIIOTest(n, size_per_proc=sz(12 * MiB), transfer=768 * KiB,
                                     layout="strided", name="app-qcd"),
        ),
        AppSpec(
            label="LANL 1",
            make=lambda n: MPIIOTest(n, size_per_proc=sz(8 * MB), transfer=500 * 1000,
                                     layout="strided", name="app-lanl1"),
        ),
        AppSpec(
            label="BTIO",
            # BT's cell sizes make the records large but never stripe-aligned.
            make=lambda n: MPIIOTest(n, size_per_proc=sz(32 * MB), transfer=8 * MB + 40 * 1000,
                                     layout="strided", name="app-btio"),
        ),
        AppSpec(
            label="LANL 3",
            make=lambda n: LANL3(n, total_bytes=sz(512 * MiB), round_bytes=32 * MiB),
            hints=Hints(cb_enable=True),
        ),
    ]
