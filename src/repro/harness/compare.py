"""Compare two harness result files (regression tracking for the models).

`python -m repro.harness ... --json results.json` snapshots every table.
:func:`compare_results` diffs two snapshots cell by cell and reports
relative drifts above a threshold — the tool you run after touching a
model to see which figures moved:

    python -m repro.harness fig5 --json new.json
    python - <<'PY'
    from repro.harness.compare import compare_files, render_diffs
    print(render_diffs(compare_files("old.json", "new.json")))
    PY
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List

__all__ = ["CellDiff", "compare_results", "compare_files", "render_diffs"]


@dataclass(frozen=True)
class CellDiff:
    """One drifted cell between two result snapshots."""

    table: str
    row: int
    column: str
    old: Any
    new: Any
    rel_change: float  # (new - old) / |old|, inf for new-from-zero

    def __str__(self) -> str:
        pct = f"{self.rel_change * 100:+.1f}%" if self.rel_change != float("inf") else "new"
        return f"{self.table}[{self.row}].{self.column}: {self.old} -> {self.new} ({pct})"


def _numeric(x: Any) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def compare_results(old: Dict[str, Any], new: Dict[str, Any], *,
                    threshold: float = 0.05) -> List[CellDiff]:
    """Cell-level diffs between two ``tables_to_json`` snapshots.

    Numeric cells report relative drift beyond *threshold*; structural
    differences (missing tables/rows, changed non-numeric cells) always
    report.  Results are sorted by |relative change| descending.
    """
    diffs: List[CellDiff] = []
    for table_id in sorted(set(old) | set(new)):
        if table_id not in old or table_id not in new:
            diffs.append(CellDiff(table_id, -1, "<table>",
                                  "present" if table_id in old else "absent",
                                  "present" if table_id in new else "absent",
                                  float("inf")))
            continue
        t_old, t_new = old[table_id], new[table_id]
        cols = t_new.get("columns", [])
        rows_old, rows_new = t_old.get("rows", []), t_new.get("rows", [])
        if t_old.get("columns") != cols or len(rows_old) != len(rows_new):
            diffs.append(CellDiff(table_id, -1, "<shape>",
                                  f"{len(rows_old)}x{len(t_old.get('columns', []))}",
                                  f"{len(rows_new)}x{len(cols)}", float("inf")))
            continue
        for i, (r_old, r_new) in enumerate(zip(rows_old, rows_new)):
            for col, a, b in zip(cols, r_old, r_new):
                if _numeric(a) and _numeric(b):
                    if a == b:
                        continue
                    rel = (b - a) / abs(a) if a != 0 else float("inf")
                    magnitude = abs(rel) if rel != float("inf") else float("inf")
                    if magnitude >= threshold:
                        diffs.append(CellDiff(table_id, i, col, a, b, rel))
                elif a != b:
                    diffs.append(CellDiff(table_id, i, col, a, b, float("inf")))
    diffs.sort(key=lambda d: abs(d.rel_change) if d.rel_change != float("inf") else 1e18,
               reverse=True)
    return diffs


def compare_files(old_path: str, new_path: str, *, threshold: float = 0.05
                  ) -> List[CellDiff]:
    with open(old_path) as f:
        old = json.load(f)
    with open(new_path) as f:
        new = json.load(f)
    return compare_results(old, new, threshold=threshold)


def render_diffs(diffs: List[CellDiff], limit: int = 50) -> str:
    if not diffs:
        return "no drifts above threshold"
    lines = [str(d) for d in diffs[:limit]]
    if len(diffs) > limit:
        lines.append(f"... and {len(diffs) - limit} more")
    return "\n".join(lines)
