"""Bottleneck diagnostics: where did the simulated time go?

After any run, the world's resource models carry utilization counters —
MDS busy time, per-directory hot spots, OSD seeks, lock revocations,
network bytes, cache hit rates.  :func:`resource_report` assembles them
into one table so users can answer the paper's implicit question ("what
exactly is slow about N-1?") for *their* workload.

    world = build_world()
    run_workload(world, wl, direct_stack(world))
    print(render_table(resource_report(world)))
"""

from __future__ import annotations

from typing import List

from .report import Table
from .setup import World

__all__ = ["resource_report", "cache_report"]


def resource_report(world: World) -> Table:
    """Utilization and contention counters for every modeled resource."""
    env = world.env
    table = Table(
        id="diagnostics",
        title=f"Resource utilization at t={env.now:.3f}s (simulated)",
        columns=["resource", "busy_s", "utilization", "detail"],
    )
    # Storage network.
    pipe = world.cluster.storage_net.pipe
    table.add("storage pipe", pipe.busy_time, pipe.utilization(),
              f"{world.cluster.storage_net.bytes_moved / 1e9:.2f} GB moved")
    # Interconnect fabric.
    fabric = world.cluster.interconnect.fabric
    table.add("interconnect fabric", fabric.busy_time, fabric.utilization(),
              f"{world.cluster.interconnect.messages_sent} msgs, "
              f"{world.cluster.interconnect.bytes_sent / 1e9:.2f} GB")
    for vol in world.volumes:
        mds = vol.mds
        table.add(f"{vol.name} MDS", mds.server.busy_time, mds.server.utilization(),
                  f"{mds.total_ops} ops; hottest dir "
                  f"{_hottest_dir_busy(mds):.3f}s busy")
    pool = world.volume.pool
    osds = pool.osds
    busy = [o.server.busy_time for o in osds]
    table.add("OSD pool (sum)", sum(busy),
              sum(busy) / (len(osds) * env.now) if env.now else 0.0,
              f"{len(osds)} OSDs, {pool.total_bytes_moved / 1e9:.2f} GB, "
              f"{pool.total_seeks} seeks")
    table.add("OSD pool (max)", max(busy), (max(busy) / env.now) if env.now else 0.0,
              f"imbalance max/mean = {_imbalance(busy):.2f}")
    locks = world.volume.locks
    table.add("lock manager", 0.0, 0.0,
              f"{locks.revocations} revocations, {locks.grants} grants")
    return table


def _hottest_dir_busy(mds) -> float:
    busiest = 0.0
    # max() over floats is exact and order-insensitive.
    for srv in mds._dir_servers.values():  # repro: noqa[REP004] -- max() over floats is order-insensitive
        busiest = max(busiest, srv.busy_time)
    return busiest


def _imbalance(busy: List[float]) -> float:
    mean = sum(busy) / len(busy)
    return (max(busy) / mean) if mean > 0 else 0.0


def cache_report(world: World) -> Table:
    """Per-node page-cache effectiveness (aggregated)."""
    hits = misses = evictions = resident = 0
    for node in world.cluster.nodes:
        pc = node.page_cache
        hits += pc.hits
        misses += pc.misses
        evictions += pc.evictions
        resident += len(pc)
    total = hits + misses
    table = Table(
        id="cache",
        title="Client page caches (all nodes)",
        columns=["metric", "value"],
    )
    table.add("block lookups", total)
    table.add("hit rate", (hits / total) if total else 0.0)
    table.add("evictions", evictions)
    table.add("resident blocks", resident)
    return table
