"""Experiment harness: world assembly, scales, figures, reporting."""

from .compare import compare_files, compare_results, render_diffs
from .diagnostics import cache_report, resource_report
from .plots import ascii_chart, chart_table
from .report import Table, render_table, render_tables, save_json
from .scales import PAPER, SMALL, Scale, get_scale
from .setup import World, build_world

__all__ = [
    "ascii_chart",
    "chart_table",
    "compare_files",
    "compare_results",
    "render_diffs",
    "cache_report",
    "resource_report",
    "Table",
    "render_table",
    "render_tables",
    "save_json",
    "PAPER",
    "SMALL",
    "Scale",
    "get_scale",
    "World",
    "build_world",
]
