"""Process-parallel execution of independent figure points.

Every figure is a sweep: a grid of (process count, strategy, knob)
points, each of which builds its **own** :class:`~repro.sim.Engine` and
world.  Points share no state, so they are embarrassingly parallel — the
only requirement is that results merge back in point order, not
completion order, so a parallel run emits byte-identical tables.

:func:`run_points` is the one entry point.  Point functions must be
module-level (picklable) and take only picklable arguments (ints,
strings, :class:`~repro.harness.scales.Scale`); they return plain data
(dicts, tuples, :class:`~repro.harness.report.Table`).  With ``jobs=1``
(the default) everything runs inline in this process — no pool, no
pickling — which keeps single-point debugging and tracebacks simple.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Any, Callable, Iterable, List, Sequence, Tuple

__all__ = ["run_points", "resolve_jobs"]


def resolve_jobs(jobs: int) -> int:
    """Map the CLI ``--jobs`` value to a worker count (0 = all cores)."""
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def run_points(fn: Callable[..., Any], points: Iterable[Tuple],
               jobs: int = 1) -> List[Any]:
    """Evaluate ``fn(*point)`` for every point; results in *point* order.

    ``jobs`` is the maximum number of worker processes; 1 (or a single
    point) runs serially inline.  Workers are plain ``multiprocessing``
    pool processes; ``chunksize=1`` keeps the longest points (largest
    process counts) from pinning a worker behind a queue of short ones.
    The returned list matches ``[fn(*p) for p in points]`` exactly.
    """
    pts: Sequence[Tuple] = [tuple(p) for p in points]
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(pts) <= 1:
        return [fn(*p) for p in pts]
    with mp.get_context().Pool(min(jobs, len(pts))) as pool:
        return pool.starmap(fn, pts, chunksize=1)
