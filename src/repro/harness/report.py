"""Result tables: the text/JSON artifacts the harness emits per figure.

Each reproduced table/figure becomes a :class:`Table` — the same rows and
series the paper plots — rendered as aligned text for the console and as
JSON for EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

__all__ = ["Table", "render_table", "render_tables", "tables_to_json",
           "save_json", "fmt_cell"]


@dataclass
class Table:
    """One reproduced figure/table: column names plus rows of cells."""

    id: str                      # e.g. "fig4a"
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: str = ""

    def add(self, *cells: Any) -> None:
        """Append one row (arity-checked)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"{self.id}: row has {len(cells)} cells, want {len(self.columns)}")
        self.rows.append(list(cells))

    def column(self, name: str) -> List[Any]:
        """One column's cells, by name."""
        i = self.columns.index(name)
        return [row[i] for row in self.rows]


def fmt_cell(value: Any) -> str:
    """Human-format one cell (units-free)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if math.isnan(value):
            return "nan"
        mag = abs(value)
        if mag >= 1000 or mag < 0.001:
            return f"{value:.3g}"
        if mag >= 100:
            return f"{value:.1f}"
        if mag >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(table: Table) -> str:
    """Aligned plain-text rendering."""
    header = [table.columns]
    body = [[fmt_cell(c) for c in row] for row in table.rows]
    widths = [max(len(r[i]) for r in header + body) for i in range(len(table.columns))]

    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [f"== {table.id}: {table.title} =="]
    out.append(line(table.columns))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in body)
    if table.notes:
        out.append(f"   note: {table.notes}")
    return "\n".join(out)


def render_tables(tables: Sequence[Table]) -> str:
    """Render several tables separated by blank lines."""
    return "\n\n".join(render_table(t) for t in tables)


def tables_to_json(tables: Sequence[Table]) -> Dict[str, Any]:
    """JSON-ready dict keyed by table id."""
    return {
        t.id: {
            "title": t.title,
            "columns": t.columns,
            "rows": t.rows,
            "notes": t.notes,
        }
        for t in tables
    }


def save_json(tables: Sequence[Table], path: str) -> None:
    """Dump tables to a JSON file."""
    with open(path, "w") as f:
        json.dump(tables_to_json(tables), f, indent=2, default=str)
