"""World assembly: wire a cluster, backing volumes, and a PLFS mount.

Federated volumes share one physical OSD pool and lock domain — they are
realms of a single storage system divided among metadata servers, which
is exactly the PanFS arrangement the paper federates over (§V).
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from typing import List, Optional

from ..analysis.sanitize import attach_sanitizer, sanitize_enabled
from ..mpi.trace import attach_tracer, validate_collectives_enabled
from ..cluster import Cluster, ClusterSpec, NodeSpec
from ..pfs import PfsConfig, Volume, panfs
from ..pfs.locks import RangeLockManager
from ..pfs.osd import OsdPool
from ..plfs import PlfsConfig, PlfsMount
from ..sim import Engine

__all__ = ["World", "build_world"]


@dataclass
class World:
    """One assembled simulation: engine, cluster, backing volumes, PLFS mount."""

    env: Engine
    cluster: Cluster
    volumes: List[Volume]
    mount: PlfsMount

    @property
    def volume(self) -> Volume:
        """The first backing volume (the 'without PLFS' direct-access target)."""
        return self.volumes[0]

    def drop_caches(self) -> None:
        """Cold-start every client: page caches and metadata caches."""
        self.cluster.drop_caches()
        for vol in self.volumes:
            vol._md_cache.clear()


def build_world(*, n_volumes: int = 1, n_nodes: int = 4, cores: int = 4,
                pfs_cfg: Optional[PfsConfig] = None,
                cluster_spec: Optional[ClusterSpec] = None,
                plfs_cfg: Optional[PlfsConfig] = None,
                **plfs_kw) -> World:
    """Build a world.

    ``plfs_kw`` forwards to :class:`~repro.plfs.PlfsConfig`
    (``aggregation=...``, ``federation=...``, ...) unless an explicit
    ``plfs_cfg`` is given.
    """
    # Sweeps build worlds in a loop; a retired world is hundreds of MB of
    # cyclic engine/namespace references at paper scale, and the cycle
    # collector doesn't keep up on its own.  Reclaim before building.
    gc.collect()
    env = Engine()
    if sanitize_enabled():
        # REPRO_SANITIZE=1 (the harness --sanitize flag): every process in
        # this world gets yield-epoch instrumentation and the registered
        # shared containers become recording proxies; a detected race
        # raises RaceConditionError at the offending write.  The env-var
        # channel means sweep worker processes inherit the setting.
        attach_sanitizer(env)
    if validate_collectives_enabled():
        # REPRO_VALIDATE_COLLECTIVES=1 (--validate-collectives): every
        # communicator created on this engine records per-rank
        # collective traces, and run_job raises CollectiveMismatchError
        # at drain when ranks diverge (see repro.mpi.trace).
        attach_tracer(env, strict=True)
    spec = cluster_spec or ClusterSpec(name="world", n_nodes=n_nodes,
                                       node=NodeSpec(cores=cores))
    cluster = Cluster(env, spec)
    cfg = pfs_cfg or panfs()
    pool = OsdPool(env, cfg)
    locks = RangeLockManager(env, cfg)
    volumes = [Volume(env, cluster, cfg, name=f"vol{i}", pool=pool, locks=locks)
               for i in range(n_volumes)]
    mount = PlfsMount(env, volumes, plfs_cfg or PlfsConfig(**plfs_kw))
    return World(env=env, cluster=cluster, volumes=volumes, mount=mount)
