"""Experiment scale presets.

``small`` (the default) sweeps the same shapes as the paper at process
counts a laptop simulates in a couple of minutes; ``paper`` runs the
published maxima (2,048 streams on the 64-node cluster; 65,536 processes
on Cielo) and takes tens of minutes of wall clock.  Select with
``REPRO_SCALE=paper`` or the harness ``--scale`` flag.

Transfer sizes at paper scale are coarser than the paper's 50 KB (see the
per-figure notes in EXPERIMENTS.md): the simulator charges identical
aggregate costs either way, but simulating 2 million individual 50 KB
records per point is wall-clock prohibitive in pure Python.  Shapes are
unaffected — index record counts still grow linearly in N, which is what
drives every read-open curve.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List

from ..units import KB, MB, MiB

__all__ = ["Scale", "SMALL", "PAPER", "get_scale"]


@dataclass(frozen=True)
class Scale:
    name: str

    # Fig 2 (write speedups per application)
    fig2_nprocs: int = 128
    fig2_app_scale: float = 1.0

    # Fig 4 (index aggregation scaling on the 64-node cluster)
    fig4_streams: List[int] = field(default_factory=lambda: [16, 32, 64, 128, 256])
    fig4_size_per_proc: int = 50 * MB
    fig4_transfer: int = 200 * KB

    # Fig 5 (I/O kernels)
    fig5_procs: List[int] = field(default_factory=lambda: [16, 32, 64, 128, 256])
    fig5_scale: float = 1.0

    # Fig 7 (metadata vs MDS count)
    fig7_nprocs: int = 64
    fig7_files_per_proc: List[int] = field(default_factory=lambda: [2, 4, 8, 16])
    fig7_mds_counts: List[int] = field(default_factory=lambda: [1, 3, 6, 9])

    # Fig 8 (large scale on Cielo)
    fig8_read_procs: List[int] = field(default_factory=lambda: [256, 512, 1024, 2048])
    fig8_meta_procs: List[int] = field(default_factory=lambda: [512, 1024, 2048])
    fig8_size_per_proc: int = 50 * MB
    fig8_transfer: int = 8 * MiB
    fig8_mds_counts: List[int] = field(default_factory=lambda: [1, 10, 20])

    # faults (resilience: campaign efficiency and post-crash recovery
    # under injected component faults; see repro.faults.experiment)
    faults_nprocs: int = 8
    faults_per_proc: int = 2 * MB
    faults_record: int = 256 * KB
    faults_work: float = 120.0
    faults_interval: float = 30.0
    faults_mtbfs: List[float] = field(default_factory=lambda: [60.0, 240.0])
    faults_kinds: List[str] = field(
        default_factory=lambda: ["none", "osd_outage", "mds_crash", "writer_kill"])
    faults_seed: int = 2012


SMALL = Scale(name="small")

PAPER = Scale(
    name="paper",
    fig2_nprocs=512,
    fig2_app_scale=1.0,
    fig4_streams=[64, 128, 256, 512, 1024, 2048],
    fig4_size_per_proc=50 * MB,
    fig4_transfer=50 * KB,  # the paper's 50 KB increments
    fig5_procs=[16, 32, 64, 128, 256, 512, 1024],
    fig5_scale=4.0,
    fig7_nprocs=512,
    fig7_files_per_proc=[2, 4, 8, 16],
    fig7_mds_counts=[1, 3, 6, 9],
    fig8_read_procs=[4096, 8192, 16384, 32768, 65536],
    fig8_meta_procs=[4096, 8192, 16384, 32768],
    fig8_mds_counts=[1, 10, 20],
    faults_nprocs=64,
    faults_per_proc=16 * MB,
    faults_record=1 * MB,
    faults_work=600.0,
    faults_interval=60.0,
    faults_mtbfs=[120.0, 480.0, 1920.0],
)


def get_scale(name: str = "") -> Scale:
    """Resolve a scale by name or the REPRO_SCALE environment variable."""
    name = name or os.environ.get("REPRO_SCALE", "small")
    if name == "small":
        return SMALL
    if name == "paper":
        return PAPER
    raise ValueError(f"unknown scale {name!r}; use 'small' or 'paper'")
