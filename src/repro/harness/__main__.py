"""Harness CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness all                 # every figure, small scale
    python -m repro.harness fig4 fig8           # selected figures
    python -m repro.harness all --scale paper   # published process counts
    python -m repro.harness all --json out.json # also dump JSON
    python -m repro.harness fig4 --jobs 4       # 4 worker processes

``REPRO_SCALE=paper`` is equivalent to ``--scale paper``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .figures import FIGURES
from .report import render_tables, save_json
from .scales import get_scale


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the tables/figures of 'The Power and "
                    "Challenges of Transformative I/O' (CLUSTER 2012).",
    )
    parser.add_argument("figures", nargs="+",
                        help=f"figures to run: {', '.join(FIGURES)} or 'all'")
    parser.add_argument("--scale", default="",
                        help="'small' (default) or 'paper' (published maxima)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent figure points "
                             "(default 1 = serial; 0 = all cores); tables are "
                             "identical at any job count")
    parser.add_argument("--json", default="",
                        help="also write results to this JSON file")
    parser.add_argument("--chart", action="store_true",
                        help="render each table as an ASCII chart too")
    parser.add_argument("--logy", action="store_true",
                        help="log-scale the chart y axis (implies --chart)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run under the yield-point race sanitizer "
                             "(repro.analysis): shared-state races raise "
                             "RaceConditionError instead of silently "
                             "skewing results")
    args = parser.parse_args(argv)
    if args.sanitize:
        # Via the environment so --jobs worker processes inherit it; each
        # build_world() checks the flag and attaches a sanitizer.
        os.environ["REPRO_SANITIZE"] = "1"
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")

    names = list(FIGURES) if "all" in args.figures else args.figures
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        parser.error(f"unknown figure(s) {unknown}; choose from {sorted(FIGURES)}")
    scale = get_scale(args.scale)
    san = " | sanitize=on" if args.sanitize else ""
    print(f"# repro harness | scale={scale.name}{san}\n", flush=True)
    all_tables = []
    for name in names:
        t0 = time.time()
        tables = FIGURES[name](scale, jobs=args.jobs)
        dt = time.time() - t0
        all_tables.extend(tables)
        print(render_tables(tables))
        if args.chart or args.logy:
            from .plots import chart_table

            for table in tables:
                print()
                print(chart_table(table, logy=args.logy))
        print(f"   [{name}: {dt:.1f}s wall]\n", flush=True)
    if args.json:
        save_json(all_tables, args.json)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
