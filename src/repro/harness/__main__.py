"""Harness CLI: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness all                 # every figure, small scale
    python -m repro.harness fig4 fig8           # selected figures
    python -m repro.harness all --scale paper   # published process counts
    python -m repro.harness all --json out.json # also dump JSON
    python -m repro.harness fig4 --jobs 4       # 4 worker processes
    python -m repro.harness --replay-schedule trace.json
                                                # re-run a model-checker trace

``REPRO_SCALE=paper`` is equivalent to ``--scale paper``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .figures import FIGURES
from .report import render_tables, save_json
from .scales import get_scale


def _replay(trace_path: str) -> int:
    """Re-run a model-checker trace; exit 0 iff its violation reproduces.

    Deterministic simulation makes this exact: the same workload under
    the same schedule produces the same violation.  A trace that no
    longer fails means the tree under test fixed (or lost) the bug the
    trace captured — useful both ways, so the outcome is always printed.
    """
    from ..analysis.explore import load_trace, replay_trace

    trace = load_trace(trace_path)
    recorded = trace.get("violation")
    print(f"# repro harness | replaying {trace_path} "
          f"(workload {trace['workload']!r}, "
          f"{len(trace['decisions'])} decision(s))\n", flush=True)
    result = replay_trace(trace)
    for v in result.violations:
        print(f"  {v.render()}")
    if result.failed:
        print("\nviolation reproduced")
        return 0
    if recorded is None:
        print("clean run reproduced")
        return 0
    print(f"\nrecorded violation did NOT reproduce: "
          f"[{recorded['kind']}] {recorded['message']}")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the tables/figures of 'The Power and "
                    "Challenges of Transformative I/O' (CLUSTER 2012).",
    )
    parser.add_argument("figures", nargs="*",
                        help=f"figures to run: {', '.join(FIGURES)} or 'all'")
    parser.add_argument("--replay-schedule", default="", metavar="TRACE",
                        help="replay a violation trace written by 'python -m "
                             "repro.analysis check' and report whether the "
                             "recorded violation reproduces (exit 0 when it "
                             "does)")
    parser.add_argument("--scale", default="",
                        help="'small' (default) or 'paper' (published maxima)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent figure points "
                             "(default 1 = serial; 0 = all cores); tables are "
                             "identical at any job count")
    parser.add_argument("--json", default="",
                        help="also write results to this JSON file")
    parser.add_argument("--chart", action="store_true",
                        help="render each table as an ASCII chart too")
    parser.add_argument("--logy", action="store_true",
                        help="log-scale the chart y axis (implies --chart)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run under the yield-point race sanitizer "
                             "(repro.analysis): shared-state races raise "
                             "RaceConditionError instead of silently "
                             "skewing results")
    parser.add_argument("--validate-collectives", action="store_true",
                        help="record every rank's collective trace and "
                             "assert per-communicator congruence at job "
                             "drain (CollectiveMismatchError on "
                             "divergence); the runtime cross-check for "
                             "REP101..REP104 findings")
    args = parser.parse_args(argv)
    if args.replay_schedule:
        if args.figures:
            parser.error("--replay-schedule takes no figure arguments")
        return _replay(args.replay_schedule)
    if not args.figures:
        parser.error("name figures to run, or use --replay-schedule")
    if args.sanitize:
        # Via the environment so --jobs worker processes inherit it; each
        # build_world() checks the flag and attaches a sanitizer.
        os.environ["REPRO_SANITIZE"] = "1"
    if args.validate_collectives:
        # Same channel as --sanitize; build_world() attaches the tracer.
        os.environ["REPRO_VALIDATE_COLLECTIVES"] = "1"
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")

    names = list(FIGURES) if "all" in args.figures else args.figures
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        parser.error(f"unknown figure(s) {unknown}; choose from {sorted(FIGURES)}")
    scale = get_scale(args.scale)
    san = " | sanitize=on" if args.sanitize else ""
    val = " | validate-collectives=on" if args.validate_collectives else ""
    print(f"# repro harness | scale={scale.name}{san}{val}\n", flush=True)
    all_tables = []
    for name in names:
        t0 = time.time()
        tables = FIGURES[name](scale, jobs=args.jobs)
        dt = time.time() - t0
        all_tables.extend(tables)
        print(render_tables(tables))
        if args.chart or args.logy:
            from .plots import chart_table

            for table in tables:
                print()
                print(chart_table(table, logy=args.logy))
        print(f"   [{name}: {dt:.1f}s wall]\n", flush=True)
    if args.json:
        save_json(all_tables, args.json)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
