"""Fig. 8 — large-scale results on the Cielo model (§VI).

* (a) read bandwidth to 65,536 processes: N-N direct, N-N through PLFS,
  N-1 through PLFS (Parallel Index Read + 10 federated MDS);
* (b) N-N write-open time for PLFS-1 / PLFS-10 / PLFS-20;
* (c) N-1 write-open time for PLFS-1 vs PLFS-10 (subdir federation);
* (d) N-N open time, PLFS-10 vs direct — the paper's 17x headline at
  32,768 processes.
"""

from __future__ import annotations

from typing import List

from ...cluster import cielo
from ...pfs import panfs_cielo
from ...workloads import (
    MPIIOTest,
    direct_stack,
    n1_open_storm,
    nn_metadata_storm,
    plfs_stack,
    run_workload,
)
from ..report import Table
from ..scales import Scale
from ..setup import build_world
from ..sweep import run_points

__all__ = ["fig8"]


def _read_bw(world, workload, stack) -> float:
    res = run_workload(world, workload, stack, cold_read=True)
    return res.read.effective_bandwidth


def run_fig8a_point(n: int, scale: Scale):
    """(N-N direct, N-N PLFS, N-1 PLFS) read bandwidth at *n* procs."""
    def wl(layout):
        return MPIIOTest(n, size_per_proc=scale.fig8_size_per_proc,
                         transfer=scale.fig8_transfer, layout=layout)

    w = build_world(cluster_spec=cielo(), pfs_cfg=panfs_cielo())
    bw_nn_direct = _read_bw(w, wl("nn"), direct_stack(w))
    w = build_world(cluster_spec=cielo(), pfs_cfg=panfs_cielo(), n_volumes=10,
                    federation="container", aggregation="parallel")
    bw_nn_plfs = _read_bw(w, wl("nn"), plfs_stack(w))
    w = build_world(cluster_spec=cielo(), pfs_cfg=panfs_cielo(), n_volumes=10,
                    federation="subdir", aggregation="parallel")
    bw_n1_plfs = _read_bw(w, wl("strided"), plfs_stack(w))
    return bw_nn_direct, bw_nn_plfs, bw_n1_plfs


def run_fig8b_point(n: int, k: int, scale: Scale) -> float:
    """N-N write-open time at *n* procs with *k* federated MDSes."""
    world = build_world(cluster_spec=cielo(), pfs_cfg=panfs_cielo(), n_volumes=k,
                        federation="container" if k > 1 else "none")
    return nn_metadata_storm(world, n, 1, "plfs").open_time


def run_fig8c_point(n: int, scale: Scale):
    """N-1 write-open time at *n* procs: (PLFS-1, PLFS-10 subdir)."""
    w1 = build_world(cluster_spec=cielo(), pfs_cfg=panfs_cielo(), n_volumes=1)
    t1 = n1_open_storm(w1, n, "plfs").open_time
    w10 = build_world(cluster_spec=cielo(), pfs_cfg=panfs_cielo(), n_volumes=10,
                      federation="subdir")
    t10 = n1_open_storm(w10, n, "plfs").open_time
    return t1, t10


def run_fig8d_point(n: int, scale: Scale):
    """N-N open time at *n* procs: (direct, PLFS-10)."""
    wd = build_world(cluster_spec=cielo(), pfs_cfg=panfs_cielo())
    td = nn_metadata_storm(wd, n, 1, "direct").open_time
    wp = build_world(cluster_spec=cielo(), pfs_cfg=panfs_cielo(), n_volumes=10,
                     federation="container")
    tp = nn_metadata_storm(wp, n, 1, "plfs").open_time
    return td, tp


def fig8a(scale: Scale, jobs: int = 1) -> Table:
    """Large-scale read bandwidth: N-N direct vs N-N/N-1 through PLFS."""
    table = Table(
        id="fig8a",
        title="Cielo read bandwidth [MB/s]: N-N direct vs N-N PLFS vs N-1 PLFS",
        columns=["procs", "nn_direct", "nn_plfs", "n1_plfs"],
        notes="paper: N-1 PLFS >= N-N direct except at the top count; "
              "N-N PLFS close to or above direct (ParallelIndexRead + 10 MDS)",
    )
    for n, bws in zip(scale.fig8_read_procs,
                      run_points(run_fig8a_point,
                                 [(n, scale) for n in scale.fig8_read_procs],
                                 jobs)):
        table.add(n, *[bw * 1e-6 for bw in bws])
    return table


def fig8b(scale: Scale, jobs: int = 1) -> Table:
    """N-N write-open time vs federated MDS count."""
    table = Table(
        id="fig8b",
        title="Cielo N-N write-open time [s] vs MDS count",
        columns=["procs"] + [f"PLFS-{k}" for k in scale.fig8_mds_counts],
        notes="paper: PLFS-1 performs poorly; 10 MDS improves opens significantly",
    )
    grid = [(n, k) for n in scale.fig8_meta_procs for k in scale.fig8_mds_counts]
    results = dict(zip(grid, run_points(run_fig8b_point,
                                        [(n, k, scale) for n, k in grid], jobs)))
    for n in scale.fig8_meta_procs:
        table.add(n, *[results[(n, k)] for k in scale.fig8_mds_counts])
    return table


def fig8c(scale: Scale, jobs: int = 1) -> Table:
    """N-1 write-open time, PLFS-1 vs PLFS-10 (subdir federation)."""
    table = Table(
        id="fig8c",
        title="Cielo N-1 write-open time [s] vs MDS count (subdir federation)",
        columns=["procs", "PLFS-1", "PLFS-10"],
        notes="paper: flat at small scale (one container, one MDS suffices); "
              "10 MDS wins as process count grows",
    )
    for n, (t1, t10) in zip(scale.fig8_meta_procs,
                            run_points(run_fig8c_point,
                                       [(n, scale) for n in scale.fig8_meta_procs],
                                       jobs)):
        table.add(n, t1, t10)
    return table


def fig8d(scale: Scale, jobs: int = 1) -> Table:
    """The 17x headline: direct vs PLFS-10 N-N open time."""
    table = Table(
        id="fig8d",
        title="Cielo N-N open time [s]: PLFS-10 vs direct",
        columns=["procs", "without_plfs", "with_plfs10", "speedup"],
        notes="paper: max speedup 17x at 32,768 processes",
    )
    for n, (td, tp) in zip(scale.fig8_meta_procs,
                           run_points(run_fig8d_point,
                                      [(n, scale) for n in scale.fig8_meta_procs],
                                      jobs)):
        table.add(n, td, tp, td / tp)
    return table


def fig8(scale: Scale, jobs: int = 1) -> List[Table]:
    """All four §VI panels."""
    return [fig8a(scale, jobs), fig8b(scale, jobs), fig8c(scale, jobs),
            fig8d(scale, jobs)]
