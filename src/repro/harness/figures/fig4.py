"""Fig. 4 — read scaling of the three index-aggregation designs (§IV-C).

MPI-IO Test on the 64-node cluster: every stream writes then re-reads its
50 MB of a shared PLFS file.  Four panels:

* (a) read open time — the time to aggregate the container's indices;
* (b) effective read bandwidth (open+read+close, warm node caches — the
  paper notes caching pushes 1024 streams past the 1.25 GB/s peak);
* (c) write close time — where Index Flatten pays;
* (d) write bandwidth.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...cluster import lanl64
from ...plfs import AGGREGATIONS
from ...units import MB
from ...workloads import MPIIOTest, plfs_stack, run_workload
from ..report import Table
from ..scales import Scale
from ..setup import build_world
from ..sweep import run_points

__all__ = ["fig4", "run_fig4_point"]


def run_fig4_point(streams: int, aggregation: str, scale: Scale) -> Dict[str, float]:
    """One (streams, strategy) cell: write pass + warm read pass."""
    world = build_world(cluster_spec=lanl64(), aggregation=aggregation)
    workload = MPIIOTest(streams, size_per_proc=scale.fig4_size_per_proc,
                         transfer=scale.fig4_transfer, layout="strided")
    res = run_workload(world, workload, plfs_stack(world), cold_read=False)
    return {
        "read_open_s": res.read.open_time,
        "read_bw": res.read.effective_bandwidth,
        "write_close_s": res.write.close_time,
        "write_bw": res.write.effective_bandwidth,
    }


def fig4(scale: Scale, jobs: int = 1) -> List[Table]:
    panels = [
        ("fig4a", "Read open (index aggregation) time [s]", "read_open_s", 1.0,
         "paper: Flatten and ParallelRead ~4x faster than Original at 2048"),
        ("fig4b", "Effective read bandwidth [MB/s]", "read_bw", 1e-6,
         "paper: ~3x over Original at 2048; caching exceeds the 1250 MB/s peak at 1024"),
        ("fig4c", "Write close time [s]", "write_close_s", 1.0,
         "paper: Flatten's close is higher at scale (index gather + global write)"),
        ("fig4d", "Write bandwidth [MB/s]", "write_bw", 1e-6,
         "paper: Flatten pays a modest write-bandwidth penalty"),
    ]
    tables = {pid: Table(id=pid, title=title,
                         columns=["streams"] + [a for a in AGGREGATIONS],
                         notes=note)
              for pid, title, _, _, note in panels}
    grid = [(streams, agg) for streams in scale.fig4_streams
            for agg in AGGREGATIONS]
    results = run_points(run_fig4_point,
                         [(s, a, scale) for s, a in grid], jobs)
    cells: Dict[Tuple[int, str], Dict[str, float]] = dict(zip(grid, results))
    for pid, _, key, factor, _ in panels:
        for streams in scale.fig4_streams:
            tables[pid].add(streams, *[cells[(streams, a)][key] * factor
                                       for a in AGGREGATIONS])
    return [tables[pid] for pid, *_ in panels]
