"""The paper's §I/§VIII headline: write 150x, read 10x, metadata 17x.

Computed as the maxima the paper's own maxima come from: the best Fig. 2
write speedup, the best Fig. 5e read speedup, and the best Fig. 8d
metadata speedup.
"""

from __future__ import annotations

from typing import List

from ..report import Table
from ..scales import Scale
from .fig2 import fig2
from .fig5 import fig5
from .fig8 import fig8d

__all__ = ["headline"]


def headline(scale: Scale, jobs: int = 1) -> List[Table]:
    table = Table(
        id="headline",
        title="Headline maxima: PLFS speedups (write / read / metadata)",
        columns=["metric", "paper", "measured", "source"],
        notes="paper §I: 'up to 150x, 10x, and 17x respectively'",
    )
    write_best = max(v for t in fig2(scale, jobs) for v in t.column("speedup"))
    f5 = fig5(scale, jobs)
    lanl1 = next(t for t in f5 if t.id == "fig5e")
    read_best = max(lanl1.column("plfs_speedup"))
    f8d = fig8d(scale, jobs)
    meta_best = max(f8d.column("speedup"))
    table.add("write speedup", "150x", f"{write_best:.1f}x", "fig2 max")
    table.add("read speedup", "10x", f"{read_best:.1f}x", "fig5e (LANL 1) max")
    table.add("metadata speedup", "17x", f"{meta_best:.1f}x", "fig8d max")
    return [table]
