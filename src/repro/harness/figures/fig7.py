"""Fig. 7 — N-N metadata performance vs metadata-server count (§V).

A simulated large N-N job (every process opens and closes multiple
files).  PLFS-k spreads containers across k federated volumes/MDSes;
"W/O PLFS" creates plain files in one directory of a single volume.

Paper shapes: open times fall as MDS count rises, PLFS-6/9 beat direct
despite the container-creation burden (7a); close times never beat
direct, because a PLFS close writes a metadata dropping while a plain
close is trivial (7b).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...cluster import lanl64
from ...workloads import nn_metadata_storm
from ..report import Table
from ..scales import Scale
from ..setup import build_world
from ..sweep import run_points

__all__ = ["fig7", "run_fig7_point"]


def run_fig7_point(files_per_proc: int, k: Optional[int],
                   scale: Scale) -> Tuple[float, float]:
    """One storm: (open time, close time); ``k`` MDSes, or direct if None."""
    n = scale.fig7_nprocs
    if k is None:
        world = build_world(cluster_spec=lanl64())
        times = nn_metadata_storm(world, n, files_per_proc, "direct")
    else:
        world = build_world(cluster_spec=lanl64(), n_volumes=k,
                            federation="container" if k > 1 else "none")
        times = nn_metadata_storm(world, n, files_per_proc, "plfs")
    return times.open_time, times.close_time


def fig7(scale: Scale, jobs: int = 1) -> List[Table]:
    n = scale.fig7_nprocs
    mds_counts = list(scale.fig7_mds_counts) + [None]  # None = W/O PLFS
    cols = ["files"] + [f"PLFS-{k}" for k in scale.fig7_mds_counts] + ["W/O PLFS"]
    open_t = Table(id="fig7a", title=f"N-N open time [s] ({n} procs)", columns=cols,
                   notes="paper: more MDS -> lower opens; PLFS-6/9 beat direct, PLFS-1 loses")
    close_t = Table(id="fig7b", title=f"N-N close time [s] ({n} procs)", columns=cols,
                    notes="paper: direct close wins at every MDS count")
    grid = [(fpp, k) for fpp in scale.fig7_files_per_proc for k in mds_counts]
    results = dict(zip(grid, run_points(run_fig7_point,
                                        [(fpp, k, scale) for fpp, k in grid],
                                        jobs)))
    for fpp in scale.fig7_files_per_proc:
        open_t.add(n * fpp, *[results[(fpp, k)][0] for k in mds_counts])
        close_t.add(n * fpp, *[results[(fpp, k)][1] for k in mds_counts])
    return [open_t, close_t]
