"""Fig. 7 — N-N metadata performance vs metadata-server count (§V).

A simulated large N-N job (every process opens and closes multiple
files).  PLFS-k spreads containers across k federated volumes/MDSes;
"W/O PLFS" creates plain files in one directory of a single volume.

Paper shapes: open times fall as MDS count rises, PLFS-6/9 beat direct
despite the container-creation burden (7a); close times never beat
direct, because a PLFS close writes a metadata dropping while a plain
close is trivial (7b).
"""

from __future__ import annotations

from typing import List

from ...cluster import lanl64
from ...workloads import nn_metadata_storm
from ..report import Table
from ..scales import Scale
from ..setup import build_world

__all__ = ["fig7"]


def fig7(scale: Scale) -> List[Table]:
    n = scale.fig7_nprocs
    mds_counts = scale.fig7_mds_counts
    cols = ["files"] + [f"PLFS-{k}" for k in mds_counts] + ["W/O PLFS"]
    open_t = Table(id="fig7a", title=f"N-N open time [s] ({n} procs)", columns=cols,
                   notes="paper: more MDS -> lower opens; PLFS-6/9 beat direct, PLFS-1 loses")
    close_t = Table(id="fig7b", title=f"N-N close time [s] ({n} procs)", columns=cols,
                    notes="paper: direct close wins at every MDS count")
    for files_per_proc in scale.fig7_files_per_proc:
        opens, closes = [], []
        for k in mds_counts:
            world = build_world(cluster_spec=lanl64(), n_volumes=k,
                                federation="container" if k > 1 else "none")
            times = nn_metadata_storm(world, n, files_per_proc, "plfs")
            opens.append(times.open_time)
            closes.append(times.close_time)
        world = build_world(cluster_spec=lanl64())
        direct = nn_metadata_storm(world, n, files_per_proc, "direct")
        open_t.add(n * files_per_proc, *opens, direct.open_time)
        close_t.add(n * files_per_proc, *closes, direct.close_time)
    return [open_t, close_t]
