"""Per-figure reproduction entry points (one module per paper figure)."""

from .ablations import ablations
from .diagnose import diagnose
from .faults import faults
from .fig2 import fig2
from .fig4 import fig4
from .fig5 import fig5
from .fig7 import fig7
from .fig8 import fig8
from .headline import headline

FIGURES = {
    "fig2": fig2,
    "fig4": fig4,
    "fig5": fig5,
    "fig7": fig7,
    "fig8": fig8,
    "ablations": ablations,
    "headline": headline,
    "diagnose": diagnose,
    "faults": faults,
}

__all__ = ["FIGURES", "ablations", "diagnose", "faults", "fig2", "fig4",
           "fig5", "fig7", "fig8", "headline"]
