"""Fig. 5 — read performance across the six I/O kernels (§IV-D).

For each kernel the paper compares the effective read bandwidth of PLFS
(Parallel Index Read, the chosen default) against direct access to the
underlying parallel file system, sweeping process count.  Reads are cold
(a restart job on a different set of clients), writes happen first
through the same stack under test.
"""

from __future__ import annotations

from typing import List

from ...cluster import lanl64
from ...mpiio import Hints
from ...units import KB, MB, MiB
from ...workloads import (
    IOR,
    LANL1,
    LANL3,
    Aramco,
    MADbench,
    Pixie3D,
    Workload,
    direct_stack,
    plfs_stack,
    run_workload,
)
from ..report import Table
from ..scales import Scale
from ..setup import build_world
from ..sweep import run_points

__all__ = ["fig5", "KERNELS", "run_fig5_point"]


def _kernels(scale: Scale):
    """(panel id, label, factory, hints, paper-shape note) per kernel."""
    s = scale.fig5_scale
    # Pixie3D per-proc (paper used 1 GB); keep it divisible by its 8 vars.
    big = max(8, (int(s * 64 * MiB) // 8) * 8)
    total_strong = int(s * 512 * MiB)  # ARAMCO / LANL3 fixed totals
    return [
        ("fig5a", "pixie3d",
         lambda n: Pixie3D(n, per_proc=big, n_vars=8, io_size=8 * MiB),
         Hints(),
         "direct wins small, PLFS scales better at large counts"),
        ("fig5b", "aramco",
         lambda n: Aramco(n, total_bytes=total_strong, chunk=1 * MiB),
         Hints(),
         "PLFS up to ~8x at low counts; direct wins at scale (strong scaling: index time dominates)"),
        ("fig5c", "ior",
         lambda n: IOR(n, size_per_proc=int(s * 12 * MB), transfer=1 * MB),
         Hints(),
         "PLFS wins at all counts, up to ~4.5x"),
        ("fig5d", "madbench",
         lambda n: MADbench(n, matrix_bytes_per_rank=int(s * 8 * MiB),
                            n_components=8, io_size=4 * MiB),
         Hints(),
         "PLFS wins"),
        ("fig5e", "lanl1",
         lambda n: LANL1(n, per_proc=int(s * 8 * MB), record=500 * KB),
         Hints(),
         "PLFS wins at all counts; paper max 10x at 384 procs"),
        ("fig5f", "lanl3",
         lambda n: LANL3(n, total_bytes=total_strong, round_bytes=32 * MiB),
         Hints(cb_enable=True),
         "collective buffering: near parity, PLFS edges ahead at the largest scale"),
    ]


def _read_bw(world, workload: Workload, stack) -> float:
    res = run_workload(world, workload, stack, cold_read=True)
    return res.read.effective_bandwidth


def run_fig5_point(pid: str, n: int, scale: Scale):
    """One (kernel, process count) cell: (direct bw, PLFS bw) in bytes/s."""
    _, _, factory, hints, _ = next(k for k in _kernels(scale) if k[0] == pid)
    wl = factory(n)
    w_direct = build_world(cluster_spec=lanl64())
    bw_direct = _read_bw(w_direct, wl, direct_stack(w_direct, hints))
    w_plfs = build_world(cluster_spec=lanl64(), aggregation="parallel")
    bw_plfs = _read_bw(w_plfs, wl, plfs_stack(w_plfs, hints))
    return bw_direct, bw_plfs


def fig5(scale: Scale, jobs: int = 1) -> List[Table]:
    kernels = _kernels(scale)
    grid = [(pid, n) for pid, *_ in kernels for n in scale.fig5_procs]
    results = dict(zip(grid, run_points(run_fig5_point,
                                        [(pid, n, scale) for pid, n in grid],
                                        jobs)))
    tables: List[Table] = []
    for pid, label, _factory, _hints, note in kernels:
        table = Table(
            id=pid,
            title=f"{label}: effective read bandwidth [MB/s], PLFS vs direct",
            columns=["procs", "direct_MB_s", "plfs_MB_s", "plfs_speedup"],
            notes=f"paper: {note}",
        )
        for n in scale.fig5_procs:
            bw_direct, bw_plfs = results[(pid, n)]
            table.add(n, bw_direct * 1e-6, bw_plfs * 1e-6, bw_plfs / bw_direct)
        tables.append(table)
    return tables


KERNELS = _kernels
