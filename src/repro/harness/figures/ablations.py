"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but sweeps over the knobs whose settings the
paper justifies in prose: the Index Flatten buffering threshold (§IV-A),
the Parallel Index Read group width (§IV-B), the backing file system's
lock granularity (the §II mechanism PLFS sidesteps), and subdir- vs
container-spreading federation (§V).
"""

from __future__ import annotations

from typing import List

from ...cluster import lanl64
from ...pfs import panfs
from ...plfs import PlfsConfig
from ...units import KB, KiB, MB
from ...workloads import (
    MPIIOTest,
    direct_stack,
    n1_open_storm,
    nn_metadata_storm,
    plfs_stack,
    run_workload,
)
from ..report import Table
from ..scales import Scale
from ..setup import build_world
from ..sweep import run_points

__all__ = ["ablate_threshold", "ablate_groups", "ablate_locks",
           "ablate_federation", "ablations"]


def _workload(n, scale: Scale):
    return MPIIOTest(n, size_per_proc=scale.fig4_size_per_proc,
                     transfer=scale.fig4_transfer, layout="strided")


def run_threshold_point(threshold: int, scale: Scale):
    """One flatten-threshold cell: (flattened?, write close, read open)."""
    n = max(scale.fig4_streams)
    world = build_world(cluster_spec=lanl64(),
                        plfs_cfg=PlfsConfig(aggregation="flatten",
                                            flatten_threshold=threshold))
    res = run_workload(world, _workload(n, scale), plfs_stack(world),
                       cold_read=False)
    layout = world.mount.layout(_workload(n, scale).file_path(0))
    flattened = layout.home_volume.ns.exists(layout.global_index_path)
    return flattened, res.write.close_time, res.read.open_time


def ablate_threshold(scale: Scale, jobs: int = 1) -> Table:
    """Index Flatten threshold: too low and flatten never engages."""
    n = max(scale.fig4_streams)
    per_writer_index = (scale.fig4_size_per_proc // scale.fig4_transfer) * 48
    table = Table(
        id="ablate-threshold",
        title=f"Index Flatten threshold sweep ({n} streams; per-writer index "
              f"= {per_writer_index} B)",
        columns=["threshold_B", "flattened", "write_close_s", "read_open_s"],
        notes="§IV-A: flatten engages only when every writer's buffered index fits",
    )
    thresholds = [per_writer_index // 4, per_writer_index,
                  4 * per_writer_index, 64 * per_writer_index]
    for threshold, (flattened, close_s, open_s) in zip(
            thresholds, run_points(run_threshold_point,
                                   [(t, scale) for t in thresholds], jobs)):
        table.add(threshold, flattened, close_s, open_s)
    return table


def run_group_point(g: int, scale: Scale) -> float:
    """Read-open time with Parallel Index Read groups of width *g*."""
    n = max(scale.fig4_streams)
    world = build_world(cluster_spec=lanl64(),
                        plfs_cfg=PlfsConfig(aggregation="parallel",
                                            parallel_group_size=g))
    res = run_workload(world, _workload(n, scale), plfs_stack(world),
                       cold_read=False)
    return res.read.open_time


def ablate_groups(scale: Scale, jobs: int = 1) -> Table:
    """Parallel Index Read group width vs read-open time."""
    n = max(scale.fig4_streams)
    table = Table(
        id="ablate-groups",
        title=f"Parallel Index Read group size sweep ({n} streams)",
        columns=["group_size", "read_open_s"],
        notes="§IV-B: two-level hierarchy; sqrt(N)-ish groups balance the levels",
    )
    sizes = sorted({2, max(2, int(round(n ** 0.5)) // 2), int(round(n ** 0.5)),
                    min(n, 4 * int(round(n ** 0.5))), n})
    for g, open_s in zip(sizes, run_points(run_group_point,
                                           [(g, scale) for g in sizes], jobs)):
        table.add(g, open_s)
    return table


def run_lock_point(block: int, scale: Scale) -> float:
    """Direct N-1 write bandwidth with lock blocks of *block* bytes."""
    n = scale.fig2_nprocs
    wl = MPIIOTest(n, size_per_proc=2 * MB, transfer=47 * KB, layout="strided")
    cfg = panfs(lock_block=block, full_stripe=0, rmw_factor=1.0)
    world = build_world(cluster_spec=lanl64(), pfs_cfg=cfg)
    res = run_workload(world, wl, direct_stack(world), do_read=False)
    return res.write.effective_bandwidth


def ablate_locks(scale: Scale, jobs: int = 1) -> Table:
    """Backing-FS lock granularity vs direct N-1 write bandwidth."""
    n = scale.fig2_nprocs
    table = Table(
        id="ablate-locks",
        title=f"Lock-block granularity vs direct N-1 write bandwidth ({n} procs, 47 KB records)",
        columns=["lock_block_B", "direct_write_MB_s"],
        notes="§II: coarser write serialization granularity = worse false sharing",
    )
    blocks = [0, 16 * KiB, 64 * KiB, 256 * KiB, 1024 * KiB]
    for block, bw in zip(blocks, run_points(run_lock_point,
                                            [(b, scale) for b in blocks], jobs)):
        table.add(block, bw * 1e-6)
    return table


def run_federation_point(mode: str, scale: Scale):
    """(N-N open, N-1 open) under federation *mode*."""
    n = scale.fig7_nprocs
    k = max(scale.fig7_mds_counts)
    world = build_world(cluster_spec=lanl64(), n_volumes=(1 if mode == "none" else k),
                        federation=mode)
    nn = nn_metadata_storm(world, n, 4, "plfs", dirname="/abl-nn")
    n1 = n1_open_storm(world, n, "plfs", path="/abl-n1/shared")
    return nn.open_time, n1.open_time


def ablate_federation(scale: Scale, jobs: int = 1) -> Table:
    """Container- vs subdir-spreading under N-N and N-1 metadata storms."""
    n = scale.fig7_nprocs
    k = max(scale.fig7_mds_counts)
    table = Table(
        id="ablate-federation",
        title=f"Federation mode vs metadata times ({n} procs, {k} MDS)",
        columns=["federation", "nn_open_s", "n1_open_s"],
        notes="§V: container spreading fixes app N-N; subdir spreading fixes "
              "the physical N-N of transformed N-1",
    )
    modes = ["none", "container", "subdir"]
    for mode, (nn_open, n1_open) in zip(
            modes, run_points(run_federation_point,
                              [(m, scale) for m in modes], jobs)):
        table.add(mode, nn_open, n1_open)
    return table


def run_index_merge_point(layout: str, merge: bool, scale: Scale):
    """One (layout, merge) cell: (on-media index records, read-open time)."""
    n = scale.fig2_nprocs
    world = build_world(cluster_spec=lanl64(),
                        plfs_cfg=PlfsConfig(aggregation="parallel",
                                            index_merge=merge))
    wl = MPIIOTest(n, size_per_proc=scale.fig4_size_per_proc,
                   transfer=scale.fig4_transfer, layout=layout)
    res = run_workload(world, wl, plfs_stack(world), cold_read=False)
    return _count_index_records(world, wl), res.read.open_time


def ablate_index_merge(scale: Scale, jobs: int = 1) -> Table:
    """Contiguous index-record merging: index weight and read-open cost.

    Segmented writers (IOR-style) coalesce to one record each when merging
    is on; strided checkpoint writers cannot coalesce at all, so the knob
    is free for them — which is why PLFS enables it unconditionally.
    """
    n = scale.fig2_nprocs
    table = Table(
        id="ablate-index-merge",
        title=f"Index-record merging ({n} procs, segmented vs strided)",
        columns=["layout", "merge", "index_records", "read_open_s"],
        notes="merging collapses sequential runs; strided records never merge",
    )
    grid = [(layout, merge) for layout in ("segmented", "strided")
            for merge in (False, True)]
    for (layout, merge), (records, open_s) in zip(
            grid, run_points(run_index_merge_point,
                             [(lo, m, scale) for lo, m in grid], jobs)):
        table.add(layout, merge, records, open_s)
    return table


def _count_index_records(world, workload) -> int:
    """Total on-media index records of the workload's container."""
    layout = world.mount.layout(workload.file_path(0))
    total = 0
    for s in range(layout.cfg.n_subdirs):
        vol = layout.subdir_volume(s)
        path = layout.subdir_path(s)
        if not vol.ns.exists(path):
            continue
        for name in vol.ns.readdir(path):
            if name.startswith("dropping.index."):
                node = vol.ns.resolve(f"{path}/{name}")
                total += node.data.size // 48
    return total


def ablations(scale: Scale, jobs: int = 1) -> List[Table]:
    return [ablate_threshold(scale, jobs), ablate_groups(scale, jobs),
            ablate_locks(scale, jobs), ablate_federation(scale, jobs),
            ablate_index_merge(scale, jobs)]
