"""faults — resilience under injected failures (repro.faults subsystem).

Campaign useful-work efficiency vs MTBF and fault kind, plus post-crash
recovered-bytes fractions, PLFS vs direct N-1.  The heavy lifting lives
in :mod:`repro.faults.experiment`; this module is the harness entry
point so ``python -m repro.harness faults`` works like any figure.
"""

from __future__ import annotations

from ...faults.experiment import faults, run_faults_point

__all__ = ["faults", "run_faults_point"]
