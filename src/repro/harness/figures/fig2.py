"""Fig. 2 — summary of N-1 write speedups across applications.

The paper's Fig. 2 bar chart shows how much faster the application suite
writes N-1 checkpoints through PLFS than directly to the parallel file
system (speedups ranging up to the 150x headline).  Section III credits
the win to decoupling: no shared-object serialization on the backing
store.  We also regenerate the §I/§III portability claim as a companion
table: the same transformation wins on all three modeled file systems.
"""

from __future__ import annotations

from typing import List

from typing import Tuple

from ...cluster import lanl64
from ...pfs import gpfs, lustre, panfs
from ...workloads import app_suite, direct_stack, plfs_stack, run_workload
from ..report import Table
from ..scales import Scale
from ..setup import build_world
from ..sweep import run_points

__all__ = ["fig2", "run_fig2_app_point", "run_fig2_fs_point"]

_FS_PRESETS = {"panfs": panfs, "lustre": lustre, "gpfs": gpfs}


def _write_time(world, workload, stack) -> float:
    res = run_workload(world, workload, stack, do_read=False)
    return res.write.wall_time


def run_fig2_app_point(label: str, scale: Scale) -> Tuple[float, float]:
    """One application bar: (direct write time, PLFS write time)."""
    spec = next(s for s in app_suite(scale.fig2_app_scale) if s.label == label)
    n = scale.fig2_nprocs
    workload = spec.make(n)
    w_direct = build_world(cluster_spec=lanl64())
    t_direct = _write_time(w_direct, workload, direct_stack(w_direct, spec.hints))
    w_plfs = build_world(cluster_spec=lanl64(), federation="none")
    t_plfs = _write_time(w_plfs, workload, plfs_stack(w_plfs, spec.hints))
    return t_direct, t_plfs


def run_fig2_fs_point(fs: str, scale: Scale) -> Tuple[float, float]:
    """One file-system row: (direct write time, PLFS write time), LANL 2."""
    cfg = _FS_PRESETS[fs]()
    n = scale.fig2_nprocs
    lanl2 = next(s for s in app_suite(scale.fig2_app_scale) if s.label == "LANL 2")
    workload = lanl2.make(n)
    w_direct = build_world(cluster_spec=lanl64(), pfs_cfg=cfg)
    t_direct = _write_time(w_direct, workload, direct_stack(w_direct))
    w_plfs = build_world(cluster_spec=lanl64(), pfs_cfg=cfg)
    t_plfs = _write_time(w_plfs, workload, plfs_stack(w_plfs))
    return t_direct, t_plfs


def fig2(scale: Scale, jobs: int = 1) -> List[Table]:
    n = scale.fig2_nprocs
    table = Table(
        id="fig2",
        title=f"N-1 write speedup of PLFS per application ({n} procs, PanFS-like)",
        columns=["app", "direct_write_s", "plfs_write_s", "speedup"],
        notes="paper: speedups between ~10x and ~150x across the suite",
    )
    labels = [spec.label for spec in app_suite(scale.fig2_app_scale)]
    for label, (t_direct, t_plfs) in zip(
            labels, run_points(run_fig2_app_point,
                               [(lb, scale) for lb in labels], jobs)):
        table.add(label, t_direct, t_plfs, t_direct / t_plfs)

    porta = Table(
        id="fig2-portability",
        title=f"Same transformation across the three file systems ({n} procs, LANL 2 pattern)",
        columns=["file_system", "direct_write_s", "plfs_write_s", "speedup"],
        notes="§III: all three major parallel file systems serialize N-1; PLFS wins on each",
    )
    for fs, (t_direct, t_plfs) in zip(
            _FS_PRESETS, run_points(run_fig2_fs_point,
                                    [(fs, scale) for fs in _FS_PRESETS], jobs)):
        porta.add(_FS_PRESETS[fs]().name, t_direct, t_plfs, t_direct / t_plfs)
    return [table, porta]
