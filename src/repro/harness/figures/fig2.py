"""Fig. 2 — summary of N-1 write speedups across applications.

The paper's Fig. 2 bar chart shows how much faster the application suite
writes N-1 checkpoints through PLFS than directly to the parallel file
system (speedups ranging up to the 150x headline).  Section III credits
the win to decoupling: no shared-object serialization on the backing
store.  We also regenerate the §I/§III portability claim as a companion
table: the same transformation wins on all three modeled file systems.
"""

from __future__ import annotations

from typing import List

from ...cluster import lanl64
from ...pfs import gpfs, lustre, panfs
from ...workloads import app_suite, direct_stack, plfs_stack, run_workload
from ..report import Table
from ..scales import Scale
from ..setup import build_world

__all__ = ["fig2"]


def _write_time(world, workload, stack) -> float:
    res = run_workload(world, workload, stack, do_read=False)
    return res.write.wall_time


def fig2(scale: Scale) -> List[Table]:
    n = scale.fig2_nprocs
    table = Table(
        id="fig2",
        title=f"N-1 write speedup of PLFS per application ({n} procs, PanFS-like)",
        columns=["app", "direct_write_s", "plfs_write_s", "speedup"],
        notes="paper: speedups between ~10x and ~150x across the suite",
    )
    for spec in app_suite(scale.fig2_app_scale):
        workload = spec.make(n)
        w_direct = build_world(cluster_spec=lanl64())
        t_direct = _write_time(w_direct, workload, direct_stack(w_direct, spec.hints))
        w_plfs = build_world(cluster_spec=lanl64(), federation="none")
        t_plfs = _write_time(w_plfs, workload, plfs_stack(w_plfs, spec.hints))
        table.add(spec.label, t_direct, t_plfs, t_direct / t_plfs)

    porta = Table(
        id="fig2-portability",
        title=f"Same transformation across the three file systems ({n} procs, LANL 2 pattern)",
        columns=["file_system", "direct_write_s", "plfs_write_s", "speedup"],
        notes="§III: all three major parallel file systems serialize N-1; PLFS wins on each",
    )
    lanl2 = next(s for s in app_suite(scale.fig2_app_scale) if s.label == "LANL 2")
    for preset in (panfs, lustre, gpfs):
        cfg = preset()
        workload = lanl2.make(n)
        w_direct = build_world(cluster_spec=lanl64(), pfs_cfg=cfg)
        t_direct = _write_time(w_direct, workload, direct_stack(w_direct))
        w_plfs = build_world(cluster_spec=lanl64(), pfs_cfg=cfg)
        t_plfs = _write_time(w_plfs, workload, plfs_stack(w_plfs))
        porta.add(cfg.name, t_direct, t_plfs, t_direct / t_plfs)
    return [table, porta]
