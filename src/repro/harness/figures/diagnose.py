"""`harness diagnose` — where does the time go on each stack?

Runs one representative N-1 checkpoint+restart through direct access and
through PLFS, then prints the per-resource utilization and cache reports.
Not a paper figure; the paper's §II claims about *why* N-1 is slow (lock
serialization, shared-object contention, idle interconnect) become
visible counters here.
"""

from __future__ import annotations

from typing import List

from ...cluster import lanl64
from ...workloads import MPIIOTest, direct_stack, plfs_stack, run_workload
from ..diagnostics import cache_report, resource_report
from ..report import Table
from ..scales import Scale
from ..setup import build_world
from ..sweep import run_points

__all__ = ["diagnose", "run_diagnose_point"]


def run_diagnose_point(stack_name: str, scale: Scale) -> List[Table]:
    """Resource + cache report tables for one stack ('direct' or 'plfs')."""
    n = scale.fig2_nprocs
    wl = MPIIOTest(n, size_per_proc=scale.fig4_size_per_proc // 5,
                   transfer=scale.fig4_transfer)
    stack_fn = direct_stack if stack_name == "direct" else plfs_stack
    world = build_world(cluster_spec=lanl64(), aggregation="parallel")
    run_workload(world, wl, stack_fn(world), cold_read=False)
    res = resource_report(world)
    res.id = f"diagnose-{stack_name}"
    res.title = f"[{stack_name}] " + res.title
    cache = cache_report(world)
    cache.id = f"diagnose-{stack_name}-cache"
    cache.title = f"[{stack_name}] " + cache.title
    return [res, cache]


def diagnose(scale: Scale, jobs: int = 1) -> List[Table]:
    results = run_points(run_diagnose_point,
                         [(s, scale) for s in ("direct", "plfs")], jobs)
    return [t for pair in results for t in pair]
