"""`harness diagnose` — where does the time go on each stack?

Runs one representative N-1 checkpoint+restart through direct access and
through PLFS, then prints the per-resource utilization and cache reports.
Not a paper figure; the paper's §II claims about *why* N-1 is slow (lock
serialization, shared-object contention, idle interconnect) become
visible counters here.
"""

from __future__ import annotations

from typing import List

from ...cluster import lanl64
from ...workloads import MPIIOTest, direct_stack, plfs_stack, run_workload
from ..diagnostics import cache_report, resource_report
from ..report import Table
from ..scales import Scale
from ..setup import build_world

__all__ = ["diagnose"]


def diagnose(scale: Scale) -> List[Table]:
    n = scale.fig2_nprocs
    wl = MPIIOTest(n, size_per_proc=scale.fig4_size_per_proc // 5,
                   transfer=scale.fig4_transfer)
    tables: List[Table] = []
    for stack_name, stack_fn in (("direct", direct_stack), ("plfs", plfs_stack)):
        world = build_world(cluster_spec=lanl64(), aggregation="parallel")
        run_workload(world, wl, stack_fn(world), cold_read=False)
        res = resource_report(world)
        res.id = f"diagnose-{stack_name}"
        res.title = f"[{stack_name}] " + res.title
        cache = cache_report(world)
        cache.id = f"diagnose-{stack_name}-cache"
        cache.title = f"[{stack_name}] " + cache.title
        tables.extend([res, cache])
    return tables
