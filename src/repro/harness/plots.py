"""Terminal charts: render result tables the way the paper plots them.

`python -m repro.harness fig5 --chart` draws each table as an ASCII line
chart — x from the first column (process counts, stream counts, file
counts), one series per remaining numeric column — with optional log-y,
which is how the paper presents most of its figures.

The renderer is deliberately simple: fixed-size character grid, last
writer wins per cell, series labeled by letter.  It exists to eyeball
shapes (who wins, where curves cross), not for publication.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from .report import Table

__all__ = ["ascii_chart", "chart_table"]

_MARKS = "abcdefghij"


def _is_num(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def ascii_chart(xs: Sequence[float], series: List[Sequence[Optional[float]]],
                labels: Sequence[str], *, width: int = 64, height: int = 16,
                logy: bool = False, title: str = "") -> str:
    """Render one or more y-series over shared xs as an ASCII chart."""
    if not xs or not series:
        return "(no data)"
    ys = [y for s in series for y in s if y is not None and _is_num(y)]
    if not ys:
        return "(no numeric data)"
    if logy:
        ys = [y for y in ys if y > 0]
        if not ys:
            return "(log scale needs positive data)"

    def ty(y):
        return math.log10(y) if logy else y

    lo, hi = min(map(ty, ys)), max(map(ty, ys))
    if hi == lo:
        hi = lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        mark = _MARKS[si % len(_MARKS)]
        for x, y in zip(xs, s):
            if y is None or not _is_num(y) or (logy and y <= 0):
                continue
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((ty(y) - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = mark

    def fmt(v):
        if logy:
            v = 10 ** v
        if abs(v) >= 1000 or (0 < abs(v) < 0.01):
            return f"{v:.2g}"
        return f"{v:.3g}"

    lines = []
    if title:
        lines.append(title)
    y_label_w = max(len(fmt(hi)), len(fmt(lo)))
    for i, row in enumerate(grid):
        label = ""
        if i == 0:
            label = fmt(hi)
        elif i == height - 1:
            label = fmt(lo)
        lines.append(f"{label:>{y_label_w}} |{''.join(row)}")
    lines.append(f"{'':>{y_label_w}} +{'-' * width}")
    x_axis = f"{fmt(ty(x_lo) if logy else x_lo):<{width // 2}}{fmt(ty(x_hi) if logy else x_hi):>{width // 2}}"
    lines.append(f"{'':>{y_label_w}}  {x_axis}")
    legend = "  ".join(f"{_MARKS[i % len(_MARKS)]}={lab}"
                       for i, lab in enumerate(labels))
    lines.append(f"{'':>{y_label_w}}  {legend}" + ("   [log y]" if logy else ""))
    return "\n".join(lines)


def chart_table(table: Table, *, logy: bool = False, width: int = 64,
                height: int = 16) -> str:
    """Chart a harness table: first column = x, numeric columns = series."""
    if not table.rows:
        return "(empty table)"
    xs = [row[0] for row in table.rows]
    if not all(_is_num(x) for x in xs):
        return "(first column is not numeric; nothing to chart)"
    labels, series = [], []
    for ci, col in enumerate(table.columns[1:], start=1):
        values = [row[ci] for row in table.rows]
        if any(_is_num(v) for v in values):
            labels.append(col)
            series.append([v if _is_num(v) else None for v in values])
    if not series:
        return "(no numeric series)"
    return ascii_chart(xs, series, labels, width=width, height=height,
                       logy=logy, title=f"{table.id}: {table.title}")
