"""A miniature HDF5-style layout (what the ARAMCO kernel writes through).

HDF5 files interleave a superblock + object metadata with chunked dataset
storage.  Processes write disjoint chunks of a dataset; rank 0 also
updates small metadata blocks (B-tree nodes, object headers) as chunks
are allocated.  As with pnetCDF, PLFS only sees the resulting offsets, so
this module produces them: per-rank chunk extents plus rank-0 metadata
dribbles — the small-unaligned-write seasoning that makes real HDF5 N-1
files hard on parallel file systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..errors import ConfigError

__all__ = ["HDF5Layout"]


@dataclass(frozen=True)
class HDF5Layout:
    """Offsets of an HDF5-like file: one chunked dataset + metadata blocks."""

    chunk_bytes: int
    chunks_per_rank: int
    nprocs: int
    superblock_bytes: int = 2048
    md_block_bytes: int = 544       # object header / B-tree node dribbles
    md_every_chunks: int = 8        # rank 0 updates metadata this often

    def __post_init__(self) -> None:
        if min(self.chunk_bytes, self.chunks_per_rank, self.nprocs) < 1:
            raise ConfigError("HDF5Layout parameters must be >= 1")
        if self.md_every_chunks < 1:
            raise ConfigError("md_every_chunks must be >= 1")

    @property
    def data_base(self) -> int:
        """File offset where chunk storage begins."""
        return self.superblock_bytes + self.md_region_bytes

    @property
    def md_region_bytes(self) -> int:
        """Bytes reserved for object-header/B-tree dribbles."""
        n_md = (self.chunks_per_rank * self.nprocs) // self.md_every_chunks + 1
        return n_md * self.md_block_bytes

    @property
    def total_bytes(self) -> int:
        """Whole-file size."""
        return self.data_base + self.chunk_bytes * self.chunks_per_rank * self.nprocs

    def rank_extents(self, rank: int) -> Iterator[Tuple[int, int]]:
        """Data-chunk extents of *rank*: round-robin chunk ownership."""
        if not (0 <= rank < self.nprocs):
            raise ConfigError(f"rank {rank} out of range for {self.nprocs}")
        for c in range(self.chunks_per_rank):
            chunk_index = c * self.nprocs + rank
            yield (self.data_base + chunk_index * self.chunk_bytes, self.chunk_bytes)

    def metadata_extents(self) -> Iterator[Tuple[int, int]]:
        """Rank-0 metadata dribbles interleaved with chunk allocation."""
        total_chunks = self.chunks_per_rank * self.nprocs
        n_md = total_chunks // self.md_every_chunks + 1
        for i in range(n_md):
            yield (self.superblock_bytes + i * self.md_block_bytes, self.md_block_bytes)

    def superblock_extent(self) -> Tuple[int, int]:
        """(offset, length) of the superblock (rank 0 writes it)."""
        return (0, self.superblock_bytes)

    def bytes_per_rank(self) -> int:
        """Data bytes each rank owns."""
        return self.chunk_bytes * self.chunks_per_rank
