"""A miniature Parallel-NetCDF-style layout (what Pixie 3D writes through).

Parallel-NetCDF files are a header followed by fixed-size variables, each
stored contiguously and partitioned among processes; with a record
dimension, variables interleave per record.  For PLFS the only thing that
matters is the resulting *offset pattern* (§II: data-formatting libraries
"dictate the I/O access patterns"), so this module computes exactly that:
every rank writes one contiguous block per variable per record, at

    header + record * record_size + var_base + rank * block

which is the classic segmented-per-variable N-1 pattern Pixie 3D presents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..errors import ConfigError

__all__ = ["NetCDFLayout"]


@dataclass(frozen=True)
class NetCDFLayout:
    """Offsets of a pnetCDF-like file with fixed vars over a record dim."""

    n_vars: int
    block_per_rank: int       # bytes each rank contributes to one variable
    nprocs: int
    n_records: int = 1
    header_bytes: int = 8192

    def __post_init__(self) -> None:
        if min(self.n_vars, self.block_per_rank, self.nprocs, self.n_records) < 1:
            raise ConfigError("NetCDFLayout parameters must be >= 1")

    @property
    def var_bytes(self) -> int:
        return self.block_per_rank * self.nprocs

    @property
    def record_bytes(self) -> int:
        return self.n_vars * self.var_bytes

    @property
    def total_bytes(self) -> int:
        return self.header_bytes + self.n_records * self.record_bytes

    def header_extent(self) -> Tuple[int, int]:
        """(offset, length) of the header (written by rank 0)."""
        return (0, self.header_bytes)

    def rank_extents(self, rank: int) -> Iterator[Tuple[int, int]]:
        """(offset, length) of every block *rank* owns, in file order."""
        if not (0 <= rank < self.nprocs):
            raise ConfigError(f"rank {rank} out of range for {self.nprocs}")
        for record in range(self.n_records):
            rec_base = self.header_bytes + record * self.record_bytes
            for var in range(self.n_vars):
                yield (rec_base + var * self.var_bytes + rank * self.block_per_rank,
                       self.block_per_rank)

    def bytes_per_rank(self) -> int:
        return self.n_vars * self.n_records * self.block_per_rank
