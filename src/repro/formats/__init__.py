"""Miniature data-format layout libraries (HDF5-ish, pnetCDF-ish)."""

from .hdf5ish import HDF5Layout
from .pnetcdfish import NetCDFLayout

__all__ = ["HDF5Layout", "NetCDFLayout"]
