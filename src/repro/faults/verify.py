"""Recovery verifier: after a crash, prove every surviving acked byte.

The contract under test is PLFS's crash semantics (§II / the container
model): a writer that dies without closing leaves an openhost mark, data
appended since its last index spill is unreachable, and ``plfs_recover``
must make the container consistent again with every *surviving*
acknowledged write readable byte-identically.  The verifier runs the real
tool chain — ``plfs_check`` (expects dirt), ``plfs_recover``, then an
independent read of **every** acknowledged write compared through
:class:`~repro.pfs.data.DataSpec` structural equality — no spot checks.

Each acked write must come back in exactly one of two states:

* **surviving** — reads back byte-identical to what was acknowledged;
* **lost** — reads as a hole (zeros) or beyond EOF: the unspilled tail of
  a killed writer, which PLFS legitimately cannot recover.

Anything else (garbage, torn content, another writer's bytes where they
don't belong) is counted ``mismatched`` and fails the report.  The same
verifier runs against the direct-PFS stack, where in-place writes mean
every acknowledged byte must survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..pfs.data import DataSpec, ZeroData
from ..pfs.volume import Client
from ..plfs.tools import plfs_check, plfs_recover

__all__ = ["AckedWrite", "RecoveryReport", "verify_recovery"]

_VERIFY_CLIENT_BASE = 9_900_000  # far from any job's client_id range


@dataclass(frozen=True)
class AckedWrite:
    """One write whose completion was acknowledged to the application."""

    rank: int
    offset: int
    spec: DataSpec


@dataclass
class RecoveryReport:
    """Outcome of one post-crash verification pass."""

    path: str
    stack: str
    acked_bytes: int = 0
    surviving_bytes: int = 0
    lost_bytes: int = 0
    mismatched_bytes: int = 0
    n_acked: int = 0
    n_lost: int = 0
    dirty_hosts_before: int = 0
    clean_after: bool = True

    @property
    def recovered_fraction(self) -> float:
        """Acked bytes that read back intact after recovery."""
        return self.surviving_bytes / self.acked_bytes if self.acked_bytes else 1.0

    @property
    def ok(self) -> bool:
        """True when nothing read back as garbage and recovery left no dirt."""
        return self.mismatched_bytes == 0 and self.clean_after


def _classify(report: RecoveryReport, write: AckedWrite, view) -> None:
    n = write.spec.length
    report.n_acked += 1
    report.acked_bytes += n
    if view.length == n and view.content_equal(write.spec):
        report.surviving_bytes += n
    elif view.length < n or view.content_equal(ZeroData(view.length)):
        # Beyond recovered EOF, or a hole: the legitimately lost tail.
        report.n_lost += 1
        report.lost_bytes += n
    else:
        report.mismatched_bytes += n


def verify_recovery(world, stack_name: str, path: str,
                    acked: Sequence[AckedWrite]) -> RecoveryReport:
    """Check + recover (PLFS) then read back every acked write.

    Runs as its own simulated process (charged time, like the admin's
    fsck-plus-validation pass it models).  Returns a
    :class:`RecoveryReport`; callers assert on ``ok`` and read
    ``recovered_fraction`` into the resilience figure.
    """
    report = RecoveryReport(path=path, stack=stack_name)
    client = Client(node=world.cluster.nodes[0], client_id=_VERIFY_CLIENT_BASE)
    world.drop_caches()

    if stack_name == "plfs":
        layout = world.mount.layout(path)

        def driver():
            check = yield from plfs_check(layout, client)
            report.dirty_hosts_before = len(check.dirty_hosts)
            post = yield from plfs_recover(layout, client)
            report.clean_after = post.clean
            world.mount.invalidate_index_cache()
            rh = yield from world.mount.open_read(client, path, None)
            for w in acked:
                view = yield from rh.read(w.offset, w.spec.length)
                _classify(report, w, view)
            yield from rh.close()
    else:

        def driver():
            fh = yield from world.volume.open(client, path, "r")
            for w in acked:
                view = yield from fh.read(w.offset, w.spec.length)
                _classify(report, w, view)
            yield from fh.close()

    world.env.run_process(driver(), name="verify-recovery")
    return report
