"""Client-side resilience: bounded timeout/retry with exponential backoff.

Real PLFS clients (and the MPI-IO layers above them) survive transient
storage faults by retrying with backoff; this module is the simulated
equivalent, wrapped around the charged-time operations of the write and
read paths.  Two invariants matter:

* **Bounded**: every policy has a retry cap and a wall-clock deadline, so
  a fault plan can never hang a run — a component that stays down past
  the deadline surfaces the underlying :class:`TransientIOError`.
* **Deterministic**: backoff jitter is drawn from a named substream of
  the fault plan's RNG (``FaultPlan.rng("retry-jitter", key)``), never
  from global randomness, so fault runs replay bit-identically.

Only :class:`~repro.errors.TransientIOError` (and subclasses — a downed
OSD, a crashed MDS, a partitioned network) is retried.  Anything else is
a modeling or logic error and propagates immediately.

Retrying a failed write can re-append bytes whose first copy was charged
but never acknowledged — deliberate retransmission semantics.  Logical
content stays byte-identical (PLFS: the unindexed first copy is dead log
space resolved by last-writer-wins; direct: in-place overwrite), matching
how real clients retransmit over storage fabrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from ..errors import ConfigError, TransientIOError

__all__ = ["RetryPolicy", "retrying"]


@dataclass
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Attempt *k* (0-based) sleeps ``min(max_delay, base_delay * multiplier**k)``
    scaled by ``1 + jitter * u`` with ``u`` drawn from *rng* (a
    ``numpy.random.Generator``); with no rng or zero jitter the backoff is
    pure exponential.  ``deadline`` caps the total time a single logical
    operation may spend retrying.
    """

    max_retries: int = 8
    base_delay: float = 1e-3
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.5
    deadline: float = 600.0
    rng: object = None
    retries: int = 0  # running count of transients absorbed (observability)

    def __post_init__(self):
        if self.max_retries < 0 or self.base_delay <= 0 or self.multiplier < 1:
            raise ConfigError(f"bad retry policy {self!r}")
        if self.max_delay < self.base_delay or self.jitter < 0 or self.deadline <= 0:
            raise ConfigError(f"bad retry policy {self!r}")

    def delay(self, attempt: int) -> float:
        """Backoff before retry *attempt* (0-based)."""
        d = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if self.jitter > 0 and self.rng is not None:
            d *= 1.0 + self.jitter * float(self.rng.random())
        return d


def retrying(env, policy: Optional[RetryPolicy],
             make_attempt: Callable[[], Generator]) -> Generator:
    """Run ``make_attempt()`` (a fresh generator per call), retrying transients.

    With ``policy=None`` this is a plain pass-through — zero extra events,
    so un-instrumented runs stay bit-identical.  On success the attempt's
    return value is returned; on :class:`TransientIOError` the policy's
    backoff is charged as simulated time and the attempt is re-made, up to
    ``max_retries`` times and within ``deadline`` seconds.
    """
    if policy is None:
        result = yield from make_attempt()
        return result
    start = env.now
    attempt = 0
    while True:
        try:
            result = yield from make_attempt()
            return result
        except TransientIOError:
            if attempt >= policy.max_retries:
                raise
            d = policy.delay(attempt)
            if (env.now - start) + d > policy.deadline:
                raise
            attempt += 1
            policy.retries += 1
            yield env.timeout(d)
