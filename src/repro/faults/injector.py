"""FaultInjector: compile a FaultPlan's component events onto a World.

Each component event becomes a pair of engine callbacks — apply at
``event.time``, recover at ``event.time + duration`` — scheduled as
*non-daemon* absolute-time events (:meth:`Engine.schedule_at`).  Non-daemon
matters: a process blocked on a paused server holds no scheduled event, so
a daemon recovery would let ``run()`` drain the queue and report a bogus
deadlock; non-daemon recovery keeps the run alive until the component is
restored.

Arming is *windowed* (:meth:`arm_until`): ``Engine.run()`` executes until
no non-daemon work remains, so arming a whole campaign's timeline at once
would make the first job fast-forward the clock through every future
fault.  Callers arm exactly as far as the wall-clock window they are about
to simulate; the campaign does this from its compute-segment loop, and
single-job experiments just call :meth:`arm` for everything.  Every
apply/recover is recorded in :attr:`applied` for assertions and reports.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ConfigError
from .plan import COMPONENT_KINDS, FaultEvent, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives one plan's component faults against one world."""

    def __init__(self, world, plan: FaultPlan):
        self.world = world
        self.plan = plan
        self.applied: List[Tuple[float, str, str]] = []  # (env time, kind+target, phase)
        self._queue = list(plan.component_events)  # sorted (plan sorts)
        self._cursor = 0

    @property
    def pending(self) -> int:
        """Component events not yet armed."""
        return len(self._queue) - self._cursor

    # -- arming ------------------------------------------------------------
    def arm_until(self, t: float) -> int:
        """Arm events whose apply time is <= *t*; returns how many.

        Each armed event's recovery is armed with it (faults are always
        paired with their restores, so an armed window is self-contained
        and a bounded ``run()`` can never strand a component down).
        """
        n = 0
        while self._cursor < len(self._queue) and self._queue[self._cursor].time <= t:
            self._schedule(self._queue[self._cursor])
            self._cursor += 1
            n += 1
        return n

    def arm(self) -> int:
        """Arm the whole plan (single-job experiments and tests)."""
        return self.arm_until(float("inf"))

    # -- compilation -------------------------------------------------------
    def _schedule(self, ev: FaultEvent) -> None:
        env = self.world.env
        apply_fn, recover_fn, label = self._compile(ev)
        t_apply = max(env.now, ev.time)

        def do_apply(_event=None, fn=apply_fn, lb=label):
            fn()
            self.applied.append((env.now, lb, "apply"))

        def do_recover(_event=None, fn=recover_fn, lb=label):
            fn()
            self.applied.append((env.now, lb, "recover"))

        if t_apply <= env.now:
            do_apply()
        else:
            env.schedule_at(t_apply)._add_callback(do_apply)
        if recover_fn is not None:
            t_rec = t_apply + ev.duration
            if t_rec <= env.now:
                do_recover()
            else:
                env.schedule_at(t_rec)._add_callback(do_recover)

    def _compile(self, ev: FaultEvent):
        """(apply, recover, label) callables for one component event."""
        if ev.kind not in COMPONENT_KINDS:
            raise ConfigError(f"injector cannot compile {ev.kind!r}")
        if ev.kind in ("osd_slow", "osd_outage"):
            osds = self.world.volume.pool.osds
            osd = osds[ev.target % len(osds)]
            if ev.kind == "osd_outage":
                return osd.fail, osd.restore, f"osd_outage:osd{osd.index}"
            factor = ev.magnitude
            return (lambda: osd.slow_down(factor), osd.restore_speed,
                    f"osd_slow:osd{osd.index}x{factor:g}")
        if ev.kind == "mds_crash":
            vols = self.world.volumes
            mds = vols[ev.target % len(vols)].mds
            return mds.crash, mds.failover, f"mds_crash:{mds.name}"
        net = self.world.cluster.storage_net
        if ev.kind == "net_partition":
            return net.partition, net.heal, "net_partition"
        # net_jitter: additive, so overlapping windows compose.
        extra = ev.magnitude

        def add():
            net.extra_latency += extra

        def remove():
            net.extra_latency = max(0.0, net.extra_latency - extra)

        return add, remove, f"net_jitter:+{extra:g}s"
