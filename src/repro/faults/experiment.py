"""The resilience experiment: what faults cost, and what recovery saves.

§I of the paper frames checkpoint I/O entirely in terms of failure — the
whole point of a fast checkpoint path is surviving a machine that breaks.
This experiment closes that loop quantitatively, PLFS vs direct N-1:

* **Efficiency leg** — a full checkpoint/restart campaign driven by a
  seeded :class:`FaultPlan`: the same plan supplies the compute-failure
  clock *and* a schedule of component faults (OSD outages, MDS crashes)
  that strike while checkpoint and restart jobs are in flight.  Clients
  survive the transients through bounded retry policies; the reported
  metric is useful-work efficiency vs MTBF and fault kind.
* **Recovery leg** — one checkpoint job with an injected crash (a writer
  rank killed at a byte offset, or a component fault mid-write), followed
  by ``plfs_check`` / ``plfs_recover`` and a byte-exact read-back of every
  acknowledged write (:mod:`repro.faults.verify`).  The reported metric is
  the recovered fraction of acked bytes — PLFS loses the killed writer's
  unspilled index tail, direct in-place writes lose nothing, and both
  must recover with zero mismatched bytes.

Both stacks run under the same plan seed, so they see identical failure
clocks and fault schedules; tables are bit-identical across runs and
``--jobs`` values.
"""

from __future__ import annotations

from typing import List

from ..harness.report import Table
from ..harness.scales import Scale
from ..harness.setup import build_world
from ..harness.sweep import run_points
from ..mpi import run_job
from ..pfs.data import PatternData
from ..workloads.base import IOStack, direct_stack, plfs_stack
from .injector import FaultInjector
from .plan import COMPONENT_KINDS, FaultEvent, FaultPlan
from .policies import RetryPolicy, retrying
from .verify import AckedWrite, verify_recovery

__all__ = ["faults", "run_faults_point"]

OUTAGE_DURATION = 2.0       # seconds an OSD stays down (campaign faults)
DETECTION_DELAY = 1.0       # MDS crash -> standby promoted


def _policy(plan: FaultPlan, stream: int) -> RetryPolicy:
    """The experiment's client policy: bounded well inside any fault window.

    Worst case a single op retries ~10 times capped at 2 s each — far less
    than the 120 s deadline and far more than the longest injected outage,
    so jobs neither hang nor give up while a component is mid-recovery.
    """
    return RetryPolicy(max_retries=10, base_delay=5e-3, multiplier=2.0,
                       max_delay=2.0, jitter=0.5, deadline=120.0,
                       rng=plan.rng("retry-jitter", stream))


def _make_stack(stack_name: str, world, retry: RetryPolicy) -> IOStack:
    if stack_name == "plfs":
        return plfs_stack(world, retry=retry)
    return direct_stack(world, retry=retry)


# -- efficiency leg ----------------------------------------------------------

def _component_plan(kind: str, mtbf: float, scale: Scale, world) -> FaultPlan:
    if kind in COMPONENT_KINDS:
        return FaultPlan.generate(
            scale.faults_seed, horizon=4.0 * scale.faults_work, mtbf=mtbf,
            kinds=[kind], n_osds=len(world.volume.pool.osds),
            n_ranks=scale.faults_nprocs, outage_duration=OUTAGE_DURATION,
            detection_delay=DETECTION_DELAY)
    return FaultPlan((), seed=scale.faults_seed)


def _efficiency_leg(stack_name: str, kind: str, mtbf: float, scale: Scale):
    from ..workloads.campaign import Campaign

    world = build_world()
    plan = _component_plan(kind, mtbf, scale, world)
    retry = _policy(plan, 0 if stack_name == "plfs" else 1)
    injector = FaultInjector(world, plan) if plan.component_events else None
    camp = Campaign(world, _make_stack(stack_name, world, retry),
                    nprocs=scale.faults_nprocs,
                    per_proc_bytes=scale.faults_per_proc,
                    record_bytes=scale.faults_record,
                    work_target=scale.faults_work,
                    interval=scale.faults_interval, mtbf=mtbf,
                    plan=plan, injector=injector)
    res = camp.run()
    applied = len(injector.applied) // 2 if injector else 0
    return res, applied


# -- recovery leg ------------------------------------------------------------

def _recovery_plan(kind: str, scale: Scale) -> FaultPlan:
    """One-crash plan for the recovery leg, derived from the scale's seed."""
    seed = scale.faults_seed + 1
    rng = FaultPlan((), seed=seed).rng("recovery:" + kind)
    nrec = max(1, scale.faults_per_proc // scale.faults_record)
    events: List[FaultEvent] = []
    if kind == "writer_kill":
        rank = int(rng.integers(scale.faults_nprocs))
        acked_records = int(rng.integers(1, max(2, nrec)))
        events.append(FaultEvent(0.0, "writer_kill", target=rank,
                                 magnitude=float(acked_records * scale.faults_record)))
    elif kind in COMPONENT_KINDS:
        t = float(rng.uniform(0.005, 0.02))
        if kind == "mds_crash":
            events.append(FaultEvent(t, "mds_crash", duration=0.1))
        else:
            events.append(FaultEvent(t, kind, target=int(rng.integers(1 << 16)),
                                     duration=0.2))
    return FaultPlan(events, seed=seed)


def _recovery_leg(stack_name: str, kind: str, scale: Scale):
    # A small spill threshold so a killed writer sits mid-way between index
    # spills — the interesting crash position for PLFS recovery.
    world = build_world(index_spill_records=4)
    plan = _recovery_plan(kind, scale)
    retry = _policy(plan, 2)
    kills = plan.writer_kills()
    FaultInjector(world, plan).arm()
    path = "/faults/ckpt"
    nprocs = scale.faults_nprocs
    per_proc, record = scale.faults_per_proc, scale.faults_record
    env = world.env
    mount, volume = world.mount, world.volume

    def fn(ctx):
        if ctx.rank == 0:
            if stack_name == "plfs":
                yield from mount.mkdir(ctx.client, "/faults")
                # Pre-create the container skeleton: independent opens
                # (comm=None) would otherwise race its creation.
                yield from mount.create(ctx.client, path)
            else:
                yield from volume.makedirs(ctx.client, "/faults")
                fh0 = yield from volume.open(ctx.client, path, "w",
                                             create=True, truncate=True)
                yield from fh0.close()
        yield from ctx.comm.barrier()
        # Independent opens: a killed rank must not strand the others at a
        # collective close, so nothing below is collective.
        if stack_name == "plfs":
            h = yield from mount.open_write(ctx.client, path, None, retry=retry)
        else:
            h = yield from retrying(env, retry, lambda: volume.open(
                ctx.client, path, "w"))
        seed_r = (plan.seed * 1_000_003 + ctx.rank) & 0x7FFFFFFF
        kill = kills.get(ctx.rank)
        acked: List[AckedWrite] = []
        written = 0
        while written < per_proc:
            if kill is not None and written >= kill.magnitude:
                # This rank dies: tear down without closing.  PLFS keeps
                # only the spilled index prefix; direct keeps every
                # acknowledged in-place write.
                if stack_name == "plfs":
                    h.abandon()
                else:
                    h.closed = True
                    h.inode.writers -= 1
                return acked
            n = min(record, per_proc - written)
            off = ctx.rank * record + (written // record) * nprocs * record
            spec = PatternData(seed_r, written, n)
            if stack_name == "plfs":
                yield from h.write(off, spec)
            else:
                yield from retrying(env, retry, lambda o=off, s=spec: h.write(o, s))
            acked.append(AckedWrite(ctx.rank, off, spec))
            written += n
        if stack_name == "plfs":
            yield from mount.close_write(h, None)
        else:
            yield from retrying(env, retry, lambda: h.close())
        return acked

    job = run_job(env, world.cluster, nprocs, fn, name=f"faults-{kind}",
                  client_id_base=7000)
    acked_all: List[AckedWrite] = []
    for per_rank in job.results:
        acked_all.extend(per_rank)
    return verify_recovery(world, stack_name, path, acked_all)


# -- the figure --------------------------------------------------------------

def run_faults_point(stack_name: str, kind: str, mtbf: float,
                     scale: Scale) -> dict:
    """One (stack, fault kind, MTBF) point: efficiency + (once) recovery."""
    res, applied = _efficiency_leg(stack_name, kind, mtbf, scale)
    out = {"efficiency": res.efficiency, "n_failures": res.n_failures,
           "n_faults": applied, "recovered": None, "recovery_ok": None}
    if kind != "none" and mtbf == scale.faults_mtbfs[0]:
        report = _recovery_leg(stack_name, kind, scale)
        out["recovered"] = report.recovered_fraction
        out["recovery_ok"] = report.ok
    return out


def faults(scale: Scale, jobs: int = 1) -> List[Table]:
    kinds = list(scale.faults_kinds)
    mtbfs = list(scale.faults_mtbfs)
    grid = [(s, k, m) for k in kinds for m in mtbfs for s in ("plfs", "direct")]
    results = dict(zip(grid, run_points(
        run_faults_point, [(s, k, m, scale) for s, k, m in grid], jobs)))
    eff = Table(
        id="faults-eff",
        title=f"Campaign useful-work efficiency under faults "
              f"({scale.faults_nprocs} procs)",
        columns=["fault", "MTBF [s]", "PLFS eff", "direct eff",
                 "failures", "component faults"],
        notes="same plan seed for both stacks: identical failure clocks; "
              "PLFS's faster checkpoints lose less work per failure")
    for k in kinds:
        for m in mtbfs:
            p, d = results[("plfs", k, m)], results[("direct", k, m)]
            eff.add(k, m, p["efficiency"], d["efficiency"],
                    p["n_failures"], p["n_faults"])
    rec = Table(
        id="faults-rec",
        title="Post-crash recovery: fraction of acked bytes readable",
        columns=["fault", "PLFS recovered", "PLFS ok",
                 "direct recovered", "direct ok"],
        notes="plfs_check + plfs_recover, then every acked write read back "
              "byte-exactly; PLFS legitimately loses a killed writer's "
              "unspilled tail, direct in-place writes survive whole")
    for k in kinds:
        if k == "none":
            continue
        p, d = results[("plfs", k, mtbfs[0])], results[("direct", k, mtbfs[0])]
        rec.add(k, p["recovered"], p["recovery_ok"],
                d["recovered"], d["recovery_ok"])
    return [eff, rec]
