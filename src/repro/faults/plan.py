"""FaultPlan: deterministic, seeded schedules of component failures.

§I of the paper argues from failure rates: exascale machines fail often
enough that checkpoint I/O *is* the workload.  A :class:`FaultPlan` makes
failure a first-class, reproducible input — a sorted schedule of
:class:`FaultEvent` records plus a seed, from which every stochastic draw
in a fault run (schedule generation, retry jitter, the campaign's
compute-failure clock) derives through named, process-stable substreams.
The same plan therefore replays bit-identically: across repeated runs,
across harness ``--jobs`` counts, and across machines.

Event kinds
-----------
``osd_slow``       one OSD serves at ``1/magnitude`` speed for ``duration``
``osd_outage``     one OSD is down for ``duration`` (new I/O raises EIO,
                   in-flight service stalls frozen until restore)
``mds_crash``      the MDS crashes, dropping queued ops; a standby is
                   promoted after ``duration`` (detection + promotion)
``net_jitter``     the storage network adds ``magnitude`` seconds of
                   latency to every traversal for ``duration``
``net_partition``  the storage network is severed for ``duration``
``writer_kill``    rank ``target`` of the instrumented job dies after
                   acknowledging ``magnitude`` bytes (byte-offset kill;
                   with magnitude 0, at simulated time ``time``)
``compute_kill``   an application compute failure at ``time`` (consumed by
                   the campaign's failure clock, not the injector)

The first five are *component* faults, compiled onto the world by
:class:`repro.faults.injector.FaultInjector`; the last two are consumed at
the workload layer.
"""

from __future__ import annotations

import hashlib
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError

__all__ = ["FAULT_KINDS", "COMPONENT_KINDS", "FaultEvent", "FaultPlan",
           "FailureClock"]

COMPONENT_KINDS = frozenset({
    "osd_slow", "osd_outage", "mds_crash", "net_jitter", "net_partition",
})

FAULT_KINDS = COMPONENT_KINDS | {"writer_kill", "compute_kill"}


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault.  Field meaning per kind is in the module doc."""

    time: float
    kind: str
    target: int = 0
    duration: float = 0.0
    magnitude: float = 1.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; choose from {sorted(FAULT_KINDS)}")
        if self.time < 0 or self.duration < 0:
            raise ConfigError(f"fault times must be non-negative: {self}")
        if self.target < 0:
            raise ConfigError(f"fault target must be non-negative: {self}")


def _substream(seed: int, stream: str, index: int) -> np.random.Generator:
    """A process-stable named substream of the plan's seed.

    ``crc32`` rather than ``hash()`` because Python string hashing is
    salted per process — worker processes in a ``--jobs N`` sweep must
    derive identical streams.
    """
    return np.random.default_rng(
        [seed & 0xFFFFFFFF, zlib.crc32(stream.encode("utf-8")), index])


class FailureClock:
    """Lazy source of absolute compute-failure times for a campaign.

    Explicit ``compute_kill`` events fire first (in schedule order); once
    exhausted, arrivals continue as a renewal process with exponential
    gaps of mean *mtbf* drawn from the plan's ``campaign-failures``
    substream — the classic memoryless platform-failure model, now seeded
    through the plan instead of a private ``random.Random``.
    """

    def __init__(self, rng: np.random.Generator, mtbf: Optional[float],
                 explicit: Sequence[float] = ()):
        self._rng = rng
        self._mtbf = mtbf
        self._explicit = deque(sorted(explicit))

    def next_failure(self, after: float) -> float:
        """The first failure time strictly after *after* (inf if none)."""
        while self._explicit:
            t = self._explicit[0]
            if t > after:
                return t
            self._explicit.popleft()
        if self._mtbf is None or not (self._mtbf < float("inf")):
            return float("inf")
        return after + float(self._rng.exponential(self._mtbf))


class FaultPlan:
    """An immutable, seeded schedule of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = (), *, seed: int = 0):
        self.events: Tuple[FaultEvent, ...] = tuple(sorted(events))
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, {len(self.events)} events)"

    # -- derived streams ---------------------------------------------------
    def rng(self, stream: str, index: int = 0) -> np.random.Generator:
        """A named substream of this plan's seed (process-stable)."""
        return _substream(self.seed, stream, index)

    def failure_clock(self, mtbf: Optional[float] = None) -> FailureClock:
        """The campaign's compute-failure clock (see :class:`FailureClock`)."""
        explicit = [ev.time for ev in self.events if ev.kind == "compute_kill"]
        return FailureClock(self.rng("campaign-failures"), mtbf, explicit)

    # -- views -------------------------------------------------------------
    def of_kind(self, *kinds: str) -> Tuple[FaultEvent, ...]:
        """The schedule restricted to the given kinds."""
        return tuple(ev for ev in self.events if ev.kind in kinds)

    @property
    def component_events(self) -> Tuple[FaultEvent, ...]:
        """Events the injector compiles onto the world."""
        return tuple(ev for ev in self.events if ev.kind in COMPONENT_KINDS)

    def writer_kills(self) -> dict:
        """``rank -> FaultEvent`` for writer kills (first kill per rank wins)."""
        out: dict = {}
        for ev in self.events:
            if ev.kind == "writer_kill" and ev.target not in out:
                out[ev.target] = ev
        return out

    def signature(self) -> str:
        """Deterministic digest of the full schedule (for bit-identity tests)."""
        h = hashlib.sha256()
        h.update(str(self.seed).encode())
        for ev in self.events:
            h.update(repr((ev.time, ev.kind, ev.target, ev.duration,
                           ev.magnitude)).encode())
        return h.hexdigest()[:16]

    # -- generation --------------------------------------------------------
    @classmethod
    def generate(cls, seed: int, *, horizon: float, mtbf: float,
                 kinds: Sequence[str] = ("osd_outage",),
                 n_osds: int = 1, n_ranks: int = 1,
                 outage_duration: float = 2.0,
                 detection_delay: float = 1.0,
                 slow_factor: float = 4.0,
                 jitter_latency: float = 5e-3,
                 partition_duration: float = 1.0) -> "FaultPlan":
        """A random plan: per kind, Poisson arrivals of mean gap *mtbf*.

        Each kind draws from its own substream, so adding a kind to the mix
        never perturbs the schedules of the others.  Targets (which OSD,
        which rank) come from the same per-kind stream.
        """
        if not (horizon > 0) or not (mtbf > 0):
            raise ConfigError("horizon and mtbf must be positive")
        events = []
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ConfigError(f"unknown fault kind {kind!r}")
            rng = _substream(seed, "gen:" + kind, 0)
            t = float(rng.exponential(mtbf))
            while t < horizon:
                if kind == "osd_slow":
                    ev = FaultEvent(t, kind, target=int(rng.integers(n_osds)),
                                    duration=outage_duration,
                                    magnitude=slow_factor)
                elif kind == "osd_outage":
                    ev = FaultEvent(t, kind, target=int(rng.integers(n_osds)),
                                    duration=outage_duration)
                elif kind == "mds_crash":
                    ev = FaultEvent(t, kind, duration=detection_delay)
                elif kind == "net_jitter":
                    ev = FaultEvent(t, kind, duration=outage_duration,
                                    magnitude=jitter_latency)
                elif kind == "net_partition":
                    ev = FaultEvent(t, kind, duration=partition_duration)
                elif kind == "writer_kill":
                    ev = FaultEvent(t, kind, target=int(rng.integers(n_ranks)))
                else:  # compute_kill
                    ev = FaultEvent(t, kind)
                events.append(ev)
                t += float(rng.exponential(mtbf))
        return cls(events, seed=seed)
