"""repro.faults — deterministic fault injection and resilience.

The subsystem has two halves.  The *plan* half (:mod:`plan`,
:mod:`policies`) is dependency-light — seeded fault schedules and retry
policies that the storage and middleware layers import freely.  The
*execution* half (:mod:`injector`, :mod:`verify`, :mod:`experiment`)
imports the PLFS and workload stacks, so it is loaded lazily here: eager
imports would cycle (``plfs.writer`` imports ``faults.policies``, which
triggers this package).
"""

from .plan import (COMPONENT_KINDS, FAULT_KINDS, FailureClock, FaultEvent,
                   FaultPlan)
from .policies import RetryPolicy, retrying

__all__ = [
    "COMPONENT_KINDS", "FAULT_KINDS", "FailureClock", "FaultEvent",
    "FaultPlan", "RetryPolicy", "retrying",
    "FaultInjector", "AckedWrite", "RecoveryReport", "verify_recovery",
]

_LAZY = {
    "FaultInjector": "injector",
    "AckedWrite": "verify",
    "RecoveryReport": "verify",
    "verify_recovery": "verify",
}


def __getattr__(name):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{mod}", __name__), name)
