"""repro — a reproduction of "The Power and Challenges of Transformative I/O".

The public API in one import::

    from repro import build_world, run_job, PatternData

    world = build_world(aggregation="parallel")

    def rank_fn(ctx):
        fh = yield from world.mount.open_write(ctx.client, "/ckpt", ctx.comm)
        yield from fh.write(0, PatternData(ctx.rank, 0, 1 << 20))
        yield from world.mount.close_write(fh, ctx.comm)

    run_job(world.env, world.cluster, nprocs=16, fn=rank_fn)

Subpackages: :mod:`repro.sim` (event engine), :mod:`repro.cluster`
(platform models), :mod:`repro.pfs` (the underlying parallel file system),
:mod:`repro.mpi` / :mod:`repro.mpiio` (message passing and MPI-IO),
:mod:`repro.plfs` (the paper's middleware), :mod:`repro.formats`,
:mod:`repro.workloads`, and :mod:`repro.harness` (figure reproductions —
also a CLI: ``python -m repro.harness all``).
"""

from .cluster import CIELO, LANL64, Cluster, ClusterSpec
from .errors import ReproError
from .harness.setup import World, build_world
from .mpi import RankContext, run_job
from .mpiio import Hints, MPIFile, PlfsDriver, UfsDriver
from .pfs import PatternData, PfsConfig, Volume, gpfs, lustre, panfs
from .plfs import PlfsConfig, PlfsMount
from .sim import Engine

__version__ = "1.0.0"

__all__ = [
    "CIELO",
    "LANL64",
    "Cluster",
    "ClusterSpec",
    "ReproError",
    "World",
    "build_world",
    "RankContext",
    "run_job",
    "Hints",
    "MPIFile",
    "PlfsDriver",
    "UfsDriver",
    "PatternData",
    "PfsConfig",
    "Volume",
    "gpfs",
    "lustre",
    "panfs",
    "PlfsConfig",
    "PlfsMount",
    "Engine",
    "__version__",
]
