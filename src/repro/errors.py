"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type.  File-system errors mirror POSIX errno names
because the PLFS layer translates between logical and physical namespaces
and must preserve the error a user of the real middleware would see.
"""

from __future__ import annotations

from typing import Iterable


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class DeadlockError(SimulationError):
    """The event queue drained while simulated processes were still blocked."""


class RaceConditionError(SimulationError):
    """The yield-point sanitizer caught a write acting on stale shared state.

    Raised (in strict mode) by :mod:`repro.analysis.sanitize` at the exact
    mutation that used a value read before a ``yield`` and invalidated by
    another simulated process in between — the hazard class behind the
    last-closer registry bug fixed in PR 2.
    """


class FSError(ReproError):
    """Base class for simulated-file-system errors.

    :attr:`errno_name` carries the POSIX errno mnemonic so tests can assert
    on the exact failure mode without string matching.
    """

    errno_name: str = "EIO"

    def __init__(self, path: str = "", message: str = "") -> None:
        self.path = path
        detail = message or self.__doc__.strip().splitlines()[0]  # type: ignore[union-attr]
        super().__init__(f"[{self.errno_name}] {detail}: {path!r}" if path else f"[{self.errno_name}] {detail}")


class FileNotFound(FSError):
    """No such file or directory."""

    errno_name = "ENOENT"


class FileExists(FSError):
    """File exists."""

    errno_name = "EEXIST"


class NotADirectory(FSError):
    """A path component is not a directory."""

    errno_name = "ENOTDIR"


class IsADirectory(FSError):
    """The target of a file operation is a directory."""

    errno_name = "EISDIR"


class DirectoryNotEmpty(FSError):
    """Directory not empty."""

    errno_name = "ENOTEMPTY"


class BadFileHandle(FSError):
    """Operation on a closed or invalid file handle."""

    errno_name = "EBADF"


class PermissionDenied(FSError):
    """Operation not permitted by the open mode."""

    errno_name = "EACCES"


class InvalidArgument(FSError):
    """Invalid offset, length, or flag combination."""

    errno_name = "EINVAL"


class UnsupportedOperation(FSError):
    """The layer does not support this operation (e.g. PLFS read-write open)."""

    errno_name = "ENOTSUP"


class TransientIOError(FSError):
    """A component failure that a client may retry (base for degraded modes).

    Raised by the degraded-mode models in ``pfs``/``cluster`` when a fault
    plan has taken a component down.  The retry machinery in
    ``repro.faults.policies`` catches exactly this type: anything else is a
    programming error and propagates.
    """

    errno_name = "EIO"


class StorageUnavailable(TransientIOError):
    """An OSD is down; I/O against it fails until it is restored."""

    errno_name = "EIO"


class MDSUnavailable(TransientIOError):
    """The metadata server crashed; ops fail until failover completes."""

    errno_name = "ETIMEDOUT"


class NetworkPartitioned(TransientIOError):
    """The storage network is partitioned; transfers cannot start."""

    errno_name = "ENETDOWN"


class MPIError(ReproError):
    """Misuse of the simulated MPI runtime (rank/tag/communicator errors)."""


class CollectiveMismatchError(MPIError):
    """Ranks of one communicator issued non-congruent collective traces.

    Raised at job drain by the collective-trace validator
    (``--validate-collectives``): some rank issued a different
    collective, a different root, or skipped one the others issued —
    the runtime confirmation of a static REP101/REP102/REP104 finding.
    """


class PLFSError(ReproError):
    """PLFS container corruption or protocol violation."""


class PartialViewError(PLFSError):
    """A reader assembled only part of the logical file.

    Raised when index logs stay unreachable after retries: the reader
    degrades to the writers it *could* reach instead of hanging, and this
    error names the ones it could not.
    """

    def __init__(self, path: str, missing_writers: Iterable[int],
                 missing_subdirs: Iterable[str] = ()) -> None:
        self.path = path
        self.missing_writers = tuple(sorted(missing_writers))
        self.missing_subdirs = tuple(sorted(missing_subdirs))
        parts: list[str] = []
        if self.missing_writers:
            parts.append(f"index logs unreachable for writer(s) "
                         f"{list(self.missing_writers)}")
        if self.missing_subdirs:
            parts.append(f"subdir(s) {list(self.missing_subdirs)} could not "
                         f"be enumerated (writers there unknown)")
        super().__init__(
            f"partial view of {path!r}: " + "; ".join(parts))


class ConfigError(ReproError):
    """Invalid model or experiment configuration."""
