"""Lightweight measurement helpers for simulated experiments.

The paper reports *phase times* (open / write / close / read) measured at
each rank and reduced over the job (bulk-synchronous jobs report the max
rank time for a phase, and "effective bandwidth" divides total bytes by the
open-to-close wall interval — footnote 2 of the paper).  These classes keep
that bookkeeping in one place so every workload reports metrics the same
way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["PhaseClock", "JobMetrics", "summarize", "Summary"]


class PhaseClock:
    """Per-rank stopwatch accumulating named phase durations.

    >>> clk = PhaseClock()
    >>> clk.start("open", t=0.0); clk.stop("open", t=1.5)
    >>> clk.total("open")
    1.5
    """

    def __init__(self) -> None:
        self._open: Dict[str, float] = {}
        self._total: Dict[str, float] = {}
        self.first_start: Optional[float] = None
        self.last_stop: Optional[float] = None

    def start(self, phase: str, t: float) -> None:
        """Begin timing *phase* at time *t*."""
        if phase in self._open:
            raise ValueError(f"phase {phase!r} already started")
        self._open[phase] = t
        if self.first_start is None or t < self.first_start:
            self.first_start = t

    def stop(self, phase: str, t: float) -> float:
        """End *phase*; returns its duration."""
        t0 = self._open.pop(phase, None)
        if t0 is None:
            raise ValueError(f"phase {phase!r} was not started")
        dt = t - t0
        self._total[phase] = self._total.get(phase, 0.0) + dt
        if self.last_stop is None or t > self.last_stop:
            self.last_stop = t
        return dt

    def total(self, phase: str) -> float:
        """Accumulated time in *phase* (0 if never run)."""
        return self._total.get(phase, 0.0)

    @property
    def phases(self) -> Dict[str, float]:
        """All accumulated phase totals."""
        return dict(self._total)


@dataclass
class JobMetrics:
    """Aggregated result of one simulated job.

    *Effective bandwidth* follows the paper: total bytes moved divided by the
    wall interval from the first rank entering the phase group (open) to the
    last rank leaving it (close).
    """

    nprocs: int
    bytes_total: int = 0
    # Job-level phase times: max over ranks (bulk-synchronous convention).
    phase_max: Dict[str, float] = field(default_factory=dict)
    phase_mean: Dict[str, float] = field(default_factory=dict)
    wall_start: float = math.inf
    wall_end: float = -math.inf
    extra: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_rank_clocks(cls, clocks: List[PhaseClock], bytes_total: int) -> "JobMetrics":
        """Reduce per-rank clocks the way the paper reports (max over ranks)."""
        m = cls(nprocs=len(clocks), bytes_total=bytes_total)
        names = sorted({p for c in clocks for p in c.phases})
        for p in names:
            vals = [c.total(p) for c in clocks]
            m.phase_max[p] = max(vals)
            m.phase_mean[p] = sum(vals) / len(vals)
        starts = [c.first_start for c in clocks if c.first_start is not None]
        stops = [c.last_stop for c in clocks if c.last_stop is not None]
        if starts:
            m.wall_start = min(starts)
        if stops:
            m.wall_end = max(stops)
        return m

    @property
    def wall_time(self) -> float:
        """First phase start to last phase stop."""
        if self.wall_end < self.wall_start:
            return 0.0
        return self.wall_end - self.wall_start

    @property
    def effective_bandwidth(self) -> float:
        """Bytes per second over the full open..close interval (paper's metric)."""
        wt = self.wall_time
        return self.bytes_total / wt if wt > 0 else 0.0


@dataclass
class Summary:
    """Mean / standard deviation over repeated runs (paper: 10-run averages)."""

    mean: float
    std: float
    n: int

    def __format__(self, spec: str) -> str:
        spec = spec or ".4g"
        return f"{self.mean:{spec}} ± {self.std:{spec}}"


def summarize(values: List[float]) -> Summary:
    """Mean and population standard deviation of *values*."""
    if not values:
        raise ValueError("summarize() of empty list")
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return Summary(mean=mean, std=math.sqrt(var), n=n)
