"""Shared-resource primitives for the simulation engine.

Three primitives cover every contention effect in the modeled I/O stack:

:class:`Resource`
    A counted semaphore with FIFO queuing — used for bounded service slots
    (e.g. an OSD's outstanding-command limit) and, with capacity 1, as a
    mutex (e.g. a directory lock held during a create).

:class:`FairShareServer`
    A generalized-processor-sharing (GPS) server: *k* concurrent jobs each
    progress at ``capacity / k``.  This is the fluid model of a shared
    network link, a storage array, or a multithreaded metadata server, and
    it is what makes bulk-synchronous bandwidth curves come out right: when
    N ranks write at once, each one's transfer takes N times longer, yet
    aggregate throughput stays at capacity.  Implemented with the classic
    virtual-time algorithm so each job costs O(log n), which is what lets
    us run 65,536-rank jobs.

:class:`Store`
    An unbounded FIFO hand-off queue (producer/consumer), used for message
    mailboxes.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Sequence, Tuple

from ..errors import SimulationError
from .engine import Engine, Event

__all__ = ["Resource", "Mutex", "FairShareServer", "Store"]


class Resource:
    """A counted resource with FIFO granting.

    ``yield res.acquire(n)`` blocks until *n* units are available; pair with
    ``res.release(n)``.  Grants are strictly FIFO: a large request at the
    head of the queue blocks later small ones (no starvation, no barging),
    matching how slot-limited storage servers admit requests.
    """

    def __init__(self, env: Engine, capacity: int, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._available = capacity
        self._waiters: Deque[Tuple[Event, int]] = deque()
        # Stats.
        self.total_acquired = 0
        self.peak_queue = 0

    @property
    def available(self) -> int:
        """Units currently free."""
        return self._available

    @property
    def queued(self) -> int:
        """Requests waiting for capacity."""
        return len(self._waiters)

    def acquire(self, n: int = 1) -> Event:
        """Return an event that fires once *n* units have been granted."""
        if n < 1 or n > self.capacity:
            raise SimulationError(f"cannot acquire {n} of capacity {self.capacity}")
        ev = Event(self.env)
        if not self._waiters and self._available >= n:
            self._available -= n
            self.total_acquired += n
            ev.succeed(n)
        else:
            self._waiters.append((ev, n))
            self.peak_queue = max(self.peak_queue, len(self._waiters))
        return ev

    def release(self, n: int = 1) -> None:
        """Return *n* units and grant queued requests in FIFO order."""
        self._available += n
        if self._available > self.capacity:
            raise SimulationError(f"over-release on {self.name or 'Resource'}")
        while self._waiters and self._available >= self._waiters[0][1]:
            ev, want = self._waiters.popleft()
            self._available -= want
            self.total_acquired += want
            ev.succeed(want)

class Mutex(Resource):
    """A capacity-1 resource; reads better at call sites guarding one object."""

    def __init__(self, env: Engine, name: str = ""):
        super().__init__(env, 1, name)


class _ServeEvent(Event):
    """Completion event of a :class:`FairShareServer` job.

    Carries a back-reference to its server so deadlock reports
    (:func:`repro.sim.engine.describe_event`) can name the resource a stuck
    process is queued on — and whether that server is paused.
    """

    __slots__ = ("server",)


class FairShareServer:
    """Generalized processor sharing over a fixed capacity.

    ``serve(demand)`` returns an event firing when *demand* units of work
    complete, with instantaneous per-job rate ``capacity / active_jobs``.

    The virtual-time algorithm: let ``V(t)`` be the cumulative service each
    active job has received.  While the active set is constant, ``V`` grows
    at ``capacity / k``.  A job arriving at time ``t0`` with demand ``d``
    finishes when ``V == V(t0) + d``, so completions are just a min-heap on
    virtual finish times, and arrivals/departures only change the growth
    rate of ``V``.

    Degraded modes (driven by ``repro.faults``): :meth:`set_capacity`
    rescales service speed mid-run, :meth:`pause`/:meth:`resume` freeze and
    thaw all in-flight jobs (an unresponsive-but-alive component), and
    :meth:`fail_all` errors every in-flight job out (a crash that drops its
    queue).  All four keep the virtual-time bookkeeping exact, so a run
    with no faults injected is bit-identical to one built without hooks.
    """

    def __init__(self, env: Engine, capacity: float, name: str = ""):
        if not (capacity > 0):
            raise SimulationError(f"FairShareServer capacity must be > 0, got {capacity}")
        self.env = env
        self.capacity = float(capacity)
        self.name = name
        self._vtime = 0.0  # cumulative per-job virtual service
        self._t_last = 0.0  # wall time of last vtime update
        self._jobs: List[Tuple[float, int, Event]] = []  # (finish_vtime, seq, event)
        self._seq = 0
        self._timer_seq = 0  # invalidates stale completion timers
        self._deadline = float("inf")  # wall time the earliest finish completes
        self._armed_at = float("inf")  # wall time the live timer event targets
        self._paused = False  # frozen: in-flight jobs make no progress
        # Stats.
        self.total_served = 0.0
        self.peak_active = 0
        self.busy_time = 0.0

    @property
    def active(self) -> int:
        """Jobs currently in service."""
        return len(self._jobs)

    @property
    def paused(self) -> bool:
        """True while service is frozen (see :meth:`pause`)."""
        return self._paused

    def _advance(self) -> None:
        """Advance virtual time to `env.now`."""
        now = self.env.now
        if self._jobs and not self._paused:
            dt = now - self._t_last
            if dt > 0:
                self._vtime += dt * self.capacity / len(self._jobs)
                self.busy_time += dt
        self._t_last = now

    def _invalidate_timer(self) -> None:
        """Forget the armed completion timer (it becomes a no-op when it fires)."""
        self._timer_seq += 1
        self._armed_at = float("inf")

    def set_capacity(self, capacity: float) -> None:
        """Rescale service speed; in-flight jobs keep their remaining demand.

        Models brown-out faults (a slow disk, a throttled link).  Virtual
        time is settled at the old rate first, so work already delivered is
        unaffected; only the remaining demand is served at the new rate.
        """
        if not (capacity > 0):
            raise SimulationError(f"FairShareServer capacity must be > 0, got {capacity}")
        self._advance()
        self.capacity = float(capacity)
        # The armed timer's deadline was computed at the old rate.  If the
        # new deadline is earlier, _reschedule arms a fresh timer; if later,
        # the old timer fires early and chains — but chaining trusts
        # _deadline, which _reschedule recomputes below.  Either way no
        # stale completion can fire.
        if not self._paused:
            self._reschedule()

    def pause(self) -> None:
        """Freeze service: in-flight jobs stop progressing until :meth:`resume`.

        Models an unresponsive component whose queue survives (e.g. a hung
        OSD that will come back).  Idempotent.
        """
        if self._paused:
            return
        self._advance()
        self._paused = True
        self._deadline = float("inf")
        self._invalidate_timer()

    def resume(self) -> None:
        """Thaw a paused server; remaining demand resumes at full rate."""
        if not self._paused:
            return
        self._paused = False
        self._t_last = self.env.now
        self._reschedule()

    def fail_all(self, make_exc) -> int:
        """Fail every in-flight job with ``make_exc()``; returns the count.

        Models a crash that drops its queue (e.g. an MDS losing queued ops).
        The server itself stays usable — new ``serve`` calls proceed — so a
        failover can repopulate it.
        """
        self._advance()
        jobs, self._jobs = self._jobs, []
        self._deadline = float("inf")
        self._invalidate_timer()
        for _, _, ev in jobs:
            ev.fail(make_exc())
        return len(jobs)

    def serve(self, demand: float) -> Event:
        """Submit *demand* units of work; returns the completion event."""
        if demand < 0:
            raise SimulationError(f"negative demand {demand!r}")
        ev = _ServeEvent(self.env)
        ev.server = self
        if demand == 0:
            ev.succeed()
            return ev
        self._advance()
        self._seq += 1
        jobs = self._jobs
        heapq.heappush(jobs, (self._vtime + demand, self._seq, ev))
        self.total_served += demand
        if len(jobs) > self.peak_active:
            self.peak_active = len(jobs)
        self._reschedule()
        return ev

    def serve_many(self, demands: Sequence[float]) -> List[Event]:
        """Submit a batch of jobs arriving at the same instant.

        Equivalent to ``[serve(d) for d in demands]`` — same virtual finish
        times, same completion timestamps — but pays one virtual-time
        advance, one heap restore, and at most one timer re-arm for the
        whole batch.  This is the entry point for the bulk-synchronous
        pattern where one caller submits N jobs at once (e.g. a striped
        I/O touching one device on several lanes).
        """
        events: List[Event] = []
        env = self.env
        self._advance()
        jobs = self._jobs
        vt = self._vtime
        pushed = 0
        for demand in demands:
            if demand < 0:
                raise SimulationError(f"negative demand {demand!r}")
            ev = _ServeEvent(env)
            ev.server = self
            events.append(ev)
            if demand == 0:
                ev.succeed()
                continue
            self._seq += 1
            if pushed:
                jobs.append((vt + demand, self._seq, ev))
            else:
                heapq.heappush(jobs, (vt + demand, self._seq, ev))
            pushed += 1
            self.total_served += demand
        if pushed:
            if pushed > 1:
                heapq.heapify(jobs)
            if len(jobs) > self.peak_active:
                self.peak_active = len(jobs)
            self._reschedule()
        return events

    def _reschedule(self) -> None:
        """Update the completion deadline; arm a timer only if it moved earlier.

        The deadline (wall time the earliest virtual finish completes) is
        recomputed on every arrival and completion, but a timer *event* is
        created only when the new deadline precedes the currently armed one.
        An arrival that lands behind the heap top can only push the deadline
        later (virtual time now grows slower), so the armed timer fires
        early, finds nothing due, and chains to the stored deadline in
        :meth:`_on_timer`.  A bulk-synchronous storm of N same-instant
        arrivals therefore costs one timer event instead of N — and because
        the chained timer targets the stored *absolute* deadline
        (``Engine.schedule_at``), completion timestamps are bit-for-bit what
        per-arrival re-arming would produce.
        """
        if self._paused:
            return  # deadline stays inf; resume() reschedules
        if not self._jobs:
            self._deadline = float("inf")
            return
        finish_v = self._jobs[0][0]
        k = len(self._jobs)
        dt = max(0.0, (finish_v - self._vtime) * k / self.capacity)
        self._deadline = self.env.now + dt
        if self._deadline < self._armed_at:
            self._arm()

    def _arm(self) -> None:
        """Create the physical timer event targeting the current deadline."""
        self._timer_seq += 1
        my_seq = self._timer_seq
        self._armed_at = self._deadline
        timer = self.env.schedule_at(self._deadline)
        timer._add_callback(lambda _ev, s=my_seq: self._on_timer(s))

    def _on_timer(self, seq: int) -> None:
        if seq != self._timer_seq:
            return  # superseded by an earlier-deadline timer
        self._armed_at = float("inf")  # this timer is spent
        if self.env.now < self._deadline:
            # Fired early: later arrivals pushed the deadline back without
            # arming a fresh timer (see _reschedule).  Chain to the true
            # deadline; no state has to change.
            self._arm()
            return
        self._advance()
        # Complete every job whose virtual finish has been reached.  The
        # epsilon absorbs float drift so simultaneous finishers batch.
        eps = 1e-9 * max(1.0, abs(self._vtime))
        completed = []
        while self._jobs and self._jobs[0][0] <= self._vtime + eps:
            _, _, ev = heapq.heappop(self._jobs)
            completed.append(ev)
        if not completed and self._jobs:
            # Float underflow: the timer was armed for the heap top, but the
            # residual virtual time is below the resolution of `now` so
            # _advance() made no progress.  Completing it is exact up to one
            # ulp — and refusing to would loop forever.
            fv, _, ev = heapq.heappop(self._jobs)
            self._vtime = fv
            completed.append(ev)
        for ev in completed:
            ev.succeed()
        self._reschedule()

    def work_remaining(self) -> float:
        """Demand units still owed to in-flight jobs (at the current time)."""
        self._advance()
        return sum(fv - self._vtime for fv, _, _ in self._jobs)

    def work_delivered(self) -> float:
        """Demand units actually served so far (total accepted minus in flight)."""
        return self.total_served - self.work_remaining()

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the server had active jobs."""
        if self.env.now == 0:
            return 0.0
        busy = self.busy_time
        if self._jobs:
            busy += self.env.now - self._t_last
        return busy / self.env.now


class Store:
    """An unbounded FIFO queue connecting producer and consumer processes.

    ``put`` never blocks; ``yield store.get()`` blocks until an item is
    available.  Items are delivered in insertion order, one per getter, in
    getter-arrival order.
    """

    def __init__(self, env: Engine, name: str = ""):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item (never blocks)."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event yielding the next item, FIFO."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev
