"""Discrete-event simulation engine.

The whole repro stack (network, file system, MPI, PLFS) runs on this small
coroutine-based engine.  Simulated activities are plain Python generator
functions that ``yield`` :class:`Event` objects; the engine resumes them when
the event fires.  The style matches SimPy's but the implementation is
self-contained and tuned for the bulk-synchronous workloads we simulate:

* yielding an already-triggered event resumes the process inline (no heap
  round-trip), which matters when 65,536 rank processes hammer shared
  resources;
* event callbacks never recurse more than one level — follow-on triggers go
  through the heap — so arbitrarily long completion chains cannot overflow
  the Python stack.

Example
-------
>>> env = Engine()
>>> def hello(env):
...     yield env.timeout(1.5)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
1.5
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..errors import DeadlockError, SimulationError

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
]

_PENDING = object()  # sentinel: event value not yet set


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it is *triggered* once :meth:`succeed` or
    :meth:`fail` is called, and *processed* once the engine has run its
    callbacks.  Processes wait on events by ``yield``-ing them.

    Setting ``daemon = True`` *before* the event is scheduled marks it as
    background work: the engine stops once only daemon events remain
    (instrumentation probes use this so they never keep a run alive).
    """

    __slots__ = ("env", "callbacks", "_value", "_exc", "_processed", "daemon")

    def __init__(self, env: "Engine"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self._processed = False
        self.daemon = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not _PENDING or self._exc is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is fully in the past)."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when triggered successfully (not failed)."""
        return self._value is not _PENDING and self._exc is None

    @property
    def value(self) -> Any:
        """The success value; raises if the event failed or is pending."""
        if self._exc is not None:
            raise self._exc
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure, if the event failed; else None."""
        return self._exc

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, scheduling callbacks for *now*."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into each waiting process; if nothing is
        waiting when the callbacks run, the engine re-raises it (an unhandled
        simulated failure is a bug in the model, not a condition to swallow).
        """
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._exc = exc
        self.env._schedule(self)
        return self

    def _add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            raise SimulationError(f"cannot wait on processed event {self!r}")
        self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    ``daemon=True`` marks it background work (see :class:`Event`).
    """

    __slots__ = ()

    def __init__(self, env: "Engine", delay: float, value: Any = None,
                 daemon: bool = False):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay!r}")
        super().__init__(env)
        self._value = value
        self.daemon = daemon
        env._schedule(self, delay)


class Process(Event):
    """A running simulated activity wrapping a generator.

    A process is itself an event: it triggers with the generator's return
    value when the generator finishes (or fails with its exception), so
    processes can wait on other processes by yielding them.
    """

    __slots__ = ("_gen", "name")

    def __init__(self, env: "Engine", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"process() needs a generator, got {type(gen).__name__}; "
                "did you call a plain function instead of a generator function?"
            )
        super().__init__(env)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off at the current time via an initial event.
        start = Event(env)
        start._value = None
        start._add_callback(self._resume)
        env._schedule(start)

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        """Advance the generator; loop inline over already-triggered yields."""
        gen = self._gen
        while True:
            try:
                if event._exc is not None:
                    target = gen.throw(event._exc)
                else:
                    target = gen.send(event._value)
            except StopIteration as stop:
                self._value = stop.value
                self.env._schedule(self)
                return
            except BaseException as exc:
                self._exc = exc
                self.env._schedule(self)
                return
            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
                )
                gen.close()
                self._exc = exc
                self.env._schedule(self)
                return
            if target.callbacks is None:
                # Already processed: consume its value/exception inline.
                event = target
                continue
            target._add_callback(self._resume)
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"


class AllOf(Event):
    """Triggers when every child event has triggered; value is the list of values.

    Fails fast with the first child failure.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Engine", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        pending = []
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different engines")
            if ev.callbacks is None:  # already processed
                if ev._exc is not None:
                    self.fail(ev._exc)
                    return
            else:
                pending.append(ev)
        self._remaining = len(pending)
        if self._remaining == 0:
            self.succeed([ev._value for ev in self._events])
            return
        for ev in pending:
            ev._add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(Event):
    """Triggers when the first child event triggers; value is that child's value.

    With an empty child list it triggers immediately with ``None``.
    """

    __slots__ = ("_events",)

    def __init__(self, env: "Engine", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different engines")
        if not self._events:
            self.succeed(None)
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._check(ev)
                return
        for ev in self._events:
            ev._add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
        else:
            self.succeed(event._value)


class Engine:
    """The event loop: a time-ordered heap of triggered events.

    Typical use::

        env = Engine()
        env.process(my_activity(env))
        env.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List = []
        self._eid = 0
        self._live = 0  # scheduled non-daemon events

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factory helpers ---------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None, *,
                daemon: bool = False) -> Timeout:
        return Timeout(self, delay, value, daemon=daemon)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Spawn *gen* as a simulated process."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all children have."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires with the first child."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._eid += 1
        if not event.daemon:
            self._live += 1
        heapq.heappush(self._heap, (self._now + delay, self._eid, event))

    def step(self) -> None:
        """Process the next event; raises IndexError when the heap is empty."""
        t, _, event = heapq.heappop(self._heap)
        if t < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        if not event.daemon:
            self._live -= 1
        self._now = t
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for cb in callbacks:
            cb(event)
        if event._exc is not None and not callbacks and not isinstance(event, Process):
            # A failed non-process event nobody waited for: surface the bug.
            raise event._exc
        if event._exc is not None and isinstance(event, Process) and not callbacks:
            raise event._exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until only daemon work remains, or until simulated time *until*.

        Daemon events (instrumentation probes) never keep a run alive; they
        stay queued and resume if later real work advances the clock past
        them.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
        while self._heap and self._live > 0:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                return
            self.step()

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Convenience: spawn *gen*, run to completion, return its result.

        Raises :class:`DeadlockError` if the event queue drains while the
        process is still blocked (a modeling bug: something never released).
        """
        proc = self.process(gen, name)
        self.run()
        if not proc.triggered:
            raise DeadlockError(f"event queue drained with {proc!r} still blocked")
        return proc.value
