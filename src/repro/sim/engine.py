"""Discrete-event simulation engine.

The whole repro stack (network, file system, MPI, PLFS) runs on this small
coroutine-based engine.  Simulated activities are plain Python generator
functions that ``yield`` :class:`Event` objects; the engine resumes them when
the event fires.  The style matches SimPy's but the implementation is
self-contained and tuned for the bulk-synchronous workloads we simulate:

* yielding an already-triggered event resumes the process inline (no heap
  round-trip), which matters when 65,536 rank processes hammer shared
  resources;
* event callbacks never recurse more than one level — follow-on triggers go
  through the scheduler — so arbitrarily long completion chains cannot
  overflow the Python stack;
* zero-delay scheduling (event ``succeed``/``fail``, process starts and
  completions, condition triggers) bypasses the time heap entirely: such
  events go to a FIFO *immediate queue* drained before simulated time can
  advance.  Bulk-synchronous workloads trigger storms of same-timestamp
  events, and the immediate queue makes each one O(1) instead of
  O(log heap).  The observable order is unchanged: events still fire in
  (time, sequence-id) order, exactly as if everything went through the heap.

Example
-------
>>> env = Engine()
>>> def hello(env):
...     yield env.timeout(1.5)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
1.5
"""

from __future__ import annotations

import heapq
from collections import deque
from functools import partial
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..errors import DeadlockError, SimulationError

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "describe_event",
    "blocked_report",
]

_PENDING = object()  # sentinel: event value not yet set


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it is *triggered* once :meth:`succeed` or
    :meth:`fail` is called, and *processed* once the engine has run its
    callbacks.  Processes wait on events by ``yield``-ing them.

    Setting ``daemon = True`` *before* the event is scheduled marks it as
    background work: the engine stops once only daemon events remain
    (instrumentation probes use this so they never keep a run alive).

    ``callbacks`` storage is lazy to keep pending events small: ``None``
    while nothing waits, a bare callable for the overwhelmingly common
    single-waiter case, and a list only once a second waiter attaches.
    Use :meth:`_add_callback` rather than touching the attribute.
    """

    __slots__ = ("env", "callbacks", "_value", "_exc", "_processed", "daemon")

    # Class-level flag: plain events need no start hook.  Process overrides
    # it with a per-instance slot so the engine can lazily kick generators
    # off without a throwaway start event (see Engine.step).
    _started = True

    def __init__(self, env: "Engine"):
        self.env = env
        self.callbacks: Any = None
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self._processed = False
        self.daemon = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not _PENDING or self._exc is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is fully in the past)."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True when triggered successfully (not failed)."""
        return self._value is not _PENDING and self._exc is None

    @property
    def value(self) -> Any:
        """The success value; raises if the event failed or is pending."""
        if self._exc is not None:
            raise self._exc
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure, if the event failed; else None."""
        return self._exc

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, scheduling callbacks for *now*."""
        if self._value is not _PENDING or self._exc is not None:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        env = self.env
        env._eid += 1
        if not self.daemon:
            env._live += 1
        env._immediate.append((env._eid, self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into each waiting process; if nothing is
        waiting when the callbacks run, the engine re-raises it (an unhandled
        simulated failure is a bug in the model, not a condition to swallow).
        """
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        if self._value is not _PENDING or self._exc is not None:
            raise SimulationError(f"{self!r} already triggered")
        self._exc = exc
        env = self.env
        env._eid += 1
        if not self.daemon:
            env._live += 1
        env._immediate.append((env._eid, self))
        return self

    def _add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._processed:
            raise SimulationError(f"cannot wait on processed event {self!r}")
        cbs = self.callbacks
        if cbs is None:
            self.callbacks = cb
        elif type(cbs) is list:
            cbs.append(cb)
        else:
            self.callbacks = [cbs, cb]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    ``daemon=True`` marks it background work (see :class:`Event`).
    """

    __slots__ = ()

    def __init__(self, env: "Engine", delay: float, value: Any = None,
                 daemon: bool = False):
        # Inlined Event.__init__ + scheduling: timeouts are the single
        # hottest allocation in the simulator, so they pay no super() call.
        if delay < 0:
            raise SimulationError(f"negative timeout {delay!r}")
        self.env = env
        self.callbacks = None
        self._value = value
        self._exc = None
        self._processed = False
        self.daemon = daemon
        env._eid += 1
        if not daemon:
            env._live += 1
        if delay == 0.0:
            env._immediate.append((env._eid, self))
        else:
            heapq.heappush(env._heap, (env._now + delay, env._eid, self))


class _Init:
    """Stand-in for the start 'event' of a process: send(None) semantics."""

    __slots__ = ()
    _exc = None
    _value = None


_INIT = _Init()


class Process(Event):
    """A running simulated activity wrapping a generator.

    A process is itself an event: it triggers with the generator's return
    value when the generator finishes (or fails with its exception), so
    processes can wait on other processes by yielding them.

    The process schedules *itself* for start — the engine's step sees the
    per-instance ``_started = False`` and resumes the generator instead of
    processing a completion, avoiding a throwaway start event per process
    (65,536-rank jobs allocate 65,536 fewer events and callback attaches).
    """

    __slots__ = ("_gen", "name", "_started", "_rcb", "_waiting")

    def __init__(self, env: "Engine", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"process() needs a generator, got {type(gen).__name__}; "
                "did you call a plain function instead of a generator function?"
            )
        super().__init__(env)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._started = False
        self._rcb = self._resume  # one bound method, reused for every yield
        self._waiting: Optional[Event] = None
        env._eid += 1
        if not self.daemon:
            env._live += 1
        env._immediate.append((env._eid, self))

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def waiting_on(self) -> Optional[Event]:
        """The event this process is currently blocked on (None if runnable/done).

        This is what :func:`blocked_report` reads to turn a deadlock into an
        actionable message instead of a bare "queue drained".
        """
        return self._waiting

    def _resume(self, event: Any) -> None:
        """Advance the generator; loop inline over already-triggered yields."""
        gen = self._gen
        while True:
            try:
                if event._exc is not None:
                    target = gen.throw(event._exc)
                else:
                    target = gen.send(event._value)
            except StopIteration as stop:
                self._value = stop.value
                self._finish()
                return
            except BaseException as exc:
                self._exc = exc
                self._finish()
                return
            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
                )
                gen.close()
                self._exc = exc
                self._finish()
                return
            if target._processed:
                # Already processed: consume its value/exception inline.
                event = target
                continue
            cbs = target.callbacks
            if cbs is None:
                target.callbacks = self._rcb
            elif type(cbs) is list:
                cbs.append(self._rcb)
            else:
                target.callbacks = [cbs, self._rcb]
            self._waiting = target
            return

    def _finish(self) -> None:
        """Schedule this process's completion for the current instant."""
        self._waiting = None
        env = self.env
        env._eid += 1
        if not self.daemon:
            env._live += 1
        env._immediate.append((env._eid, self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"


class AllOf(Event):
    """Triggers when every child event has triggered; value is the list of values.

    Fails fast with the first child failure.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Engine", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        pending = []
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different engines")
            if ev._processed:
                if ev._exc is not None:
                    self.fail(ev._exc)
                    return
            else:
                pending.append(ev)
        self._remaining = len(pending)
        if self._remaining == 0:
            self.succeed([ev._value for ev in self._events])
            return
        for ev in pending:
            ev._add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(Event):
    """Triggers when the first child event triggers; value is that child's value.

    With an empty child list it triggers immediately with ``None``.
    """

    __slots__ = ("_events",)

    def __init__(self, env: "Engine", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different engines")
        if not self._events:
            self.succeed(None)
            return
        for ev in self._events:
            if ev._processed:
                self._check(ev)
                return
        for ev in self._events:
            ev._add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
        else:
            self.succeed(event._value)


def describe_event(ev: Optional[Event], depth: int = 1) -> str:
    """One-line human description of what waiting on *ev* means.

    Used by deadlock reports.  Recurses *depth* levels into composite
    events (``AllOf``/``AnyOf``) so "blocked on all_of" becomes "blocked on
    the 3 unfinished children of an all_of", which is what actually
    identifies a stuck fault-injection run.
    """
    if ev is None:
        return "nothing (runnable or never started)"
    server = getattr(ev, "server", None)
    if server is not None:  # a FairShareServer completion (see resources.py)
        state = "PAUSED" if getattr(server, "_paused", False) else f"{server.active} active"
        return (f"service by FairShareServer {server.name or '<unnamed>'!r} "
                f"({state}, capacity {server.capacity:g})")
    if isinstance(ev, Process):
        inner = ""
        if depth > 0 and ev._waiting is not None:
            inner = f" (itself waiting on {describe_event(ev._waiting, depth - 1)})"
        return f"process {ev.name!r}{inner}"
    if isinstance(ev, AllOf):
        pending = [c for c in ev._events if not c._processed]
        inner = ""
        if depth > 0 and pending:
            inner = ", first: " + describe_event(pending[0], depth - 1)
        return f"all_of with {len(pending)}/{len(ev._events)} children pending{inner}"
    if isinstance(ev, AnyOf):
        return f"any_of over {len(ev._events)} events, none fired"
    if isinstance(ev, Timeout):
        return "a timeout that never fired (scheduled past the run horizon?)"
    return f"{type(ev).__name__} at {id(ev):#x}"


def blocked_report(procs: Iterable[Process]) -> str:
    """Multi-line report naming each blocked process and what it waits on."""
    lines = []
    for proc in procs:
        if proc.triggered:
            continue
        lines.append(f"  - {proc.name}: waiting on {describe_event(proc._waiting)}")
    return "\n".join(lines) if lines else "  (no blocked processes tracked)"


class Engine:
    """The event loop: an immediate FIFO plus a time-ordered heap.

    Events scheduled for the *current* instant (triggers, process starts
    and completions) go to the immediate deque; only genuine delays enter
    the heap.  :meth:`step` interleaves the two so that events still fire
    in exact (time, sequence-id) order.

    Typical use::

        env = Engine()
        env.process(my_activity(env))
        env.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List = []
        self._immediate: deque = deque()
        self._eid = 0
        self._live = 0  # scheduled non-daemon events
        self._san = None  # yield-point race sanitizer (see attach_sanitizer)
        self._sched = None  # controlled scheduler (see attach_scheduler)
        # The factories are the hottest constructors in the simulator;
        # binding them as C-level partials (shadowing the documented
        # methods below) removes a Python wrapper frame per call.
        self.event = partial(Event, self)
        self.timeout = partial(Timeout, self)
        self.process = partial(Process, self)
        self.all_of = partial(AllOf, self)
        self.any_of = partial(AnyOf, self)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def sanitizer(self):
        """The attached yield-point race sanitizer, or None (the default)."""
        return self._san

    def attach_sanitizer(self, sanitizer) -> None:
        """Enable yield-point race detection for every future process.

        Rebinds this engine's :meth:`process` factory so each spawned
        generator is wrapped with the sanitizer's per-process *yield
        epoch* counter: the wrapper bumps the epoch and marks the process
        current on every resume, which is what lets shared state proxies
        (:func:`repro.analysis.sanitize.tracked`) tell a same-turn
        read-modify-write from a write acting on a value read before a
        ``yield``.  Call before spawning processes (worlds attach at
        construction).  When never called, nothing in the engine's hot
        paths changes — sanitizing is structurally free when off.
        """
        self._san = sanitizer
        sanitizer._attach(self)
        make = partial(Process, self)

        def _sanitized_process(gen: Generator, name: str = "") -> Process:
            label = name or getattr(gen, "__name__", "process")
            return make(sanitizer.instrument(gen, label), label)

        self.process = _sanitized_process

    @property
    def scheduler(self):
        """The attached controlled scheduler, or None (the default)."""
        return self._sched

    def attach_scheduler(self, scheduler) -> None:
        """Route :meth:`run` through the controlled (model-checking) loop.

        *scheduler* decides tie-breaks among same-instant ready events:

        * ``select(ready)`` — called with the ready set (``(eid, event)``
          pairs sorted by eid) whenever more than one event is runnable at
          the current instant; returns the index to fire.  Index 0 always
          reproduces the engine's default (time, eid) order.
        * ``fired(eid, event)`` — called for every event the controlled
          loop fires, before its callbacks run.
        * ``quiescent(now)`` — called whenever the current instant has
          fully drained (before time advances, and once at the end).

        The stock :meth:`run` loop is untouched when no scheduler is
        attached — exploration is structurally free when off.
        """
        self._sched = scheduler

    def detach_scheduler(self) -> None:
        """Return :meth:`run` to the uncontrolled fast path."""
        self._sched = None

    # -- factory helpers (shadowed by equivalent partials per instance) ----
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None, *,
                daemon: bool = False) -> Timeout:
        """An event firing after *delay* simulated seconds."""
        return Timeout(self, delay, value, daemon=daemon)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Spawn *gen* as a simulated process."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all children have."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires with the first child."""
        return AnyOf(self, events)

    def schedule_at(self, t: float, *, daemon: bool = False) -> Event:
        """An event firing at *absolute* simulated time *t* (value ``None``).

        Unlike ``timeout(t - now)``, the fire time is exactly the float
        *t* — no ``now + delay`` re-rounding — which resource models use to
        hit a precomputed deadline bit-for-bit.
        """
        if t < self._now:
            raise SimulationError(f"schedule_at({t}) is in the past (now={self._now})")
        ev = Event(self)
        ev._value = None
        ev.daemon = daemon
        self._eid += 1
        if not daemon:
            self._live += 1
        if t == self._now:
            self._immediate.append((self._eid, ev))
        else:
            heapq.heappush(self._heap, (t, self._eid, ev))
        return ev

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._eid += 1
        if not event.daemon:
            self._live += 1
        if delay == 0.0:
            self._immediate.append((self._eid, event))
        else:
            heapq.heappush(self._heap, (self._now + delay, self._eid, event))

    def step(self) -> None:
        """Process the next event in (time, sequence-id) order.

        Raises :class:`SimulationError` when both the immediate queue and
        the heap are empty (stepping an exhausted simulation is a bug in
        the caller, not an expected condition).
        """
        imm = self._immediate
        if imm:
            # Every immediate entry is stamped with the current time, but a
            # heap entry may share that timestamp with a smaller sequence id
            # (a timeout armed earlier that lands exactly now) — it must
            # fire first to preserve the global (time, eid) order.
            heap = self._heap
            if heap and heap[0][0] <= self._now and heap[0][1] < imm[0][0]:
                _, _, event = heapq.heappop(heap)
            else:
                _, event = imm.popleft()
        else:
            heap = self._heap
            if not heap:
                raise SimulationError("step() on an empty event queue")
            t, _, event = heapq.heappop(heap)
            if t < self._now:  # pragma: no cover - defensive
                raise SimulationError("time went backwards")
            self._now = t
        if not event.daemon:
            self._live -= 1
        if not event._started:
            # A process awaiting its first resume, not a completion.
            event._started = True
            event._resume(_INIT)
            return
        cbs = event.callbacks
        event.callbacks = None
        event._processed = True
        if cbs is not None:
            if type(cbs) is list:
                for cb in cbs:
                    cb(event)
            else:
                cbs(event)
        elif event._exc is not None:
            # A failed event nobody waited for: surface the bug.
            raise event._exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until only daemon work remains, or until simulated time *until*.

        Daemon events (instrumentation probes) never keep a run alive; they
        stay queued and resume if later real work advances the clock past
        them.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
        if self._sched is not None:
            self._run_controlled(until)
            return
        # The loop below is step() inlined (minus the defensive checks that
        # structurally cannot trip here): one Python frame per event is the
        # difference between "tens of minutes" and "minutes" at paper scale.
        imm = self._immediate
        heap = self._heap
        heappop = heapq.heappop
        horizon = float("inf") if until is None else until
        popleft = imm.popleft
        while self._live > 0:
            if imm:
                if heap and heap[0][0] <= self._now and heap[0][1] < imm[0][0]:
                    _, _, event = heappop(heap)
                else:
                    _, event = popleft()
            elif heap:
                t = heap[0][0]
                if t > horizon:
                    self._now = until
                    return
                _, _, event = heappop(heap)
                self._now = t
            else:
                return
            if not event.daemon:
                self._live -= 1
            if not event._started:
                event._started = True
                event._resume(_INIT)
                continue
            cbs = event.callbacks
            event.callbacks = None
            event._processed = True
            if cbs is not None:
                if type(cbs) is list:
                    for cb in cbs:
                        cb(event)
                else:
                    cbs(event)
            elif event._exc is not None:
                raise event._exc

    def _run_controlled(self, until: Optional[float]) -> None:
        """The model-checker's run loop: every same-instant tie-break is a
        *decision point* delegated to the attached scheduler.

        Instead of firing the single (time, eid)-minimal event, the loop
        materializes the whole ready set of the current instant — all
        immediate entries plus every heap entry already due — and asks the
        scheduler which to fire.  Choosing index 0 at every decision
        reproduces the uncontrolled order exactly (new events always get
        larger sequence ids, so the eid-minimal ready event is the one
        :meth:`run` would have fired).  Unchosen events go back on the
        immediate queue; the re-gather-and-sort next iteration restores
        the global order among them.
        """
        sched = self._sched
        imm = self._immediate
        heap = self._heap
        heappop = heapq.heappop
        horizon = float("inf") if until is None else until
        while self._live > 0:
            ready = []
            while heap and heap[0][0] <= self._now:
                _, eid, ev = heappop(heap)
                ready.append((eid, ev))
            while imm:
                ready.append(imm.popleft())
            if not ready:
                if not heap:
                    break
                sched.quiescent(self._now)
                t = heap[0][0]
                if t > horizon:
                    self._now = until
                    return
                self._now = t
                continue
            if len(ready) > 1:
                ready.sort()
                choice = sched.select(ready)
                eid, event = ready.pop(choice)
                imm.extendleft(reversed(ready))
            else:
                eid, event = ready[0]
            if not event.daemon:
                self._live -= 1
            sched.fired(eid, event)
            if not event._started:
                event._started = True
                event._resume(_INIT)
                continue
            cbs = event.callbacks
            event.callbacks = None
            event._processed = True
            if cbs is not None:
                if type(cbs) is list:
                    for cb in cbs:
                        cb(event)
                else:
                    cbs(event)
            elif event._exc is not None:
                raise event._exc
        sched.quiescent(self._now)

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Convenience: spawn *gen*, run to completion, return its result.

        Raises :class:`DeadlockError` if the event queue drains while the
        process is still blocked (a modeling bug: something never released).
        """
        proc = self.process(gen, name)
        self.run()
        if not proc.triggered:
            raise DeadlockError(
                f"event queue drained at t={self._now:g} with blocked processes:\n"
                + blocked_report([proc]))
        return proc.value
