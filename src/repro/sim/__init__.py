"""Discrete-event simulation kernel (engine, resources, measurement)."""

from .engine import (AllOf, AnyOf, Engine, Event, Process, Timeout,
                     blocked_report, describe_event)
from .probes import BandwidthProbe, summarize_probe
from .resources import FairShareServer, Mutex, Resource, Store
from .stats import JobMetrics, PhaseClock, Summary, summarize

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Process",
    "Timeout",
    "blocked_report",
    "describe_event",
    "BandwidthProbe",
    "summarize_probe",
    "FairShareServer",
    "Mutex",
    "Resource",
    "Store",
    "JobMetrics",
    "PhaseClock",
    "Summary",
    "summarize",
]
