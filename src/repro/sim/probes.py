"""Time-series probes: watch a resource's throughput as the run unfolds.

Counters (busy time, totals) say *how much*; probes say *when*.  A
:class:`BandwidthProbe` samples a fair-share server's cumulative service
on a fixed period, yielding a `(time, rate)` series — the I/O-phase
timeline plots storage papers live on (burst, drain, idle gap, next
burst).

    probe = BandwidthProbe(env, volume.storage_net.pipe, period=0.1)
    ... run the workload ...
    for t, rate in probe.series():
        ...

Probes are simulated processes; they stop sampling automatically when the
run ends (the event queue drains) and add negligible event load.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import SimulationError
from .engine import Engine
from .resources import FairShareServer

__all__ = ["BandwidthProbe", "summarize_probe"]


class BandwidthProbe:
    """Periodic sampler of a :class:`FairShareServer`'s *delivered* units/second."""

    def __init__(self, env: Engine, server: FairShareServer, period: float,
                 name: str = ""):
        if period <= 0:
            raise SimulationError(f"probe period must be positive, got {period}")
        self.env = env
        self.server = server
        self.period = period
        self.name = name or getattr(server, "name", "probe")
        self._samples: List[Tuple[float, float]] = []
        self._last_total = server.work_delivered()
        self._running = True
        env.process(self._run(), name=f"probe:{self.name}")

    def _run(self):
        while self._running:
            # Daemon ticks: the probe never keeps the run alive by itself.
            yield self.env.timeout(self.period, daemon=True)
            delivered = self.server.work_delivered()
            rate = (delivered - self._last_total) / self.period
            self._samples.append((self.env.now, rate))
            self._last_total = delivered

    def stop(self) -> None:
        """Stop sampling after the next tick (lets a run's queue drain)."""
        self._running = False

    def series(self) -> List[Tuple[float, float]]:
        """(sample time, average rate over the preceding period) pairs."""
        return list(self._samples)

    def peak(self) -> float:
        """Highest sampled rate."""
        return max((r for _, r in self._samples), default=0.0)

    def mean(self) -> float:
        """Mean sampled rate over the probe's lifetime."""
        if not self._samples:
            return 0.0
        return sum(r for _, r in self._samples) / len(self._samples)


def summarize_probe(probe: BandwidthProbe, capacity: float) -> Tuple[float, float, float]:
    """(peak rate, mean rate, duty cycle vs *capacity*) for a probe."""
    samples = probe.series()
    if not samples or capacity <= 0:
        return (0.0, 0.0, 0.0)
    peak = probe.peak()
    mean = probe.mean()
    busy = sum(1 for _, r in samples if r > 0.01 * capacity)
    return (peak, mean, busy / len(samples))
