"""Size and time unit helpers.

All sizes in the library are plain ``int`` bytes and all times are ``float``
seconds; these constants and formatters exist so model configurations read
like the paper ("50 MB per process in 50 KB increments", "1.25 GB/s peak").

The paper mixes decimal and binary prefixes the way storage papers usually
do; we expose both and use binary (KiB/MiB/GiB) for transfer sizes and
decimal (KB/MB/GB) where the paper's text does.
"""

from __future__ import annotations

# Binary prefixes.
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# Decimal prefixes (the paper's "50 MB", "1.25 GB/s" are decimal).
KB = 1000
MB = 1000 * KB
GB = 1000 * MB
TB = 1000 * GB

# Time.
USEC = 1e-6
MSEC = 1e-3


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary prefix, e.g. ``fmt_bytes(52428800) == '50.0 MiB'``."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
        if abs(n) < 1024.0 or unit == "PiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_bw(bytes_per_s: float) -> str:
    """Render a bandwidth in decimal units the way the paper quotes them (MB/s, GB/s)."""
    n = float(bytes_per_s)
    for unit in ("B/s", "KB/s", "MB/s", "GB/s", "TB/s"):
        if abs(n) < 1000.0 or unit == "TB/s":
            return f"{n:.2f} {unit}"
        n /= 1000.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Render a duration with a sensible unit (us/ms/s)."""
    if seconds < 0:
        return "-" + fmt_time(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
