"""Simulated MPI communicators and point-to-point messaging.

Each rank of a job holds a :class:`Comm` — its view of a communicator —
with mpi4py-flavoured methods (``send``/``recv``/``bcast``/``gather``/…,
all generators).  Messages are charged against the compute interconnect
model (per-NIC and bisection fair sharing, §repro.cluster.network), which
is the resource the paper's collective index optimizations deliberately
exploit because it sits idle during I/O phases.

Matching is by (source, tag) with FIFO ordering per pair, like MPI's
non-overtaking rule.  Payloads are arbitrary Python objects; the modeled
wire size is passed explicitly (``nbytes``) so that index aggregation
traffic weighs what the real 48-byte-per-record indices weigh.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..cluster import Interconnect, Node
from ..errors import MPIError
from ..sim import Engine, Store

__all__ = ["Communicator", "Comm", "MSG_HEADER_BYTES"]

MSG_HEADER_BYTES = 64  # envelope cost added to every message


class Communicator:
    """Shared state of one communicator: rank->node map and mailboxes."""

    def __init__(self, env: Engine, interconnect: Interconnect,
                 nodes_by_rank: List[Node], name: str = "comm"):
        if not nodes_by_rank:
            raise MPIError("communicator needs at least one rank")
        self.env = env
        self.interconnect = interconnect
        self.nodes = nodes_by_rank
        self.size = len(nodes_by_rank)
        self.name = name
        self._mail: Dict[Tuple[int, int, Any], Store] = {}
        self._splits: Dict[Tuple[int, int], "Communicator"] = {}
        self.messages = 0
        self.bytes = 0
        # Collective-trace validation (repro.mpi.trace): harness runs
        # under --validate-collectives attach a tracer to the engine and
        # every communicator picks it up here.  None in normal runs —
        # the per-collective cost is then a single attribute check.
        self.tracer = getattr(env, "collective_tracer", None)
        if self.tracer is not None:
            self.tracer.register(self)

    def _box(self, dst: int, src: int, tag: Any) -> Store:
        key = (dst, src, tag)
        box = self._mail.get(key)
        if box is None:
            box = self._mail[key] = Store(self.env)
        return box

    def view(self, rank: int) -> "Comm":
        return Comm(self, rank)


class Comm:
    """One rank's view of a communicator (the object workloads use)."""

    def __init__(self, shared: Communicator, rank: int):
        if not (0 <= rank < shared.size):
            raise MPIError(f"rank {rank} out of range 0..{shared.size - 1}")
        self._shared = shared
        self.rank = rank
        self.size = shared.size
        self.env = shared.env
        self._coll_seq = 0  # SPMD-consistent collective tag counter
        self._trace_depth = 0  # >0 inside a composite collective

    @property
    def node(self) -> Node:
        return self._shared.nodes[self.rank]

    # -- point to point ------------------------------------------------------
    def send(self, dst: int, payload: Any, nbytes: int = 0, tag: Any = 0) -> Generator:
        """Send *payload* to rank *dst*; completes when the message lands."""
        shared = self._shared
        if not (0 <= dst < shared.size):
            raise MPIError(f"send to bad rank {dst}")
        if nbytes < 0:
            raise MPIError(f"negative message size {nbytes}")
        shared.messages += 1
        shared.bytes += nbytes
        yield from shared.interconnect.transfer(
            self.node, shared.nodes[dst], nbytes + MSG_HEADER_BYTES)
        shared._box(dst, self.rank, tag).put(payload)

    def recv(self, src: int, tag: Any = 0) -> Generator:
        """Receive the next message from *src* with *tag*; returns the payload."""
        shared = self._shared
        if not (0 <= src < shared.size):
            raise MPIError(f"recv from bad rank {src}")
        payload = yield shared._box(self.rank, src, tag).get()
        return payload

    # -- non-blocking flavours -------------------------------------------------
    def isend(self, dst: int, payload: Any, nbytes: int = 0, tag: Any = 0):
        """Start a send; returns a process to ``yield`` on (like MPI_Isend +
        MPI_Wait), letting communication overlap other work."""
        return self.env.process(self.send(dst, payload, nbytes, tag))

    def irecv(self, src: int, tag: Any = 0):
        """Start a receive; ``yield`` the returned process for the payload."""
        return self.env.process(self.recv(src, tag))

    # -- collectives -----------------------------------------------------------
    def _next_tag(self) -> Tuple[str, int]:
        self._coll_seq += 1
        return ("_coll", self._coll_seq)

    def _vrank(self, root: int) -> int:
        return (self.rank - root) % self.size

    def _from_vrank(self, v: int, root: int) -> int:
        return (v + root) % self.size

    # -- collective tracing ----------------------------------------------------
    def _traced(self, op: str, root: Optional[int], gen: Generator) -> Generator:
        """Record ``(op, root)`` when a tracer is attached; no-op pass-
        through otherwise (one attribute check per collective call)."""
        if self._shared.tracer is None:
            return gen
        return self._trace_run(op, root, gen)

    def _trace_run(self, op: str, root: Optional[int],
                   gen: Generator) -> Generator:
        # Depth guard: composite collectives (barrier, allgather,
        # allreduce, split) are recorded once, at the granularity the
        # caller wrote — their nested gather/bcast stages stay silent.
        if self._trace_depth == 0:
            self._shared.tracer.record(self._shared, self.rank, op, root)
        self._trace_depth += 1
        try:
            result = yield from gen
        finally:
            self._trace_depth -= 1
        return result

    def gather(self, value: Any, nbytes: int = 0, root: int = 0) -> Generator:
        """Binomial-tree gather; root returns the rank-ordered list, others None.

        Message sizes grow up the tree (a subtree's contributions travel
        together), so the root's final receives carry ~size*nbytes — the
        physical reason Index Flatten's close gets slower at scale (§IV-A).
        """
        return self._traced("gather", root, self._gather(value, nbytes, root))

    def _gather(self, value: Any, nbytes: int = 0, root: int = 0) -> Generator:
        tag = self._next_tag()
        size, v = self.size, self._vrank(root)
        # items: list of (orig_rank, value); carried size in acc_bytes
        items = [(self.rank, value)]
        acc_bytes = nbytes
        mask = 1
        while mask < size:
            if v & mask:
                dst = self._from_vrank(v & ~mask, root)
                yield from self.send(dst, (items, acc_bytes), acc_bytes, tag)
                return None
            partner = v | mask
            if partner < size:
                got, got_bytes = yield from self.recv(self._from_vrank(partner, root), tag)
                items.extend(got)
                acc_bytes += got_bytes
            mask <<= 1
        out: List[Any] = [None] * size
        for r, val in items:
            out[r] = val
        return out

    def bcast(self, value: Any, nbytes: int = 0, root: int = 0) -> Generator:
        """Binomial-tree broadcast; every rank returns the root's value.

        Only the root's *nbytes* matters: relays forward the size they
        received, so non-root callers may pass 0.
        """
        return self._traced("bcast", root, self._bcast(value, nbytes, root))

    def _bcast(self, value: Any, nbytes: int = 0, root: int = 0) -> Generator:
        tag = self._next_tag()
        size, v = self.size, self._vrank(root)
        mask = 1
        while mask < size:
            if v & mask:
                value, nbytes = yield from self.recv(self._from_vrank(v - mask, root), tag)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if v + mask < size:
                yield from self.send(self._from_vrank(v + mask, root),
                                     (value, nbytes), nbytes, tag)
            mask >>= 1
        return value

    def barrier(self) -> Generator:
        """Tree barrier: zero-byte gather then broadcast."""
        return self._traced("barrier", None, self._barrier())

    def _barrier(self) -> Generator:
        yield from self.gather(None, 0, root=0)
        yield from self.bcast(None, 0, root=0)

    def allgather(self, value: Any, nbytes: int = 0) -> Generator:
        """Gather to rank 0 then broadcast the assembled list."""
        return self._traced("allgather", None, self._allgather(value, nbytes))

    def _allgather(self, value: Any, nbytes: int = 0) -> Generator:
        gathered = yield from self.gather(value, nbytes, root=0)
        result = yield from self.bcast(gathered, nbytes * self.size, root=0)
        return result

    def reduce(self, value: Any, op, nbytes: int = 0, root: int = 0) -> Generator:
        """Binomial-tree reduction with a binary *op*; root returns the result."""
        return self._traced("reduce", root, self._reduce(value, op, nbytes, root))

    def _reduce(self, value: Any, op, nbytes: int = 0, root: int = 0) -> Generator:
        tag = self._next_tag()
        size, v = self.size, self._vrank(root)
        acc = value
        mask = 1
        while mask < size:
            if v & mask:
                dst = self._from_vrank(v & ~mask, root)
                yield from self.send(dst, acc, nbytes, tag)
                return None
            partner = v | mask
            if partner < size:
                got = yield from self.recv(self._from_vrank(partner, root), tag)
                acc = op(acc, got)
            mask <<= 1
        return acc

    def allreduce(self, value: Any, op, nbytes: int = 0) -> Generator:
        """Reduce to rank 0 then broadcast the result to every rank."""
        return self._traced("allreduce", None, self._allreduce(value, op, nbytes))

    def _allreduce(self, value: Any, op, nbytes: int = 0) -> Generator:
        acc = yield from self.reduce(value, op, nbytes, root=0)
        result = yield from self.bcast(acc, nbytes, root=0)
        return result

    def scatter(self, values: Optional[List[Any]], nbytes_each: int = 0,
                root: int = 0) -> Generator:
        """Root sends element i to rank i (linear; used for work assignment)."""
        return self._traced("scatter", root,
                            self._scatter(values, nbytes_each, root))

    def _scatter(self, values: Optional[List[Any]], nbytes_each: int = 0,
                 root: int = 0) -> Generator:
        tag = self._next_tag()
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise MPIError("scatter root needs one value per rank")
            for dst in range(self.size):
                if dst == root:
                    continue
                yield from self.send(dst, values[dst], nbytes_each, tag)
            return values[root]
        got = yield from self.recv(root, tag)
        return got

    def alltoall(self, values: List[Any], nbytes_each: int = 0) -> Generator:
        """Pairwise-exchange all-to-all (N-1 rounds); returns received list."""
        return self._traced("alltoall", None,
                            self._alltoall(values, nbytes_each))

    def _alltoall(self, values: List[Any], nbytes_each: int = 0) -> Generator:
        if len(values) != self.size:
            raise MPIError("alltoall needs one value per rank")
        tag = self._next_tag()
        out: List[Any] = [None] * self.size
        out[self.rank] = values[self.rank]
        for step in range(1, self.size):
            dst = (self.rank + step) % self.size
            src = (self.rank - step) % self.size
            # Send and receive concurrently within the step.
            send_proc = self.env.process(self.send(dst, values[dst], nbytes_each, tag))
            got = yield from self.recv(src, tag)
            out[src] = got
            yield send_proc
        return out

    def split(self, color: int, key: Optional[int] = None) -> Generator:
        """Create a sub-communicator per *color* (like MPI_Comm_split).

        Returns this rank's :class:`Comm` view of its new communicator.
        Ordering within a color follows (key, rank).
        """
        # Root None: the color argument is rank-dependent by design (it
        # is how the ranks partition), so the trace records the split
        # itself, not its per-rank color.
        return self._traced("split", None, self._split(color, key))

    def _split(self, color: int, key: Optional[int] = None) -> Generator:
        key = self.rank if key is None else key
        triples = yield from self.allgather((color, key, self.rank), nbytes=24)
        members = sorted((k, r) for c, k, r in triples if c == color)
        ranks = [r for _, r in members]
        # Every member derives an identical group from identical triples, so
        # the first member to get here materializes the shared communicator
        # and the rest adopt it (keyed by the SPMD-consistent collective seq).
        registry = self._shared._splits
        cache_key = (self._coll_seq, color)
        shared = registry.get(cache_key)
        if shared is None:
            # The collective-seq suffix keeps names unique when one job
            # splits the same parent twice (the two-level parallel read
            # makes a "group" and a "leaders" comm that could otherwise
            # both be ".../split0"), which trace reports rely on.
            shared = Communicator(
                self.env, self._shared.interconnect,
                [self._shared.nodes[r] for r in ranks],
                name=f"{self._shared.name}/split{color}@{self._coll_seq}",
            )
            registry[cache_key] = shared
        return shared.view(ranks.index(self.rank))
