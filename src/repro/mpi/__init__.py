"""Simulated MPI: communicators, point-to-point, collectives, job launcher."""

from .comm import MSG_HEADER_BYTES, Comm, Communicator
from .runtime import JobResult, RankContext, run_job

__all__ = [
    "MSG_HEADER_BYTES",
    "Comm",
    "Communicator",
    "JobResult",
    "RankContext",
    "run_job",
]
