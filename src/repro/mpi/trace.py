"""Runtime collective-trace recording and congruence validation.

The static analyzer (:mod:`repro.analysis.collectives`) proves rank
congruence where it can and is conservative where it cannot — unresolved
calls, opaque summaries, justified ``noqa`` sites.  This module is the
runtime half of the contract: with a :class:`CollectiveTracer` attached
to the engine (``--validate-collectives`` in the harness), every
top-level collective a rank issues is recorded as ``(op, root)`` against
its communicator, and :func:`validate_comm` asserts at job drain that
every rank of every communicator issued the *same* sequence with the
*same* roots.  A static finding is confirmed by a non-congruent trace
and dismissed by a congruent one — each with a replayable run.

Recording is per-communicator, keyed by object identity, so the
sub-communicators of ``split`` validate independently (each color group
must be internally congruent; the groups legitimately differ from each
other).  Composite collectives (``barrier``, ``allgather``,
``allreduce``, ``split``) record once — their nested ``gather``/
``bcast`` building blocks are suppressed by a per-rank depth counter —
so the trace matches the caller's source, which is what the analyzer
models.  ``split`` records root ``None``: its color argument varies by
rank by design.

The tracer is off by default and costs one attribute check per
collective call when detached (benchmarks/bench_analysis.py guards the
overhead at <2%).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from ..errors import CollectiveMismatchError

__all__ = [
    "CollectiveTracer", "attach_tracer", "validate_collectives_enabled",
    "validate_comm", "validate_tracer",
]

_ENV_FLAG = "REPRO_VALIDATE_COLLECTIVES"

# One recorded collective: (operation name, root argument or None).
TraceEntry = Tuple[str, Optional[int]]


def validate_collectives_enabled() -> bool:
    """Is ``REPRO_VALIDATE_COLLECTIVES`` set (the harness flag's channel)?

    An environment variable rather than an argument so ``--jobs`` sweep
    worker processes inherit the setting, same as ``REPRO_SANITIZE``.
    """
    return os.environ.get(_ENV_FLAG, "") not in ("", "0")


class CollectiveTracer:
    """Per-communicator, per-rank collective sequence recorder.

    ``strict`` decides what a detected mismatch does at job drain:
    raise :class:`~repro.errors.CollectiveMismatchError` (harness runs)
    or merely be reported by :func:`validate_comm` for the caller to
    collect (the model checker's oracle mode).
    """

    def __init__(self, strict: bool = True):
        self.strict = strict
        # id(Communicator) -> (Communicator, {rank: [entries]}).  Keyed
        # by identity: split() makes one Communicator per color, and
        # congruence is a per-communicator property.
        self._traces: Dict[int, Tuple[Any, Dict[int, List[TraceEntry]]]] = {}
        self._order: List[int] = []  # deterministic reporting order

    # -- recording ----------------------------------------------------------
    def register(self, shared: Any) -> None:
        """Track *shared* (a Communicator) from its creation."""
        key = id(shared)
        if key not in self._traces:
            self._traces[key] = (shared, {})
            self._order.append(key)

    def record(self, shared: Any, rank: int, op: str,
               root: Optional[int]) -> None:
        """One top-level collective entered by *rank* on *shared*."""
        self.register(shared)
        self._traces[id(shared)][1].setdefault(rank, []).append((op, root))

    # -- validation ---------------------------------------------------------
    def trace_of(self, shared: Any) -> Dict[int, List[TraceEntry]]:
        """rank -> recorded sequence for *shared* (empty if untouched)."""
        entry = self._traces.get(id(shared))
        return entry[1] if entry is not None else {}

    def comms(self) -> List[Any]:
        """Every registered communicator, in creation order."""
        return [self._traces[k][0] for k in self._order]


def _mismatch_of(shared: Any,
                 by_rank: Dict[int, List[TraceEntry]]) -> Optional[str]:
    """Describe the first non-congruence on one communicator, or None."""
    if not by_rank:
        return None  # no collectives on this comm: trivially congruent
    size = getattr(shared, "size", max(by_rank) + 1)
    name = getattr(shared, "name", "comm")
    seqs = {r: by_rank.get(r, []) for r in range(size)}
    longest = max(len(s) for s in seqs.values())
    for i in range(longest):
        entries = {r: (s[i] if i < len(s) else None)
                   for r, s in sorted(seqs.items())}
        distinct = set(entries.values())
        if len(distinct) == 1:
            continue
        parts = []
        for r in sorted(entries):
            e = entries[r]
            parts.append(f"rank {r}: " + (
                f"{e[0]}(root={e[1]})" if e is not None else "(nothing)"))
        return (f"communicator {name!r}: per-rank traces diverge at "
                f"collective #{i}: " + "; ".join(parts))
    return None


def validate_comm(tracer: CollectiveTracer, shared: Any) -> List[str]:
    """Congruence errors for *shared* and (recursively) its splits."""
    errors: List[str] = []
    msg = _mismatch_of(shared, tracer.trace_of(shared))
    if msg is not None:
        errors.append(msg)
    splits = getattr(shared, "_splits", None)
    if splits:
        for key in sorted(splits, key=repr):
            errors.extend(validate_comm(tracer, splits[key]))
    return errors


def validate_tracer(tracer: CollectiveTracer) -> List[str]:
    """Congruence errors across every communicator the tracer saw."""
    errors: List[str] = []
    for shared in tracer.comms():
        msg = _mismatch_of(shared, tracer.trace_of(shared))
        if msg is not None:
            errors.append(msg)
    return errors


def attach_tracer(env: Any, strict: bool = True) -> CollectiveTracer:
    """Attach a :class:`CollectiveTracer` to *env*; idempotent.

    Communicators created on *env* afterwards pick the tracer up from
    ``env.collective_tracer`` (mirroring the sanitizer's attachment
    protocol) and :func:`~repro.mpi.runtime.run_job` validates at
    drain, raising :class:`~repro.errors.CollectiveMismatchError` when
    *strict*.
    """
    tracer = getattr(env, "collective_tracer", None)
    if tracer is None:
        tracer = CollectiveTracer(strict=strict)
        env.collective_tracer = tracer
    return tracer


def check_at_drain(tracer: CollectiveTracer, shared: Any,
                   job_name: str) -> List[str]:
    """Drain-time validation used by ``run_job``: validate *shared* and
    its splits; raise when strict, else return the error list."""
    errors = validate_comm(tracer, shared)
    if errors and tracer.strict:
        raise CollectiveMismatchError(
            f"job {job_name!r}: non-congruent collective traces "
            f"({len(errors)} communicator(s)):\n  " + "\n  ".join(errors))
    return errors
