"""Job launcher: spawn N rank processes on the cluster and collect metrics.

A *rank function* is a generator function ``fn(ctx) -> result`` where
``ctx`` is a :class:`RankContext` carrying the rank's communicator view,
its PFS client identity, and a phase clock.  :func:`run_job` runs all
ranks to completion (bulk-synchronous jobs implicitly synchronize through
their own collectives) and reduces the clocks into
:class:`~repro.sim.JobMetrics` the way the paper reports times: phase
times are the max over ranks, and effective bandwidth spans first-open to
last-close (footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List

from ..cluster import Cluster
from ..errors import ConfigError
from ..pfs.volume import Client
from ..sim import Engine, JobMetrics, PhaseClock
from .comm import Comm, Communicator

__all__ = ["RankContext", "JobResult", "run_job"]


@dataclass
class RankContext:
    """Everything one rank needs: identity, comm, storage client, clock."""

    rank: int
    nprocs: int
    comm: Comm
    client: Client
    clock: PhaseClock
    env: Engine
    cluster: Cluster

    @property
    def node(self):
        return self.client.node

    # -- phase bookkeeping -----------------------------------------------------
    def start(self, name: str) -> None:
        """Start timing phase *name* at the current simulated time."""
        self.clock.start(name, self.env.now)

    def stop(self, name: str) -> float:
        """Stop phase *name*; returns its duration."""
        return self.clock.stop(name, self.env.now)


@dataclass
class JobResult:
    """Outcome of one simulated job."""

    nprocs: int
    results: List[Any]
    metrics: JobMetrics
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


def run_job(env: Engine, cluster: Cluster, nprocs: int,
            fn: Callable[[RankContext], Generator], *,
            bytes_total: int = 0, name: str = "job",
            client_id_base: int = 0) -> JobResult:
    """Run *fn* as an *nprocs*-rank job; returns results and reduced metrics.

    The engine is run to completion; a rank that blocks forever raises
    :class:`~repro.errors.DeadlockError` via the engine.  *bytes_total* is
    recorded into the metrics for bandwidth computation (callers know what
    their workload moved logically; the simulator also tracks physical
    bytes separately).  *client_id_base* offsets PFS client identities so
    back-to-back jobs (write then restart) look like distinct job launches.
    """
    if nprocs < 1:
        raise ConfigError(f"job needs >= 1 rank, got {nprocs}")
    nodes = [cluster.node_for_rank(r, nprocs) for r in range(nprocs)]
    shared = Communicator(env, cluster.interconnect, nodes, name=name)
    clocks = [PhaseClock() for _ in range(nprocs)]
    contexts = [
        RankContext(
            rank=r,
            nprocs=nprocs,
            comm=shared.view(r),
            client=Client(node=nodes[r], client_id=client_id_base + r),
            clock=clocks[r],
            env=env,
            cluster=cluster,
        )
        for r in range(nprocs)
    ]
    start = env.now
    procs = [env.process(fn(contexts[r]), name=f"{name}.r{r}") for r in range(nprocs)]
    done = env.all_of(procs)
    # The engine may keep running past the job (background drains, other
    # jobs' stragglers); the job ends when its last rank returns.
    finish_stamp = {}
    done._add_callback(lambda _ev: finish_stamp.setdefault("t", env.now))
    env.run()
    tracer = getattr(env, "collective_tracer", None)
    if not done.triggered:
        # Surface which ranks are stuck *and what each is waiting on* to
        # make model bugs debuggable.
        from ..errors import DeadlockError
        from ..sim import blocked_report

        stuck = [p for p in procs if not p.triggered]
        report = (
            f"job {name!r}: {len(stuck)} of {nprocs} ranks never finished:\n"
            + blocked_report(stuck[:8])
            + ("\n  ..." if len(stuck) > 8 else ""))
        if tracer is not None:
            # A rank-divergent collective usually *causes* the hang; the
            # trace comparison names the exact divergence, which is far
            # more actionable than the generic stuck report.
            from ..errors import CollectiveMismatchError
            from .trace import validate_comm

            trace_errors = validate_comm(tracer, shared)
            if trace_errors:
                raise CollectiveMismatchError(
                    report + "\n  non-congruent collective traces:\n  "
                    + "\n  ".join(trace_errors))
        raise DeadlockError(report)
    if tracer is not None:
        # Quiescent-drain congruence check (--validate-collectives):
        # every rank of this job's communicator — and of every split
        # sub-communicator — must have issued the same collective
        # sequence with the same roots.  Strict tracers (harness runs)
        # raise CollectiveMismatchError; non-strict ones (the model
        # checker) leave the errors for the oracle pass to collect.
        from .trace import check_at_drain

        check_at_drain(tracer, shared, name)
    metrics = JobMetrics.from_rank_clocks(clocks, bytes_total)
    return JobResult(
        nprocs=nprocs,
        results=[p.value for p in procs],
        metrics=metrics,
        start_time=start,
        end_time=finish_stamp.get("t", env.now),
    )
