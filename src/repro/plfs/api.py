"""PLFS mount: the user-facing middleware API.

A :class:`PlfsMount` glues one or more backing volumes (federated
metadata, §V) behind a logical namespace in which each *file* is secretly
a container.  Two usage styles mirror the paper's interfaces:

* **coordinated** (the MPI-IO / ADIO driver path, §II): collective
  ``open_write`` / ``open_read`` / ``close_write`` taking a communicator,
  which unlocks the Index Flatten and Parallel Index Read optimizations;
* **independent** (the FUSE path): the same calls with ``comm=None`` —
  container creation races first-writer-wins, and reads fall back to the
  Original (read-everything-yourself) aggregation.

PLFS does not support read-write opens of shared files (§IV-D3 — the
paper had to patch IOR/MADbench for this); ``open_write`` with an existing
open reader or ``mode="rw"`` raises :class:`UnsupportedOperation`.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from ..errors import FileExists, FileNotFound, PLFSError, UnsupportedOperation
from ..faults.policies import RetryPolicy, retrying
from ..pfs.volume import Client, Stat, Volume
from ..sim import Engine
from .aggregation import (
    aggregate_original,
    aggregate_parallel,
    aggregate_resilient,
    flatten_on_close,
    read_flattened_index,
)
from .config import PlfsConfig
from .container import ACCESS_NAME, ContainerLayout, parse_meta_dropping
from .index import GlobalIndex
from .reader import PlfsReadHandle
from .writer import PlfsWriteHandle, open_write_handle

__all__ = ["PlfsMount"]


class PlfsMount:
    """A mounted PLFS file system over one or more backing volumes."""

    def __init__(self, env: Engine, volumes: Sequence[Volume],
                 cfg: Optional[PlfsConfig] = None, name: str = "plfs"):
        if not volumes:
            raise PLFSError("PLFS mount needs at least one backing volume")
        self.env = env
        self.volumes: List[Volume] = list(volumes)
        self.cfg = cfg or PlfsConfig()
        self.name = name
        # Simulator-side memoization of parsed global indexes (see
        # aggregation module docstring); never affects charged time.
        self._index_cache: dict = {}

    def layout(self, path: str) -> ContainerLayout:
        return ContainerLayout(path, self.volumes, self.cfg)

    # -- write side ---------------------------------------------------------
    def open_write(self, client: Client, path: str, comm=None, *,
                   mode: str = "w", truncate: bool = False,
                   retry: RetryPolicy = None) -> Generator:
        """Open a logical file for writing; returns a :class:`PlfsWriteHandle`.

        Collective when *comm* is given: rank 0 creates the container and
        the rest wait (one skeleton creation per job, like the ADIO
        driver).  Independent otherwise: first writer wins the create race.
        ``truncate`` gives O_TRUNC semantics: the logical file is emptied
        (all existing droppings removed) before writing begins.  *retry*
        makes the open and every subsequent write on the handle survive
        transient storage faults (see :mod:`repro.faults.policies`).
        """
        if mode != "w":
            raise UnsupportedOperation(
                path, "PLFS does not support read-write opens of shared files")
        layout = self.layout(path)
        if comm is not None and comm.size > 1:
            if comm.rank == 0:
                existed = layout.exists()
                yield from retrying(self.env, retry,
                                    lambda: layout.ensure_skeleton(client))
                if truncate and existed:
                    yield from layout.truncate(client)
            yield from comm.bcast(None, nbytes=8, root=0)
        else:
            existed = layout.exists()
            yield from retrying(self.env, retry,
                                lambda: layout.ensure_skeleton(client))
            if truncate and existed:
                yield from layout.truncate(client)
        handle = yield from open_write_handle(layout, client, retry=retry)
        if truncate:
            self._index_cache = {k: v for k, v in self._index_cache.items()  # repro: noqa[REP004] - order-preserving filter of a deterministic cache
                                 if k[0] != layout.path}
        return handle

    def close_write(self, handle: PlfsWriteHandle, comm=None) -> Generator:
        """Close a write handle, running Index Flatten when configured.

        Returns True if a flattened global index was produced (§IV-A).
        """
        flattened = False
        if self.cfg.aggregation == "flatten":
            flattened = yield from flatten_on_close(
                handle.layout, handle.client, comm, handle.index, self.cfg)
        yield from handle.close()
        return flattened

    # -- read side -----------------------------------------------------------
    def open_read(self, client: Client, path: str, comm=None, *,
                  retry: RetryPolicy = None) -> Generator:
        """Open for reading: aggregate the global index per the configured
        strategy, then hand back a :class:`PlfsReadHandle`.

        With *retry* set and ``comm=None``, aggregation runs in resilient
        mode: unreachable index logs are skipped and reported as a
        :class:`~repro.errors.PartialViewError` naming the missing writers
        instead of hanging.  Collective opens ignore *retry* during
        aggregation (a per-rank exception would strand the other ranks at
        the next collective) but reads on the returned handle still retry.
        """
        layout = self.layout(path)
        if not layout.exists():
            raise FileNotFound(path)
        strategy = self.cfg.aggregation
        gi: Optional[GlobalIndex] = None
        if retry is not None and comm is None:
            gi = yield from aggregate_resilient(layout, client, retry)
            return PlfsReadHandle(layout, client, gi, retry=retry)
        if strategy == "flatten":
            gi = yield from read_flattened_index(layout, client, comm)
        if gi is None:
            if strategy == "parallel" or (strategy == "flatten" and comm is not None):
                gi = yield from aggregate_parallel(layout, client, comm, self.cfg)
            else:
                gi = yield from aggregate_original(layout, client, self._index_cache)
        return PlfsReadHandle(layout, client, gi, retry=retry)

    # -- namespace / metadata --------------------------------------------------
    def create(self, client: Client, path: str, *, exclusive: bool = False) -> Generator:
        """Create an empty logical file (a container skeleton)."""
        layout = self.layout(path)
        if layout.exists():
            if exclusive:
                raise FileExists(path)
            return layout
        yield from layout.create_skeleton(client)
        return layout

    def exists(self, path: str) -> bool:
        return self.layout(path).exists()

    def stat(self, client: Client, path: str) -> Generator:
        """Logical stat: size comes from metadir dropping *names* (Fig. 1)."""
        layout = self.layout(path)
        home = layout.home_volume
        node = home.ns.try_resolve(path)
        if node is None:
            raise FileNotFound(path)
        if node.is_dir and ACCESS_NAME not in (node.children or {}):
            yield from home.stat(client, path)
            return Stat(path=path, uid=node.uid, is_dir=True, size=0)
        names = yield from home.readdir(client, layout.meta_path)
        size = 0
        for name in names:
            eof, _nrec, _node_id, _writer = parse_meta_dropping(name)
            size = max(size, eof)
        return Stat(path=path, uid=node.uid, is_dir=False, size=size)

    def unlink(self, client: Client, path: str) -> Generator:
        layout = self.layout(path)
        yield from layout.destroy(client)
        self._index_cache = {k: v for k, v in self._index_cache.items()  # repro: noqa[REP004] - order-preserving filter of a deterministic cache
                             if k[0] != layout.path}

    def mkdir(self, client: Client, path: str) -> Generator:
        """Logical mkdir: plain directories exist on every volume so that
        containers can hash anywhere under them."""
        for vol in self._distinct_volumes():
            if not vol.ns.exists(path):
                yield from vol.makedirs(client, path)

    def readdir(self, client: Client, path: str) -> Generator:
        """Logical listing: union over volumes, minus container internals."""
        names = set()
        for vol in self._distinct_volumes():
            if vol.ns.exists(path):
                listing = yield from vol.readdir(client, path)
                names.update(listing)
        return sorted(names)

    def _distinct_volumes(self) -> List[Volume]:
        if self.cfg.federation == "none":
            return self.volumes[:1]
        return self.volumes

    def invalidate_index_cache(self) -> None:
        """Drop memoized indexes (tests / repeated experiments)."""
        self._index_cache.clear()
