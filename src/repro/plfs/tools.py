"""Container inspection and recovery utilities.

Real PLFS ships ``plfs_map`` (dump a file's logical→physical map) and
administrators routinely need to check and repair containers after jobs
die mid-checkpoint.  These are the equivalents:

* :func:`plfs_map` — the resolved extent map of a logical file;
* :func:`plfs_check` — integrity report: dirty openhost marks (crashed
  writers), data logs with no index coverage (unreachable tail bytes),
  index records pointing past their data logs, stat/metadata drift;
* :func:`plfs_recover` — rebuild the metadata droppings from the index
  logs and clear stale openhost marks, making a crashed-but-spilled
  container fully consistent again (what an admin runs before a restart).

All are charged simulated time like any other client activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Tuple

from ..errors import FileNotFound
from ..pfs.extents import HOLE
from ..pfs.volume import Client
from .aggregation import list_index_logs, _read_and_parse
from .container import ContainerLayout, meta_dropping_name, parse_meta_dropping

__all__ = ["MapEntry", "CheckReport", "plfs_map", "plfs_check", "plfs_recover"]

MapEntry = Tuple[int, int, int, int]  # (logical_start, logical_end, writer, physical)


@dataclass
class CheckReport:
    """Outcome of :func:`plfs_check`."""

    path: str
    n_writers: int = 0
    n_index_records: int = 0
    logical_size: int = 0
    meta_size: int = 0
    dirty_hosts: List[int] = field(default_factory=list)
    unindexed_bytes: int = 0          # data-log tail bytes no index covers
    dangling_records: int = 0         # index records past their data log
    warnings: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.dirty_hosts or self.dangling_records
                    or self.meta_size != self.logical_size or self.warnings)


def _build_index(layout: ContainerLayout, client: Client) -> Generator:
    entries = yield from list_index_logs(layout, client)
    gi = yield from _read_and_parse(client, entries)
    return gi


def plfs_map(layout: ContainerLayout, client: Client) -> Generator:
    """The resolved logical→physical map of a container (like plfs_map)."""
    if not layout.exists():
        raise FileNotFound(layout.path)
    gi = yield from _build_index(layout, client)
    out: List[MapEntry] = []
    for s, e, writer, phys in gi.flatten().query(0, gi.logical_size):
        if writer != HOLE:
            out.append((s, e, writer, phys))
    return out


def plfs_check(layout: ContainerLayout, client: Client) -> Generator:
    """Audit a container; returns a :class:`CheckReport`."""
    if not layout.exists():
        raise FileNotFound(layout.path)
    home = layout.home_volume
    report = CheckReport(path=layout.path)

    # Crashed writers leave openhost marks behind.
    hosts = yield from home.readdir(client, layout.openhosts_path)
    for name in hosts:
        try:
            report.dirty_hosts.append(int(name.split(".")[1]))
        except (IndexError, ValueError):
            report.warnings.append(f"malformed openhost entry {name!r}")

    gi = yield from _build_index(layout, client)
    report.n_writers = len(gi.writers)
    report.n_index_records = len(gi)
    report.logical_size = gi.logical_size

    # Per-writer: compare indexed coverage against the data log's size.
    per_writer_end = {}
    starts, lengths, srcs, offs, _, _ = gi.journal.columns()
    for i in range(len(gi.journal)):
        w = int(srcs[i])
        end = int(offs[i]) + int(lengths[i])
        per_writer_end[w] = max(per_writer_end.get(w, 0), end)
    for writer, node_id in sorted(gi.writers.items()):
        vol = layout.subdir_volume(layout.subdir_for_writer(node_id))
        log = vol.ns.try_resolve(layout.data_log_path(node_id, writer))
        if log is None:
            report.warnings.append(f"index references missing data log of writer {writer}")
            continue
        indexed = per_writer_end.get(writer, 0)
        if log.data.size > indexed:
            report.unindexed_bytes += log.data.size - indexed
        elif log.data.size < indexed:
            report.dangling_records += 1

    # Metadata droppings vs the real index.
    names = yield from home.readdir(client, layout.meta_path)
    for name in names:
        eof, _, _, _ = parse_meta_dropping(name)
        report.meta_size = max(report.meta_size, eof)
    return report


def plfs_recover(layout: ContainerLayout, client: Client) -> Generator:
    """Repair a container after writer crashes (cf. an fsck for PLFS).

    Rebuilds one metadata dropping from the true index contents, drops the
    stale per-host droppings, and clears leftover openhost marks.  Data
    that was never indexed (appended after the writer's last index spill)
    stays unreachable — PLFS cannot invent the missing offsets — but the
    container becomes consistent: stat, check, and readers all agree.
    Returns the post-recovery :class:`CheckReport`.
    """
    if not layout.exists():
        raise FileNotFound(layout.path)
    home = layout.home_volume
    gi = yield from _build_index(layout, client)

    # Clear stale openhost marks (and any in-memory refcounts).
    hosts = yield from home.readdir(client, layout.openhosts_path)
    for name in hosts:
        yield from home.unlink(client, f"{layout.openhosts_path}/{name}")
    reg = getattr(home, "_plfs_host_refs", None)
    if reg:
        for key in [k for k in reg if k[0] == layout.path]:
            del reg[key]

    # Replace the metadata droppings with one rebuilt from the index.
    names = yield from home.readdir(client, layout.meta_path)
    for name in names:
        yield from home.unlink(client, f"{layout.meta_path}/{name}")
    rebuilt = meta_dropping_name(gi.logical_size, len(gi), 0, 0)
    fh = yield from home.open(client, f"{layout.meta_path}/{rebuilt}", "w",
                              create=True)
    yield from fh.close()

    report = yield from plfs_check(layout, client)
    return report
