"""Burst-buffer mode: node-local staging with asynchronous drain.

The paper's conclusion anticipates middleware like PLFS carrying the
exascale I/O stack; within a few years that meant node-local burst
buffers (cf. SCR in the related work, and PLFS's own later burst-buffer
backend).  This module models that extension:

* checkpoint *writes* land in a node-local device at local bandwidth —
  the application resumes computing after a memory-speed-ish dump;
* each host's data log then *drains* to the parallel file system in the
  background, overlapping the next compute phase;
* index logs and metadata still go straight to the PFS (they are small
  and must survive the node), so a restart after drain completes sees a
  perfectly ordinary PLFS container.

Reads require the container to be fully drained (like real staging
systems); :meth:`PlfsBurstMount.wait_drains` is the barrier.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence

from ..errors import PLFSError
from ..pfs.volume import Client, Volume
from ..sim import Engine, FairShareServer, Process
from ..units import MiB
from .api import PlfsMount
from .config import PlfsConfig
from .writer import PlfsWriteHandle

__all__ = ["PlfsBurstMount", "BurstWriteHandle"]


class PlfsBurstMount(PlfsMount):
    """A PLFS mount whose data logs stage through node-local burst buffers."""

    def __init__(self, env: Engine, volumes: Sequence[Volume],
                 cfg: Optional[PlfsConfig] = None, name: str = "plfs-bb", *,
                 bb_bw_per_node: float = 2.0e9, drain_chunk: int = 8 * MiB):
        super().__init__(env, volumes, cfg, name)
        if bb_bw_per_node <= 0 or drain_chunk <= 0:
            raise PLFSError("burst buffer bandwidth and drain chunk must be positive")
        self.bb_bw_per_node = bb_bw_per_node
        self.drain_chunk = drain_chunk
        self._bb_devices: Dict[int, FairShareServer] = {}
        self._drains: Dict[str, List[Process]] = {}

    def bb_device(self, node_id: int) -> FairShareServer:
        """The node-local staging device (created lazily per node)."""
        dev = self._bb_devices.get(node_id)
        if dev is None:
            dev = self._bb_devices[node_id] = FairShareServer(
                self.env, self.bb_bw_per_node, name=f"bb[{node_id}]")
        return dev

    # -- write side -----------------------------------------------------------
    def open_write(self, client: Client, path: str, comm=None, *,
                   mode: str = "w") -> Generator:
        """Like PlfsMount.open_write, but returning a staging handle."""
        handle = yield from super().open_write(client, path, comm, mode=mode)
        return BurstWriteHandle.adopt(handle, self)

    # -- drain management -------------------------------------------------------
    def _register_drain(self, path: str, proc: Process) -> None:
        self._drains.setdefault(path, []).append(proc)

    def pending_drains(self, path: Optional[str] = None) -> List[Process]:
        """Unfinished background drains (optionally for one logical path)."""
        if path is not None:
            return [p for p in self._drains.get(path, []) if not p.triggered]
        # Sorted by path: the returned list feeds all_of(), so its order
        # is part of the event wiring.
        return [p for _path, procs in sorted(self._drains.items())
                for p in procs if not p.triggered]

    def wait_drains(self, path: Optional[str] = None) -> Generator:
        """Block until every (or one path's) background drain completes."""
        procs = self.pending_drains(path)
        if procs:
            yield self.env.all_of(procs)

    def open_read(self, client: Client, path: str, comm=None) -> Generator:
        """Open for read; refuses while the container is still draining."""
        if self.pending_drains(self.layout(path).path):
            raise PLFSError(
                f"{path}: container still draining from burst buffers; "
                "yield from mount.wait_drains(path) first")
        handle = yield from super().open_read(client, path, comm)
        return handle


class BurstWriteHandle(PlfsWriteHandle):
    """A write handle whose data appends hit the node-local burst device."""

    @classmethod
    def adopt(cls, handle: PlfsWriteHandle, mount: PlfsBurstMount) -> "BurstWriteHandle":
        """Rebind a freshly opened write handle to the staging write path."""
        handle.__class__ = cls
        handle.mount = mount  # type: ignore[attr-defined]
        return handle  # type: ignore[return-value]

    def write(self, offset: int, spec) -> Generator:
        """Stage the bytes locally; index records point at the final log."""
        if self.closed:
            from ..errors import BadFileHandle

            raise BadFileHandle(self.layout.path)
        if spec.length == 0:
            return
        # Charge the node-local device only (shared by co-located writers).
        dev = self.mount.bb_device(self.client.node.id)
        yield dev.serve(spec.length)
        # Content lands in the (logical) data log now; the PFS time for it
        # is charged by the drain.
        physical = self.data_fh.inode.data.size
        self.data_fh.inode.data.write(physical, spec)
        if self.data_fh.volume.cfg.client_cache:
            self.client.node.page_cache.insert(self.data_fh.inode.uid,
                                               physical, spec.length)
        self.index.record(offset, spec.length, physical, stamp=self.env.now)
        self.bytes_written += spec.length
        spill = self.layout.cfg.index_spill_records
        if spill and len(self.index) - self._spilled_records >= spill:
            yield from self._spill_index()

    def close(self) -> Generator:
        """Index + metadata go to the PFS now; the data log drains behind."""
        if self.closed:
            from ..errors import BadFileHandle

            raise BadFileHandle(self.layout.path)
        yield from self._spill_index()
        yield from self.index_fh.close()
        yield from self._drop_metadata()
        self.closed = True
        proc = self.env.process(self._drain(), name=f"drain:{self.layout.path}")
        self.mount._register_drain(self.layout.path, proc)

    def _drain(self) -> Generator:
        """Background copy of the staged data log onto the PFS."""
        size = self.data_fh.inode.data.size
        chunk = self.mount.drain_chunk
        pos = 0
        while pos < size:
            n = min(chunk, size - pos)
            yield from self.data_fh._charge_write_through(pos, n)
            pos += n
        yield from self.data_fh.close()
