"""Index aggregation strategies (§IV): Original, Index Flatten, Parallel Index Read.

The write-optimized design defers index resolution to read-open.  How the
N writers' index logs become one global index is the paper's central
read-path contribution:

``original``
    Every reader independently lists the container and reads *every*
    index log: N readers x N logs = N² opens hammering the backing MDS —
    the measured cause of collapsing restart bandwidth (§IV).

``flatten``
    At write-close, writers gather their buffered indices over the idle
    compute interconnect to rank 0, which writes one ``global.index``
    file.  Read-open is then a single file read plus a broadcast.  Costs
    write-close time (Fig. 4c/4d); wins when a file is written once and
    read many times (§IV-A).

``parallel``
    At read-open, a two-level collective reads each index log exactly
    once: ranks read disjoint shards, group leaders merge, leaders
    exchange, and the global index is broadcast down (§IV-B).  N opens
    total, no write-side cost — the paper's default.

Implementation note: every rank is *charged* its full simulated cost, but
ranks provably construct identical global indexes, so the Python-side
object is memoized per container fingerprint (and shared through bcast by
reference).  This is an optimization of the simulator, not of the modeled
system.
"""

from __future__ import annotations

import math
from typing import Dict, Generator, List, Optional, Tuple

from ..errors import PartialViewError, PLFSError, TransientIOError
from ..faults.policies import RetryPolicy, retrying
from ..pfs.volume import Client, Volume
from .config import PlfsConfig
from .container import ContainerLayout
from .index import GlobalIndex, WriterIndex

__all__ = [
    "list_index_logs",
    "aggregate_original",
    "aggregate_parallel",
    "aggregate_resilient",
    "read_flattened_index",
    "flatten_on_close",
    "MERGE_COST_PER_RECORD",
]

# CPU time a real PLFS client spends merging one index record (charged as
# simulated compute during aggregation).
MERGE_COST_PER_RECORD = 60e-9

IndexLogEntry = Tuple[Volume, str, int, int]  # (volume, path, writer_id, node_id)


def _parse_index_log_name(name: str) -> Optional[Tuple[int, int]]:
    """(node_id, writer_id) from 'dropping.index.<node>.<writer>', else None."""
    parts = name.split(".")
    if len(parts) == 4 and parts[0] == "dropping" and parts[1] == "index":
        try:
            return int(parts[2]), int(parts[3])
        except ValueError:
            return None
    return None


def list_index_logs(layout: ContainerLayout, client: Client) -> Generator:
    """Enumerate every index log in the container (charges the readdirs)."""
    out: List[IndexLogEntry] = []
    for s in range(layout.cfg.n_subdirs):
        vol = layout.subdir_volume(s)
        path = layout.subdir_path(s)
        if not vol.ns.exists(path):
            continue
        names = yield from vol.readdir(client, path)
        for name in names:
            parsed = _parse_index_log_name(name)
            if parsed is not None:
                node_id, writer_id = parsed
                out.append((vol, f"{path}/{name}", writer_id, node_id))
    return out


def _fingerprint(entries: List[IndexLogEntry]) -> Tuple:
    """Cheap identity of the container's index state (for memoization)."""
    sig = []
    for vol, path, writer_id, node_id in entries:
        node = vol.ns.try_resolve(path)
        sig.append((path, writer_id, node_id, node.data.size if node else -1))
    return tuple(sorted(sig))


def _read_and_parse(client: Client, entries: List[IndexLogEntry]) -> Generator:
    """Bulk-read the given index logs (grouped per volume) and merge them."""
    # Grouped by volume *name* (stable identity — id() is a memory address
    # and differs across runs); iterated in first-seen entry order, which
    # is deterministic because the entry list is.
    by_volume: Dict[str, List[IndexLogEntry]] = {}
    for e in entries:
        by_volume.setdefault(e[0].name, []).append(e)
    merged = GlobalIndex()
    for group in by_volume.values():  # repro: noqa[REP004] -- grouped by a deterministic walk of rank-ordered entries
        vol = group[0][0]
        views = yield from vol.bulk_read_files(client, [path for _, path, _, _ in group])
        for (_, _, writer_id, node_id), view in zip(group, views):
            merged.merge(WriterIndex.parse(view, writer_id, node_id))
    return merged


def aggregate_original(layout: ContainerLayout, client: Client,
                       cache: Optional[dict] = None) -> Generator:
    """The original design: this reader reads every index log itself.

    Every rank pays the full simulated cost of reading and merging all the
    index logs — that is the point of this strategy — but ranks provably
    construct identical Python objects, so the memoization is
    *single-flight*: the first arrival parses, concurrent arrivals charge
    their own time and then adopt the parsed object.  Without this, a
    2,048-rank read job would material­ize 2,048 copies of a ~100 MB
    global index in host memory.
    """
    env = layout.home_volume.env
    entries = yield from list_index_logs(layout, client)
    key = None
    if cache is not None:
        key = (layout.path, _fingerprint(entries))
        hit = cache.get(key)
        if hit is not None:
            # Same simulated cost as a miss; skip only the Python-side parse.
            yield from _charge_only(layout, client, entries)
            if isinstance(hit, tuple):  # ('pending', event): parse in flight
                yield hit[1]
                merged = cache[key]
            else:
                merged = hit
            yield env.timeout(len(merged.journal) * MERGE_COST_PER_RECORD)
            return merged
        cache[key] = ("pending", env.event())
    merged = yield from _read_and_parse(client, entries)
    yield env.timeout(len(merged.journal) * MERGE_COST_PER_RECORD)
    if cache is not None:
        pending = cache[key]
        cache[key] = merged
        if isinstance(pending, tuple):
            pending[1].succeed()
    return merged


def _charge_only(layout: ContainerLayout, client: Client,
                 entries: List[IndexLogEntry]) -> Generator:
    """Charge exactly what :func:`_read_and_parse` charges, sans parsing."""
    # Same stable grouping and first-seen order as _read_and_parse.
    by_volume: Dict[str, List[IndexLogEntry]] = {}
    for e in entries:
        by_volume.setdefault(e[0].name, []).append(e)
    for group in by_volume.values():  # repro: noqa[REP004] -- grouped by a deterministic walk of rank-ordered entries
        vol = group[0][0]
        yield from vol.bulk_read_files(client, [path for _, path, _, _ in group])


def aggregate_resilient(layout: ContainerLayout, client: Client,
                        retry: RetryPolicy) -> Generator:
    """Original aggregation under a retry policy (independent opens only).

    Each per-volume index-log batch is retried under *retry*; a batch that
    stays unreachable past the policy's bounds is *skipped* and its writers
    recorded, and the open fails with :class:`PartialViewError` naming
    every missing writer — a diagnosable partial view instead of a hang or
    a bare EIO mid-merge.  Collective aggregation cannot do this (one
    rank's exception would strand the others at the next collective), which
    is why :meth:`PlfsMount.open_read` routes only ``comm=None`` here.

    No memoization: a degraded-mode read's outcome depends on fault timing,
    not just container state, so caching would alias distinct outcomes.
    """
    env = layout.home_volume.env
    # Enumerate per subdir so one unreachable volume cannot abort the whole
    # open: its subdir is recorded (the writers there are unknowable without
    # the readdir) and the remaining subdirs still contribute.
    entries: List[IndexLogEntry] = []
    missing_subdirs: List[int] = []
    for s in range(layout.cfg.n_subdirs):
        vol = layout.subdir_volume(s)
        path = layout.subdir_path(s)
        if not vol.ns.exists(path):
            continue
        try:
            names = yield from retrying(
                env, retry, lambda v=vol, p=path: v.readdir(client, p))
        except TransientIOError:
            missing_subdirs.append(s)
            continue
        for name in names:
            parsed = _parse_index_log_name(name)
            if parsed is not None:
                node_id, writer_id = parsed
                entries.append((vol, f"{path}/{name}", writer_id, node_id))
    # Stable grouping key + first-seen order, as in _read_and_parse.
    by_volume: Dict[str, List[IndexLogEntry]] = {}
    for e in entries:
        by_volume.setdefault(e[0].name, []).append(e)
    merged = GlobalIndex()
    missing: List[int] = []
    for group in by_volume.values():  # repro: noqa[REP004] -- grouped by a deterministic walk of rank-ordered entries
        vol = group[0][0]
        paths = [path for _, path, _, _ in group]
        try:
            views = yield from retrying(
                env, retry, lambda v=vol, p=paths: v.bulk_read_files(client, p))
        except TransientIOError:
            missing.extend(writer_id for _, _, writer_id, _ in group)
            continue
        for (_, _, writer_id, node_id), view in zip(group, views):
            merged.merge(WriterIndex.parse(view, writer_id, node_id))
    yield env.timeout(len(merged.journal) * MERGE_COST_PER_RECORD)
    if missing or missing_subdirs:
        raise PartialViewError(layout.path, missing, missing_subdirs)
    return merged


def aggregate_parallel(layout: ContainerLayout, client: Client, comm,
                       cfg: PlfsConfig) -> Generator:
    """Parallel Index Read: hierarchical collective aggregation at read-open."""
    if comm is None or comm.size == 1:
        return (yield from aggregate_original(layout, client))
    size, rank = comm.size, comm.rank
    # Rank 0 enumerates the container and hands out work (§IV-B: "one
    # process assigns work to groups of processes").
    if rank == 0:
        entries = yield from list_index_logs(layout, client)
        manifest = [(layout.subdir_for_writer(n), p, w, n) for _, p, w, n in entries]
    else:
        manifest = None
    manifest = yield from comm.bcast(manifest, nbytes=64 * (len(manifest) if manifest else 1),
                                     root=0)
    entries = [(layout.subdir_volume(s), p, w, n) for s, p, w, n in manifest]
    # My shard: files i with i % size == rank.
    mine = entries[rank::size]
    partial = yield from _read_and_parse(client, mine)
    yield comm.env.timeout(len(partial.journal) * MERGE_COST_PER_RECORD)
    # Two-level merge: groups of ~sqrt(N) (or the configured width).
    gsize = cfg.parallel_group_size or max(1, round(math.sqrt(size)))
    group = yield from comm.split(rank // gsize)
    leader_color = 0 if group.rank == 0 else 1
    leaders = yield from comm.split(leader_color)
    parts = yield from group.gather(partial, nbytes=partial.nbytes, root=0)
    if group.rank == 0:
        group_index = GlobalIndex.merged(parts)
        yield comm.env.timeout(len(group_index.journal) * MERGE_COST_PER_RECORD)
        # Leaders exchange group indices; leader 0 merges once and the
        # result is broadcast (object shared by reference — identical
        # content, charged per hop).
        all_parts = yield from leaders.gather(group_index, nbytes=group_index.nbytes, root=0)
        if leaders.rank == 0:
            global_index = GlobalIndex.merged(all_parts)
            yield comm.env.timeout(len(global_index.journal) * MERGE_COST_PER_RECORD)
        else:
            global_index = None
        global_index = yield from leaders.bcast(
            global_index, nbytes=(global_index.nbytes if global_index else 0), root=0)
    else:
        global_index = None
    global_index = yield from group.bcast(
        global_index, nbytes=(global_index.nbytes if global_index else 0), root=0)
    return global_index


def read_flattened_index(layout: ContainerLayout, client: Client, comm) -> Generator:
    """Read-open under Index Flatten: one read of global.index, then bcast.

    Returns None when no flattened index exists (the writer exceeded the
    threshold, or the file was written without flattening) — callers fall
    back to another strategy, as real PLFS does.
    """
    home = layout.home_volume
    gi: Optional[GlobalIndex] = None
    if comm is None or comm.rank == 0:
        if home.ns.exists(layout.global_index_path):
            view = yield from home.read_file(client, layout.global_index_path)
            gi = GlobalIndex.deserialize(view)
            yield home.env.timeout(len(gi.journal) * MERGE_COST_PER_RECORD)
    if comm is not None and comm.size > 1:
        gi = yield from comm.bcast(gi, nbytes=(gi.nbytes if gi else 0), root=0)
    return gi


def flatten_on_close(layout: ContainerLayout, client: Client, comm,
                     widx: WriterIndex, cfg: PlfsConfig) -> Generator:
    """Write-close side of Index Flatten (§IV-A).

    Engages only when *every* writer's buffered index fits the threshold
    (checked with a tiny allreduce).  Writers gather their indices to rank
    0 over the compute interconnect; rank 0 writes the single
    ``global.index`` file.  Returns True if the flatten happened.
    """
    if comm is None:
        # Solo writer: flatten is trivially its own index.
        if widx.nbytes > cfg.flatten_threshold:
            return False
        gi = GlobalIndex()
        gi.merge_writer(widx)
        yield from layout.home_volume.write_file(client, layout.global_index_path,
                                                 gi.serialize())
        return True
    biggest = yield from comm.allreduce(widx.nbytes, op=max, nbytes=8)
    if biggest > cfg.flatten_threshold:
        return False
    parts = yield from comm.gather(widx, nbytes=widx.nbytes, root=0)
    if comm.rank == 0:
        gi = GlobalIndex()
        for part in parts:
            gi.merge_writer(part)
        yield comm.env.timeout(len(gi.journal) * MERGE_COST_PER_RECORD)
        yield from layout.home_volume.write_file(client, layout.global_index_path,
                                                 gi.serialize())
    # Everyone waits for the root's write (close is collective here).
    yield from comm.barrier()
    return True
