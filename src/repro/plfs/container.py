"""PLFS container layout on the backing parallel file system(s).

A logical PLFS file is physically a *container*: a directory of the same
name holding an access file, a metadata directory whose dropping *names*
encode logical file size (so stat never reads data), an openhosts
directory marking live writers, and hashed subdirs holding each writer's
append-only data log and index log (paper Fig. 1).

Federated metadata (§V) spreads pieces across several backing volumes:

* ``container`` mode hashes whole containers across volumes — this is the
  fix for application-generated N-N workloads (every file is a container);
* ``subdir`` mode keeps the container skeleton on its home volume but
  places ``subdirs.s`` on volume ``(home + s) % k`` — the fix for the
  physical N-N that PLFS's own N-1 transformation creates.

Placement is *static hashing* (the paper contrasts this with GIGA+'s
dynamic splitting), so every process computes the same placement with no
coordination.  Real PLFS reaches foreign volumes via shadow containers
and metalink stubs; we compute placement directly and note the
simplification in DESIGN.md.
"""

from __future__ import annotations

import zlib
from typing import Generator, List, Tuple

from ..errors import FileExists, FileNotFound, PLFSError
from ..pfs.namespace import normalize
from ..pfs.volume import Client, Volume
from .config import PlfsConfig

__all__ = ["ContainerLayout", "ACCESS_NAME", "META_DIR", "OPENHOSTS_DIR",
           "GLOBAL_INDEX_NAME", "subdir_name", "data_log_name", "index_log_name",
           "meta_dropping_name", "parse_meta_dropping", "openhost_name"]

ACCESS_NAME = ".plfsaccess113918400"  # real PLFS's magic access-file name
META_DIR = "meta"
OPENHOSTS_DIR = "openhosts"
GLOBAL_INDEX_NAME = "global.index"


def subdir_name(s: int) -> str:
    """Directory name of hashed subdir *s*."""
    return f"subdirs.{s}"


def data_log_name(node_id: int, writer_id: int) -> str:
    """One writer's data-log dropping name."""
    return f"dropping.data.{node_id}.{writer_id}"


def index_log_name(node_id: int, writer_id: int) -> str:
    """One writer's index-log dropping name."""
    return f"dropping.index.{node_id}.{writer_id}"


def openhost_name(node_id: int) -> str:
    """The live-writer mark for one host."""
    return f"host.{node_id}"


def meta_dropping_name(eof: int, nrecords: int, node_id: int, writer_id: int) -> str:
    """Metadata dropping: the *name* carries the info, the file is empty."""
    return f"{eof}.{nrecords}.{node_id}.{writer_id}"


def parse_meta_dropping(name: str) -> Tuple[int, int, int, int]:
    """(eof, records, node, writer) from a dropping name."""
    parts = name.split(".")
    if len(parts) != 4:
        raise PLFSError(f"malformed meta dropping {name!r}")
    return tuple(int(p) for p in parts)  # type: ignore[return-value]


class ContainerLayout:
    """Placement and path arithmetic for one logical file's container."""

    def __init__(self, logical_path: str, volumes: List[Volume], cfg: PlfsConfig):
        if not volumes:
            raise PLFSError("PLFS mount needs at least one backing volume")
        self.path = normalize(logical_path)
        self.volumes = volumes
        self.cfg = cfg
        self._home = zlib.crc32(self.path.encode()) % len(volumes)

    # -- placement -----------------------------------------------------------
    @property
    def home_volume(self) -> Volume:
        """Volume holding the container skeleton (and everything, sans federation)."""
        if self.cfg.federation == "none":
            return self.volumes[0]
        return self.volumes[self._home]

    def subdir_volume(self, s: int) -> Volume:
        """Volume hosting subdir *s* under the configured federation."""
        if self.cfg.federation == "subdir":
            return self.volumes[(self._home + s) % len(self.volumes)]
        return self.home_volume

    def subdir_for_writer(self, node_id: int) -> int:
        """Writers hash by host (node) into a subdir, like real PLFS."""
        return node_id % self.cfg.n_subdirs

    # -- paths ----------------------------------------------------------------
    @property
    def access_path(self) -> str:
        """The container's access-file path."""
        return f"{self.path}/{ACCESS_NAME}"

    @property
    def meta_path(self) -> str:
        """The metadata-droppings directory."""
        return f"{self.path}/{META_DIR}"

    @property
    def openhosts_path(self) -> str:
        """The live-writer marks directory."""
        return f"{self.path}/{OPENHOSTS_DIR}"

    @property
    def global_index_path(self) -> str:
        """Index Flatten's single aggregated index file."""
        return f"{self.path}/{GLOBAL_INDEX_NAME}"

    def subdir_path(self, s: int) -> str:
        """Path of hashed subdir *s*."""
        return f"{self.path}/{subdir_name(s)}"

    def data_log_path(self, node_id: int, writer_id: int) -> str:
        """A writer's data log path (hashed by host)."""
        s = self.subdir_for_writer(node_id)
        return f"{self.subdir_path(s)}/{data_log_name(node_id, writer_id)}"

    def index_log_path(self, node_id: int, writer_id: int) -> str:
        """A writer's index log path (hashed by host)."""
        s = self.subdir_for_writer(node_id)
        return f"{self.subdir_path(s)}/{index_log_name(node_id, writer_id)}"

    # -- existence ---------------------------------------------------------------
    def exists(self) -> bool:
        """Is there a container here? (functional check, no time charged)."""
        node = self.home_volume.ns.try_resolve(self.path)
        if node is None or not node.is_dir:
            return False
        return ACCESS_NAME in node.children

    # -- creation / teardown -------------------------------------------------
    def _tmp_skeleton_path(self, client: Client) -> str:
        """Writer-unique staging name, sibling of the container dir."""
        return f"{self.path}.mkdir.{client.node.id}.{client.client_id}"

    def _remove_tmp_skeleton(self, client: Client, tmp: str) -> Generator:
        """Tear down a staged (possibly partial) skeleton at *tmp*."""
        vol = self.home_volume
        for sub in (f"{tmp}/{ACCESS_NAME}",):
            if vol.ns.exists(sub):
                yield from vol.unlink(client, sub)
        for sub in (f"{tmp}/{META_DIR}", f"{tmp}/{OPENHOSTS_DIR}"):
            if vol.ns.exists(sub):
                yield from vol.rmdir(client, sub)
        yield from vol.rmdir(client, tmp)

    def create_skeleton(self, client: Client, *, parents: bool = False) -> Generator:
        """Create the container: dir, access file, meta/, openhosts/.

        Creation is atomic the way real PLFS makes it atomic: the whole
        skeleton is staged under a writer-unique sibling name and then
        ``rename(2)``-ed into place, so a concurrent opener either sees
        no container or a *complete* one — never a directory whose
        ``openhosts/`` has yet to be created.  (The schedule explorer
        found exactly that half-built window in the naive mkdir-first
        ordering: a second writer losing the mkdir race would charge
        ahead and fault on the missing ``openhosts/``.)

        Subdirs are created lazily on first writer touch (see
        :meth:`ensure_subdir`), keeping per-file metadata cost low for N-N
        workloads.  Raises :class:`FileExists` if another writer's rename
        won — callers use that for first-writer-wins racing; the loser's
        staging dir is torn down before the raise.
        """
        vol = self.home_volume
        if parents:
            parent = self.path.rpartition("/")[0]
            if parent:
                yield from vol.makedirs(client, parent)
        tmp = self._tmp_skeleton_path(client)
        if vol.ns.exists(tmp):  # debris of an earlier faulted attempt
            yield from self._remove_tmp_skeleton(client, tmp)
        yield from vol.mkdir(client, tmp)
        fh = yield from vol.open(client, f"{tmp}/{ACCESS_NAME}", "w",
                                 create=True)
        yield from fh.close()
        yield from vol.mkdir(client, f"{tmp}/{META_DIR}")
        yield from vol.mkdir(client, f"{tmp}/{OPENHOSTS_DIR}")
        try:
            yield from vol.rename(client, tmp, self.path)
        except FileExists:
            yield from self._remove_tmp_skeleton(client, tmp)
            raise

    def ensure_skeleton(self, client: Client) -> Generator:
        """Create the container if missing; tolerate losing the race."""
        if not self.exists():
            try:
                yield from self.create_skeleton(client)
            except FileExists:
                pass

    def ensure_subdir(self, client: Client, s: int) -> Generator:
        """Create ``subdirs.s`` (and, under federation, its remote parents)."""
        vol = self.subdir_volume(s)
        path = self.subdir_path(s)
        if vol.ns.exists(path):
            return
        if vol is not self.home_volume and not vol.ns.exists(self.path):
            # Shadow container parent on the foreign volume.  Another writer
            # may race us through each step; losing a race is fine as long
            # as the directory ends up existing.
            try:
                yield from vol.makedirs(client, self.path)
            except FileExists:
                pass
        if not vol.ns.exists(path):
            try:
                yield from vol.mkdir(client, path)
            except FileExists:
                pass

    def all_volumes(self) -> List[Volume]:
        """Volumes that can hold pieces of this container (deduplicated)."""
        seen, out = set(), []
        for s in range(self.cfg.n_subdirs):
            vol = self.subdir_volume(s)
            if id(vol) not in seen:
                seen.add(id(vol))
                out.append(vol)
        if id(self.home_volume) not in seen:
            out.append(self.home_volume)
        return out

    def truncate(self, client: Client) -> Generator:
        """Truncate the logical file to zero: drop every dropping.

        O_TRUNC on a container removes data logs, index logs, metadata
        droppings, and any flattened global index, leaving the skeleton —
        the next writers start a fresh generation.
        """
        if not self.exists():
            raise FileNotFound(self.path)
        home = self.home_volume
        for vol in self.all_volumes():
            for s in range(self.cfg.n_subdirs):
                if self.subdir_volume(s) is not vol:
                    continue
                sub = self.subdir_path(s)
                if not vol.ns.exists(sub):
                    continue
                names = yield from vol.readdir(client, sub)
                for name in names:
                    yield from vol.unlink(client, f"{sub}/{name}")
        meta = home.ns.try_resolve(self.meta_path)
        if meta is not None:
            for name in list(meta.children):
                yield from home.unlink(client, f"{self.meta_path}/{name}")
        if home.ns.exists(self.global_index_path):
            yield from home.unlink(client, self.global_index_path)

    def destroy(self, client: Client) -> Generator:
        """Unlink every dropping and remove the container (logical unlink)."""
        if not self.exists():
            raise FileNotFound(self.path)
        for vol in self.all_volumes():
            node = vol.ns.try_resolve(self.path)
            if node is None:
                continue
            # Depth-first removal, charging each op.
            entries = [(p, n) for p, n in vol.ns.walk(self.path)]
            for p, n in reversed(entries):
                if n.is_dir:
                    yield from vol.rmdir(client, p)
                else:
                    yield from vol.unlink(client, p)
