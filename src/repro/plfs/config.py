"""PLFS middleware configuration.

The knobs mirror the design choices the paper evaluates:

* ``aggregation`` — how the global index is assembled at read-open
  (§IV): ``"original"`` (every rank reads every index log, N² opens),
  ``"flatten"`` (aggregate at write-close, one global-index file), or
  ``"parallel"`` (hierarchical collective read at read-open — the paper's
  chosen default, §IV-D).
* ``flatten_threshold`` — Index Flatten only engages when every writer's
  buffered index stays under this size (§IV-A).
* ``parallel_group_size`` — the two-level collective's group width
  (§IV-B); 0 picks ~sqrt(N).
* ``federation`` — static spreading across backing volumes (§V):
  ``"none"``, ``"container"`` (whole containers hashed across volumes,
  for application N-N workloads), or ``"subdir"`` (a container's subdirs
  spread across volumes, for the physical N-N that PLFS itself creates
  out of logical N-1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import MiB

__all__ = ["PlfsConfig", "AGGREGATIONS", "FEDERATIONS"]

AGGREGATIONS = ("original", "flatten", "parallel")
FEDERATIONS = ("none", "container", "subdir")


@dataclass(frozen=True)
class PlfsConfig:
    """Static configuration of one PLFS mount."""

    aggregation: str = "parallel"
    flatten_threshold: int = 2 * MiB     # per-writer buffered-index cap (§IV-A)
    parallel_group_size: int = 0         # 0 = auto (~sqrt(N))
    federation: str = "none"
    n_subdirs: int = 32                  # hashed subdirs per container (PLFS default)
    # Contiguous-record merging: an index entry whose logical AND physical
    # ranges extend the writer's previous entry coalesces into it (real
    # PLFS does this; sequential writers get O(1)-sized indexes while
    # strided checkpoint patterns keep one record per write).
    index_merge: bool = True
    # Periodic index spill: after this many buffered records the writer
    # appends them to its index log, bounding what a crash can lose.
    # 0 spills only at close.
    index_spill_records: int = 16384

    def __post_init__(self) -> None:
        if self.aggregation not in AGGREGATIONS:
            raise ConfigError(f"aggregation must be one of {AGGREGATIONS}, got {self.aggregation!r}")
        if self.federation not in FEDERATIONS:
            raise ConfigError(f"federation must be one of {FEDERATIONS}, got {self.federation!r}")
        if self.n_subdirs < 1:
            raise ConfigError("n_subdirs must be >= 1")
        if self.flatten_threshold < 0:
            raise ConfigError("flatten_threshold must be >= 0")
        if self.parallel_group_size < 0:
            raise ConfigError("parallel_group_size must be >= 0")
        if self.index_spill_records < 0:
            raise ConfigError("index_spill_records must be >= 0")
