"""PLFS write path: append-only data logs plus index records.

Each writer owns a private data log and index log inside a hashed subdir
of the container.  A logical write at any offset becomes a *physical
append* (§II: PLFS "transforms random I/O into sequential"), plus one
in-memory index record stamped with the current time; the index log is
written out at close.  Decoupled files mean no lock traffic and no
read-modify-write on the backing store — that is the entire write-side
trick, and the simulated PFS rewards it exactly as the real ones do.
"""

from __future__ import annotations

from typing import Generator

from ..analysis.sanitize import raw_snapshot, tracked
from ..errors import BadFileHandle, FileNotFound, InvalidArgument
from ..faults.policies import RetryPolicy, retrying
from ..pfs.data import DataSpec
from ..pfs.volume import Client, FileHandle
from .container import ContainerLayout, meta_dropping_name, openhost_name
from .index import WriterIndex

__all__ = ["PlfsWriteHandle", "open_write_handle"]


def _host_registry(home) -> dict:
    """Per-volume registry of live writers per (container, host).

    Openhost and metadata droppings are per *host* in PLFS (Fig. 1): the
    first writer on a node creates the openhost mark, the last closer
    removes it and drops the host's metadata.  The registry holds
    ``(path, node_id) -> [refcount, max_eof, total_records]``.
    """
    reg = getattr(home, "_plfs_host_refs", None)
    if reg is None:
        # Shared across every writer/closer process on the volume: the
        # canonical yield-point race surface (see the PR 2 last-closer
        # fix below), so it registers with the sanitizer when one is on.
        reg = home._plfs_host_refs = tracked(
            home.env, {}, f"plfs-host-refs[{home.name}]")
    return reg


def host_refs_snapshot(home) -> dict:
    """Plain ``{(path, node_id): (refcount, max_eof, total_records)}`` copy
    of a volume's host registry.

    Oracle accessor for the model checker: reads the raw container behind
    the tracked proxy, so invariant evaluation never perturbs the
    sanitizer's read vectors or the explorer's access footprints.
    """
    reg = getattr(home, "_plfs_host_refs", None)
    if reg is None:
        return {}
    return {k: tuple(v) for k, v in sorted(raw_snapshot(reg).items())}


def open_write_handle(layout: ContainerLayout, client: Client,
                      retry: RetryPolicy = None) -> Generator:
    """Per-writer open: ensure the subdir, create data+index logs, mark host.

    The container skeleton must already exist (see
    :meth:`PlfsMount.open_write` / :meth:`ContainerLayout.ensure_skeleton`).
    Returns a :class:`PlfsWriteHandle`.  Each constituent metadata op is
    individually retried under *retry* — safe because the volume charges
    an op's time *before* mutating the namespace, so a failed attempt
    leaves nothing behind.
    """
    env = layout.home_volume.env
    node_id = client.node.id
    writer_id = client.client_id
    s = layout.subdir_for_writer(node_id)
    yield from retrying(env, retry, lambda: layout.ensure_subdir(client, s))
    vol = layout.subdir_volume(s)
    # Dropping names are per-open, like real PLFS's host.pid.timestamp: a
    # client re-opening the same logical file (append after close) gets a
    # fresh dropping pair rather than clobbering its earlier logs.
    while vol.ns.exists(layout.data_log_path(node_id, writer_id)):
        writer_id += 1_000_003
    data_path = layout.data_log_path(node_id, writer_id)
    index_path = layout.index_log_path(node_id, writer_id)
    data_fh = yield from retrying(env, retry, lambda: vol.open(
        client, data_path, "w", create=True, truncate=True))
    index_fh = yield from retrying(env, retry, lambda: vol.open(
        client, index_path, "w", create=True, truncate=True))
    # Openhosts dropping marks this *host* as live (first writer creates it).
    home = layout.home_volume
    reg = _host_registry(home)
    key = (layout.path, node_id)
    entry = reg.setdefault(key, [0, 0, 0])
    entry[0] += 1
    if entry[0] == 1:
        oh_path = f"{layout.openhosts_path}/{openhost_name(node_id)}"
        oh = yield from retrying(env, retry, lambda: home.open(
            client, oh_path, "w", create=True))
        yield from oh.close()
    return PlfsWriteHandle(layout, client, data_fh, index_fh,
                           writer_id=writer_id, retry=retry)


class PlfsWriteHandle:
    """One writer's open-for-write state on a PLFS logical file."""

    def __init__(self, layout: ContainerLayout, client: Client,
                 data_fh: FileHandle, index_fh: FileHandle,
                 writer_id: int = None, retry: RetryPolicy = None):
        self.layout = layout
        self.client = client
        self.data_fh = data_fh
        self.index_fh = index_fh
        self.retry = retry
        if writer_id is None:
            writer_id = client.client_id
        self.index = WriterIndex(writer_id=writer_id, node_id=client.node.id,
                                 merge=layout.cfg.index_merge)
        self.closed = False
        self.bytes_written = 0
        self._spilled_records = 0

    @property
    def env(self):
        return self.data_fh.volume.env

    def write(self, offset: int, spec: DataSpec) -> Generator:
        """Logical write: physical append to the data log + index record."""
        if self.closed:
            raise BadFileHandle(self.layout.path)
        if offset < 0:
            raise InvalidArgument(self.layout.path, f"negative offset {offset}")
        if spec.length == 0:
            return
        # A retried append may leave an unindexed first copy in the log
        # (dead space); the index records only the acknowledged copy, so
        # logical content is unchanged — retransmission semantics.
        physical = yield from retrying(self.env, self.retry,
                                       lambda: self.data_fh.append(spec))
        self.index.record(offset, spec.length, physical, stamp=self.env.now)
        self.bytes_written += spec.length
        spill = self.layout.cfg.index_spill_records
        if spill and len(self.index) - self._spilled_records >= spill:
            yield from self._spill_index()

    def _spill_index(self) -> Generator:
        """Append buffered index records to the index log (bounds crash loss)."""
        hi = len(self.index)
        if hi > self._spilled_records:
            chunk = self.index.serialize_range(self._spilled_records, hi)
            yield from retrying(self.env, self.retry,
                                lambda: self.index_fh.append(chunk))
            self._spilled_records = hi
            self.index.seal()

    def abandon(self) -> None:
        """Simulate this writer crashing: no close, no index spill, no
        metadata dropping, openhost mark left behind.  Data appended since
        the last spill is unrecoverable — exactly PLFS's failure semantics.
        The backing file handles are torn down without charging time (the
        node is gone)."""
        if self.closed:
            raise BadFileHandle(self.layout.path)
        self.closed = True
        self.data_fh.closed = True
        self.index_fh.closed = True
        self.data_fh.inode.writers -= 1
        self.index_fh.inode.writers -= 1

    @property
    def eof(self) -> int:
        """This writer's view of the logical EOF (max extent it wrote)."""
        return self.index.journal.size

    def close(self) -> Generator:
        """Spill the index log, drop metadata, release the openhost mark.

        Index-Flatten aggregation happens *above* this call (it needs the
        communicator); see :meth:`repro.plfs.api.PlfsMount.close_write`.
        """
        if self.closed:
            raise BadFileHandle(self.layout.path)
        yield from self._spill_index()
        yield from retrying(self.env, self.retry, lambda: self.index_fh.close())
        yield from retrying(self.env, self.retry, lambda: self.data_fh.close())
        yield from self._drop_metadata()
        self.closed = True

    def _drop_metadata(self) -> Generator:
        """Host-level close bookkeeping: metadata dropping + openhost clear
        when this is the host's last live writer."""
        home = self.layout.home_volume
        client = self.client
        node_id = client.node.id
        reg = _host_registry(home)
        key = (self.layout.path, node_id)
        entry = reg[key]
        entry[0] -= 1
        entry[1] = max(entry[1], self.eof)
        entry[2] += len(self.index)
        if entry[0] != 0:
            return
        # Last live writer on this host *right now*: retire the registry
        # entry atomically with the zero check (no yields in between), so a
        # writer re-opening while this close's metadata ops are in flight
        # starts a fresh host generation instead of racing this one's
        # refcount.  The dropping name alone carries eof/records.
        del reg[key]
        name = meta_dropping_name(entry[1], entry[2], node_id, 0)
        meta_path = f"{self.layout.meta_path}/{name}"
        meta = yield from retrying(self.env, self.retry, lambda: home.open(
            client, meta_path, "w", create=True))
        yield from retrying(self.env, self.retry, lambda: meta.close())
        if key in reg:
            # A new generation opened while the dropping was being written:
            # the host is live again and its openhost mark must survive.
            return
        oh_path = f"{self.layout.openhosts_path}/{openhost_name(node_id)}"
        try:
            yield from retrying(self.env, self.retry,
                                lambda: home.unlink(client, oh_path))
        except FileNotFound:
            pass  # a racing generation's closer already cleared the mark
