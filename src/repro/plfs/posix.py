"""The FUSE-style POSIX view of a PLFS mount (§II's "most transparent" path).

The paper's first interface is a FUSE mount point: applications just use
open/read/write/seek/close and never know the middleware exists.  This
adapter is that view for simulated non-MPI applications: cursor-based
file objects over a :class:`~repro.plfs.api.PlfsMount`, one adapter per
process (it carries the client identity a FUSE daemon would).

Because there is no communicator on this path, reads fall back to the
uncoordinated Original index aggregation — exactly the real FUSE
limitation that motivated the paper's MPI-IO driver (§II, §IV).
"""

from __future__ import annotations

from typing import Generator

from ..errors import BadFileHandle, InvalidArgument, UnsupportedOperation
from ..pfs.data import DataSpec, DataView
from ..pfs.volume import Client
from .api import PlfsMount

__all__ = ["PosixAdapter", "PlfsPosixFile"]

SEEK_SET, SEEK_CUR, SEEK_END = 0, 1, 2


class PlfsPosixFile:
    """A cursor-based file object over a PLFS logical file."""

    def __init__(self, adapter: "PosixAdapter", handle, mode: str, path: str):
        self._adapter = adapter
        self._handle = handle
        self.mode = mode
        self.path = path
        self._pos = 0
        self.closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise BadFileHandle(self.path)

    # -- position ---------------------------------------------------------------
    def tell(self) -> int:
        """Current cursor position."""
        return self._pos

    def seek(self, offset: int, whence: int = SEEK_SET) -> int:
        """Move the cursor (SET/CUR/END); returns the new position."""
        self._check_open()
        if whence == SEEK_SET:
            pos = offset
        elif whence == SEEK_CUR:
            pos = self._pos + offset
        elif whence == SEEK_END:
            pos = self.size() + offset
        else:
            raise InvalidArgument(self.path, f"bad whence {whence}")
        if pos < 0:
            raise InvalidArgument(self.path, f"seek before start ({pos})")
        self._pos = pos
        return pos

    def size(self) -> int:
        """Logical file size as this handle sees it."""
        if self.mode == "r":
            return self._handle.size
        return self._handle.eof

    # -- I/O -----------------------------------------------------------------------
    def write(self, spec: DataSpec) -> Generator:
        """Write at the cursor; returns bytes written."""
        self._check_open()
        if self.mode != "w":
            raise UnsupportedOperation(self.path, "file not open for writing")
        yield from self._handle.write(self._pos, spec)
        self._pos += spec.length
        return spec.length

    def read(self, length: int = -1) -> Generator:
        """Read from the cursor; ``-1`` reads to EOF. Returns a DataView."""
        self._check_open()
        if self.mode != "r":
            raise UnsupportedOperation(self.path, "file not open for reading")
        if length < 0:
            length = max(0, self.size() - self._pos)
        view = yield from self._handle.read(self._pos, length)
        self._pos += view.length
        return view

    def close(self) -> Generator:
        """Close (write mode runs the mount's close-write path)."""
        self._check_open()
        if self.mode == "w":
            yield from self._adapter.mount.close_write(self._handle, None)
        else:
            yield from self._handle.close()
        self.closed = True


class PosixAdapter:
    """One process's POSIX-flavoured view of a PLFS mount."""

    def __init__(self, mount: PlfsMount, client: Client):
        self.mount = mount
        self.client = client

    def open(self, path: str, mode: str = "r") -> Generator:
        """Open a logical file; modes ``"r"``, ``"w"`` (create/truncate),
        ``"a"`` (create, cursor at EOF)."""
        if mode not in ("r", "w", "a"):
            raise InvalidArgument(path, f"bad posix mode {mode!r}")
        if mode == "r":
            handle = yield from self.mount.open_read(self.client, path, None)
            return PlfsPosixFile(self, handle, "r", path)
        handle = yield from self.mount.open_write(self.client, path, None,
                                                  truncate=(mode == "w"))
        f = PlfsPosixFile(self, handle, "w", path)
        if mode == "a":
            # Appending continues after everything any writer has dropped.
            st = yield from self.mount.stat(self.client, path)
            f._pos = st.size
        return f

    # -- namespace -------------------------------------------------------------
    def stat(self, path: str) -> Generator:
        """Logical stat via metadata droppings."""
        st = yield from self.mount.stat(self.client, path)
        return st

    def exists(self, path: str) -> bool:
        """True if a logical file (container) exists at *path*."""
        return self.mount.exists(path)

    def listdir(self, path: str) -> Generator:
        """Logical directory listing (container internals hidden)."""
        names = yield from self.mount.readdir(self.client, path)
        return names

    def unlink(self, path: str) -> Generator:
        """Remove a logical file (the whole container)."""
        yield from self.mount.unlink(self.client, path)

    def mkdir(self, path: str) -> Generator:
        """Create a logical directory on every backing volume."""
        yield from self.mount.mkdir(self.client, path)
