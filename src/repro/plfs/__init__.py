"""PLFS: the paper's transformative middleware (containers, index, aggregation)."""

from .aggregation import (
    aggregate_original,
    aggregate_parallel,
    flatten_on_close,
    list_index_logs,
    read_flattened_index,
)
from .api import PlfsMount
from .burst import BurstWriteHandle, PlfsBurstMount
from .posix import PlfsPosixFile, PosixAdapter
from .config import AGGREGATIONS, FEDERATIONS, PlfsConfig
from .container import ContainerLayout
from .index import GlobalIndex, WriterIndex
from .reader import PlfsReadHandle
from .tools import CheckReport, plfs_check, plfs_map, plfs_recover
from .writer import PlfsWriteHandle

__all__ = [
    "PlfsMount",
    "PlfsBurstMount",
    "BurstWriteHandle",
    "PosixAdapter",
    "PlfsPosixFile",
    "PlfsConfig",
    "AGGREGATIONS",
    "FEDERATIONS",
    "ContainerLayout",
    "GlobalIndex",
    "WriterIndex",
    "PlfsReadHandle",
    "PlfsWriteHandle",
    "CheckReport",
    "plfs_check",
    "plfs_map",
    "plfs_recover",
    "aggregate_original",
    "aggregate_parallel",
    "flatten_on_close",
    "list_index_logs",
    "read_flattened_index",
]
