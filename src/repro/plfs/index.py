"""PLFS index records: per-writer logs and the merged global index.

Every PLFS write appends data to the writer's own data log and a record
``(logical_offset, length, physical_offset, timestamp, writer)`` to its
index log (§II).  Reading requires the *global index*: the union of every
writer's records, resolved last-writer-wins by timestamp (the paper's
footnote 1 — synchronized clocks, and HPC checkpoints rarely overwrite
anyway).  Resolution reuses :class:`repro.pfs.extents.ExtentJournal`, the
same machinery the simulated PFS uses for file contents.

Index logs are real files on the backing store with a fixed 48-byte
on-media record (matching the C struct's weight), so aggregation
strategies move and pay for real bytes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from ..errors import PLFSError
from ..pfs.data import DataView, LiteralData
from ..pfs.extents import RECORD_BYTES, ExtentJournal, FlatMap

__all__ = ["RECORD_DTYPE", "WriterIndex", "GlobalIndex"]

RECORD_DTYPE = np.dtype([
    ("logical", "<i8"),
    ("length", "<i8"),
    ("physical", "<i8"),
    ("stamp", "<f8"),
    ("writer", "<i8"),
    ("_pad", "<i8"),
])
assert RECORD_DTYPE.itemsize == RECORD_BYTES


class WriterIndex:
    """One writer's in-memory index buffer (spilled to its index log).

    With ``merge=True`` (PLFS's behaviour), a record whose logical *and*
    physical ranges both extend the previous record coalesces into it —
    sequential writers keep O(1)-sized indexes, while strided patterns
    (the interesting case) still produce one record per write.
    """

    def __init__(self, writer_id: int, node_id: int, merge: bool = False):
        self.writer_id = writer_id
        self.node_id = node_id
        self.merge = merge
        self.journal = ExtentJournal()
        self._last_ends: Tuple[int, int] = (-1, -1)  # (logical end, physical end)

    def __len__(self) -> int:
        return len(self.journal)

    @property
    def nbytes(self) -> int:
        """On-media size of the buffered records."""
        return self.journal.nbytes

    def record(self, logical: int, length: int, physical: int, stamp: float) -> None:
        """Note that [logical, logical+length) now lives at *physical* in the data log."""
        if self.merge and self._last_ends == (logical, physical) and len(self.journal):
            self.journal.grow_last(length)
        else:
            self.journal.append(logical, length, src=self.writer_id, src_off=physical,
                                stamp=stamp, minor=self.writer_id)
        self._last_ends = (logical + length, physical + length)

    def seal(self) -> None:
        """Forbid merging into existing records (call after spilling them —
        a grown record would silently diverge from its on-media copy)."""
        self._last_ends = (-1, -1)

    def serialize(self) -> LiteralData:
        """On-media bytes of this index log."""
        return self.serialize_range(0, len(self.journal))

    def serialize_range(self, lo: int, hi: int) -> LiteralData:
        """On-media bytes of records [lo, hi) — used by periodic spills."""
        start, length, _src, src_off, stamp, _minor = self.journal.columns()
        n = hi - lo
        arr = np.empty(n, dtype=RECORD_DTYPE)
        arr["logical"] = start[lo:hi]
        arr["length"] = length[lo:hi]
        arr["physical"] = src_off[lo:hi]
        arr["stamp"] = stamp[lo:hi]
        arr["writer"] = self.writer_id
        arr["_pad"] = 0
        return LiteralData(arr.view(np.uint8).reshape(-1))

    @staticmethod
    def parse(view: DataView, writer_id: int, node_id: int) -> "GlobalIndex":
        """Parse one index log's bytes into a single-writer GlobalIndex."""
        raw = view.materialize()
        if raw.size % RECORD_BYTES:
            raise PLFSError(f"index log size {raw.size} not a record multiple")
        arr = raw.view(RECORD_DTYPE)
        gi = GlobalIndex()
        gi.add_records(arr["logical"], arr["length"], arr["physical"],
                       arr["stamp"], writer_id)
        gi.writers[writer_id] = node_id
        return gi


class GlobalIndex:
    """The merged index of a container: extent journal + writer table."""

    def __init__(self) -> None:
        self.journal = ExtentJournal()
        self.writers: Dict[int, int] = {}  # writer_id -> node_id (for log paths)

    def __len__(self) -> int:
        return len(self.journal)

    @property
    def nbytes(self) -> int:
        """Wire/media weight: records plus the (small) writer table."""
        return self.journal.nbytes + 16 * len(self.writers)

    @property
    def logical_size(self) -> int:
        """Logical EOF implied by the records."""
        return self.journal.size

    def add_records(self, logical, length, physical, stamp, writer_id: int) -> None:
        """Bulk-append parsed record arrays for one writer."""
        wid = int(writer_id)
        self.journal.extend_arrays(logical, length, src=wid, src_off=physical,
                                   stamp=stamp, minor=wid)

    def merge_writer(self, widx: WriterIndex) -> None:
        """Absorb a writer's in-memory index (gather-side aggregation)."""
        self.journal.extend(widx.journal)
        self.writers[widx.writer_id] = widx.node_id

    def merge(self, other: "GlobalIndex") -> None:
        """Absorb another global index's records and writer table."""
        self.journal.extend(other.journal)
        self.writers.update(other.writers)

    @classmethod
    def merged(cls, parts: Iterable["GlobalIndex"]) -> "GlobalIndex":
        """Union of several global indexes."""
        out = cls()
        for p in parts:
            out.merge(p)
        return out

    def flatten(self) -> FlatMap:
        """Resolve to a non-overlapping logical->physical map."""
        return self.journal.flatten()

    # -- media form (the flatten strategy's global.index file) ----------------
    def serialize(self) -> LiteralData:
        start, length, src, src_off, stamp, _minor = self.journal.columns()
        n = len(start)
        w = len(self.writers)
        header = np.array([n, w], dtype=np.int64)
        recs = np.empty(n, dtype=RECORD_DTYPE)
        recs["logical"] = start
        recs["length"] = length
        recs["physical"] = src_off
        recs["stamp"] = stamp
        recs["writer"] = src
        recs["_pad"] = 0
        wtab = np.array(sorted(self.writers.items()), dtype=np.int64).reshape(w, 2)
        blob = np.concatenate([
            header.view(np.uint8),
            recs.view(np.uint8).reshape(-1),
            wtab.view(np.uint8).reshape(-1),
        ])
        return LiteralData(blob)

    @classmethod
    def deserialize(cls, view: DataView) -> "GlobalIndex":
        raw = view.materialize()
        if raw.size < 16:
            raise PLFSError("global index blob too short")
        n, w = (int(x) for x in raw[:16].view(np.int64))
        need = 16 + n * RECORD_BYTES + w * 16
        if raw.size != need:
            raise PLFSError(f"global index blob size {raw.size} != expected {need}")
        recs = raw[16:16 + n * RECORD_BYTES].view(RECORD_DTYPE)
        gi = cls()
        if n:
            gi.journal.extend_arrays(recs["logical"], recs["length"],
                                     src=recs["writer"], src_off=recs["physical"],
                                     stamp=recs["stamp"], minor=recs["writer"])
        wtab = raw[16 + n * RECORD_BYTES:].view(np.int64).reshape(w, 2)
        gi.writers = {int(a): int(b) for a, b in wtab}
        return gi
