"""PLFS read path: resolve logical ranges through the global index.

A read handle owns a :class:`~repro.plfs.index.GlobalIndex` (built by one
of the §IV aggregation strategies) and opens writers' data logs lazily —
one backing-store open per distinct log a reader actually touches.  When
the read pattern matches the write pattern (the common restart case) each
rank streams exactly one log head-to-tail, which the OSD model rewards
with seek-free, prefetch-friendly access (§IV-D's explanation of why PLFS
reads can *beat* direct access).
"""

from __future__ import annotations

from typing import Dict, Generator

from ..errors import BadFileHandle, InvalidArgument, PLFSError
from ..faults.policies import RetryPolicy, retrying
from ..pfs.data import DataView, ZeroData
from ..pfs.extents import HOLE
from ..pfs.volume import Client, FileHandle
from .container import ContainerLayout
from .index import GlobalIndex

__all__ = ["PlfsReadHandle"]


class PlfsReadHandle:
    """One reader's open-for-read state on a PLFS logical file."""

    def __init__(self, layout: ContainerLayout, client: Client,
                 global_index: GlobalIndex, retry: RetryPolicy = None):
        self.layout = layout
        self.client = client
        self.global_index = global_index
        self.retry = retry
        self._logs: Dict[int, FileHandle] = {}
        self.closed = False
        self.bytes_read = 0

    @property
    def size(self) -> int:
        return self.global_index.logical_size

    def _log_handle(self, writer_id: int) -> Generator:
        fh = self._logs.get(writer_id)
        if fh is None:
            node_id = self.global_index.writers.get(writer_id)
            if node_id is None:
                raise PLFSError(f"index references unknown writer {writer_id}")
            s = self.layout.subdir_for_writer(node_id)
            vol = self.layout.subdir_volume(s)
            path = self.layout.data_log_path(node_id, writer_id)
            fh = yield from retrying(vol.env, self.retry,
                                     lambda: vol.open(self.client, path, "r"))
            self._logs[writer_id] = fh
        return fh

    def read(self, offset: int, length: int) -> Generator:
        """Read [offset, offset+length); returns a DataView (short at EOF)."""
        if self.closed:
            raise BadFileHandle(self.layout.path)
        if offset < 0 or length < 0:
            raise InvalidArgument(self.layout.path, f"bad read ({offset}, {length})")
        length = max(0, min(length, self.size - offset))
        if length == 0:
            return DataView([])
        pieces = []
        for seg_start, seg_end, writer, phys in self.global_index.flatten().query(offset, length):
            n = seg_end - seg_start
            if writer == HOLE:
                pieces.append(ZeroData(n))
                continue
            fh = yield from self._log_handle(writer)
            view = yield from retrying(fh.volume.env, self.retry,
                                       lambda: fh.read(phys, n))
            if view.length != n:
                raise PLFSError(
                    f"data log for writer {writer} shorter than its index "
                    f"(wanted {n} at {phys}, got {view.length})")
            pieces.extend(view.pieces)
        self.bytes_read += length
        return DataView(pieces)

    def close(self) -> Generator:
        if self.closed:
            raise BadFileHandle(self.layout.path)
        # Sorted by writer id: each close charges metadata ops, so the
        # close order is part of the event schedule and must not depend on
        # which logs this reader happened to touch first.
        for _writer_id, fh in sorted(self._logs.items()):
            yield from retrying(fh.volume.env, self.retry, lambda: fh.close())
        self._logs.clear()
        self.closed = True
