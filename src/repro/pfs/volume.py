"""The parallel-file-system volume facade: POSIX-ish API with charged time.

A :class:`Volume` is one mountable namespace served by one metadata server.
Federated metadata (§V of the paper) glues several volumes together — they
share the physical :class:`~repro.pfs.osd.OsdPool` and storage network (the
realms of one storage system) but each has its own MDS, mirroring PanFS's
rigid realm-per-mount division that the paper works around.

Every operation is a generator to ``yield from`` inside a simulated
process; state changes (namespace, file content) are applied *after* the
modeled time has been charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

from ..cluster import Cluster, Node
from ..errors import (BadFileHandle, FileNotFound, InvalidArgument,
                      PermissionDenied, StorageUnavailable)
from ..sim import Engine
from .config import PfsConfig
from .data import DataSpec, DataView
from .locks import RangeLockManager
from .mds import MetadataServer
from .namespace import Inode, Namespace, split_path
from .osd import OsdPool

__all__ = ["Client", "Stat", "FileHandle", "Volume"]


@dataclass(frozen=True)
class Client:
    """An I/O client: the node it runs on plus a stable identity for locks."""

    node: Node
    client_id: int


@dataclass(frozen=True)
class Stat:
    """File attributes as a stat() call returns them."""

    path: str
    uid: int
    is_dir: bool
    size: int


class FileHandle:
    """An open file; offsets are explicit (pread/pwrite style)."""

    def __init__(self, volume: "Volume", inode: Inode, client: Client,
                 mode: str, path: str):
        self.volume = volume
        self.inode = inode
        self.client = client
        self.mode = mode
        self.path = path
        self.closed = False
        self.bytes_written = 0
        self.bytes_read = 0
        # Write-back state: a pending contiguous dirty range (sole writers).
        self._wb_start = 0
        self._wb_len = 0
        if "w" in mode or mode == "rw":
            inode.writers += 1

    def _check(self, want: str) -> None:
        if self.closed:
            raise BadFileHandle(self.path)
        if want not in self.mode and self.mode != "rw":
            raise PermissionDenied(self.path, f"handle is {self.mode!r}, need {want!r}")

    def write(self, offset: int, spec: DataSpec) -> Generator:
        """Write *spec*'s content at *offset*.

        Sole-writer append streams take the write-back path: the bytes land
        in the client cache at memory speed and flush to storage in
        ``writeback_bytes`` chunks (how a real client absorbs a PLFS data
        log or an N-N file).  Everything else — in particular strided
        writes into a multi-writer shared file — is written through,
        paying locks, possible read-modify-write, network, and devices.
        """
        self._check("w")
        if offset < 0:
            raise InvalidArgument(self.path, f"negative offset {offset}")
        vol, cfg = self.volume, self.volume.cfg
        length = spec.length
        if length == 0:
            return
        uid = self.inode.uid
        if cfg.writeback_bytes > 0 and self.inode.writers == 1:
            contiguous = self._wb_len > 0 and offset == self._wb_start + self._wb_len
            fresh = self._wb_len == 0 and offset == self.inode.data.size
            if contiguous or fresh:
                yield vol.env.timeout(length / self.client.node.spec.mem_bw)
                if fresh:
                    self._wb_start = offset
                self._wb_len += length
                self._apply(offset, spec)
                if self._wb_len >= cfg.writeback_bytes:
                    yield from self._flush_writeback()
                return
        yield from self._flush_writeback()
        yield from self._charge_write_through(offset, length)
        self._apply(offset, spec)

    def _apply(self, offset: int, spec: DataSpec) -> None:
        self.inode.data.write(offset, spec)
        self.bytes_written += spec.length
        if self.volume.cfg.client_cache:
            self.client.node.page_cache.insert(self.inode.uid, offset, spec.length)

    def _charge_write_through(self, offset: int, length: int) -> Generator:
        """Charge the full storage path for one write-through request."""
        vol, cfg = self.volume, self.volume.cfg
        uid = self.inode.uid
        held = yield from vol.locks.acquire(self.client.client_id, uid, offset, length)
        try:
            inflate = seek_mult = 1.0
            if cfg.full_stripe > 0 and cfg.rmw_factor > 1.0:
                if offset % cfg.full_stripe or length % cfg.full_stripe:
                    inflate = cfg.rmw_factor
                    seek_mult = 2.0  # the RMW's reads and writes each position
            vol.storage_net._check_up()
            yield vol.env.timeout(vol.storage_latency + vol.storage_net.extra_latency)
            events = vol.pool.io_events(uid, offset, length, inflate=inflate,
                                        seek_mult=seek_mult)
            events += vol.storage_net.path_events(self.client.node, length)
            if events:
                yield vol.env.all_of(events)
        finally:
            vol.locks.release(held)

    def _flush_writeback(self) -> Generator:
        """Push any pending dirty range to storage as one large request."""
        if self._wb_len == 0:
            return
        start, n = self._wb_start, self._wb_len
        self._wb_len = 0
        yield from self._charge_write_through(start, n)

    def append(self, spec: DataSpec) -> Generator:
        """Write at current EOF; returns the landing offset."""
        offset = self.inode.data.size
        yield from self.write(offset, spec)
        return offset

    def read(self, offset: int, length: int) -> Generator:
        """Read [offset, offset+length); returns a DataView (short at EOF)."""
        self._check("r")
        if offset < 0 or length < 0:
            raise InvalidArgument(self.path, f"bad read ({offset}, {length})")
        vol, cfg = self.volume, self.volume.cfg
        uid = self.inode.uid
        length = max(0, min(length, self.inode.data.size - offset))
        if length == 0:
            return DataView([])
        cache = self.client.node.page_cache if cfg.client_cache else None
        hit = cache.hit_bytes(uid, offset, length) if cache else 0
        miss = length - hit
        if hit:
            yield vol.env.timeout(hit / self.client.node.spec.mem_bw)
        if miss > 0:
            vol.storage_net._check_up()
            yield vol.env.timeout(vol.storage_latency + vol.storage_net.extra_latency)
            events = vol.pool.io_events(uid, offset + hit, miss,
                                        client_id=self.client.client_id,
                                        is_read=True)
            events += vol.storage_net.path_events(self.client.node, miss)
            if events:
                yield vol.env.all_of(events)
            if cache is not None and cfg.cache_fill_on_read:
                cache.insert(uid, offset, length, full_blocks_only=True)
        self.bytes_read += length
        return self.inode.data.read(offset, length)

    def size(self) -> int:
        """Current file size in bytes."""
        return self.inode.data.size

    def close(self) -> Generator:
        """Flush pending write-back data and release the handle."""
        if self.closed:
            raise BadFileHandle(self.path)
        yield from self._flush_writeback()
        yield from self.volume.mds.op("close")
        if "w" in self.mode or self.mode == "rw":
            self.inode.writers -= 1
        self.closed = True


class Volume:
    """One parallel-file-system volume (namespace + MDS + shared storage)."""

    def __init__(self, env: Engine, cluster: Cluster, cfg: PfsConfig,
                 name: str = "vol0", pool: Optional[OsdPool] = None,
                 locks: Optional[RangeLockManager] = None):
        self.env = env
        self.cluster = cluster
        self.cfg = cfg
        self.name = name
        self.ns = Namespace()
        self.mds = MetadataServer(env, cfg, name=f"{name}.mds")
        self.pool = pool if pool is not None else OsdPool(env, cfg, name=f"{name}.pool")
        self.locks = locks if locks is not None else RangeLockManager(env, cfg)
        self.storage_net = cluster.storage_net
        self.storage_latency = cluster.spec.storage_latency
        # Client metadata cache: (node_id, inode_uid) pairs whose attributes
        # some rank on that node already fetched (see PfsConfig docs).
        self._md_cache: set = set()
        # Read coalescing: (node_id, inode_uid) -> completion event for a
        # whole-file fetch some co-located rank already has in flight.
        self._inflight: dict = {}

    def _open_cost(self, node_id: int, uid: int) -> float:
        """Fractional op cost of an open, honouring the client md cache."""
        if not self.cfg.md_client_cache:
            return 1.0
        key = (node_id, uid)
        if key in self._md_cache:
            return self.cfg.md_cache_hit_factor
        self._md_cache.add(key)
        return 1.0

    # -- directory & namespace ops -----------------------------------------
    def _parent(self, path: str):
        """(uid, entry count) of a path's parent directory (for MDS charging)."""
        parent_path, _ = split_path(path)
        parent = self.ns.try_resolve(parent_path)
        if parent is None:
            raise FileNotFound(parent_path)
        return {"dir_uid": parent.uid, "dir_entries": len(parent.children or ())}

    def mkdir(self, client: Client, path: str) -> Generator:
        """Create one directory (charges the parent-directory mutation)."""
        yield from self.mds.op("mkdir", **self._parent(path))
        self.ns.mkdir(path)

    def makedirs(self, client: Client, path: str) -> Generator:
        """mkdir -p, charging one op per missing component."""
        parts = [p for p in path.split("/") if p]
        cur = ""
        for p in parts:
            cur += "/" + p
            if not self.ns.exists(cur):
                yield from self.mkdir(client, cur)

    def open(self, client: Client, path: str, mode: str, *,
             create: bool = False, exclusive: bool = False,
             truncate: bool = False) -> Generator:
        """Open a file; returns a :class:`FileHandle`.

        *mode* is ``"r"``, ``"w"``, or ``"rw"``.  ``create`` makes the file
        if missing (charging the heavier create op against the parent
        directory); ``truncate`` empties an existing file.
        """
        if mode not in ("r", "w", "rw"):
            raise InvalidArgument(path, f"bad open mode {mode!r}")
        exists = self.ns.exists(path)
        if not exists and not create:
            raise FileNotFound(path)
        if exists and not (create and exclusive):
            inode = self.ns.resolve(path)
            yield from self.mds.op("open",
                                   count=self._open_cost(client.node.id, inode.uid))
            if truncate:
                inode.data.truncate()
        else:
            yield from self.mds.op("create", **self._parent(path))
            inode = self.ns.create(path, exclusive=exclusive, truncate=truncate)
        return FileHandle(self, inode, client, mode, path)

    def stat(self, client: Client, path: str) -> Generator:
        """Attributes of *path*; returns a :class:`Stat`."""
        yield from self.mds.op("stat")
        node = self.ns.resolve(path)
        return Stat(path=path, uid=node.uid, is_dir=node.is_dir,
                    size=0 if node.is_dir else node.data.size)

    def readdir(self, client: Client, path: str) -> Generator:
        """List a directory; returns sorted names."""
        yield from self.mds.op("readdir")
        return self.ns.readdir(path)

    def unlink(self, client: Client, path: str) -> Generator:
        """Remove a file and drop its lock/cache state."""
        yield from self.mds.op("unlink", **self._parent(path))
        node = self.ns.resolve(path)
        self.ns.unlink(path)
        self.locks.forget_file(node.uid)

    def rmdir(self, client: Client, path: str) -> Generator:
        """Remove an empty directory."""
        yield from self.mds.op("rmdir", **self._parent(path))
        self.ns.rmdir(path)

    def rename(self, client: Client, old: str, new: str) -> Generator:
        """Atomic rename; destination must not exist."""
        yield from self.mds.op("rename", **self._parent(new))
        self.ns.rename(old, new)

    # -- batched paths -------------------------------------------------------
    def bulk_read_files(self, client: Client, paths: Sequence[str]) -> Generator:
        """Open, fully read, and close many small files as one charged batch.

        This models a client slurping k files (the Original-PLFS index read:
        every rank opens every writer's index log).  Time is charged in
        aggregate — k opens+closes at the MDS, total bytes plus one
        seek-equivalent per file spread over the OSD pool — producing the
        same contention as k individual requests at a tiny fraction of the
        event count.  Returns the file contents in order.
        """
        k = len(paths)
        if k == 0:
            return []
        inodes = [self.ns.resolve(p) for p in paths]
        for node in inodes:
            if node.is_dir:
                raise InvalidArgument("bulk_read_files of a directory")
        cfg = self.cfg
        # Degraded-mode gate: the bulk path charges OSD servers directly
        # (bypassing Osd.io), so check device health here, and do it before
        # the in-flight registration below — raising after registering would
        # leave joiners waiting on an event that never fires.
        self.storage_net._check_up()
        for osd in self.pool.osds:
            if osd.down:
                raise StorageUnavailable(
                    f"osd{osd.index}",
                    f"OSD {osd.index} is down (bulk read)")
        # Partition into page-cache hits, fetches already in flight from
        # this node (read coalescing), and genuine misses — registered
        # before any time is charged so concurrent callers see each other.
        cache = client.node.page_cache if cfg.client_cache else None
        misses = []
        joins = []
        hit_bytes = 0
        for n in inodes:
            size = n.data.size
            if size == 0:
                continue
            if cache is not None and cache.hit_bytes(n.uid, 0, size) >= size:
                hit_bytes += size
                continue
            inflight = self._inflight.get((client.node.id, n.uid))
            if cache is not None and inflight is not None:
                joins.append(inflight)
            else:
                misses.append(n)
        done = None
        if misses and cache is not None:
            done = self.env.event()
            for n in misses:
                self._inflight[(client.node.id, n.uid)] = done
        # Client metadata cache: co-located ranks re-opening the same files
        # pay the cached fraction.
        open_cost = sum(self._open_cost(client.node.id, n.uid) for n in inodes)
        yield from self.mds.op("open", count=max(open_cost, 1e-6))
        if hit_bytes:
            yield self.env.timeout(hit_bytes / client.node.spec.mem_bw)
        if misses:
            total = sum(n.data.size for n in misses)
            yield self.env.timeout(self.storage_latency
                                   + self.storage_net.extra_latency)
            n_osds = cfg.n_osds
            overhead = (cfg.osd_seek_time + cfg.osd_op_overhead) * cfg.osd_bw
            if len(misses) >= 2 * n_osds:
                # Many files: uniformly placed, charge the pool evenly.  Each
                # file costs one device request per lane it actually spans.
                ops_total = sum(
                    max(1, min(cfg.stripe_width, -(-n.data.size // cfg.stripe_unit)))
                    for n in misses
                )
                per_osd_bytes = total / n_osds
                per_osd_ops = max(1.0, ops_total / n_osds)
                events = [
                    osd.server.serve(per_osd_bytes + per_osd_ops * overhead)
                    for osd in self.pool.osds
                ]
            else:
                # Few files: charge exactly the OSDs their lanes live on.
                demand: dict = {}
                for n in misses:
                    size = n.data.size
                    lanes = max(1, min(cfg.stripe_width,
                                       -(-size // cfg.stripe_unit)))
                    for lane in range(lanes):
                        osd = self.pool.lane_osd(n.uid, lane)
                        demand[osd.index] = (demand.get(osd.index, 0.0)
                                             + size / lanes + overhead)
                events = [self.pool.osds[i].server.serve(d)
                          for i, d in demand.items()]  # repro: noqa[REP004] - keyed by osd index from the deterministic lane walk
            events += self.storage_net.path_events(client.node, total)
            yield self.env.all_of(events)
            if cache is not None and cfg.cache_fill_on_read:
                for n in misses:
                    # Whole-file slurps really did move every byte, so the
                    # trailing partial block is legitimately resident.
                    cache.insert(n.uid, 0, n.data.size)
        if done is not None:
            for n in misses:
                self._inflight.pop((client.node.id, n.uid), None)
            done.succeed()
        if joins:
            yield self.env.all_of(joins)
        yield from self.mds.op("close", count=k)
        return [n.data.read(0, n.data.size) for n in inodes]

    def bulk_stat(self, client: Client, count: int) -> Generator:
        """Charge *count* stat calls as one batch (no state effect)."""
        yield from self.mds.op("stat", count=count)

    # -- helpers ---------------------------------------------------------------
    def write_file(self, client: Client, path: str, spec: DataSpec) -> Generator:
        """Create/truncate *path* and write *spec* at offset 0 (convenience)."""
        fh = yield from self.open(client, path, "w", create=True, truncate=True)
        yield from fh.write(0, spec)
        yield from fh.close()

    def read_file(self, client: Client, path: str) -> Generator:
        """Open, read fully, close; returns a DataView."""
        fh = yield from self.open(client, path, "r")
        view = yield from fh.read(0, fh.size())
        yield from fh.close()
        return view
