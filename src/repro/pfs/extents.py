"""Extent journals and flattened extent maps.

Both the simulated file system's file contents and PLFS's index share one
problem: a sequence of ``(logical_offset, length, source, source_offset,
timestamp)`` records, where later records overwrite earlier ones, must be
resolved into a flat, non-overlapping extent map for reads.  The paper's
PLFS defers exactly this work from write time to read time (§II), so the
resolution code is a first-class, shared component.

:class:`ExtentJournal` is the append-only record log (compact
``array``-backed columns — a 65,536-rank checkpoint can easily produce
millions of records).  :meth:`ExtentJournal.flatten` resolves it:

* fast path — when records don't overlap (the overwhelmingly common
  checkpoint case, which the paper's footnote 1 also leans on), flattening
  is a single numpy sort;
* slow path — genuine overlaps resolve *last-writer-wins by timestamp*
  (ties broken by a minor stamp, e.g. writer id) using elementary-interval
  painting with a union-find "next unpainted slot" walk, O(n α n) after the
  sort.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..errors import InvalidArgument

__all__ = ["ExtentJournal", "FlatMap", "Segment", "HOLE"]

HOLE = -1  # src value marking an unwritten gap in query results

# A resolved segment: [start, end) maps to source `src` at `src_off`.
Segment = Tuple[int, int, int, int]


class ExtentJournal:
    """Append-only log of extent records with last-writer-wins resolution."""

    __slots__ = ("_start", "_length", "_src", "_src_off", "_stamp", "_minor",
                 "_size", "_flat")

    def __init__(self) -> None:
        self._start = array("q")
        self._length = array("q")
        self._src = array("q")
        self._src_off = array("q")
        self._stamp = array("d")
        self._minor = array("q")
        self._size = 0
        self._flat: Optional[FlatMap] = None

    def __len__(self) -> int:
        return len(self._start)

    @property
    def size(self) -> int:
        """Logical EOF: one past the highest byte any record touches."""
        return self._size

    def append(self, start: int, length: int, src: int, src_off: int,
               stamp: float = 0.0, minor: int = 0) -> None:
        """Record that [start, start+length) now maps to (src, src_off).

        *stamp* orders conflicting records (larger wins); *minor* breaks
        stamp ties deterministically (larger wins), e.g. the writer id.
        """
        if start < 0 or length < 0 or src_off < 0:
            raise InvalidArgument(message=f"bad extent record ({start}, {length}, {src}, {src_off})")
        if length == 0:
            return
        self._start.append(start)
        self._length.append(length)
        self._src.append(src)
        self._src_off.append(src_off)
        self._stamp.append(stamp)
        self._minor.append(minor)
        end = start + length
        if end > self._size:
            self._size = end
        self._flat = None

    def extend_arrays(self, start, length, src, src_off, stamp, minor) -> None:
        """Vectorized bulk append of parallel record arrays.

        Zero-length records are dropped (as in :meth:`append`); negative
        offsets/lengths are rejected.  All arrays must be equal length;
        scalar ``src``/``stamp``/``minor`` broadcast.
        """
        start = np.ascontiguousarray(start, dtype=np.int64)
        length = np.ascontiguousarray(length, dtype=np.int64)
        n = len(start)
        src = np.broadcast_to(np.asarray(src, dtype=np.int64), (n,))
        src_off = np.ascontiguousarray(src_off, dtype=np.int64)
        stamp = np.broadcast_to(np.asarray(stamp, dtype=np.float64), (n,))
        minor = np.broadcast_to(np.asarray(minor, dtype=np.int64), (n,))
        if not (len(length) == len(src_off) == n and len(stamp) == len(minor) == n):
            raise InvalidArgument(message="extend_arrays: column length mismatch")
        if n == 0:
            return
        if (start < 0).any() or (length < 0).any() or (src_off < 0).any():
            raise InvalidArgument(message="extend_arrays: negative field")
        keep = length > 0
        if not keep.all():
            start, length = start[keep], length[keep]
            src, src_off = np.ascontiguousarray(src[keep]), src_off[keep]
            stamp, minor = np.ascontiguousarray(stamp[keep]), np.ascontiguousarray(minor[keep])
            if len(start) == 0:
                return
        self._start.frombytes(start.tobytes())
        self._length.frombytes(length.tobytes())
        self._src.frombytes(np.ascontiguousarray(src).tobytes())
        self._src_off.frombytes(src_off.tobytes())
        self._stamp.frombytes(np.ascontiguousarray(stamp).tobytes())
        self._minor.frombytes(np.ascontiguousarray(minor).tobytes())
        self._size = max(self._size, int((start + length).max()))
        self._flat = None

    def grow_last(self, extra: int) -> None:
        """Extend the most recent record by *extra* bytes.

        Used for contiguous-record merging (PLFS coalesces an index entry
        whose logical and physical ranges both extend the previous one).
        The caller asserts contiguity; this just maintains invariants.
        """
        if not len(self):
            raise InvalidArgument(message="grow_last on empty journal")
        if extra <= 0:
            raise InvalidArgument(message=f"grow_last needs extra > 0, got {extra}")
        self._length[-1] += extra
        end = self._start[-1] + self._length[-1]
        if end > self._size:
            self._size = end
        self._flat = None

    def last_record(self):
        """(start, length, src, src_off) of the newest record, or None."""
        if not len(self):
            return None
        return (self._start[-1], self._length[-1], self._src[-1], self._src_off[-1])

    def extend(self, other: "ExtentJournal") -> None:
        """Append every record of *other* (index aggregation uses this)."""
        self._start.extend(other._start)
        self._length.extend(other._length)
        self._src.extend(other._src)
        self._src_off.extend(other._src_off)
        self._stamp.extend(other._stamp)
        self._minor.extend(other._minor)
        self._size = max(self._size, other._size)
        self._flat = None

    def columns(self) -> Tuple[np.ndarray, ...]:
        """Zero-copy numpy views of the record columns (start, length, src, src_off, stamp, minor)."""
        return (
            np.frombuffer(self._start, dtype=np.int64),
            np.frombuffer(self._length, dtype=np.int64),
            np.frombuffer(self._src, dtype=np.int64),
            np.frombuffer(self._src_off, dtype=np.int64),
            np.frombuffer(self._stamp, dtype=np.float64),
            np.frombuffer(self._minor, dtype=np.int64),
        )

    @property
    def nbytes(self) -> int:
        """Serialized footprint of the journal (what index files weigh)."""
        return len(self) * RECORD_BYTES

    def flatten(self) -> "FlatMap":
        """Resolve to a non-overlapping map; cached until the next append."""
        if self._flat is None:
            self._flat = _flatten(*self.columns(), size=self._size)
        return self._flat


# On-media size of one index record; PLFS's C struct (logical offset,
# length, physical offset, timestamps, id) is ~48 bytes and ours matches.
RECORD_BYTES = 48


class FlatMap:
    """A resolved, sorted, non-overlapping extent map supporting range queries."""

    __slots__ = ("starts", "ends", "srcs", "src_offs", "size")

    def __init__(self, starts: np.ndarray, ends: np.ndarray, srcs: np.ndarray,
                 src_offs: np.ndarray, size: int):
        self.starts = starts
        self.ends = ends
        self.srcs = srcs
        self.src_offs = src_offs
        self.size = size

    def __len__(self) -> int:
        return len(self.starts)

    def segments(self) -> Iterator[Segment]:
        """All written segments, in offset order."""
        for i in range(len(self.starts)):
            yield (int(self.starts[i]), int(self.ends[i]), int(self.srcs[i]), int(self.src_offs[i]))

    def query(self, offset: int, length: int) -> List[Segment]:
        """Segments covering [offset, offset+length), holes included as src=HOLE.

        The result tiles the query range exactly, in order.
        """
        if offset < 0 or length < 0:
            raise InvalidArgument(message=f"bad query ({offset}, {length})")
        out: List[Segment] = []
        if length == 0:
            return out
        lo, hi = offset, offset + length
        i = int(np.searchsorted(self.starts, lo, side="right")) - 1
        if i >= 0 and self.ends[i] <= lo:
            i += 1
        i = max(i, 0)
        pos = lo
        n = len(self.starts)
        while pos < hi and i < n:
            s, e = int(self.starts[i]), int(self.ends[i])
            if s >= hi:
                break
            if pos < s:
                out.append((pos, s, HOLE, 0))
                pos = s
            seg_end = min(e, hi)
            if seg_end > pos:
                out.append((pos, seg_end, int(self.srcs[i]), int(self.src_offs[i]) + (pos - s)))
                pos = seg_end
            i += 1
        if pos < hi:
            out.append((pos, hi, HOLE, 0))
        return out


_EMPTY = np.zeros(0, dtype=np.int64)


def _flatten(start: np.ndarray, length: np.ndarray, src: np.ndarray,
             src_off: np.ndarray, stamp: np.ndarray, minor: np.ndarray,
             size: int) -> FlatMap:
    n = len(start)
    if n == 0:
        return FlatMap(_EMPTY, _EMPTY, _EMPTY, _EMPTY, 0)
    end = start + length
    order = np.lexsort((minor, stamp, start))
    s, e = start[order], end[order]
    if np.all(e[:-1] <= s[1:]):
        # Fast path: already disjoint once sorted by start.
        return FlatMap(s, e, src[order], src_off[order], size)
    return _paint(start, end, src, src_off, stamp, minor, size)


def _paint(start, end, src, src_off, stamp, minor, size) -> FlatMap:
    """Last-writer-wins resolution of overlapping records.

    Elementary-interval painting: split the axis at every record boundary,
    then paint records from newest to oldest, each claiming only the
    not-yet-painted elementary slots it spans.  A union-find next-pointer
    array makes each slot cost amortized ~O(α).
    """
    bounds = np.unique(np.concatenate([start, end]))
    slot_of = {int(b): i for i, b in enumerate(bounds)}
    m = len(bounds) - 1  # number of elementary slots
    winner = np.full(m, -1, dtype=np.int64)
    nxt = list(range(m + 1))  # next unpainted slot at or after i

    def find(i: int) -> int:
        root = i
        while nxt[root] != root:
            root = nxt[root]
        while nxt[i] != root:  # path compression
            nxt[i], i = root, nxt[i]
        return root

    # Newest first: descending (stamp, minor), ties broken arbitrarily after.
    order = np.lexsort((minor, stamp))[::-1]
    for rec in order:
        rec = int(rec)
        j = find(slot_of[int(start[rec])])
        stop = slot_of[int(end[rec])]
        while j < stop:
            winner[j] = rec
            nxt[j] = j + 1
            j = find(j + 1)

    painted = np.nonzero(winner >= 0)[0]
    if len(painted) == 0:
        return FlatMap(_EMPTY, _EMPTY, _EMPTY, _EMPTY, size)
    w = winner[painted]
    seg_start = bounds[painted]
    seg_end = bounds[painted + 1]
    seg_src = src[w]
    seg_off = src_off[w] + (seg_start - start[w])
    # Merge adjacent slots that continue the same record's mapping.
    keep = np.ones(len(painted), dtype=bool)
    if len(painted) > 1:
        contiguous = (
            (seg_start[1:] == seg_end[:-1])
            & (w[1:] == w[:-1])
        )
        keep[1:] = ~contiguous
    idx = np.nonzero(keep)[0]
    merged_start = seg_start[idx]
    merged_src = seg_src[idx]
    merged_off = seg_off[idx]
    merged_end = np.empty_like(merged_start)
    merged_end[:-1] = seg_start[idx[1:]]  # placeholder, fixed below
    # End of each merged run = end of the slot just before the next kept one.
    run_last = np.append(idx[1:] - 1, len(painted) - 1)
    merged_end = seg_end[run_last]
    return FlatMap(merged_start, merged_end, merged_src, merged_off, size)
