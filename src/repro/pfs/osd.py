"""Object storage device model and striped data placement.

Each OSD is a fair-share server whose demand currency is *bytes of device
time*: a request costs its payload bytes, plus a fixed per-request overhead,
plus a seek charge when it is not sequential with the previous access to
the same object, all expressed as equivalent bytes at streaming rate.

Sequentiality is tracked **per object**, which is exactly what produces the
paper's §IV-D read asymmetry: N processes streaming N separate PLFS data
logs each advance their own object head-to-tail (prefetch-friendly, no
seeks), while the same N processes reading strided ranges of one shared
file interleave their offsets in the same objects and every request looks
like a seek.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis.sanitize import raw_snapshot, tracked
from ..errors import ConfigError, StorageUnavailable
from ..sim import Engine, Event, FairShareServer
from .config import PfsConfig

__all__ = ["Osd", "OsdPool", "stripe_lanes"]


class Osd:
    """One object storage device.

    Fault hooks (driven by ``repro.faults``): :meth:`fail` marks the device
    down — new requests raise :class:`StorageUnavailable` and in-flight ones
    stall frozen until :meth:`restore` — and :meth:`slow_down` rescales the
    device's service rate (a brown-out).  An untouched OSD has bit-identical
    behaviour to one built before these hooks existed.
    """

    def __init__(self, env: Engine, cfg: PfsConfig, index: int):
        self.env = env
        self.cfg = cfg
        self.index = index
        self.server = FairShareServer(env, cfg.osd_bw, name=f"osd{index}")
        self.down = False
        self.fail_count = 0
        # Per-object sequentiality state, mutated by every client process
        # that touches this device; tracked() is free when no sanitizer is
        # attached and a recording proxy under --sanitize.
        self._last_end: Dict[int, int] = tracked(
            env, {}, f"osd{index}.last-end")  # object uid -> end of previous access
        self._last_client: Dict[int, int] = tracked(
            env, {}, f"osd{index}.last-client")  # object uid -> previous client
        self.requests = 0
        self.seeks = 0
        self.stream_switches = 0
        self.bytes_moved = 0

    def stream_snapshot(self) -> Dict[int, Tuple[int, int]]:
        """Plain ``{obj_uid: (last_end, last_client)}`` copy of the
        per-object stream trackers (oracle accessor — reads the raw dicts
        behind the tracked proxies, perturbing nothing)."""
        last_end = raw_snapshot(self._last_end)
        last_client = raw_snapshot(self._last_client)
        return {uid: (end, last_client.get(uid, -1))
                for uid, end in sorted(last_end.items())}

    # -- fault hooks -------------------------------------------------------
    def fail(self) -> None:
        """Take the device down: reject new I/O, freeze in-flight service."""
        if self.down:
            return
        self.down = True
        self.fail_count += 1
        self.server.pause()

    def restore(self) -> None:
        """Bring the device back; frozen in-flight requests resume."""
        if not self.down:
            return
        self.down = False
        self.server.resume()

    def slow_down(self, factor: float) -> None:
        """Degrade the device to ``1/factor`` of configured bandwidth."""
        if not (factor >= 1.0):
            raise ConfigError(f"slow_down factor must be >= 1, got {factor}")
        self.server.set_capacity(self.cfg.osd_bw / factor)

    def restore_speed(self) -> None:
        """Undo :meth:`slow_down`."""
        self.server.set_capacity(self.cfg.osd_bw)

    def _check_up(self) -> None:
        if self.down:
            raise StorageUnavailable(
                f"osd{self.index}", f"OSD {self.index} is down")

    def _demand(self, obj_uid: int, offset: int, nbytes: int, ops: int,
                seek_mult: float, client_id, is_read: bool) -> float:
        """Device-time demand in byte-equivalents for one (merged) request."""
        cfg = self.cfg
        demand = float(nbytes) + ops * cfg.osd_op_overhead * cfg.osd_bw
        if self._last_end.get(obj_uid) != offset:
            self.seeks += 1
            demand += seek_mult * cfg.osd_seek_time * cfg.osd_bw
            # A different client breaking the stream also trashes the
            # object's readahead window (§IV-D: interleaved shared-file
            # readers defeat prefetching; private PLFS logs do not).
            if (is_read and cfg.readahead_waste > 0 and client_id is not None
                    and self._last_client.get(obj_uid, client_id) != client_id):
                self.stream_switches += 1
                demand += cfg.readahead_waste
        if client_id is not None:
            self._last_client[obj_uid] = client_id
        self._last_end[obj_uid] = offset + nbytes
        self.requests += ops
        self.bytes_moved += nbytes
        return demand

    def io(self, obj_uid: int, offset: int, nbytes: int, *, ops: int = 1,
           inflate: float = 1.0, seek_mult: float = 1.0,
           client_id: int = None, is_read: bool = False) -> Event:
        """Submit one request; returns the device completion event.

        *inflate* multiplies the payload demand (read-modify-write: the old
        data and parity move too); *seek_mult* multiplies the positioning
        charge (an RMW's component I/Os each seek); *ops* counts how many
        client requests this merged submission stands for (batched paths),
        each paying the per-request overhead.  *client_id*/*is_read* feed
        the readahead-pollution model.
        """
        if nbytes < 0 or ops < 1 or inflate < 1.0 or seek_mult < 1.0:
            raise ConfigError(f"bad OSD request ({nbytes}, {ops}, {inflate}, {seek_mult})")
        self._check_up()
        base = self._demand(obj_uid, offset, nbytes, ops, seek_mult, client_id, is_read)
        extra = (inflate - 1.0) * nbytes
        return self.server.serve(base + extra)

    def io_many(self, requests: List[Tuple[int, int, int]], *, ops: int = 1,
                inflate: float = 1.0, seek_mult: float = 1.0,
                client_id: int = None, is_read: bool = False) -> List[Event]:
        """Submit several same-instant requests; one event per request.

        *requests* is ``[(obj_uid, offset, nbytes), ...]``, charged in order
        (sequentiality tracking sees exactly the sequence a loop of
        :meth:`io` calls would), then submitted through
        :meth:`FairShareServer.serve_many` so the whole batch pays one
        virtual-time advance, one heap restore, and at most one timer —
        instead of one of each per request.
        """
        if ops < 1 or inflate < 1.0 or seek_mult < 1.0:
            raise ConfigError(f"bad OSD batch ({ops}, {inflate}, {seek_mult})")
        self._check_up()
        demands = []
        for obj_uid, offset, nbytes in requests:
            if nbytes < 0:
                raise ConfigError(f"bad OSD request length {nbytes}")
            base = self._demand(obj_uid, offset, nbytes, ops, seek_mult,
                                client_id, is_read)
            demands.append(base + (inflate - 1.0) * nbytes)
        return self.server.serve_many(demands)

    def forget(self, obj_uid: int) -> None:
        """Drop sequentiality-tracking state for a deleted object."""
        self._last_end.pop(obj_uid, None)


def stripe_lanes(offset: int, length: int, stripe_unit: int, width: int
                 ) -> List[Tuple[int, int, int]]:
    """Split a file byte range into per-lane object runs.

    Returns ``(lane, object_offset, nbytes)`` per lane touched.  Lane *w*
    holds stripe units ``w, w+width, w+2*width, …``; consecutive units on
    one lane are contiguous in its object, so a large write is one
    sequential run per lane — which is why full-stripe I/O streams at
    aggregate device speed.
    """
    if length <= 0:
        return []
    su = stripe_unit
    end = offset + length
    first_unit = offset // su
    last_unit = (end - 1) // su
    out: List[Tuple[int, int, int]] = []
    for k in range(min(width, last_unit - first_unit + 1)):
        unit0 = first_unit + k  # first stripe unit on this lane
        lane = unit0 % width
        count = (last_unit - unit0) // width + 1  # units on this lane
        nbytes = count * su
        if unit0 == first_unit:
            nbytes -= offset - first_unit * su  # partial head unit
        last_on_lane = unit0 + (count - 1) * width
        if last_on_lane == last_unit:
            nbytes -= (last_unit + 1) * su - end  # partial tail unit
        lane_start = max(offset, unit0 * su)
        obj_off = (unit0 // width) * su + (lane_start - unit0 * su)
        out.append((lane, obj_off, nbytes))
    return out


class OsdPool:
    """The volume's set of OSDs plus placement of files onto lanes."""

    def __init__(self, env: Engine, cfg: PfsConfig, name: str = "pool"):
        self.env = env
        self.cfg = cfg
        self.osds = [Osd(env, cfg, i) for i in range(cfg.n_osds)]
        # Object-uid stride: (file, lane) pairs must never alias.  64 covers
        # every historical config; wider stripes round up to a power of two.
        self._uid_mult = max(64, 1 << (cfg.stripe_width - 1).bit_length())

    def lane_osd(self, file_uid: int, lane: int) -> Osd:
        """Round-robin placement: a file's lane *l* lives on one fixed OSD."""
        return self.osds[(file_uid + lane) % self.cfg.n_osds]

    def io_events(self, file_uid: int, offset: int, length: int, *,
                  ops_per_lane: int = 1, inflate: float = 1.0,
                  seek_mult: float = 1.0, client_id: int = None,
                  is_read: bool = False) -> List[Event]:
        """Device events for a file byte-range I/O, one per lane touched.

        The object uid for sequentiality tracking combines file and lane, so
        distinct files never alias each other's streams.  When the stripe is
        wider than the pool (lanes wrap around the OSDs), each OSD's lane
        requests are batched through :meth:`Osd.io_many` so the device pays
        one fair-share submission per OSD rather than one per lane.
        """
        cfg = self.cfg
        mult = self._uid_mult
        lanes = stripe_lanes(offset, length, cfg.stripe_unit, cfg.stripe_width)
        kwargs = dict(ops=ops_per_lane, inflate=inflate, seek_mult=seek_mult,
                      client_id=client_id, is_read=is_read)
        if cfg.stripe_width <= cfg.n_osds:
            # Common case: every lane of one I/O lives on its own OSD.
            return [
                self.lane_osd(file_uid, lane).io(file_uid * mult + lane,
                                                 obj_off, nbytes, **kwargs)
                for lane, obj_off, nbytes in lanes
            ]
        # Wide stripe: group each OSD's lanes (submission-order preserving,
        # so per-object seek accounting is unchanged) and batch per device.
        by_osd: Dict[int, List[int]] = {}
        for i, (lane, _, _) in enumerate(lanes):
            by_osd.setdefault((file_uid + lane) % cfg.n_osds, []).append(i)
        events: List[Event] = [None] * len(lanes)  # type: ignore[list-item]
        for osd_index, idxs in by_osd.items():  # repro: noqa[REP004] - insertion order follows the lane walk above, deterministically
            osd = self.osds[osd_index]
            if len(idxs) == 1:
                lane, obj_off, nbytes = lanes[idxs[0]]
                events[idxs[0]] = osd.io(file_uid * mult + lane, obj_off,
                                         nbytes, **kwargs)
            else:
                reqs = [(file_uid * mult + lanes[i][0], lanes[i][1], lanes[i][2])
                        for i in idxs]
                for i, ev in zip(idxs, osd.io_many(reqs, **kwargs)):
                    events[i] = ev
        return events

    @property
    def total_bytes_moved(self) -> int:
        """Payload bytes the pool has served (both directions)."""
        return sum(o.bytes_moved for o in self.osds)

    @property
    def total_seeks(self) -> int:
        """Non-sequential requests the pool has absorbed."""
        return sum(o.seeks for o in self.osds)
