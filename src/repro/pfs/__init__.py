"""Simulated parallel file system: namespace, MDS, OSDs, locks, volumes."""

from .config import DEFAULT_OP_COSTS, PfsConfig
from .data import (CompositeData, DataSpec, DataView, LiteralData, PatternData,
                   ZeroData, pattern_bytes)
from .extents import HOLE, ExtentJournal, FlatMap
from .locks import RangeLockManager
from .mds import MetadataServer
from .namespace import FileData, Inode, Namespace
from .osd import Osd, OsdPool, stripe_lanes
from .presets import PRESETS, gpfs, lustre, panfs, panfs_cielo, preset
from .volume import Client, FileHandle, Stat, Volume

__all__ = [
    "DEFAULT_OP_COSTS",
    "PfsConfig",
    "CompositeData",
    "DataSpec",
    "DataView",
    "LiteralData",
    "PatternData",
    "ZeroData",
    "pattern_bytes",
    "HOLE",
    "ExtentJournal",
    "FlatMap",
    "RangeLockManager",
    "MetadataServer",
    "FileData",
    "Inode",
    "Namespace",
    "Osd",
    "OsdPool",
    "stripe_lanes",
    "PRESETS",
    "gpfs",
    "lustre",
    "panfs",
    "panfs_cielo",
    "preset",
    "Client",
    "FileHandle",
    "Stat",
    "Volume",
]
