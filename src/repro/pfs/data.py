"""Virtual data: byte content carried by description instead of allocation.

Simulating a 65,536-process checkpoint means terabytes of logical bytes; we
cannot (and need not) hold them.  A :class:`DataSpec` describes content
deterministically so that

* writes carry a spec, not a buffer;
* the store records which spec covers which extent;
* reads hand back spec *views* that can be compared for content equality
  without materializing (structurally, when the specs line up), or
  materialized to real ``bytes`` for small correctness tests.

``PatternData(seed, offset, n)`` is the workhorse: position ``offset + i``
holds ``pattern_byte(seed, offset + i)``, a cheap integer hash, so any slice
of a pattern is itself a pattern and equality is O(1) structural.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgument

__all__ = ["DataSpec", "ZeroData", "PatternData", "LiteralData", "CompositeData", "DataView", "pattern_bytes"]

# Materialization ceiling for cross-kind equality checks; above this,
# structurally-different specs are conservatively unequal.
_MATERIALIZE_LIMIT = 4 << 20

_MUL1 = np.uint64(0x9E3779B97F4A7C15)
_MUL2 = np.uint64(0xC2B2AE3D27D4EB4F)


def pattern_bytes(seed: int, offset: int, length: int) -> np.ndarray:
    """The canonical pattern content for positions [offset, offset+length)."""
    if length < 0:
        raise InvalidArgument(message=f"negative length {length}")
    idx = np.arange(offset, offset + length, dtype=np.uint64)
    v = (idx + np.uint64(seed & 0xFFFFFFFFFFFFFFFF)) * _MUL1
    v ^= v >> np.uint64(29)
    v *= _MUL2
    v ^= v >> np.uint64(32)
    return (v & np.uint64(0xFF)).astype(np.uint8)


class DataSpec:
    """Abstract content descriptor. Immutable; all lengths in bytes."""

    __slots__ = ("length",)

    def __init__(self, length: int):
        if length < 0:
            raise InvalidArgument(message=f"negative DataSpec length {length}")
        self.length = int(length)

    def slice(self, start: int, length: int) -> "DataSpec":
        """The sub-spec covering [start, start+length) of this spec."""
        if start < 0 or length < 0 or start + length > self.length:
            raise InvalidArgument(message=f"slice [{start}, {start}+{length}) out of {self.length}")
        return self._slice(start, length)

    def _slice(self, start: int, length: int) -> "DataSpec":
        raise NotImplementedError

    def materialize(self) -> np.ndarray:
        """Content as a uint8 array (use only when small)."""
        raise NotImplementedError

    def content_equal(self, other: "DataSpec") -> bool:
        """Exact content equality when structurally decidable; falls back to
        materializing when both sides are small, else conservatively False."""
        if self.length != other.length:
            return False
        if self.length == 0:
            return True
        decided = self._structural_eq(other)
        if decided is None:
            decided = other._structural_eq(self)
        if decided is not None:
            return decided
        if self.length <= _MATERIALIZE_LIMIT:
            return bool(np.array_equal(self.materialize(), other.materialize()))
        return False

    def _structural_eq(self, other: "DataSpec"):
        """True/False when decidable against *other* without materializing, else None."""
        return None


class ZeroData(DataSpec):
    """A run of zero bytes (file holes read back as zeros)."""

    __slots__ = ()

    def _slice(self, start: int, length: int) -> "ZeroData":
        return ZeroData(length)

    def materialize(self) -> np.ndarray:
        """A zero-filled array."""
        return np.zeros(self.length, dtype=np.uint8)

    def _structural_eq(self, other: DataSpec):
        if isinstance(other, ZeroData):
            return True
        return None

    def __repr__(self) -> str:
        return f"Zero({self.length})"


class PatternData(DataSpec):
    """Deterministic pseudo-random content anchored at an absolute pattern offset."""

    __slots__ = ("seed", "offset")

    def __init__(self, seed: int, offset: int, length: int):
        super().__init__(length)
        self.seed = int(seed)
        self.offset = int(offset)

    def _slice(self, start: int, length: int) -> "PatternData":
        return PatternData(self.seed, self.offset + start, length)

    def materialize(self) -> np.ndarray:
        """The pattern content for this slice."""
        return pattern_bytes(self.seed, self.offset, self.length)

    def _structural_eq(self, other: DataSpec):
        if isinstance(other, PatternData):
            if self.seed == other.seed and self.offset == other.offset:
                return True
            # Different (seed, offset): decide by materializing if small.
            return None
        return None

    def __repr__(self) -> str:
        return f"Pattern(seed={self.seed}, off={self.offset}, len={self.length})"


class LiteralData(DataSpec):
    """Real bytes, for small correctness tests and metadata droppings."""

    __slots__ = ("data",)

    def __init__(self, data):
        arr = np.frombuffer(bytes(data), dtype=np.uint8) if not isinstance(data, np.ndarray) else data.astype(np.uint8, copy=False)
        super().__init__(len(arr))
        self.data = arr

    def _slice(self, start: int, length: int) -> "LiteralData":
        return LiteralData(self.data[start:start + length])

    def materialize(self) -> np.ndarray:
        """The literal bytes."""
        return self.data

    def _structural_eq(self, other: DataSpec):
        if isinstance(other, LiteralData):
            return bool(np.array_equal(self.data, other.data))
        return None

    def __repr__(self) -> str:
        return f"Literal({self.length})"


class CompositeData(DataSpec):
    """A DataSpec formed by concatenating pieces (a :class:`DataView`).

    Two-phase collective buffering builds these: an aggregator coalesces
    many ranks' small strided records into one large contiguous write
    whose content is the concatenation of the records.
    """

    __slots__ = ("view",)

    def __init__(self, view: "DataView"):
        super().__init__(view.length)
        self.view = view

    def _slice(self, start: int, length: int) -> "DataSpec":
        sub = self.view.slice(start, length)
        if len(sub.pieces) == 1:
            return sub.pieces[0]
        return CompositeData(sub)

    def materialize(self) -> np.ndarray:
        """The concatenated content."""
        return self.view.materialize()

    def _structural_eq(self, other: DataSpec):
        # Piecewise comparison is always decidable (recursing into pieces).
        return self.view.content_equal(other)

    def __repr__(self) -> str:
        return f"Composite(len={self.length}, pieces={len(self.view.pieces)})"


class DataView:
    """An ordered, gap-free sequence of specs representing one byte range.

    Reads of multi-extent ranges return a view; two views (or a view and a
    single spec) compare content-equal piecewise along their common
    sub-extents.
    """

    __slots__ = ("pieces", "length")

    def __init__(self, pieces):
        self.pieces = []
        self.length = 0
        for spec in pieces:
            if spec.length == 0:
                continue
            self.pieces.append(spec)
            self.length += spec.length

    @classmethod
    def of(cls, spec: DataSpec) -> "DataView":
        """A view of a single spec."""
        return cls([spec])

    def materialize(self) -> np.ndarray:
        """Concatenated content as a uint8 array (use only when small)."""
        if not self.pieces:
            return np.zeros(0, dtype=np.uint8)
        return np.concatenate([p.materialize() for p in self.pieces])

    def to_bytes(self) -> bytes:
        """Concatenated content as ``bytes``."""
        return self.materialize().tobytes()

    def slice(self, offset: int, length: int) -> "DataView":
        """The sub-view covering [offset, offset+length) of this view."""
        if offset < 0 or length < 0 or offset + length > self.length:
            raise InvalidArgument(message=f"view slice [{offset}, +{length}) out of {self.length}")
        out, pos = [], 0
        for p in self.pieces:
            lo, hi = pos, pos + p.length
            s, e = max(lo, offset), min(hi, offset + length)
            if e > s:
                out.append(p.slice(s - lo, e - s))
            pos = hi
            if pos >= offset + length:
                break
        return DataView(out)

    def _boundaries(self):
        out, pos = [], 0
        for p in self.pieces:
            out.append((pos, p))
            pos += p.length
        return out

    def content_equal(self, other) -> bool:
        """Piecewise content equality against another view or a single spec."""
        if isinstance(other, DataSpec):
            other = DataView.of(other)
        if self.length != other.length:
            return False
        # Walk both piece lists, comparing overlapping sub-slices.
        a = self._boundaries()
        b = other._boundaries()
        ai = bi = 0
        pos = 0
        while pos < self.length:
            a_start, a_spec = a[ai]
            b_start, b_spec = b[bi]
            a_end = a_start + a_spec.length
            b_end = b_start + b_spec.length
            end = min(a_end, b_end)
            if not a_spec.slice(pos - a_start, end - pos).content_equal(
                b_spec.slice(pos - b_start, end - pos)
            ):
                return False
            pos = end
            if pos == a_end:
                ai += 1
            if pos == b_end:
                bi += 1
        return True

    def __repr__(self) -> str:
        return f"DataView(len={self.length}, pieces={len(self.pieces)})"
