"""Write concurrency control: block-ownership locks with revocation.

Production parallel file systems serialize conflicting writers at some
granularity — GPFS byte-range tokens, Lustre server extent locks, PanFS
parity-stripe groups.  The common behaviour, and the one responsible for
the N-1 pattern's collapse (§II), is:

* a client that owns a block writes it for free (ownership is cached);
* a client touching a block owned by someone else pays a revocation
  round-trip and serializes behind the owner's in-flight I/O.

With N processes writing strided records into one shared file, record
boundaries fall inside shared blocks, so neighbours steal each other's
blocks on *every* write — the false-sharing ping-pong that PLFS eliminates
by giving every process its own physical file.

Locks here are acquired in ascending block order (no deadlock) and held
across the data transfer (the serialization is what costs, not the lock
metadata itself).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

from ..sim import Engine, Mutex
from .config import PfsConfig

__all__ = ["RangeLockManager"]


class RangeLockManager:
    """Per-volume block ownership for write serialization."""

    def __init__(self, env: Engine, cfg: PfsConfig):
        self.env = env
        self.cfg = cfg
        self._owner: Dict[Tuple[int, int], int] = {}
        self._mutex: Dict[Tuple[int, int], Mutex] = {}
        # Whole-file lock escalation: a file only ever touched by one client
        # keeps a single cached file lock (how real DLMs behave for N-N
        # workloads); the first second client demotes it to block locks.
        self._sole_writer: Dict[int, int] = {}
        self._demoted: set = set()
        self.revocations = 0
        self.grants = 0

    @property
    def enabled(self) -> bool:
        """Locking is active when a block granularity is configured."""
        return self.cfg.lock_block > 0

    def blocks_for(self, offset: int, length: int) -> range:
        """Lock-block indices covering [offset, offset+length)."""
        bs = self.cfg.lock_block
        if length <= 0 or bs <= 0:
            return range(0)
        return range(offset // bs, (offset + length - 1) // bs + 1)

    def acquire(self, client_id: int, file_uid: int, offset: int, length: int
                ) -> Generator:
        """Acquire every block of the range; returns the keys to release.

        Yields simulated time for grant/revocation traffic.  The caller must
        pass the result to :meth:`release` after its data transfer.
        """
        held: List[Tuple[int, int]] = []
        if not self.enabled:
            return held
        if file_uid not in self._demoted:
            sole = self._sole_writer.get(file_uid)
            if sole is None:
                # First client: grant a cached whole-file lock.
                self._sole_writer[file_uid] = client_id
                self.grants += 1
                yield self.env.timeout(self.cfg.lock_grant_time)
                return held
            if sole == client_id:
                return held  # cached whole-file lock, free rewrites
            # Second client appears: demote to block-granular locking.  The
            # old sole writer implicitly owns every block it has written;
            # conservatively charge one revocation for the demotion.
            self._demoted.add(file_uid)
            del self._sole_writer[file_uid]
            self.revocations += 1
            yield self.env.timeout(self.cfg.lock_revoke_time)
        for block in self.blocks_for(offset, length):
            key = (file_uid, block)
            mutex = self._mutex.get(key)
            if mutex is None:
                mutex = self._mutex[key] = Mutex(self.env, name=f"lk{key}")
            yield mutex.acquire()
            held.append(key)
            owner = self._owner.get(key)
            if owner != client_id:
                if owner is None:
                    self.grants += 1
                    yield self.env.timeout(self.cfg.lock_grant_time)
                else:
                    self.revocations += 1
                    yield self.env.timeout(self.cfg.lock_revoke_time)
                self._owner[key] = client_id
        return held

    def release(self, held: List[Tuple[int, int]]) -> None:
        """Release block mutexes; ownership stays cached with the client."""
        for key in held:
            self._mutex[key].release()

    def forget_file(self, file_uid: int) -> None:
        """Drop all state for a deleted file."""
        self._sole_writer.pop(file_uid, None)
        self._demoted.discard(file_uid)
        for key in [k for k in self._owner if k[0] == file_uid]:
            del self._owner[key]
        for key in [k for k in self._mutex if k[0] == file_uid]:
            del self._mutex[key]
