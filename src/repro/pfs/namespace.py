"""Functional namespace of a simulated file-system volume.

This layer is pure state — directories, files, extents — with no simulated
time; the :class:`~repro.pfs.volume.Volume` facade charges time through the
MDS/OSD models and then applies the state change here.  Keeping state and
timing separate makes correctness properties testable without running the
event loop.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from .data import DataSpec, DataView, ZeroData
from .extents import HOLE, ExtentJournal

__all__ = ["FileData", "Inode", "Namespace", "normalize", "split_path"]

_uid_counter = itertools.count(1)


def normalize(path: str) -> str:
    """Collapse a path to canonical '/a/b' form ('' and '/' both mean root)."""
    parts = [p for p in path.split("/") if p not in ("", ".")]
    for p in parts:
        if p == "..":
            raise InvalidArgument(path, "'..' is not supported in simulated paths")
    return "/" + "/".join(parts)


def split_path(path: str) -> Tuple[str, str]:
    """(parent, name) of a normalized path; root has no parent."""
    norm = normalize(path)
    if norm == "/":
        raise InvalidArgument(path, "operation needs a non-root path")
    head, _, name = norm.rpartition("/")
    return (head or "/", name)


class FileData:
    """Content of one regular file: an extent journal over recorded specs."""

    __slots__ = ("journal", "sources", "_stamp")

    def __init__(self) -> None:
        self.journal = ExtentJournal()
        self.sources: List[DataSpec] = []
        self._stamp = itertools.count(1)

    @property
    def size(self) -> int:
        return self.journal.size

    def write(self, offset: int, spec: DataSpec) -> None:
        """Replace [offset, offset+len(spec)) with *spec*'s content."""
        if offset < 0:
            raise InvalidArgument(message=f"negative write offset {offset}")
        if spec.length == 0:
            return
        src = len(self.sources)
        self.sources.append(spec)
        self.journal.append(offset, spec.length, src, 0, stamp=float(next(self._stamp)))

    def append(self, spec: DataSpec) -> int:
        """Write at EOF; returns the offset the data landed at."""
        offset = self.size
        self.write(offset, spec)
        return offset

    def read(self, offset: int, length: int) -> DataView:
        """Content of [offset, offset+length); short reads at EOF, holes as zeros."""
        if offset < 0 or length < 0:
            raise InvalidArgument(message=f"bad read ({offset}, {length})")
        length = max(0, min(length, self.size - offset))
        flat = self.journal.flatten()
        pieces = []
        for seg_start, seg_end, src, src_off in flat.query(offset, length):
            n = seg_end - seg_start
            if src == HOLE:
                pieces.append(ZeroData(n))
            else:
                pieces.append(self.sources[src].slice(src_off, n))
        return DataView(pieces)

    def truncate(self) -> None:
        """Truncate to zero length (recreate-with-O_TRUNC semantics)."""
        self.journal = ExtentJournal()
        self.sources = []


class Inode:
    """A directory or regular file node."""

    __slots__ = ("uid", "is_dir", "children", "data", "nlink", "writers")

    def __init__(self, is_dir: bool):
        self.uid = next(_uid_counter)
        self.is_dir = is_dir
        self.children: Optional[Dict[str, "Inode"]] = {} if is_dir else None
        self.data: Optional[FileData] = None if is_dir else FileData()
        self.nlink = 1
        self.writers = 0  # open write handles (write-back eligibility)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "dir" if self.is_dir else f"file[{self.data.size}B]"
        return f"<Inode {self.uid} {kind}>"


class Namespace:
    """A rooted tree of inodes with POSIX-flavoured operations."""

    def __init__(self) -> None:
        self.root = Inode(is_dir=True)
        self.n_files = 0
        self.n_dirs = 1

    # -- resolution ---------------------------------------------------------
    def resolve(self, path: str) -> Inode:
        """Walk *path* to its inode; raises FileNotFound/NotADirectory."""
        node = self.root
        norm = normalize(path)
        if norm == "/":
            return node
        for part in norm[1:].split("/"):
            if not node.is_dir:
                raise NotADirectory(path)
            child = node.children.get(part)
            if child is None:
                raise FileNotFound(path)
            node = child
        return node

    def try_resolve(self, path: str) -> Optional[Inode]:
        """Like :meth:`resolve` but returns None instead of raising."""
        try:
            return self.resolve(path)
        except (FileNotFound, NotADirectory):
            return None

    def exists(self, path: str) -> bool:
        """True if *path* resolves to any inode."""
        return self.try_resolve(path) is not None

    def _parent_dir(self, path: str) -> Tuple[Inode, str]:
        parent_path, name = split_path(path)
        parent = self.resolve(parent_path)
        if not parent.is_dir:
            raise NotADirectory(parent_path)
        return parent, name

    # -- mutation -----------------------------------------------------------
    def mkdir(self, path: str) -> Inode:
        """Create one directory; the parent must already exist."""
        parent, name = self._parent_dir(path)
        if name in parent.children:
            raise FileExists(path)
        node = Inode(is_dir=True)
        parent.children[name] = node
        self.n_dirs += 1
        return node

    def makedirs(self, path: str) -> Inode:
        """mkdir -p."""
        node = self.root
        norm = normalize(path)
        if norm == "/":
            return node
        for part in norm[1:].split("/"):
            if not node.is_dir:
                raise NotADirectory(path)
            child = node.children.get(part)
            if child is None:
                child = Inode(is_dir=True)
                node.children[part] = child
                self.n_dirs += 1
            node = child
        if not node.is_dir:
            raise FileExists(path)
        return node

    def create(self, path: str, *, exclusive: bool = False, truncate: bool = False) -> Inode:
        """Create (or reopen) a regular file, POSIX open(O_CREAT) flavours."""
        parent, name = self._parent_dir(path)
        node = parent.children.get(name)
        if node is not None:
            if exclusive:
                raise FileExists(path)
            if node.is_dir:
                raise IsADirectory(path)
            if truncate:
                node.data.truncate()
            return node
        node = Inode(is_dir=False)
        parent.children[name] = node
        self.n_files += 1
        return node

    def unlink(self, path: str) -> None:
        """Remove a regular file."""
        parent, name = self._parent_dir(path)
        node = parent.children.get(name)
        if node is None:
            raise FileNotFound(path)
        if node.is_dir:
            raise IsADirectory(path)
        del parent.children[name]
        self.n_files -= 1

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        parent, name = self._parent_dir(path)
        node = parent.children.get(name)
        if node is None:
            raise FileNotFound(path)
        if not node.is_dir:
            raise NotADirectory(path)
        if node.children:
            raise DirectoryNotEmpty(path)
        del parent.children[name]
        self.n_dirs -= 1

    def rename(self, old: str, new: str) -> None:
        """Atomic rename; the destination must not exist."""
        src_parent, src_name = self._parent_dir(old)
        node = src_parent.children.get(src_name)
        if node is None:
            raise FileNotFound(old)
        dst_parent, dst_name = self._parent_dir(new)
        if dst_name in dst_parent.children:
            raise FileExists(new)
        del src_parent.children[src_name]
        dst_parent.children[dst_name] = node

    # -- inspection -----------------------------------------------------------
    def readdir(self, path: str) -> List[str]:
        """Sorted child names of a directory."""
        node = self.resolve(path)
        if not node.is_dir:
            raise NotADirectory(path)
        return sorted(node.children)

    def walk(self, path: str = "/") -> Iterator[Tuple[str, Inode]]:
        """Depth-first (path, inode) pairs under *path*, inclusive."""
        start = normalize(path)
        node = self.resolve(start)
        stack = [(start, node)]
        while stack:
            p, n = stack.pop()
            yield p, n
            if n.is_dir:
                base = "" if p == "/" else p
                for name in sorted(n.children, reverse=True):
                    stack.append((f"{base}/{name}", n.children[name]))
