"""Parameter presets for the paper's three underlying parallel file systems.

The paper's portability claim (§I, §III) is that PLFS's transformation wins
on GPFS, Lustre, and PanFS alike, because all three serialize concurrent
writes into one shared object — just through different mechanisms.  The
presets encode those mechanisms; absolute rates are representative
2012-era hardware (enough for shape fidelity, which is the reproduction
target — see DESIGN.md §2).

* **PanFS** — the paper's testbed.  Client-driven RAID: a partial parity
  group forces read-modify-write and parity-group serialization.
* **Lustre** — server-side extent locks at coarse granularity; stealing an
  extent from another writer is a revocation round-trip.
* **GPFS** — distributed byte-range tokens at whole-block granularity;
  token steals are cheaper than Lustre revocations but block-size false
  sharing is just as real.
"""

from __future__ import annotations

from ..units import KiB, MiB
from .config import PfsConfig

__all__ = ["panfs", "lustre", "gpfs", "panfs_cielo", "PRESETS", "preset"]


def panfs(**overrides) -> PfsConfig:
    """PanFS-like: 8+1 client RAID, parity-group RMW (the paper's testbed)."""
    params = dict(
        name="panfs",
        n_osds=24,
        stripe_unit=64 * KiB,
        # Placement breadth: PanFS lays parity groups across many blades, so
        # a large file engages most of the system even though each parity
        # stripe is 8+1 (full_stripe below stays one parity group).
        stripe_width=16,
        osd_bw=110e6,
        osd_seek_time=2.5e-3,
        osd_op_overhead=150e-6,
        readahead_waste=256 * KiB,    # prefetch window trashed per stream switch
        lock_block=8 * 64 * KiB,      # one parity group
        lock_revoke_time=1.5e-3,
        lock_grant_time=0.1e-3,
        rmw_factor=4.0,               # read old data + read parity + write both back
        full_stripe=8 * 64 * KiB,
        mds_ops_per_sec=9000.0,
        dir_ops_per_sec=1400.0,
        mds_latency=0.25e-3,
    )
    params.update(overrides)
    return PfsConfig(**params)


def lustre(**overrides) -> PfsConfig:
    """Lustre-like: coarse server extent locks, no client RAID."""
    params = dict(
        name="lustre",
        n_osds=16,
        stripe_unit=1 * MiB,
        stripe_width=4,
        osd_bw=160e6,
        osd_seek_time=5e-3,
        osd_op_overhead=120e-6,
        readahead_waste=256 * KiB,
        lock_block=1 * MiB,
        lock_revoke_time=1.6e-3,
        lock_grant_time=0.15e-3,
        rmw_factor=1.0,
        full_stripe=0,
        mds_ops_per_sec=12000.0,
        dir_ops_per_sec=1800.0,
        mds_latency=0.2e-3,
    )
    params.update(overrides)
    return PfsConfig(**params)


def gpfs(**overrides) -> PfsConfig:
    """GPFS-like: wide striping, distributed whole-block write tokens."""
    params = dict(
        name="gpfs",
        n_osds=16,
        stripe_unit=256 * KiB,
        stripe_width=16,
        osd_bw=140e6,
        osd_seek_time=4.5e-3,
        osd_op_overhead=130e-6,
        readahead_waste=256 * KiB,
        lock_block=256 * KiB,
        lock_revoke_time=1.1e-3,
        lock_grant_time=0.12e-3,
        rmw_factor=1.0,
        full_stripe=0,
        mds_ops_per_sec=10000.0,
        dir_ops_per_sec=1500.0,
        mds_latency=0.22e-3,
    )
    params.update(overrides)
    return PfsConfig(**params)


def panfs_cielo(**overrides) -> PfsConfig:
    """The 10 PB Panasas system attached to Cielo (§VI): same mechanisms as
    :func:`panfs`, sized up to hundreds of storage blades."""
    params = dict(
        n_osds=480,
        mds_ops_per_sec=12000.0,
        dir_ops_per_sec=1600.0,
    )
    params.update(overrides)
    return panfs(**params)


PRESETS = {"panfs": panfs, "lustre": lustre, "gpfs": gpfs,
           "panfs_cielo": panfs_cielo}


def preset(name: str, **overrides) -> PfsConfig:
    """Look up a preset by name ('panfs' | 'lustre' | 'gpfs' | 'panfs_cielo')."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown PFS preset {name!r}; choose from {sorted(PRESETS)}") from None
    return factory(**overrides)
