"""Metadata server model.

The MDS is a fair-share queueing server measured in *op units* per second
(see :data:`repro.pfs.config.DEFAULT_OP_COSTS`).  Two levels of contention
reproduce the paper's metadata results:

* the server-wide rate bounds the volume's total metadata throughput;
* a much lower *per-directory* rate bounds mutations inside one directory
  — the GIGA+-documented effect (§V) that makes an N-process create storm
  into a single directory so slow, and that federated metadata (multiple
  volumes, each with its own MDS) sidesteps.

Batched entry points (``op(..., count=k)``) let callers charge k identical
ops in one simulated request — essential for the Original-PLFS read path,
where N ranks each open N index files (N² ops total) and simulating each
open as its own event would melt the host.  Fair sharing of a batch's total
demand models the same contention.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from ..analysis.sanitize import raw_snapshot, tracked
from ..errors import ConfigError, MDSUnavailable
from ..sim import Engine, FairShareServer
from .config import PfsConfig

__all__ = ["MetadataServer"]

# Ops that mutate a directory and therefore hit its single-directory ceiling.
_DIR_MUTATING = frozenset({"create", "mkdir", "unlink", "rmdir", "rename"})


class MetadataServer:
    """One metadata server (one per volume; federation = several volumes).

    Fault hooks (driven by ``repro.faults``): :meth:`crash` drops every
    queued op with :class:`MDSUnavailable` and rejects new ones;
    :meth:`failover` promotes a standby — a *fresh* fair-share server with
    cold per-directory state — after the plan's detection+promotion delay.
    Clients see queued ops fail at crash time and re-submitted ops fail
    fast until the standby is up, which is what their retry/backoff loops
    ride out.
    """

    def __init__(self, env: Engine, cfg: PfsConfig, name: str = "mds"):
        self.env = env
        self.cfg = cfg
        self.name = name
        self.server = FairShareServer(env, cfg.mds_ops_per_sec, name=f"{name}.srv")
        # Both registries are mutated by concurrent client processes and by
        # the fault injector across yields; tracked() is a no-op without a
        # sanitizer and a recording proxy under --sanitize.
        self._dir_servers: Dict[int, FairShareServer] = tracked(
            env, {}, f"{name}.dir-servers")
        self._dir_inflight: Dict[int, int] = tracked(
            env, {}, f"{name}.dir-inflight")
        self.op_counts: Dict[str, int] = {}
        self.down = False
        self.failovers = 0
        self.dropped_ops = 0

    # -- fault hooks -------------------------------------------------------
    def crash(self) -> int:
        """Crash the active MDS: drop queued ops, reject new ones.

        Returns the number of in-flight ops dropped.
        """
        if self.down:
            return 0
        self.down = True
        make_exc = lambda: MDSUnavailable(self.name, f"MDS {self.name!r} crashed")
        dropped = self.server.fail_all(make_exc)
        # Sorted: failing a queue triggers events, so the drop order is
        # part of the event schedule and must not depend on dir creation
        # history.
        for _uid, srv in sorted(self._dir_servers.items()):
            dropped += srv.fail_all(make_exc)
        self.dropped_ops += dropped
        return dropped

    def failover(self) -> None:
        """Promote the standby: fresh service queues, cold directory state."""
        if not self.down:
            return
        self.down = False
        self.failovers += 1
        self.server = FairShareServer(self.env, self.cfg.mds_ops_per_sec,
                                      name=f"{self.name}.srv+{self.failovers}")
        self._dir_servers.clear()

    def registry_snapshot(self) -> Dict[str, Dict[int, int]]:
        """Plain copies of the per-directory registries (oracle accessor).

        Returns ``{"inflight": {dir_uid: count}, "dir_servers": {dir_uid:
        active_jobs}}`` read through :func:`raw_snapshot` so invariant
        checks never perturb sanitizer read vectors or DPOR footprints.
        """
        inflight = dict(raw_snapshot(self._dir_inflight))
        servers = {uid: srv.active
                   for uid, srv in sorted(raw_snapshot(self._dir_servers).items())}
        return {"inflight": inflight, "dir_servers": servers}

    def _dir_server(self, dir_uid: int) -> FairShareServer:
        srv = self._dir_servers.get(dir_uid)
        if srv is None:
            srv = FairShareServer(self.env, self.cfg.dir_ops_per_sec,
                                  name=f"{self.name}.dir{dir_uid}")
            self._dir_servers[dir_uid] = srv
        return srv

    def op(self, kind: str, dir_uid: Optional[int] = None, count: float = 1,
           dir_entries: int = 0) -> Generator:
        """Charge *count* metadata ops of *kind* (a generator to yield from).

        *dir_uid* identifies the directory a mutating op targets; mutations
        additionally share that directory's (much lower) service rate, and
        pay the directory-size degradation factor when *dir_entries* is
        large (see :class:`~repro.pfs.config.PfsConfig`).  *count* may be
        fractional: client-cached re-opens cost a fraction of a full op.
        """
        cost = self.cfg.op_costs.get(kind)
        if cost is None:
            raise ConfigError(f"unknown metadata op {kind!r}")
        if count <= 0:
            raise ConfigError(f"op count must be > 0, got {count}")
        if self.down:
            raise MDSUnavailable(self.name, f"MDS {self.name!r} is down")
        self.op_counts[kind] = self.op_counts.get(kind, 0) + int(round(count))
        yield self.env.timeout(self.cfg.mds_latency)
        if self.down:
            # Crashed while the request was on the wire.
            raise MDSUnavailable(self.name, f"MDS {self.name!r} crashed mid-op")
        demand = cost * count
        if dir_uid is not None and kind in _DIR_MUTATING:
            if self.cfg.dir_degradation_entries > 0:
                # A bulk-synchronous storm submits every create before any
                # commits, so size the directory as committed entries plus
                # the mutations already in flight ahead of this one.
                inflight = self._dir_inflight.get(dir_uid, 0)
                effective = dir_entries + inflight
                if effective > 0:
                    demand *= 1.0 + effective / self.cfg.dir_degradation_entries
            self._dir_inflight[dir_uid] = self._dir_inflight.get(dir_uid, 0) + 1
            try:
                events = [self.server.serve(demand),
                          self._dir_server(dir_uid).serve(demand)]
                yield self.env.all_of(events)
            finally:
                self._dir_inflight[dir_uid] -= 1
        else:
            yield self.server.serve(demand)

    @property
    def total_ops(self) -> int:
        # Integer sum: order-insensitive, exact.
        return sum(self.op_counts.values())  # repro: noqa[REP006] -- integer sum is exact and order-insensitive
