"""Configuration of a simulated parallel file system.

One dataclass captures the handful of mechanisms that differentiate the
paper's three production file systems (GPFS, Lustre, PanFS) for the
workloads studied:

* **striping** — how a file's bytes spread over object storage devices;
* **write concurrency control** — block/extent/stripe ownership that
  serializes conflicting writers and charges revocation round-trips
  (GPFS tokens, Lustre extent locks, PanFS parity-stripe groups);
* **read-modify-write inflation** — partial-stripe writes that force the
  storage to read old data/parity before writing (PanFS RAID);
* **metadata service rates** — aggregate MDS throughput plus the lower
  single-directory ceiling that makes N-N create storms slow (§V);
* **client caching** — node page caches that let re-reads beat the
  storage network's theoretical peak (§IV-C).

Presets for the three file systems live in :mod:`repro.pfs.presets`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import ConfigError
from ..units import KiB, MiB

__all__ = ["PfsConfig", "DEFAULT_OP_COSTS"]

# Relative metadata-op weights, in "op units"; an MDS rated at R ops/s
# retires R units per second.  Creates dominate (allocation + journaling),
# which is why the create phase of N-N is the §V bottleneck.
DEFAULT_OP_COSTS: Dict[str, float] = {
    "create": 1.0,
    "mkdir": 1.1,
    "open": 0.35,
    "close": 0.15,
    "stat": 0.25,
    "unlink": 0.7,
    "rmdir": 0.8,
    "readdir": 0.5,
    "rename": 0.9,
    "utime": 0.2,
}


@dataclass(frozen=True)
class PfsConfig:
    """Static parameters of one simulated parallel file system."""

    name: str = "pfs"

    # --- data layout ---
    n_osds: int = 16
    stripe_unit: int = 64 * KiB
    stripe_width: int = 8

    # --- OSD device model ---
    osd_bw: float = 120e6            # bytes/s streaming per OSD
    osd_seek_time: float = 4e-3      # seconds charged per non-sequential op
    osd_op_overhead: float = 150e-6  # per-request fixed device/server time
    # Readahead pollution: when a *different client's* read breaks an
    # object's stream, the prefetcher's in-flight window is wasted work.
    # Charged (in bytes) per such switch, on reads only.  This is §IV-D's
    # mechanism: N clients interleaving in one shared file defeat the
    # per-object readahead that N private PLFS logs enjoy.  0 disables.
    readahead_waste: int = 0

    # --- write concurrency control ---
    lock_block: int = 64 * KiB       # ownership granularity; 0 disables locking
    lock_revoke_time: float = 1.0e-3  # revocation round-trip when stealing a block
    lock_grant_time: float = 0.1e-3   # first-touch grant of an uncontended block

    # --- RAID read-modify-write (PanFS-style parity groups) ---
    rmw_factor: float = 1.0          # OSD demand multiplier for partial-stripe writes
    full_stripe: int = 0             # bytes per parity group; 0 disables RMW logic

    # --- metadata service ---
    mds_ops_per_sec: float = 9000.0      # aggregate op-unit throughput of one MDS
    dir_ops_per_sec: float = 1400.0      # ceiling for mutations inside ONE directory
    mds_latency: float = 0.25e-3         # client<->MDS round-trip
    # Directory-size degradation: a mutation in a directory holding E
    # entries costs (1 + E / dir_degradation_entries) op units — huge flat
    # directories get superlinearly slow (the GIGA+ observation, §V).
    # 0 disables.
    dir_degradation_entries: int = 8000

    # --- client behaviour ---
    client_cache: bool = True        # use node page caches
    cache_fill_on_read: bool = True  # read misses populate the cache
    # Write-back buffering for sole-writer append streams: tiny sequential
    # writes (PLFS data logs, N-N files) absorb into the client cache and
    # flush to storage in chunks of this size.  Multi-writer shared files
    # never qualify — their consistency traffic forces write-through,
    # which is precisely the N-1 penalty (§II).  0 disables.
    writeback_bytes: int = 4 * MiB
    # Client metadata caching: re-opening a file some rank on the same node
    # already opened costs this fraction of a full open (attribute caches
    # in PanFS/Lustre/GPFS clients all behave this way).  It is what keeps
    # the Original index-read design merely ~4x slower at scale (Fig. 4a)
    # instead of catastrophically N^2.
    md_client_cache: bool = True
    md_cache_hit_factor: float = 0.08

    op_costs: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_OP_COSTS))

    def __post_init__(self) -> None:
        if self.n_osds < 1:
            raise ConfigError("need at least one OSD")
        if self.stripe_width < 1:
            raise ConfigError(f"stripe_width {self.stripe_width} must be >= 1")
        # stripe_width > n_osds is allowed: lanes wrap around the pool and a
        # single I/O then submits several lane requests to one OSD (the
        # OsdPool batches them through Osd.io_many).
        if self.stripe_unit <= 0:
            raise ConfigError("stripe_unit must be positive")
        if self.osd_bw <= 0 or self.mds_ops_per_sec <= 0 or self.dir_ops_per_sec <= 0:
            raise ConfigError("rates must be positive")
        if self.lock_block < 0 or self.lock_revoke_time < 0 or self.lock_grant_time < 0:
            raise ConfigError("lock parameters must be non-negative")
        if self.rmw_factor < 1.0:
            raise ConfigError("rmw_factor must be >= 1")
        if self.full_stripe < 0:
            raise ConfigError("full_stripe must be >= 0")
        missing = set(DEFAULT_OP_COSTS) - set(self.op_costs)
        if missing:
            raise ConfigError(f"op_costs missing {sorted(missing)}")

    @property
    def aggregate_osd_bw(self) -> float:
        """Total streaming bandwidth of the device pool."""
        return self.n_osds * self.osd_bw
