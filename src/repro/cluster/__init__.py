"""Simulated HPC platform: nodes, interconnect, storage network, presets."""

from .network import Interconnect, StorageNetwork
from .node import Node, NodeSpec, PageCache
from .presets import CIELO, LANL64, cielo, lanl64
from .topology import Cluster, ClusterSpec

__all__ = [
    "Interconnect",
    "StorageNetwork",
    "Node",
    "NodeSpec",
    "PageCache",
    "Cluster",
    "ClusterSpec",
    "CIELO",
    "LANL64",
    "cielo",
    "lanl64",
]
