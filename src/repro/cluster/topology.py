"""Cluster assembly: nodes + interconnect + storage network + rank placement."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from ..errors import ConfigError
from ..sim import Engine
from .network import Interconnect, StorageNetwork
from .node import Node, NodeSpec

__all__ = ["ClusterSpec", "Cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a whole platform (see :mod:`repro.cluster.presets`)."""

    name: str
    n_nodes: int
    node: NodeSpec = field(default_factory=NodeSpec)
    interconnect_latency: float = 2e-6
    bisection_bw_per_node: float = 1.6e9  # fabric bisection scales with node count
    storage_latency: float = 60e-6
    storage_aggregate_bw: float = 1.25e9  # the paper's 10 GigE uplink
    storage_client_bw: float = 1.25e9

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigError(f"cluster needs >= 1 node, got {self.n_nodes}")

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.node.cores


class Cluster:
    """A live simulated platform bound to one engine.

    Rank placement follows the paper's runs: ranks are assigned to nodes in
    contiguous blocks of ``cores`` per node (block placement, the MPI
    default), wrapping around when jobs oversubscribe cores — the paper's
    2048-stream runs on 1024 cores do exactly that.
    """

    def __init__(self, env: Engine, spec: ClusterSpec):
        self.env = env
        self.spec = spec
        self.nodes: List[Node] = [Node(i, spec.node, env) for i in range(spec.n_nodes)]
        self.interconnect = Interconnect(
            env, self.nodes,
            latency=spec.interconnect_latency,
            bisection_bw=spec.bisection_bw_per_node * spec.n_nodes,
        )
        self.storage_net = StorageNetwork(
            env, self.nodes,
            latency=spec.storage_latency,
            aggregate_bw=spec.storage_aggregate_bw,
            client_bw=spec.storage_client_bw,
        )

    def node_for_rank(self, rank: int, nprocs: int) -> Node:
        """Block placement of *nprocs* ranks over the cluster's nodes."""
        if not (0 <= rank < nprocs):
            raise ConfigError(f"rank {rank} out of range for {nprocs} procs")
        per_node = self.spec.node.cores
        node_idx = (rank // per_node) % self.spec.n_nodes
        return self.nodes[node_idx]

    def nodes_used(self, nprocs: int) -> int:
        """How many distinct nodes a job of *nprocs* ranks touches."""
        return min(self.spec.n_nodes, math.ceil(nprocs / self.spec.node.cores))

    def drop_caches(self) -> None:
        """Clear every node's page cache (the paper's cold-read runs)."""
        for node in self.nodes:
            node.page_cache.clear()
