"""Network models: the compute interconnect and the dedicated storage network.

The paper's platforms separate the two (§I): a fast interconnect between
compute nodes (InfiniBand / Cray Gemini) that sits idle during I/O phases,
and a much slower dedicated storage network (10 GigE to Panasas).  PLFS's
collective optimizations work precisely by moving load from the storage
network onto the idle interconnect, so both are first-class models here.

A transfer is the fluid-flow approximation: fixed latency, then the bytes
pass through every shared segment of the path *concurrently*; its duration
is the slowest segment's fair share.  Segments are
:class:`~repro.sim.FairShareServer` instances, so contention between any
number of simultaneous transfers is handled in O(log n).
"""

from __future__ import annotations

from typing import Generator, Iterable, List

from ..analysis.sanitize import raw_snapshot, tracked
from ..errors import ConfigError, NetworkPartitioned
from ..sim import AllOf, Engine, FairShareServer
from .node import Node

__all__ = ["Interconnect", "StorageNetwork"]


class Interconnect:
    """Compute fabric: per-node NIC in/out servers plus a bisection pipe.

    ``bisection_bw`` caps aggregate traffic crossing the fabric; per-node
    NICs cap any single node's injection/ejection rate.  Messages between
    ranks on the *same* node bypass the fabric and cost a memory copy.
    """

    def __init__(self, env: Engine, nodes: Iterable[Node], *, latency: float,
                 bisection_bw: float, local_latency: float = 0.5e-6):
        if latency < 0 or local_latency < 0:
            raise ConfigError("latencies must be non-negative")
        if bisection_bw <= 0:
            raise ConfigError("bisection bandwidth must be positive")
        self.env = env
        self.latency = latency
        self.local_latency = local_latency
        self.fabric = FairShareServer(env, bisection_bw, name="fabric")
        self.nodes: List[Node] = list(nodes)
        for node in self.nodes:
            node.nic_out = FairShareServer(env, node.spec.nic_bw, name=f"nic-out[{node.id}]")
            node.nic_in = FairShareServer(env, node.spec.nic_bw, name=f"nic-in[{node.id}]")
        self.messages_sent = 0
        self.bytes_sent = 0

    def transfer(self, src: Node, dst: Node, nbytes: int) -> Generator:
        """Simulated time for *nbytes* from *src* to *dst* (a generator to yield from)."""
        if nbytes < 0:
            raise ConfigError(f"negative transfer size {nbytes}")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if src is dst:
            yield self.env.timeout(self.local_latency + nbytes / src.spec.mem_bw)
            return
        yield self.env.timeout(self.latency)
        if nbytes == 0:
            return
        yield AllOf(self.env, [
            src.nic_out.serve(nbytes),
            self.fabric.serve(nbytes),
            dst.nic_in.serve(nbytes),
        ])


class StorageNetwork:
    """The dedicated network between compute nodes and the storage system.

    Modeled as one aggregate pipe (the paper's 1.25 GB/s "theoretical peak"
    for the 64-node cluster is the 10 GigE uplink) plus per-node storage
    NICs.  Both directions share the pipe, as they do on a single Ethernet
    uplink.

    Fault hooks (driven by ``repro.faults``): :meth:`partition` severs the
    link — new transfers raise :class:`NetworkPartitioned`, bytes already
    on the wire freeze until :meth:`heal` — and :attr:`extra_latency` adds
    a jitter term to every traversal (a flapping or congested link).
    """

    def __init__(self, env: Engine, nodes: Iterable[Node], *, latency: float,
                 aggregate_bw: float, client_bw: float):
        if latency < 0:
            raise ConfigError("latency must be non-negative")
        if aggregate_bw <= 0 or client_bw <= 0:
            raise ConfigError("bandwidths must be positive")
        self.env = env
        self.latency = latency
        self.aggregate_bw = aggregate_bw
        self.pipe = FairShareServer(env, aggregate_bw, name="storage-pipe")
        # Read by client transfers while the fault injector partitions and
        # heals; tracked() registers it with the sanitizer when one is on.
        self._client_nics = tracked(env, {
            node.id: FairShareServer(env, client_bw, name=f"stor-nic[{node.id}]")
            for node in nodes
        }, "storage-net.client-nics")
        # Node ids currently cut off from storage (single-node partitions,
        # as opposed to the whole-link partition() below).  Mutated by the
        # fault injector, read by every transfer — a classic shared set.
        self._partitioned_nodes = tracked(env, set(),
                                          "storage-net.partitioned-nodes")
        self.bytes_moved = 0
        self.down = False
        self.extra_latency = 0.0
        self.partitions = 0

    # -- fault hooks -------------------------------------------------------
    def partition(self) -> None:
        """Sever the link: reject new transfers, freeze bytes on the wire."""
        if self.down:
            return
        self.down = True
        self.partitions += 1
        self.pipe.pause()
        # Sorted: pausing reschedules in-flight service events, so the
        # order is part of the event schedule.
        for _nid, nic in sorted(self._client_nics.items()):
            nic.pause()

    def heal(self) -> None:
        """Reconnect a partitioned link; frozen transfers resume."""
        if not self.down:
            return
        self.down = False
        self.pipe.resume()
        for _nid, nic in sorted(self._client_nics.items()):
            nic.resume()

    def partition_node(self, node_id: int) -> None:
        """Cut one node off from storage: its transfers reject, its bytes
        on the wire freeze, every other node keeps going.  Idempotent."""
        if node_id in self._partitioned_nodes:
            return
        self._partitioned_nodes.add(node_id)
        self.partitions += 1
        self._client_nics[node_id].pause()

    def heal_node(self, node_id: int) -> None:
        """Reconnect a node severed by :meth:`partition_node`."""
        if node_id not in self._partitioned_nodes:
            return
        self._partitioned_nodes.discard(node_id)
        self._client_nics[node_id].resume()

    def partition_snapshot(self) -> set:
        """Plain copy of the partitioned-node set (oracle accessor —
        reads no tracked state, so inspections never perturb footprints)."""
        return set(raw_snapshot(self._partitioned_nodes))

    def slow_down(self, factor: float) -> None:
        """Degrade the shared pipe to ``1/factor`` of configured bandwidth."""
        if not (factor >= 1.0):
            raise ConfigError(f"slow_down factor must be >= 1, got {factor}")
        self.pipe.set_capacity(self.aggregate_bw / factor)

    def restore_speed(self) -> None:
        """Undo :meth:`slow_down`."""
        self.pipe.set_capacity(self.aggregate_bw)

    def _check_up(self) -> None:
        if self.down:
            raise NetworkPartitioned("storage-net", "storage network partitioned")

    def _check_node(self, node: Node) -> None:
        if self.down:
            raise NetworkPartitioned("storage-net", "storage network partitioned")
        if node.id in self._partitioned_nodes:
            raise NetworkPartitioned(
                f"storage-net[node {node.id}]",
                f"node {node.id} partitioned from storage")

    def path_events(self, node: Node, nbytes: int) -> list:
        """Fair-share events for *nbytes* crossing this network from/to *node*.

        Returned un-joined so callers can AllOf them together with the
        storage-device service (the bytes stream through NIC, pipe, and
        device concurrently).
        """
        self._check_node(node)
        self.bytes_moved += nbytes
        if nbytes == 0:
            return []
        return [self._client_nics[node.id].serve(nbytes), self.pipe.serve(nbytes)]

    def transfer(self, node: Node, nbytes: int) -> Generator:
        """Latency plus a full traversal of the network (no device component)."""
        self._check_node(node)
        yield self.env.timeout(self.latency + self.extra_latency)
        events = self.path_events(node, nbytes)
        if events:
            yield AllOf(self.env, events)
