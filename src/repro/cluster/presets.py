"""Platform presets matching the paper's two testbeds.

§IV-C: "The cluster has 64 nodes each with 16 AMD Opteron cores for a total
of 1024 processors. Each node has 32GB of memory and nodes are interconnected
with an Infiniband network. The cluster is also connected to a 551 TB Panasas
file system through a 10GigE storage network."  Theoretical peak read
bandwidth is quoted as 1.25 GB/s (§IV-C), i.e. the 10 GigE uplink.

§VI: "Cielo, which is a Cray XE6 machine with 8894 nodes and 142,304 compute
cores interconnected with a Cray Gemini network. Each node has 32 GB of
memory and the cluster is connected to a 10PB Panasas parallel file system."
Cielo's storage aggregate is far larger; we size it at 160 GB/s (the
published PaScalBB/Panasas figure for Cielo-class deployments is in the
100–160 GB/s range), which only matters for the shapes, not the absolutes.
"""

from __future__ import annotations

from ..units import GiB
from .node import NodeSpec
from .topology import ClusterSpec

__all__ = ["LANL64", "CIELO", "lanl64", "cielo"]

LANL64 = ClusterSpec(
    name="lanl64",
    n_nodes=64,
    node=NodeSpec(cores=16, mem_bytes=32 * GiB, nic_bw=3.2e9, mem_bw=8e9),
    interconnect_latency=2e-6,
    bisection_bw_per_node=1.6e9,
    storage_latency=60e-6,
    storage_aggregate_bw=1.25e9,
    storage_client_bw=1.25e9,
)

CIELO = ClusterSpec(
    name="cielo",
    n_nodes=8894,
    node=NodeSpec(cores=16, mem_bytes=32 * GiB, nic_bw=5.0e9, mem_bw=10e9),
    interconnect_latency=1.5e-6,
    bisection_bw_per_node=2.3e9,  # Gemini 3D torus, effective per-node bisection share
    storage_latency=80e-6,
    storage_aggregate_bw=160e9,
    storage_client_bw=1.0e9,  # per-node share of the PaScalBB I/O lanes
)


def lanl64() -> ClusterSpec:
    """The paper's 64-node / 1024-core InfiniBand + Panasas cluster (§IV-C)."""
    return LANL64


def cielo() -> ClusterSpec:
    """Cielo, the Cray XE6 used for the large-scale results (§VI)."""
    return CIELO
